"""Cross-checking with real PRISM: export models and properties.

This library is a self-contained reproduction, but the paper's numbers
came from PRISM itself.  This example exports (a) the reduced Viterbi
DTMC in PRISM's explicit-state format and (b) a guarded-command module
as PRISM-language source, then prints the exact PRISM command lines a
user with a PRISM installation would run to verify our values
independently.  The export/import round-trip is also demonstrated
in-process.

Run:  python examples/prism_interop.py
"""

import pathlib
import tempfile

import numpy as np

from repro.interop import (
    from_prism_explicit,
    module_to_prism,
    to_prism_lab,
    to_prism_srew,
    to_prism_tra,
    write_prism_files,
)
from repro.pctl import check
from repro.prog import Module
from repro.viterbi import ViterbiModelConfig, build_reduced_model


def export_viterbi(tmpdir: pathlib.Path) -> None:
    config = ViterbiModelConfig(traceback_length=3, num_levels=3, pm_max=3)
    chain = build_reduced_model(config).chain
    paths = write_prism_files(chain, str(tmpdir / "viterbi"))
    print("exported explicit-state files:")
    for path in paths:
        size = pathlib.Path(path).stat().st_size
        print(f"  {path} ({size} bytes)")

    p2 = check(chain, "R=? [ I=300 ]").value
    print("\nto re-check P2 with a real PRISM installation:")
    print(
        "  prism -importtrans viterbi.tra -importlabels viterbi.lab"
        " -importstaterewards viterbi.flag.srew -dtmc"
        " -pf 'R=? [ I=300 ]'"
    )
    print(f"  (this library's value: {p2:.10f})")

    # Round-trip: import the files back and confirm identical results.
    back = from_prism_explicit(
        to_prism_tra(chain),
        to_prism_lab(chain),
        {"flag": to_prism_srew(chain, "flag")},
    )
    p2_back = check(back, "R=? [ I=300 ]").value
    print(f"  round-trip import re-checks to:  {p2_back:.10f}"
          f" (identical: {np.isclose(p2, p2_back, atol=1e-15)})")


def export_module() -> None:
    m = Module("retransmit")
    tries = m.int_var("tries", 0, 2, init=0)
    ok = m.bool_var("ok", init=False)
    m.command(
        ~ok & (tries < 2),
        [(0.9, {ok: True}), (0.1, {tries: tries + 1})],
        label="send",
    )
    m.command(~ok & (tries == 2), [(1.0, {})], label="gave_up")
    m.command(ok, [(1.0, {})], label="done")

    print("\nguarded-command module as PRISM source:")
    print("-" * 50)
    print(module_to_prism(m), end="")
    print("-" * 50)


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        export_viterbi(pathlib.Path(tmp))
    export_module()


if __name__ == "__main__":
    main()
