"""Quickstart: statistical guarantees in a dozen lines.

Three parts:

1. the general-purpose layer — define any DTMC, check any pCTL
   property;
2. the paper's headline flow — one object that builds the (reduced)
   Viterbi RTL model and returns guaranteed performance figures;
3. the engine layer — pick a solver backend, batch properties over
   shared factorizations, and sweep scenario grids across workers.

Run:  python examples/quickstart.py
"""

from repro import (
    PerformanceAnalyzer,
    SolverConfig,
    check,
    dtmc_from_dict,
    grid,
    sweep_values,
)


def part1_any_dtmc() -> None:
    """Model checking on a hand-written chain."""
    print("-- part 1: any DTMC, any pCTL property " + "-" * 24)

    # A tiny retransmission protocol: try to send; success with 0.9,
    # transient error with 0.1; one retry allowed before giving up.
    chain = dtmc_from_dict(
        {
            "try1": {"sent": 0.9, "try2": 0.1},
            "try2": {"sent": 0.9, "failed": 0.1},
            "sent": {"sent": 1.0},
            "failed": {"failed": 1.0},
        },
        initial="try1",
        labels={"ok": ["sent"], "dead": ["failed"]},
    )

    for prop in [
        "P=? [ F ok ]",          # eventual delivery probability
        "P=? [ F<=1 ok ]",       # delivered first try
        "P>=0.98 [ F ok ]",      # a guarantee with a bound
    ]:
        print(f"  {prop:24s} -> {check(chain, prop).value}")


def part2_paper_flow() -> None:
    """The paper's methodology through the high-level API."""
    print("-- part 2: guaranteed Viterbi performance " + "-" * 21)

    analyzer = PerformanceAnalyzer.for_viterbi()  # reduced model M_R
    print(" ", analyzer.best_case(300))     # P1: P=? [ G<=300 !flag ]
    print(" ", analyzer.average_case(300))  # P2: R=? [ I=300 ]
    print(" ", analyzer.ber())              # S=? [ flag ] == BER

    preconditions = analyzer.steady_state_preconditions()
    print(
        f"  steady state is guaranteed: irreducible={preconditions['irreducible']},"
        f" aperiodic={preconditions['aperiodic']},"
        f" RI={analyzer.reachability_iterations()}"
    )


def part3_engine_layer() -> None:
    """Solver backends, batched checking, and scenario sweeps."""
    print("-- part 3: solver engine and scenario sweeps " + "-" * 18)

    # Any backend, same answer: direct, lu, power, jacobi, gauss-seidel.
    analyzer = PerformanceAnalyzer.for_viterbi(
        solver=SolverConfig(method="lu")
    )
    # One batch = one set of factorizations / precomputations.
    for guarantee in analyzer.check_many(
        ["P=? [ F flag ]", "R=? [ F flag ]", "S=? [ flag ]"]
    ):
        print(" ", guarantee)

    # Fan a scenario grid across workers (threads here; "process" for
    # full isolation, "serial" for debugging).
    from repro.viterbi import ViterbiModelConfig, build_convergence_model

    def c1_at(point):
        config = ViterbiModelConfig(
            snr_db=point["snr_db"], traceback_length=point["length"]
        )
        chain = build_convergence_model(config).chain
        return check(chain, "S=? [ nonconv ]").value

    points = grid(snr_db=[6.0, 8.0], length=[3, 4])
    for point, c1 in zip(points, sweep_values(c1_at, points)):
        print(f"  L={point['length']} @ {point['snr_db']:.0f} dB -> C1 = {c1:.3e}")


if __name__ == "__main__":
    part1_any_dtmc()
    part2_paper_flow()
    part3_engine_layer()
