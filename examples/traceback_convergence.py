"""Case study C: choosing the Viterbi traceback depth with guarantees.

The folklore rule says traceback length L between 4m and 5m "is
enough", but — as the paper notes — "these numbers appear to come more
from empirical observations, rather than theory."  This example turns
the rule into a verified engineering decision:

1. sweep L, model-checking the non-convergence probability C1 on the
   tiny (pm, x0, count) convergence DTMC (Figure 2's experiment);
2. pick the smallest L whose C1 meets a target;
3. cross-check the chosen point against a Monte-Carlo run of the real
   trellis, and show C1's horizon stability (Table IV's experiment).

Run:  python examples/traceback_convergence.py
"""

from repro.pctl import check
from repro.sim import simulate_viterbi_convergence
from repro.viterbi import ViterbiModelConfig, build_convergence_model

TARGET = 2e-3  # acceptable probability of non-converging traceback
SNR_DB = 8.0


def sweep(lengths):
    print(f"C1 vs traceback length (SNR {SNR_DB} dB, memory m=1):")
    print("  L  | states | C1")
    print("  ---+--------+----------")
    values = {}
    for length in lengths:
        config = ViterbiModelConfig(snr_db=SNR_DB, traceback_length=length)
        result = build_convergence_model(config)
        c1 = check(result.chain, "S=? [ nonconv ]").value
        values[length] = c1
        marker = " <- 5m rule" if length == 5 else ""
        print(f"  {length:<2d} | {result.num_states:6d} | {c1:.3e}{marker}")
    return values


def choose(values, target):
    for length in sorted(values):
        if values[length] <= target:
            print(
                f"\nsmallest L meeting C1 <= {target:.0e}: L = {length}"
                f" (C1 = {values[length]:.3e}) - a guaranteed, not"
                " heuristic, choice"
            )
            return length
    raise SystemExit("no L in the sweep meets the target")


def cross_check(length):
    config = ViterbiModelConfig(snr_db=SNR_DB, traceback_length=length)
    chain = build_convergence_model(config).chain

    print("\nhorizon stability (Table IV experiment):")
    for horizon in (100, 400, 1000):
        value = check(chain, f"R=? [ I={horizon} ]").value
        print(f"  R=? [ I={horizon} ] = {value:.4e}")

    estimate = simulate_viterbi_convergence(config, num_steps=200_000, seed=3)
    print(f"\nMonte-Carlo cross-check ({estimate.trials} cycles): {estimate}")
    model = check(chain, "S=? [ nonconv ]").value
    low, high = estimate.interval
    print(f"model-checked C1 = {model:.3e}; inside the interval:"
          f" {low <= model <= high}")


def main():
    values = sweep(range(2, 11))
    chosen = choose(values, TARGET)
    cross_check(chosen)


if __name__ == "__main__":
    main()
