"""Case study B: ML MIMO detector BER with symmetry reduction.

Walks through the paper's Section IV-B on real numbers:

1. the symmetry argument, checked mechanically (block swap is an
   automorphism of the explicitly-built 1x2 model);
2. on-the-fly symmetry reduction: state counts and reduction factors
   for 1x2 and 1x4 (Table II's experiment);
3. exact BER per detector via ``S=? [flag]`` (Table V's experiment);
4. the simulation comparison: what Monte-Carlo can and cannot resolve
   at a 100k-step budget, including the unquantized (true-channel)
   reference and the closed-form diversity curve.

Run:  python examples/mimo_detector_ber.py
"""

from repro.comm import bpsk_diversity_ber
from repro.core.reductions import verify_permutation_invariance
from repro.mimo import (
    MimoState,
    MimoSystemConfig,
    build_detector_model,
    full_state_count,
)
from repro.pctl import check
from repro.sim import (
    rule_of_three_upper_bound,
    simulate_detector_ber,
    simulate_detector_ber_true_channel,
)


def verify_symmetry():
    """Mechanically re-check the paper's interchange argument."""
    config = MimoSystemConfig(num_rx=2, snr_db=8.0, num_y_levels=2)
    full = build_detector_model(config, reduced=False)

    def swap_first_two_blocks(state):
        blocks = list(state.blocks)
        blocks[0], blocks[1] = blocks[1], blocks[0]
        return MimoState(state.x, tuple(blocks))

    ok = verify_permutation_invariance(full.chain, swap_first_two_blocks)
    print(f"block interchange is an automorphism of M: {ok}")


def reduction_table():
    print("\nsymmetry reduction (Table II experiment):")
    print("  system | states M  | states M_R | factor")
    print("  -------+-----------+------------+-------")
    for name, config in [
        ("1x2", MimoSystemConfig(num_rx=2, snr_db=8.0)),
        ("1x4", MimoSystemConfig(num_rx=4, snr_db=12.0)),
    ]:
        reduced = build_detector_model(config, reduced=True)
        full_states = full_state_count(config)
        print(
            f"  {name}    | {full_states:9d} | {reduced.num_states:10d} |"
            f" {full_states / reduced.num_states:6.0f}"
        )


def exact_ber():
    print("\nexact BER by model checking (Table V experiment):")
    results = {}
    for name, config in [
        ("1x2 @  8 dB", MimoSystemConfig(num_rx=2, snr_db=8.0)),
        ("1x4 @ 12 dB", MimoSystemConfig(num_rx=4, snr_db=12.0)),
    ]:
        chain = build_detector_model(config).chain
        ber = check(chain, "S=? [ flag ]").value
        results[name] = (config, ber)
        print(f"  {name}: BER = {ber:.3e}")
    return results


def simulation_comparison(results):
    print("\nsimulation vs model checking (100k-step budget):")
    for name, (config, model_ber) in results.items():
        quantized = simulate_detector_ber(config, num_steps=100_000, seed=11)
        true_channel = simulate_detector_ber_true_channel(
            config, num_steps=100_000, seed=12
        )
        theory = bpsk_diversity_ber(config.snr_db, config.num_rx)
        print(f"  {name}:")
        print(f"    model checking (exact)     : {model_ber:.3e}")
        if quantized.errors == 0:
            bound = rule_of_three_upper_bound(quantized.trials)
            print(
                "    quantized-datapath sim     : 0 errors -> only"
                f" 'BER < {bound:.1e}' can be concluded"
            )
        else:
            print(f"    quantized-datapath sim     : {quantized}")
        print(f"    unquantized ML sim         : {true_channel}")
        print(f"    closed-form MRC reference  : {theory:.3e}")


def main():
    verify_symmetry()
    reduction_table()
    results = exact_ber()
    simulation_comparison(results)


if __name__ == "__main__":
    main()
