"""Modeling your own RTL block with the guarded-command language.

The paper's methodology is not specific to Viterbi decoders: any
digital block whose randomness comes from quantized noise can be
written as a guarded-command module, explored into a DTMC, and
analyzed.  This example builds a triple-redundancy (repetition code)
receiver from scratch:

* each data bit is transmitted three times over BPSK/AWGN;
* the RTL collects the three hard decisions in a shift register and
  majority-votes;
* the per-use flip probability comes from the exact Gaussian integral,
  and the DTMC's BER is checked against the closed-form majority-vote
  formula  p_maj = p^3 + 3 p^2 (1-p).

Run:  python examples/custom_rtl_model.py
"""

from repro.comm import bpsk_awgn_ber
from repro.pctl import check
from repro.prog import Module, Var, explore_module, ite

SNR_DB = 2.0


def build_module(flip_probability: float) -> Module:
    """One vote cycle per clock: collect 3 decisions, then vote."""
    m = Module("tmr_receiver")
    phase = m.int_var("phase", 0, 2, init=0)      # which repetition
    votes = m.int_var("votes", 0, 3, init=0)      # error votes so far
    flag = m.bool_var("flag", init=False)          # majority was wrong

    p = flip_probability
    # Collect phase 0 and 1: accumulate a possibly-flipped decision.
    m.command(
        phase < 2,
        [
            (1 - p, {phase: phase + 1}),
            (p, {phase: phase + 1, votes: votes + 1}),
        ],
        label="collect",
    )
    # Phase 2: last decision arrives, majority decides, registers clear.
    m.command(
        phase == 2,
        [
            (1 - p, {phase: 0, votes: 0, flag: votes >= 2}),
            (p, {phase: 0, votes: 0, flag: votes + 1 >= 2}),
        ],
        label="vote",
    )
    return m


def main() -> None:
    p = bpsk_awgn_ber(SNR_DB)
    print(f"single-use BPSK flip probability at {SNR_DB} dB: p = {p:.4f}")

    module = build_module(p)
    result = explore_module(
        module,
        labels={"flag": Var("flag")},
        rewards={"flag": ite(Var("flag"), 1.0, 0.0)},
    )
    print(f"DTMC: {result.num_states} states,"
          f" {result.chain.num_transitions} transitions")

    # The flag register is written at each vote (every 3rd cycle) and
    # holds its value until the next vote, so its long-run occupancy
    # equals the per-vote error probability directly.
    model_ber = check(result.chain, "S=? [ flag ]").value

    closed_form = p**3 + 3 * p**2 * (1 - p)
    print(f"model-checked majority BER : {model_ber:.6f}")
    print(f"closed-form p^3+3p^2(1-p)  : {closed_form:.6f}")
    print(f"agreement: {abs(model_ber - closed_form) < 1e-12}")

    improvement = bpsk_awgn_ber(SNR_DB) / closed_form
    print(f"triple redundancy improves BER by {improvement:.1f}x at this SNR")


if __name__ == "__main__":
    main()
