"""Case study A: error properties of a Viterbi decoder, end to end.

Reproduces the paper's Section IV-A pipeline on one page:

1. build the full DTMC model ``M`` of the RTL decoder and the reduced
   model ``M_R``;
2. *prove* the reduction sound (strong lumping via the explicit
   abstraction function, plus a bisimilarity check);
3. check the paper's P1/P2/P3 properties on the reduced model;
4. cross-validate the model-checked BER against Monte-Carlo simulation
   of the bit-true decoder;
5. sweep the SNR to produce the BER waterfall the design team would
   actually look at.

Run:  python examples/viterbi_error_analysis.py
"""


from repro.core.reductions import are_bisimilar, quotient_by_function
from repro.pctl import check
from repro.sim import simulate_viterbi_ber
from repro.viterbi import (
    ViterbiModelConfig,
    abstraction_function,
    build_error_count_model,
    build_full_model,
    build_reduced_model,
)


def build_models(config):
    print(f"SNR {config.snr_db} dB, traceback L={config.traceback_length},"
          f" {config.num_levels}-level quantizer")
    full = build_full_model(config)
    reduced = build_reduced_model(config)
    factor = full.num_states / reduced.num_states
    print(f"  M   : {full.num_states} states, {full.chain.num_transitions} transitions")
    print(f"  M_R : {reduced.num_states} states ({factor:.1f}x reduction)")
    return full, reduced


def prove_soundness(full, reduced):
    """The paper's Section IV-A.4 proof, machine-checked."""
    quotient = quotient_by_function(full.chain, abstraction_function)
    verdict = are_bisimilar(quotient.chain, reduced.chain, respect=["flag"])
    print(f"  F_abs quotient is strongly lumpable: True"
          f" ({quotient.num_blocks} classes)")
    print(f"  quotient ~ M_R (probabilistic bisimulation): {verdict.equivalent}")


def check_properties(config, reduced, horizon=300):
    p1 = check(reduced.chain, f"P=? [ G<={horizon} !flag ]").value
    p2 = check(reduced.chain, f"R=? [ I={horizon} ]").value
    errcnt = build_error_count_model(config)
    p3 = check(errcnt.chain, f"P=? [ F<={horizon} errcnt>1 ]").value
    print(f"  P1 (no error in {horizon} steps)      = {p1:.3e}")
    print(f"  P2 (error probability at {horizon})   = {p2:.4f}")
    print(f"  P3 (more than 1 error, {horizon} st.) = {p3:.6f}")
    return p2


def cross_validate(config, model_ber, steps=150_000):
    estimate = simulate_viterbi_ber(config, num_steps=steps, seed=7)
    low, high = estimate.interval
    agrees = low * 0.9 <= model_ber <= high * 1.1
    print(f"  Monte-Carlo ({steps} steps): {estimate}")
    print(f"  model-checked BER {model_ber:.4f} inside the interval: {agrees}")


def snr_sweep():
    print("\nBER waterfall (model-checked, exact):")
    print("  SNR dB | BER")
    print("  -------+----------")
    for snr in (0.0, 2.0, 4.0, 6.0, 8.0, 10.0):
        config = ViterbiModelConfig(snr_db=snr)
        reduced = build_reduced_model(config)
        ber = check(reduced.chain, "S=? [ flag ]").value
        bar = "#" * max(1, int(50 * ber))
        print(f"  {snr:6.1f} | {ber:.3e} {bar}")


def main():
    config = ViterbiModelConfig()  # 5 dB, L=4 (see DESIGN.md for scale)
    full, reduced = build_models(config)
    prove_soundness(full, reduced)
    model_ber = check_properties(config, reduced)
    cross_validate(config, model_ber)
    snr_sweep()


if __name__ == "__main__":
    main()
