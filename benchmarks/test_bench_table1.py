"""Benchmark: regenerate Table I (Viterbi error properties P1/P2/P3).

Runs the full experiment driver at the quick scale and asserts the
paper's shape claims: substantial reduction factor, exact agreement
between M and M_R, and P1 ~ 0 << P2 << P3 ~ 1 at 5 dB.
"""


from repro.experiments import table1
from repro.viterbi import ViterbiModelConfig

QUICK = ViterbiModelConfig(traceback_length=4, num_levels=5)


def run_table1():
    return table1.run(QUICK, horizon=300)


def test_bench_table1(benchmark):
    rows = benchmark.pedantic(run_table1, rounds=1, iterations=1)

    by_name = {row.name: row for row in rows}
    assert set(by_name) == {"P1", "P2", "P3"}

    # Reduction shrinks every model substantially.
    for row in rows:
        assert row.states_reduced < row.states_full
        assert row.states_full / row.states_reduced > 2

    # Soundness: M and M_R agree exactly on every property.
    assert all(row.values_agree for row in rows)

    # Table I value shape at 5 dB.
    assert by_name["P1"].value_reduced < 1e-3
    assert 1e-3 < by_name["P2"].value_reduced < 0.5
    assert by_name["P3"].value_reduced > 0.99
    assert (
        by_name["P1"].value_reduced
        < by_name["P2"].value_reduced
        < by_name["P3"].value_reduced
    )
