#!/usr/bin/env python
"""Benchmark-regression guard: compare fresh ``BENCH_*.json`` runs
against the committed baselines in ``benchmarks/baselines/``.

Usage (from the repository root, after a benchmark run)::

    python benchmarks/compare.py                 # scan ./BENCH_*.json
    python benchmarks/compare.py BENCH_zoo.json  # compare one file
    python benchmarks/compare.py --update        # rewrite the baselines
    python benchmarks/compare.py --threshold 0.4 # custom regression bar

A *regression* is a tracked benchmark whose mean wall-clock exceeds its
baseline mean by more than ``--threshold`` (default 40%); any
regression makes the script exit non-zero, which CI surfaces as a
(non-blocking) red step.  Benchmarks present on only one side are
reported but never fail the run — machines differ and suites grow.

Baselines are stored in a *compact* schema (one mean per benchmark
name, plus provenance), not raw pytest-benchmark output, so committing
them stays cheap::

    {"source": "BENCH_zoo.json", "benchmarks": {"<fullname>": 0.0123}}

``--update`` converts the fresh pytest-benchmark JSON files into this
schema and overwrites the baselines — run it on the reference machine
when a deliberate performance change moves the floor.
"""

from __future__ import annotations

import argparse
import glob
import json
import os
import sys
from typing import Dict, List, Optional, Tuple

#: Default location of the committed baselines, relative to this file.
BASELINE_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)), "baselines")

#: Default allowed slowdown before a benchmark counts as regressed.
DEFAULT_THRESHOLD = 0.40


def load_means(path: str) -> Tuple[str, Dict[str, float]]:
    """Read ``{fullname: mean seconds}`` from either schema.

    Accepts raw pytest-benchmark output (``{"benchmarks": [{...}]}``)
    or the compact baseline schema (``{"benchmarks": {name: mean}}``).
    """
    with open(path) as handle:
        data = json.load(handle)
    benchmarks = data.get("benchmarks", data)
    if isinstance(benchmarks, dict):
        return data.get("source", os.path.basename(path)), {
            str(name): float(mean) for name, mean in benchmarks.items()
        }
    means: Dict[str, float] = {}
    for bench in benchmarks:
        name = bench.get("fullname") or bench["name"]
        means[str(name)] = float(bench["stats"]["mean"])
    return os.path.basename(path), means


def write_baseline(source: str, means: Dict[str, float], path: str) -> None:
    os.makedirs(os.path.dirname(path), exist_ok=True)
    with open(path, "w") as handle:
        json.dump(
            {"source": source, "benchmarks": means},
            handle,
            indent=2,
            sort_keys=True,
        )
        handle.write("\n")


def compare_file(
    current_path: str, baseline_path: str, threshold: float
) -> Tuple[List[str], int]:
    """Compare one fresh run against one baseline.

    Returns the report lines and the number of regressions.
    """
    lines: List[str] = []
    _, current = load_means(current_path)
    if not os.path.exists(baseline_path):
        lines.append(
            f"  no baseline at {baseline_path} — run with --update to create"
        )
        return lines, 0
    _, baseline = load_means(baseline_path)

    regressions = 0
    for name in sorted(current):
        mean = current[name]
        base = baseline.get(name)
        if base is None:
            lines.append(f"  NEW       {name}: {mean:.6f}s (untracked)")
            continue
        ratio = mean / base if base > 0 else float("inf")
        if ratio > 1.0 + threshold:
            regressions += 1
            verdict = "REGRESSED"
        elif ratio < 1.0 / (1.0 + threshold):
            verdict = "improved "
        else:
            verdict = "ok       "
        lines.append(
            f"  {verdict} {name}: {mean:.6f}s vs baseline {base:.6f}s"
            f" ({ratio:.2f}x)"
        )
    for name in sorted(set(baseline) - set(current)):
        lines.append(f"  MISSING   {name} (in baseline, not in this run)")
    return lines, regressions


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "files",
        nargs="*",
        help="fresh pytest-benchmark JSON files (default: ./BENCH_*.json)",
    )
    parser.add_argument(
        "--baselines",
        default=BASELINE_DIR,
        help="baseline directory (default: benchmarks/baselines)",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=DEFAULT_THRESHOLD,
        help="allowed relative slowdown before failing (default: 0.40)",
    )
    parser.add_argument(
        "--update",
        action="store_true",
        help="rewrite the baselines from the given runs instead of comparing",
    )
    args = parser.parse_args(argv)

    files = args.files or sorted(glob.glob("BENCH_*.json"))
    if not files:
        print("no BENCH_*.json files found — run the benchmark suites first")
        return 1

    if args.update:
        for path in files:
            source, means = load_means(path)
            target = os.path.join(args.baselines, os.path.basename(path))
            write_baseline(source, means, target)
            print(f"baseline updated: {target} ({len(means)} benchmarks)")
        return 0

    total_regressions = 0
    for path in files:
        baseline_path = os.path.join(args.baselines, os.path.basename(path))
        print(f"{path}:")
        lines, regressions = compare_file(path, baseline_path, args.threshold)
        print("\n".join(lines))
        total_regressions += regressions
    if total_regressions:
        print(
            f"\n{total_regressions} benchmark(s) regressed more than"
            f" {args.threshold:.0%} vs baseline"
        )
        return 1
    print(f"\nno regressions beyond {args.threshold:.0%}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
