"""Benchmarks of the survey-history layer (ISSUE 9).

Tracks the three history surfaces over a realistically-sized store —
a 100-point grid banked under 5 code versions (500 rows):

* ``ResultStore.compare`` — the two-salt diff the CLI gate runs;
* ``trend_report`` — folding the family's rows into per-guarantee
  trajectories with drift verdicts;
* ``render_dashboard`` — the full HTML page the front-end serves.

All three are read-only scans, so the bar is absolute sanity (the
dashboard of a 500-row store must render in well under a second), with
means reported in ``BENCH_history.json`` for the CI regression guard.
"""

import pytest

from repro.history import render_dashboard, trend_report, trend_reports
from repro.store import ResultStore
from repro.zoo.sweep import _point_store_key

FORMULA = "P=? [ F<=100 goal ]"

#: 100 logical guarantees x 5 code versions = 500 banked rows.
POINTS = [
    {"p_up": round(0.05 + 0.01 * i, 2), "n": n}
    for i in range(25)
    for n in (8, 16, 24, 32)
]
SALTS = [f"bench/v{i}" for i in range(5)]


@pytest.fixture(scope="module")
def store(tmp_path_factory):
    path = tmp_path_factory.mktemp("bench-history") / "history.sqlite"
    for rev, salt in enumerate(SALTS):
        with ResultStore(path, salt=salt) as handle:
            for i, point in enumerate(POINTS):
                scenario = _point_store_key(
                    point, family="birth-death", base_params=None, reduce=True
                )
                # A tenth of the grid drifts a little on every version.
                value = 0.5 + (0.01 * rev if i % 10 == 0 else 0.0)
                handle.put(
                    scenario, FORMULA, value, backend="exact",
                    family="birth-death", seconds=0.001,
                )
    with ResultStore(path, salt=SALTS[-1]) as handle:
        yield handle


def test_compare_two_salts(benchmark, store):
    diff = benchmark(store.compare, SALTS[0], SALTS[-1])
    assert diff.has_drift and len(diff.drifted) == 10
    benchmark.extra_info["rows"] = len(store)


def test_trend_report_full_family(benchmark, store):
    report = benchmark(trend_report, store, "birth-death")
    assert len(report.series) == len(POINTS)
    assert len(report.salts) == len(SALTS)
    assert report.verdict == "drift"


def test_render_dashboard_page(benchmark, store):
    reports = trend_reports(store)
    page = benchmark(render_dashboard, reports)
    assert "birth-death" in page and "<svg" in page
    benchmark.extra_info["page_bytes"] = len(page)
    # Absolute sanity bar: a 500-row dashboard renders fast.
    assert benchmark.stats["mean"] < 1.0
