"""Ablation benchmarks: what each reduction actually buys.

The paper's scalability argument is that property-preserving reductions
make model checking tractable.  These benchmarks time the *same*
property on the unreduced and reduced models so the speedup (and the
unchanged answer) is measured rather than asserted.
"""

import pytest

from repro.mimo import MimoSystemConfig, build_detector_model
from repro.pctl import check
from repro.viterbi import (
    ViterbiModelConfig,
    build_full_model,
    build_reduced_model,
)

VITERBI = ViterbiModelConfig(traceback_length=5)
DETECTOR = MimoSystemConfig(num_rx=2, snr_db=8.0)


def check_p2_on(build):
    result = build()
    return result.num_states, check(result.chain, "R=? [ I=100 ]").value


def test_bench_viterbi_full_model(benchmark):
    states, value = benchmark.pedantic(
        lambda: check_p2_on(lambda: build_full_model(VITERBI)),
        rounds=1,
        iterations=1,
    )
    test_bench_viterbi_full_model.result = (states, value)
    assert states > 0


def test_bench_viterbi_reduced_model(benchmark):
    states, value = benchmark.pedantic(
        lambda: check_p2_on(lambda: build_reduced_model(VITERBI)),
        rounds=1,
        iterations=1,
    )
    # The ablation's point: same P2, far fewer states.
    full_states, full_value = getattr(
        test_bench_viterbi_full_model, "result", (None, None)
    )
    if full_states is not None:
        assert states < full_states
        assert value == pytest.approx(full_value, abs=1e-10)


def test_bench_detector_unreduced(benchmark):
    states, value = benchmark.pedantic(
        lambda: check_p2_on(
            lambda: build_detector_model(DETECTOR, reduced=False)
        ),
        rounds=1,
        iterations=1,
    )
    test_bench_detector_unreduced.result = (states, value)
    assert states > 0


def test_bench_detector_symmetry_reduced(benchmark):
    states, value = benchmark.pedantic(
        lambda: check_p2_on(
            lambda: build_detector_model(DETECTOR, reduced=True)
        ),
        rounds=1,
        iterations=1,
    )
    full_states, full_value = getattr(
        test_bench_detector_unreduced, "result", (None, None)
    )
    if full_states is not None:
        assert states < full_states / 5
        assert value == pytest.approx(full_value, abs=1e-10)


def test_bench_detector_cutoff_ablation(benchmark):
    """PRISM-style 1e-15 pruning: smaller model, unchanged BER."""

    def build_both():
        pruned = build_detector_model(
            MimoSystemConfig(num_rx=4, snr_db=12.0), branch_cutoff=1e-15
        )
        unpruned = build_detector_model(
            MimoSystemConfig(num_rx=4, snr_db=12.0)
        )
        return pruned, unpruned

    pruned, unpruned = benchmark.pedantic(build_both, rounds=1, iterations=1)
    assert pruned.num_states <= unpruned.num_states
    ber_pruned = check(pruned.chain, "S=? [ flag ]").value
    ber_unpruned = check(unpruned.chain, "S=? [ flag ]").value
    assert ber_pruned == pytest.approx(ber_unpruned, abs=1e-8)
