"""Benchmarks of the scenario-zoo registry build + sweep path.

Tracks the cost of the layer every scaling PR now plugs into:

* cold registry builds through the shared reduction pipeline (the
  paper families and the lumping-fallback synthetic family);
* an exact sweep of a parameter grid through the cached engine;
* the same grid through the batched APMC backend;
* the zoo-wide survey (build + check every family at defaults).

CI runs this file into ``BENCH_zoo.json`` and feeds it (with the other
``BENCH_*`` files) to ``benchmarks/compare.py``, the regression guard.
"""

from repro import zoo
from repro.engine import SmcConfig


def test_bench_build_viterbi_reduced(benchmark):
    """Cold build of the Viterbi family (c/w abstraction quotient)."""
    scenario = benchmark(lambda: zoo.build("viterbi-memory-m"))
    assert scenario.reduction == "abstraction"


def test_bench_build_mimo_symmetry(benchmark):
    """Cold build of the 1xN detector (on-the-fly symmetry quotient)."""
    scenario = benchmark(lambda: zoo.build("mimo-1xN"))
    assert scenario.reduction == "symmetry"


def test_bench_build_random_sparse_lumping(benchmark):
    """Lumping-fallback path: build full chain + coarsest lumping."""
    scenario = benchmark(
        lambda: zoo.build("random-sparse", {"n": 256, "num_blocks": 16})
    )
    assert scenario.reduction == "lumping"
    assert scenario.reduced_states == 16


def test_bench_sweep_exact(benchmark):
    """Exact sweep: 6-point MIMO grid through the cached solver engine."""
    results = benchmark(
        lambda: zoo.sweep(
            "mimo-1xN",
            {"snr_db": [4.0, 6.0, 8.0], "num_y_levels": [2, 3]},
            "P=? [ F<=10 flag ]",
            executor="serial",
        )
    )
    assert len(results) == 6
    assert all(r.ok for r in results)


def test_bench_sweep_apmc(benchmark):
    """Statistical sweep: same grid through the batched APMC backend."""
    smc = SmcConfig(epsilon=0.02, delta=0.05, seed=0)
    results = benchmark(
        lambda: zoo.sweep(
            "mimo-1xN",
            {"snr_db": [4.0, 6.0, 8.0], "num_y_levels": [2, 3]},
            "P=? [ F<=10 flag ]",
            backend="apmc",
            smc=smc,
            executor="serial",
        )
    )
    assert len(results) == 6
    assert all(r.ok for r in results)


def test_bench_survey(benchmark):
    """Zoo-wide health pass: every family built and checked at defaults."""
    results = benchmark(lambda: zoo.survey(executor="serial"))
    assert all(r.ok for r in results.values())
