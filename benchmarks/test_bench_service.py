"""Benchmarks of the networked guarantee service (ISSUE 8 + 10).

Three bars, reported in ``BENCH_service.json`` for the CI regression
guard:

* a **warm** ``GET /guarantee`` hit must be answered straight from the
  store — asserted by checking no coordinator job is created — and its
  end-to-end HTTP latency is the tracked number;
* a 2-worker **remote** sweep must produce results bit-identical to
  the serial path (values, samples, ordering); the serial and remote
  wall-clocks land in ``extra_info`` so the throughput trend is
  tracked across CI runs without asserting on machine speed;
* the durable **job journal** (ISSUE 10) must stay cheap: a 100-point
  remote sweep on a journalled coordinator may cost at most 10% more
  wall-clock than the identical sweep on a journal-less one (plus a
  small absolute epsilon to absorb scheduler jitter on tiny totals).

The fleet behind the first two bars is real: two ``python -m repro.zoo
worker`` subprocesses pulling shard leases over TCP, exactly what
``repro-zoo serve --workers 2`` starts.  The journal bar uses
in-process worker threads so the A/B comparison isolates the sqlite
writes instead of process scheduling noise.
"""

import json
import os
import subprocess
import sys
import threading
import time
import urllib.error
import urllib.request
from contextlib import contextmanager
from dataclasses import asdict

import pytest

import repro
from repro import zoo
from repro.engine import SmcConfig
from repro.service import (
    CoordinatorServer,
    Frontend,
    FrontendServer,
    Worker,
    remote_sweep,
)
from repro.service.client import service_stats
from repro.store import ResultStore

FORMULA = "P=? [ F<=100 goal ]"

#: The remote-throughput grid: 30 statistical birth-death points.
POINTS = [
    {"p_up": round(0.05 + 0.02 * i, 2), "n": n}
    for i in range(10)
    for n in (8, 16, 24)
]

SMC = SmcConfig(epsilon=0.1, delta=0.2, seed=0)

#: Wall-clock of each flavour, recorded for ``extra_info`` reporting.
_SECONDS = {}


def _timed(label, fn):
    def run():
        start = time.perf_counter()
        result = fn()
        _SECONDS[label] = min(
            _SECONDS.get(label, float("inf")), time.perf_counter() - start
        )
        return result

    return run


def _get(url):
    try:
        with urllib.request.urlopen(url, timeout=30) as resp:
            return resp.status, json.load(resp)
    except urllib.error.HTTPError as exc:
        return exc.code, json.load(exc)


@pytest.fixture(scope="module")
def service(tmp_path_factory):
    """Coordinator + HTTP front-end + 2 real worker subprocesses."""
    store = ResultStore(
        tmp_path_factory.mktemp("bench-service") / "bench.sqlite"
    )
    server = CoordinatorServer(port=0, heartbeat=0.2).start()
    env = dict(os.environ)
    src_root = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
    env["PYTHONPATH"] = src_root + os.pathsep + env.get("PYTHONPATH", "")
    workers = [
        subprocess.Popen(
            [sys.executable, "-m", "repro.zoo", "worker",
             "--connect", server.address, "--name", f"bench-{i}"],
            env=env,
        )
        for i in range(2)
    ]
    deadline = time.time() + 60.0
    while time.time() < deadline:
        if service_stats(server.address)["workers_alive"] >= 2:
            break
        time.sleep(0.1)
    assert service_stats(server.address)["workers_alive"] == 2
    front = FrontendServer(
        Frontend(server.coordinator, store=store), port=0
    ).start_background()
    try:
        yield server, front, store
    finally:
        for proc in workers:
            proc.terminate()
        for proc in workers:
            try:
                proc.wait(timeout=10)
            except Exception:  # noqa: BLE001 - last resort, no orphans
                proc.kill()
        front.stop()
        server.stop()
        store.close()


def test_bench_service_warm_guarantee_hit(benchmark, service):
    """Warm ``/guarantee`` HTTP latency: store hit, engine untouched."""
    server, front, store = service
    query = f"http://{front.address}/guarantee?family=birth-death&n=12"

    status, body = _get(query)  # cold: enqueued on the fleet
    if status == 202:
        deadline = time.time() + 60.0
        while time.time() < deadline:
            _, job = _get(f"http://{front.address}{body['poll']}")
            if job["done"]:
                break
            time.sleep(0.05)
        while time.time() < deadline and len(store) == 0:
            time.sleep(0.05)  # banking runs on the job-done callback

    jobs_before = len(server.coordinator.jobs)
    status, warm = benchmark(_timed("warm_hit", lambda: _get(query)))
    assert status == 200 and warm["cached"], warm
    # The serving bar: warm hits never touch the engine — no new jobs.
    assert len(server.coordinator.jobs) == jobs_before
    benchmark.extra_info["warm_hit_seconds"] = _SECONDS["warm_hit"]


def test_bench_service_remote_sweep_vs_serial(benchmark, service):
    """2-worker remote throughput; the merge contract is the assert.

    Remote results must be bit-identical (points, estimates, samples,
    order) to the serial path.  Serial/remote wall-clocks land in
    ``extra_info`` so the trend is tracked without asserting on core
    counts or network jitter.
    """
    server, front, store = service
    kwargs = dict(
        points=POINTS, formula=FORMULA, backend="apmc", smc=SMC
    )

    serial = _timed(
        "serial", lambda: zoo.sweep("birth-death", executor="serial", **kwargs)
    )()
    remote = benchmark.pedantic(
        _timed(
            "remote",
            lambda: zoo.sweep(
                "birth-death", executor="remote",
                remote=server.address, **kwargs,
            ),
        ),
        rounds=1,
        iterations=1,
    )
    benchmark.extra_info["serial_seconds"] = _SECONDS["serial"]
    benchmark.extra_info["remote_seconds"] = _SECONDS["remote"]
    benchmark.extra_info["points"] = len(POINTS)
    benchmark.extra_info["workers"] = 2
    assert all(r.ok for r in remote)
    assert [r.point for r in remote] == [r.point for r in serial]
    assert [asdict(r.value) for r in remote] == [
        asdict(r.value) for r in serial
    ]


# ----------------------------------------------------------------------
# Journal overhead (ISSUE 10)
# ----------------------------------------------------------------------

def _bench_point(x):
    """A small deterministic unit of work (~1ms)."""
    total = 0
    for i in range(20_000):
        total += (x * i) % 97
    return total


class _ThreadWorker(Worker):
    def _die(self):  # coordinator-ordered death must not kill pytest
        self.stop()


@contextmanager
def _thread_fleet(journal=None):
    """A coordinator plus two in-process worker threads."""
    server = CoordinatorServer(port=0, heartbeat=0.5, journal=journal).start()
    workers = [
        _ThreadWorker(server.address, poll=0.01, name=f"jbench-{i}")
        for i in range(2)
    ]
    threads = [threading.Thread(target=w.run, daemon=True) for w in workers]
    for thread in threads:
        thread.start()
    deadline = time.time() + 30.0
    while time.time() < deadline:
        if server.coordinator.stats()["workers_alive"] >= 2:
            break
        time.sleep(0.01)
    try:
        yield server
    finally:
        for worker in workers:
            worker.stop()
        server.stop()
        for thread in threads:
            thread.join(timeout=5.0)


def test_bench_service_journal_overhead(benchmark, tmp_path):
    """A journalled 100-point remote sweep costs <10% over journal-less.

    Both flavours run on an identical in-process 2-worker fleet with
    ``shard_size=5`` (20 lease grants, 20 merged result batches — the
    exact traffic the journal persists).  Best-of-2 on each side to
    shave scheduler noise; the bound gets a small absolute epsilon
    because the totals are fractions of a second.
    """
    points = list(range(100))
    expected = [_bench_point(x) for x in points]

    def run(server):
        results = remote_sweep(
            _bench_point, points, connect=server.address, shard_size=5
        )
        assert [r.value for r in results] == expected
        return results

    with _thread_fleet() as plain:
        run(plain)  # warm-up: imports, first connections
        plain_best = float("inf")
        for _ in range(2):
            start = time.perf_counter()
            run(plain)
            plain_best = min(plain_best, time.perf_counter() - start)

    with _thread_fleet(journal=tmp_path / "bench-journal.sqlite") as journalled:
        run(journalled)  # warm-up on the journalled fleet too
        benchmark.pedantic(
            _timed("journalled", lambda: run(journalled)),
            rounds=2,
            iterations=1,
        )
        assert journalled.coordinator.stats()["journal"]["results"] > 0
    journalled_best = _SECONDS["journalled"]

    benchmark.extra_info["plain_seconds"] = plain_best
    benchmark.extra_info["journalled_seconds"] = journalled_best
    benchmark.extra_info["overhead_ratio"] = journalled_best / plain_best
    benchmark.extra_info["points"] = len(points)
    assert journalled_best <= plain_best * 1.10 + 0.25, (
        f"journal overhead too high: {journalled_best:.3f}s journalled "
        f"vs {plain_best:.3f}s plain"
    )
