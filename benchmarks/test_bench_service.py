"""Benchmarks of the networked guarantee service (ISSUE 8 acceptance).

Two bars, reported in ``BENCH_service.json`` for the CI regression
guard:

* a **warm** ``GET /guarantee`` hit must be answered straight from the
  store — asserted by checking no coordinator job is created — and its
  end-to-end HTTP latency is the tracked number;
* a 2-worker **remote** sweep must produce results bit-identical to
  the serial path (values, samples, ordering); the serial and remote
  wall-clocks land in ``extra_info`` so the throughput trend is
  tracked across CI runs without asserting on machine speed.

The fleet is real: two ``python -m repro.zoo worker`` subprocesses
pulling shard leases over TCP, exactly what ``repro-zoo serve
--workers 2`` starts.
"""

import json
import os
import subprocess
import sys
import time
import urllib.error
import urllib.request
from dataclasses import asdict

import pytest

import repro
from repro import zoo
from repro.engine import SmcConfig
from repro.service import CoordinatorServer, Frontend, FrontendServer
from repro.service.client import service_stats
from repro.store import ResultStore

FORMULA = "P=? [ F<=100 goal ]"

#: The remote-throughput grid: 30 statistical birth-death points.
POINTS = [
    {"p_up": round(0.05 + 0.02 * i, 2), "n": n}
    for i in range(10)
    for n in (8, 16, 24)
]

SMC = SmcConfig(epsilon=0.1, delta=0.2, seed=0)

#: Wall-clock of each flavour, recorded for ``extra_info`` reporting.
_SECONDS = {}


def _timed(label, fn):
    def run():
        start = time.perf_counter()
        result = fn()
        _SECONDS[label] = min(
            _SECONDS.get(label, float("inf")), time.perf_counter() - start
        )
        return result

    return run


def _get(url):
    try:
        with urllib.request.urlopen(url, timeout=30) as resp:
            return resp.status, json.load(resp)
    except urllib.error.HTTPError as exc:
        return exc.code, json.load(exc)


@pytest.fixture(scope="module")
def service(tmp_path_factory):
    """Coordinator + HTTP front-end + 2 real worker subprocesses."""
    store = ResultStore(
        tmp_path_factory.mktemp("bench-service") / "bench.sqlite"
    )
    server = CoordinatorServer(port=0, heartbeat=0.2).start()
    env = dict(os.environ)
    src_root = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
    env["PYTHONPATH"] = src_root + os.pathsep + env.get("PYTHONPATH", "")
    workers = [
        subprocess.Popen(
            [sys.executable, "-m", "repro.zoo", "worker",
             "--connect", server.address, "--name", f"bench-{i}"],
            env=env,
        )
        for i in range(2)
    ]
    deadline = time.time() + 60.0
    while time.time() < deadline:
        if service_stats(server.address)["workers_alive"] >= 2:
            break
        time.sleep(0.1)
    assert service_stats(server.address)["workers_alive"] == 2
    front = FrontendServer(
        Frontend(server.coordinator, store=store), port=0
    ).start_background()
    try:
        yield server, front, store
    finally:
        for proc in workers:
            proc.terminate()
        for proc in workers:
            try:
                proc.wait(timeout=10)
            except Exception:  # noqa: BLE001 - last resort, no orphans
                proc.kill()
        front.stop()
        server.stop()
        store.close()


def test_bench_service_warm_guarantee_hit(benchmark, service):
    """Warm ``/guarantee`` HTTP latency: store hit, engine untouched."""
    server, front, store = service
    query = f"http://{front.address}/guarantee?family=birth-death&n=12"

    status, body = _get(query)  # cold: enqueued on the fleet
    if status == 202:
        deadline = time.time() + 60.0
        while time.time() < deadline:
            _, job = _get(f"http://{front.address}{body['poll']}")
            if job["done"]:
                break
            time.sleep(0.05)
        while time.time() < deadline and len(store) == 0:
            time.sleep(0.05)  # banking runs on the job-done callback

    jobs_before = len(server.coordinator.jobs)
    status, warm = benchmark(_timed("warm_hit", lambda: _get(query)))
    assert status == 200 and warm["cached"], warm
    # The serving bar: warm hits never touch the engine — no new jobs.
    assert len(server.coordinator.jobs) == jobs_before
    benchmark.extra_info["warm_hit_seconds"] = _SECONDS["warm_hit"]


def test_bench_service_remote_sweep_vs_serial(benchmark, service):
    """2-worker remote throughput; the merge contract is the assert.

    Remote results must be bit-identical (points, estimates, samples,
    order) to the serial path.  Serial/remote wall-clocks land in
    ``extra_info`` so the trend is tracked without asserting on core
    counts or network jitter.
    """
    server, front, store = service
    kwargs = dict(
        points=POINTS, formula=FORMULA, backend="apmc", smc=SMC
    )

    serial = _timed(
        "serial", lambda: zoo.sweep("birth-death", executor="serial", **kwargs)
    )()
    remote = benchmark.pedantic(
        _timed(
            "remote",
            lambda: zoo.sweep(
                "birth-death", executor="remote",
                remote=server.address, **kwargs,
            ),
        ),
        rounds=1,
        iterations=1,
    )
    benchmark.extra_info["serial_seconds"] = _SECONDS["serial"]
    benchmark.extra_info["remote_seconds"] = _SECONDS["remote"]
    benchmark.extra_info["points"] = len(POINTS)
    benchmark.extra_info["workers"] = 2
    assert all(r.ok for r in remote)
    assert [r.point for r in remote] == [r.point for r in serial]
    assert [asdict(r.value) for r in remote] == [
        asdict(r.value) for r in serial
    ]
