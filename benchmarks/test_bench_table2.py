"""Benchmark: regenerate Table II (symmetry reduction of the detector).

Asserts the paper's scaling shape: the 1x4 reduction factor is an
order of magnitude (or more) beyond the 1x2 factor, and the counted
full-model sizes match the built models where those exist.
"""


from repro.experiments import table2
from repro.mimo import MimoSystemConfig, full_state_count, reduced_state_count


def run_table2():
    return table2.run()


def test_bench_table2(benchmark):
    rows = benchmark.pedantic(run_table2, rounds=1, iterations=1)
    by_name = {row.system: row for row in rows}
    assert set(by_name) == {"1x2", "1x4"}

    assert by_name["1x2"].full_was_built  # verified against the quotient
    assert by_name["1x2"].reduction_factor > 5
    assert by_name["1x4"].reduction_factor > 10 * by_name["1x2"].reduction_factor


def test_bench_table2_counts_are_exact(benchmark):
    """The analytic counts equal the built state spaces (no cutoff)."""

    def build_and_count():
        from repro.mimo import build_detector_model

        config = MimoSystemConfig(num_rx=2, snr_db=8.0)
        full = build_detector_model(config, reduced=False)
        reduced = build_detector_model(config, reduced=True)
        return config, full.num_states, reduced.num_states

    config, full_states, reduced_states = benchmark.pedantic(
        build_and_count, rounds=1, iterations=1
    )
    assert full_states == full_state_count(config)
    assert reduced_states == reduced_state_count(config)
