"""Benchmark: regenerate Table V (detector BER vs T + simulation duel).

Asserts the paper's two claims: (a) BER figures are flat in T (the
detector chain reaches steady state immediately, paper RI=3) with the
1x4 BER orders below the 1x2 BER; (b) a short Monte-Carlo run sees zero
errors on the high-diversity system while model checking resolves its
BER, and a long run on the low-diversity system agrees with the model.
"""

import pytest

from repro.experiments import table5
from repro.sim import rule_of_three_upper_bound


def run_table5():
    return table5.run(
        horizons=(5, 10, 20),
        short_sim_steps=100_000,
        long_sim_steps=1_000_000,
        with_simulation=True,
    )


def test_bench_table5(benchmark):
    result = benchmark.pedantic(run_table5, rounds=1, iterations=1)
    by_name = {row.system: row for row in result.rows}

    # Flat in T.
    for row in result.rows:
        assert row.values[0] == pytest.approx(row.values[-1], rel=1e-9)

    # Diversity gap: 1x4 BER orders below 1x2.
    assert by_name["1x4"].values[-1] < by_name["1x2"].values[-1] / 100

    # (b1) Short simulation resolves nothing at high diversity...
    assert result.short_sim.errors == 0
    assert result.model_ber_high_diversity < rule_of_three_upper_bound(
        result.short_sim.trials
    )
    # ...while model checking still pins the BER to a positive value.
    assert result.model_ber_high_diversity > 0

    # (b2) Long simulation agrees with the model on the 1x2 system.
    model_1x2 = by_name["1x2"].values[-1]
    low, high = result.long_sim.interval
    assert low * 0.5 <= model_1x2 <= high * 1.5
