"""Benchmarks of the vectorized reduction engine.

Tracks the claims of the sparse-algebra rewrite of
``repro.core.reductions`` on seeded ``random-sparse`` zoo chains
(strongly lumpable by construction, so block counts are known):

* ``coarsest_lumping`` at 10^4 states, both refinement strategies, vs
  the retained pure-Python per-state reference — the acceptance bar is
  >= 20x (measured well above), asserted at the end of the module with
  the measured ratio recorded in ``extra_info``;
* ``quotient_by_partition(verify=True)`` at 10^4 states (aggregation +
  strong-lumpability + constancy checks, all vectorized);
* the headline scale: a 10^5-state scenario through the full zoo
  lumping fallback (build + refine + verified quotient), asserted to
  finish in single-digit seconds.

Both strategies are asserted to produce *identical* partitions, and the
vectorized partitions identical to the pure-Python reference — the
benchmarks double as a correctness contract, like the SMC suite.

CI runs this file separately into ``BENCH_reduce.json`` and feeds it to
``benchmarks/compare.py`` against ``benchmarks/baselines/``.
"""

import time

import numpy as np
import pytest

from repro import zoo
from repro.core.reductions import coarsest_lumping, quotient_by_partition
from repro.core.reductions.lumping import _coarsest_lumping_reference

#: 10^4-state baseline workload: 500 structural blocks of 20 states,
#: out-degree 3 blocks per block (~6 * 10^5 transitions).
BASELINE_PARAMS = {"n": 10_000, "num_blocks": 500, "degree": 3, "seed": 7}
BASELINE_BLOCKS = 500

#: Headline-scale workload: 10^5 states, 5000 blocks (~6 * 10^6
#: transitions), reduced through the zoo's lumping fallback.
SCALE_PARAMS = {"n": 100_000, "num_blocks": 5000, "degree": 3, "seed": 7}
SCALE_BLOCKS = 5000

#: Wall-clock of each lumping flavour, recorded by the benchmarks below
#: and asserted against the >= 20x bar at the end of the module.
_SECONDS = {}


@pytest.fixture(scope="module")
def chain_1e4():
    return zoo.build("random-sparse", BASELINE_PARAMS, reduce=False).chain


def _timed(label, fn):
    def run():
        start = time.perf_counter()
        result = fn()
        _SECONDS[label] = min(
            _SECONDS.get(label, float("inf")), time.perf_counter() - start
        )
        return result

    return run


# ----------------------------------------------------------------------
# Coarsest lumping at 10^4 states: python baseline vs both strategies.
# ----------------------------------------------------------------------

def test_bench_lump_python_baseline_1e4(benchmark, chain_1e4):
    """Pure-Python per-state refinement (the pre-vectorization code)."""
    block_of = benchmark.pedantic(
        _timed(
            "python",
            lambda: _coarsest_lumping_reference(chain_1e4, respect=["goal"]),
        ),
        rounds=1,
        iterations=1,
    )
    assert int(block_of.max()) + 1 == BASELINE_BLOCKS


def test_bench_lump_rounds_1e4(benchmark, chain_1e4):
    """Vectorized global-fixpoint refinement (strategy="rounds")."""
    block_of = benchmark(
        _timed(
            "rounds",
            lambda: coarsest_lumping(
                chain_1e4, respect=["goal"], strategy="rounds"
            ),
        )
    )
    assert int(block_of.max()) + 1 == BASELINE_BLOCKS


def test_bench_lump_splitters_1e4(benchmark, chain_1e4):
    """Vectorized splitter-queue refinement (strategy="splitters")."""
    block_of = benchmark(
        _timed(
            "splitters",
            lambda: coarsest_lumping(
                chain_1e4, respect=["goal"], strategy="splitters"
            ),
        )
    )
    assert int(block_of.max()) + 1 == BASELINE_BLOCKS
    # Contract riding with the benchmark: both strategies produce the
    # identical canonical partition.
    assert np.array_equal(
        block_of,
        coarsest_lumping(chain_1e4, respect=["goal"], strategy="rounds"),
    )


def test_bench_quotient_verify_1e4(benchmark, chain_1e4):
    """Verified quotient: aggregation + lumpability + constancy checks."""
    block_of = coarsest_lumping(chain_1e4, respect=["goal"])
    result = benchmark(
        lambda: quotient_by_partition(
            chain_1e4, block_of, atol=1e-9, respect=["goal"], verify=True
        )
    )
    assert result.num_blocks == BASELINE_BLOCKS


def test_lump_speedup_at_least_20x(benchmark, chain_1e4):
    """The acceptance bar: vectorized >= 20x pure Python at 10^4 states.

    Reported as a benchmark of the vectorized run with the measured
    ratios in ``extra_info`` so BENCH_reduce.json carries the speedup
    explicitly; the partitions must also be identical.
    """
    python_seconds = _SECONDS.get("python")
    reference = None
    if python_seconds is None:  # file run standalone / filtered
        start = time.perf_counter()
        reference = _coarsest_lumping_reference(chain_1e4, respect=["goal"])
        python_seconds = time.perf_counter() - start
    vectorized = benchmark(
        _timed(
            "splitters",
            lambda: coarsest_lumping(
                chain_1e4, respect=["goal"], strategy="splitters"
            ),
        )
    )
    if reference is None:
        reference = _coarsest_lumping_reference(chain_1e4, respect=["goal"])
    assert np.array_equal(vectorized, reference)
    speedup = python_seconds / _SECONDS["splitters"]
    benchmark.extra_info["python_seconds"] = python_seconds
    benchmark.extra_info["splitters_seconds"] = _SECONDS["splitters"]
    benchmark.extra_info["rounds_seconds"] = _SECONDS.get("rounds")
    benchmark.extra_info["speedup_vs_python"] = speedup
    assert speedup >= 20.0, f"vectorized only {speedup:.1f}x faster"


# ----------------------------------------------------------------------
# Headline scale: 10^5 states through the zoo lumping fallback.
# ----------------------------------------------------------------------

def test_bench_zoo_lumping_fallback_1e5(benchmark):
    """Build + refine + verified quotient of a 10^5-state scenario.

    The full pipeline path the zoo CLI smoke exercises:
    ``lump`` (coarsest refinement + ``quotient_by_partition`` with its
    strong-lumpability verification) inside ``zoo.build``.  Must finish
    in single-digit seconds.
    """
    start = time.perf_counter()
    scenario = benchmark.pedantic(
        lambda: zoo.build("random-sparse", SCALE_PARAMS),
        rounds=1,
        iterations=1,
    )
    elapsed = time.perf_counter() - start
    assert scenario.reduction == "lumping"
    assert scenario.full_states == SCALE_PARAMS["n"]
    assert scenario.reduced_states == SCALE_BLOCKS
    assert scenario.extra["refine_final_blocks"] == SCALE_BLOCKS
    benchmark.extra_info["build_seconds"] = scenario.build_seconds
    benchmark.extra_info["reduce_seconds"] = scenario.reduce_seconds
    benchmark.extra_info["refine_rounds"] = scenario.extra["refine_rounds"]
    benchmark.extra_info["refine_splitters"] = scenario.extra["refine_splitters"]
    assert elapsed < 10.0, f"10^5-state lumping fallback took {elapsed:.1f}s"
