"""Benchmarks of the guarantee service layer (ISSUE 6 acceptance).

Two acceptance bars, both asserted here and reported in
``BENCH_store.json`` for the CI regression guard:

* a warm-store repeat of a 100-point ``zoo.sweep`` must be >= 20x
  faster than the cold run (the "repeated queries are cache hits"
  pitch of the serving layer);
* the sharded ``executor="process"`` path must produce results
  bit-identical to the thread/serial path on a statistical backend
  (values, samples, ordering) — scaling is recorded in ``extra_info``
  but never asserted, since CI cores vary.
"""

import time
from dataclasses import asdict

import pytest

from repro import zoo
from repro.engine import SmcConfig
from repro.store import ResultStore

FORMULA = "P=? [ F<=100 goal ]"

#: The 100-point acceptance grid (>= 100 points required by ISSUE 6).
POINTS = [
    {"p_up": round(0.05 + 0.01 * i, 2), "n": n}
    for i in range(25)
    for n in (8, 16, 24, 32)
]

#: Wall-clock of each flavour, recorded by the benchmarks below and
#: asserted against the >= 20x warm-hit bar at the end of the module.
_SECONDS = {}


def _timed(label, fn):
    def run():
        start = time.perf_counter()
        result = fn()
        _SECONDS[label] = min(
            _SECONDS.get(label, float("inf")), time.perf_counter() - start
        )
        return result

    return run


@pytest.fixture(scope="module")
def store(tmp_path_factory):
    with ResultStore(
        tmp_path_factory.mktemp("bench-store") / "bench.sqlite"
    ) as handle:
        yield handle


def _sweep(store_handle):
    return zoo.sweep(
        "birth-death", points=POINTS, formula=FORMULA,
        store=store_handle, executor="serial",
    )


def test_bench_store_cold_sweep(benchmark, store):
    """Cold pass: 100 birth-death points solved and banked."""

    def cold():
        store.invalidate()  # every round starts from an empty store
        return _sweep(store)

    results = benchmark.pedantic(_timed("cold", cold), rounds=1, iterations=1)
    assert len(results) == len(POINTS)
    assert all(r.ok and not r.cached for r in results)
    assert len(store) == len(POINTS)


def test_bench_store_warm_sweep(benchmark, store):
    """Warm pass: the same 100 points served purely from the store."""
    if len(store) != len(POINTS):  # standalone / filtered run
        _sweep(store)
    results = benchmark(_timed("warm", lambda: _sweep(store)))
    assert all(r.ok and r.cached for r in results)


def test_store_warm_hit_speedup_at_least_20x(benchmark, store):
    """The acceptance bar: warm >= 20x cold, identical values."""
    if "cold" not in _SECONDS:
        store.invalidate()
        _timed("cold", lambda: _sweep(store))()
    cold_values = [r.value for r in _sweep(store)]
    warm_results = benchmark(_timed("warm", lambda: _sweep(store)))
    speedup = _SECONDS["cold"] / _SECONDS["warm"]
    benchmark.extra_info["cold_seconds"] = _SECONDS["cold"]
    benchmark.extra_info["warm_seconds"] = _SECONDS["warm"]
    benchmark.extra_info["points"] = len(POINTS)
    benchmark.extra_info["warm_speedup"] = speedup
    assert [r.value for r in warm_results] == cold_values
    assert all(r.cached for r in warm_results)
    assert speedup >= 20.0, f"warm store only {speedup:.1f}x faster"


def test_bench_sweep_process_sharded_vs_thread(benchmark):
    """Sharded process fan-out of a 100-point statistical sweep.

    The merge contract is the assertion: process results must be
    bit-identical (points, estimates, samples, order) to the thread
    path.  Thread/process wall-clocks land in ``extra_info`` so the
    scaling trend is tracked across CI runs without asserting on core
    counts.
    """
    smc = SmcConfig(epsilon=0.1, delta=0.2, seed=0)
    kwargs = dict(
        points=POINTS, formula=FORMULA, backend="apmc", smc=smc
    )

    threaded = _timed(
        "thread", lambda: zoo.sweep("birth-death", executor="thread", **kwargs)
    )()
    process = benchmark.pedantic(
        _timed(
            "process",
            lambda: zoo.sweep("birth-death", executor="process", **kwargs),
        ),
        rounds=1,
        iterations=1,
    )
    benchmark.extra_info["thread_seconds"] = _SECONDS["thread"]
    benchmark.extra_info["process_seconds"] = _SECONDS["process"]
    benchmark.extra_info["points"] = len(POINTS)
    assert [r.point for r in process] == [r.point for r in threaded]
    assert [asdict(r.value) for r in process] == [
        asdict(r.value) for r in threaded
    ]
