"""Benchmark: regenerate Table III (P2 vs T for the Viterbi decoder).

Asserts the convergence shape: values stabilize for T >> RI and the
limit equals the steady-state BER.
"""

import pytest

from repro.experiments import table3
from repro.viterbi import ViterbiModelConfig


def run_table3():
    return table3.run(ViterbiModelConfig(), horizons=(100, 300, 600, 1000))


def test_bench_table3(benchmark):
    result = benchmark.pedantic(run_table3, rounds=1, iterations=1)

    assert result.is_converged
    # The stable value is the steady-state BER (paper: "once steady
    # state is attained, we consider P2 as the BER of the system").
    assert result.values[-1] == pytest.approx(result.steady_state, rel=1e-6)
    # Values never move by more than round-off after the fixpoint: RI
    # is tiny compared with every horizon checked.
    assert result.reachability_iterations < min(result.horizons)
    # Monotone approach to the limit (from below or above).
    diffs = [
        abs(v - result.steady_state) for v in result.values
    ]
    assert diffs[0] >= diffs[-1] - 1e-15
