"""Micro-benchmarks of the verification engine itself.

Not a paper table: these measure the substrate operations the
experiment drivers are built from (state-space exploration, transient
solve, steady state, lumping, symbolic cross-check), so regressions in
the engine show up independently of the case studies.
"""

import numpy as np
import pytest

from repro.core.reductions import lump
from repro.dtmc import (
    distribution_at,
    stationary_distribution,
)
from repro.engine import Engine
from repro.pctl import ModelChecker, check
from repro.symbolic import SymbolicEngine
from repro.viterbi import ViterbiModelConfig, build_reduced_model


@pytest.fixture(scope="module")
def viterbi_chain():
    chain = build_reduced_model(ViterbiModelConfig()).chain
    # A non-trivial `zone` subset so until properties need a real solve.
    chain.add_label("zone", np.nonzero(np.arange(chain.num_states) % 3 != 0)[0])
    return chain


def test_bench_state_space_exploration(benchmark):
    config = ViterbiModelConfig(traceback_length=5)
    result = benchmark(lambda: build_reduced_model(config))
    assert result.num_states > 500


def test_bench_transient_distribution(benchmark, viterbi_chain):
    pi = benchmark(lambda: distribution_at(viterbi_chain, 300))
    assert pi.sum() == pytest.approx(1.0)


def test_bench_bounded_property(benchmark, viterbi_chain):
    value = benchmark(
        lambda: check(viterbi_chain, "P=? [ G<=300 !flag ]").value
    )
    assert 0 <= value <= 1


def test_bench_steady_state(benchmark, viterbi_chain):
    pi = benchmark(lambda: stationary_distribution(viterbi_chain))
    assert pi.sum() == pytest.approx(1.0)


def test_bench_lumping(benchmark, viterbi_chain):
    result = benchmark.pedantic(
        lambda: lump(viterbi_chain, respect=["flag"]), rounds=1, iterations=1
    )
    assert result.num_blocks <= viterbi_chain.num_states


# ----------------------------------------------------------------------
# Solver-engine layer: batched checking and factorization reuse.
#
# The property set deliberately overlaps in target sets: F flag appears
# as both a probability and a reward query (shared Prob0/Prob1 and
# factorizations), and the two long-run queries share the BSCC +
# stationary structure.  Batched checking pays for each once; the
# seed-shaped sequential path pays per property.
# ----------------------------------------------------------------------

ENGINE_PROPERTIES = [
    "P=? [ G<=100 !flag ]",   # P1-shaped, transient
    "R=? [ I=100 ]",          # P2-shaped, transient
    "P=? [ F flag ]",         # reachability
    "R=? [ F flag ]",         # reachability reward (same target set)
    "S=? [ flag ]",           # long-run probability
    "R=? [ S ]",              # long-run reward (same structure)
    "P=? [ zone U flag ]",    # constrained until, second subsystem
]


def test_bench_check_many_batched(benchmark, viterbi_chain):
    """All properties through one checker: caches shared in the batch."""

    def batched():
        checker = ModelChecker(viterbi_chain)
        return [r.value for r in checker.check_many(ENGINE_PROPERTIES)]

    values = benchmark(batched)
    assert len(values) == len(ENGINE_PROPERTIES)


def test_bench_check_sequential_seed_path(benchmark, viterbi_chain):
    """The seed's pattern: a fresh checker (fresh engine) per property."""

    def sequential():
        return [check(viterbi_chain, prop).value for prop in ENGINE_PROPERTIES]

    values = benchmark(sequential)
    assert len(values) == len(ENGINE_PROPERTIES)


@pytest.fixture(scope="module")
def reward_subsystem(viterbi_chain):
    """The R=?[F flag] solve subsystem: non-target states and the flag
    reward restricted to them."""
    target = viterbi_chain.label_vector("flag")
    solve_states = np.nonzero(~target)[0]
    rhs = viterbi_chain.reward_vector("flag")[solve_states]
    return solve_states, rhs


def test_bench_lu_solve_cold(benchmark, viterbi_chain, reward_subsystem):
    """Factorize + solve from scratch (a fresh engine every time)."""
    solve_states, rhs = reward_subsystem

    def cold():
        return Engine("lu").solve_subsystem(viterbi_chain, solve_states, rhs)

    solution = benchmark(cold)
    assert np.isfinite(solution).all()


def test_bench_lu_solve_warm(benchmark, viterbi_chain, reward_subsystem):
    """Back-substitution against the cached LU factorization."""
    solve_states, rhs = reward_subsystem
    engine = Engine("lu")
    engine.solve_subsystem(viterbi_chain, solve_states, rhs)  # pre-warm

    solution = benchmark(
        lambda: engine.solve_subsystem(viterbi_chain, solve_states, rhs)
    )
    assert np.isfinite(solution).all()
    assert engine.stats.lu_factorizations == 1


def test_bench_symbolic_cross_check(benchmark):
    config = ViterbiModelConfig(traceback_length=3, num_levels=3, pm_max=3)
    chain = build_reduced_model(config).chain

    def symbolic_p2():
        return SymbolicEngine(chain).instantaneous_reward("flag", 30)

    symbolic = benchmark.pedantic(symbolic_p2, rounds=1, iterations=1)
    sparse = check(chain, "R=? [ I=30 ]").value
    assert symbolic == pytest.approx(sparse, abs=1e-12)
