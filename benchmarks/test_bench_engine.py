"""Micro-benchmarks of the verification engine itself.

Not a paper table: these measure the substrate operations the
experiment drivers are built from (state-space exploration, transient
solve, steady state, lumping, symbolic cross-check), so regressions in
the engine show up independently of the case studies.
"""

import numpy as np
import pytest

from repro.core.reductions import lump
from repro.dtmc import (
    build_dtmc,
    distribution_at,
    stationary_distribution,
)
from repro.pctl import check
from repro.symbolic import SymbolicEngine
from repro.viterbi import ViterbiModelConfig, build_reduced_model


@pytest.fixture(scope="module")
def viterbi_chain():
    return build_reduced_model(ViterbiModelConfig()).chain


def test_bench_state_space_exploration(benchmark):
    config = ViterbiModelConfig(traceback_length=5)
    result = benchmark(lambda: build_reduced_model(config))
    assert result.num_states > 500


def test_bench_transient_distribution(benchmark, viterbi_chain):
    pi = benchmark(lambda: distribution_at(viterbi_chain, 300))
    assert pi.sum() == pytest.approx(1.0)


def test_bench_bounded_property(benchmark, viterbi_chain):
    value = benchmark(
        lambda: check(viterbi_chain, "P=? [ G<=300 !flag ]").value
    )
    assert 0 <= value <= 1


def test_bench_steady_state(benchmark, viterbi_chain):
    pi = benchmark(lambda: stationary_distribution(viterbi_chain))
    assert pi.sum() == pytest.approx(1.0)


def test_bench_lumping(benchmark, viterbi_chain):
    result = benchmark.pedantic(
        lambda: lump(viterbi_chain, respect=["flag"]), rounds=1, iterations=1
    )
    assert result.num_blocks <= viterbi_chain.num_states


def test_bench_symbolic_cross_check(benchmark):
    config = ViterbiModelConfig(traceback_length=3, num_levels=3, pm_max=3)
    chain = build_reduced_model(config).chain

    def symbolic_p2():
        return SymbolicEngine(chain).instantaneous_reward("flag", 30)

    symbolic = benchmark.pedantic(symbolic_p2, rounds=1, iterations=1)
    sparse = check(chain, "R=? [ I=30 ]").value
    assert symbolic == pytest.approx(sparse, abs=1e-12)
