"""Benchmarks of the vectorized statistical model checking layer.

Tracks the three claims of the batched SMC design on the Viterbi
chain:

* batched (fused, alias-sampled) ``smc_estimate`` vs the scalar
  per-path baseline at the default APMC tolerance — the headline
  speedup (the acceptance bar is >= 20x; measured well above);
* alias sampling vs the historical binary-search sampling, scalar and
  batched path generation;
* APMC end-to-end and the chunked SPRT, whose data-dependent stopping
  sample is asserted equal to the scalar run's (exactness is part of
  the contract, so the benchmark file enforces it too).

CI runs this file separately into ``BENCH_smc.json``.
"""

import time

import numpy as np
import pytest

from repro.dtmc import PathSampler
from repro.pctl import check
from repro.smc import smc_decide, smc_estimate
from repro.viterbi import ViterbiModelConfig, build_reduced_model

# The acceptance workload: default APMC tolerance, bounded until on the
# Viterbi chain (18 445 Hoeffding samples of 50-step path prefixes).
PROPERTY = "P=? [ !flag U<=50 flag ]"
EPSILON = 0.01
DELTA = 0.05

#: Wall-clock of each smc_estimate flavour, recorded by the benchmarks
#: below and asserted against the >= 20x bar at the end of the module.
_SECONDS = {}


@pytest.fixture(scope="module")
def viterbi_chain():
    return build_reduced_model(ViterbiModelConfig()).chain


def _timed(label, fn):
    def run():
        start = time.perf_counter()
        result = fn()
        _SECONDS[label] = min(
            _SECONDS.get(label, float("inf")), time.perf_counter() - start
        )
        return result

    return run


# ----------------------------------------------------------------------
# Path generation: scalar loop vs batched walk, alias vs binary search.
# ----------------------------------------------------------------------

def test_bench_paths_scalar_alias(benchmark, viterbi_chain):
    """2000 paths, one scalar alias-sampled path() call per path."""
    sampler = PathSampler(viterbi_chain)

    def scalar():
        rng = np.random.default_rng(0)
        return [sampler.path(50, rng=rng) for _ in range(2000)]

    paths = benchmark.pedantic(scalar, rounds=1, iterations=1)
    assert len(paths) == 2000


def test_bench_paths_scalar_binary_search(benchmark, viterbi_chain):
    """Same workload through the historical binary-search sampler."""
    sampler = PathSampler(viterbi_chain, method="search")

    def scalar():
        rng = np.random.default_rng(0)
        return [sampler.path(50, rng=rng) for _ in range(2000)]

    paths = benchmark.pedantic(scalar, rounds=1, iterations=1)
    assert len(paths) == 2000


def test_bench_paths_batched_alias(benchmark, viterbi_chain):
    """Same 2000 paths in one vectorized paths() walk."""
    sampler = PathSampler(viterbi_chain)
    paths = benchmark(
        lambda: sampler.paths(2000, 50, rng=np.random.default_rng(0))
    )
    assert paths.shape == (2000, 51)


# ----------------------------------------------------------------------
# APMC end-to-end: the acceptance-criterion pair.
# ----------------------------------------------------------------------

def test_bench_smc_estimate_scalar_baseline(benchmark, viterbi_chain):
    """Per-path scalar trials at the default tolerance (18 445 paths)."""
    result = benchmark.pedantic(
        _timed(
            "scalar",
            lambda: smc_estimate(
                viterbi_chain, PROPERTY,
                epsilon=EPSILON, delta=DELTA, seed=0, batched=False,
            ),
        ),
        rounds=1,
        iterations=1,
    )
    assert result.samples == 18445


def test_bench_smc_estimate_batched(benchmark, viterbi_chain):
    """Fused batched trials on the same workload and seed."""
    result = benchmark(
        _timed(
            "batched",
            lambda: smc_estimate(
                viterbi_chain, PROPERTY,
                epsilon=EPSILON, delta=DELTA, seed=0, batched=True,
            ),
        )
    )
    assert result.samples == 18445
    exact = check(viterbi_chain, PROPERTY).value
    assert abs(result.estimate - exact) <= EPSILON


def test_smc_estimate_speedup_at_least_20x(benchmark, viterbi_chain):
    """The acceptance bar: batched >= 20x scalar, identical estimates.

    Reported as a benchmark of the batched run with the measured ratio
    in ``extra_info`` so BENCH_smc.json carries the speedup explicitly.
    """
    scalar = _SECONDS.get("scalar")
    if scalar is None:  # file run standalone / filtered: measure here
        start = time.perf_counter()
        smc_estimate(
            viterbi_chain, PROPERTY,
            epsilon=EPSILON, delta=DELTA, seed=0, batched=False,
        )
        scalar = time.perf_counter() - start
    batched_result = benchmark(
        _timed(
            "batched",
            lambda: smc_estimate(
                viterbi_chain, PROPERTY,
                epsilon=EPSILON, delta=DELTA, seed=0, batched=True,
            ),
        )
    )
    speedup = scalar / _SECONDS["batched"]
    benchmark.extra_info["scalar_seconds"] = scalar
    benchmark.extra_info["batched_seconds"] = _SECONDS["batched"]
    benchmark.extra_info["speedup_vs_scalar"] = speedup
    scalar_result = smc_estimate(
        viterbi_chain, PROPERTY,
        epsilon=EPSILON, delta=DELTA, seed=0, batched=False, batch=512,
    )
    assert scalar_result.estimate == batched_result.estimate
    assert speedup >= 20.0, f"batched only {speedup:.1f}x faster"


# ----------------------------------------------------------------------
# SPRT: chunked speed with exact stopping samples.
# ----------------------------------------------------------------------

def test_bench_sprt_batched(benchmark, viterbi_chain):
    exact = check(viterbi_chain, PROPERTY).value
    result = benchmark(
        lambda: smc_decide(
            viterbi_chain, PROPERTY,
            theta=exact - 0.05, half_width=0.02, seed=0, batched=True,
        )
    )
    assert result.accept


def test_sprt_chunked_stopping_sample_matches_scalar(viterbi_chain):
    """Contract check riding with the benchmarks: chunking changes the
    wall-clock, never the data-dependent sample count."""
    exact = check(viterbi_chain, PROPERTY).value
    for theta, seed in [(exact - 0.05, 0), (exact + 0.05, 1), (0.5, 2)]:
        scalar = smc_decide(
            viterbi_chain, PROPERTY,
            theta=theta, half_width=0.02, seed=seed, batched=False,
        )
        chunked = smc_decide(
            viterbi_chain, PROPERTY,
            theta=theta, half_width=0.02, seed=seed, batched=True,
        )
        assert (scalar.accept, scalar.samples) == (chunked.accept, chunked.samples)
