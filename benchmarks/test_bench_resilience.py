"""Benchmarks of the fault-tolerance layer (ISSUE 7 acceptance).

The acceptance bar, asserted here and reported in
``BENCH_resilience.json`` for the CI regression guard: arming the
fabric's resilience policies (a 3-attempt :class:`RetryPolicy` plus a
30s :class:`DeadlinePolicy` watchdog) on a fault-free 100-point serial
``zoo.sweep`` must cost **less than 10%** wall-clock overhead versus
the bare sweep — fault tolerance is a default you leave on, not a mode
you pay for.

The two flavours are timed interleaved (best of three rounds each) so
machine drift during the run biases neither side, and the resilient
run's values must be identical to the plain run's — the policies may
never change a result, only bound its failure modes.
"""

import time

from repro import zoo
from repro.engine import DeadlinePolicy, RetryPolicy

FORMULA = "P=? [ F<=100 goal ]"

#: The 100-point acceptance grid (>= 100 points required by ISSUE 7).
POINTS = [
    {"p_up": round(0.05 + 0.01 * i, 2), "n": n}
    for i in range(25)
    for n in (8, 16, 24, 32)
]

#: No-fault policies: generous budgets that should never trigger.
RETRY = RetryPolicy(max_attempts=3, backoff=0.1)
DEADLINE = DeadlinePolicy(timeout=30.0)

#: Best-of wall-clocks, filled by the interleaved rounds below.
_SECONDS = {}


def _timed(label, fn):
    start = time.perf_counter()
    result = fn()
    _SECONDS[label] = min(
        _SECONDS.get(label, float("inf")), time.perf_counter() - start
    )
    return result


def _plain_sweep():
    return zoo.sweep(
        "birth-death", points=POINTS, formula=FORMULA, executor="serial"
    )


def _resilient_sweep():
    return zoo.sweep(
        "birth-death", points=POINTS, formula=FORMULA, executor="serial",
        retry=RETRY, deadline=DEADLINE,
    )


def test_bench_resilient_sweep(benchmark):
    """Tracked wall-clock of the policy-armed 100-point sweep."""
    results = benchmark.pedantic(_resilient_sweep, rounds=3, iterations=1)
    assert len(results) == len(POINTS)
    assert all(r.ok and r.attempts == 1 for r in results)
    assert all(r.warnings == () for r in results)


def test_resilience_overhead_under_ten_percent(benchmark):
    """The acceptance bar: armed fabric <= 1.10x the bare sweep.

    Rounds alternate plain/resilient so a slow CI moment hits both
    flavours equally; best-of-three on each side drops scheduler noise.
    A small absolute allowance keeps sub-second timings from flaking on
    loaded runners without weakening the relative bar that matters.
    """
    for _ in range(3):
        plain = _timed("plain", _plain_sweep)
        resilient = _timed("resilient", _resilient_sweep)
    assert [r.value for r in resilient] == [r.value for r in plain]

    overhead = _SECONDS["resilient"] / _SECONDS["plain"]
    benchmark.extra_info["plain_seconds"] = _SECONDS["plain"]
    benchmark.extra_info["resilient_seconds"] = _SECONDS["resilient"]
    benchmark.extra_info["points"] = len(POINTS)
    benchmark.extra_info["overhead_ratio"] = overhead
    benchmark.pedantic(_resilient_sweep, rounds=1, iterations=1)
    assert (
        _SECONDS["resilient"] <= _SECONDS["plain"] * 1.10 + 0.05
    ), f"resilience overhead {overhead:.2f}x exceeds the 10% bar"
