"""Benchmark: regenerate Table IV (C1 vs T, Viterbi convergence).

Paper setting L=8 at 8 dB.  Asserts: C1 is stable across the paper's
horizons, is a small probability (order 1e-3 at the paper's setting),
and the convergence model is far smaller than the error models.
"""

import pytest

from repro.experiments import table4
from repro.viterbi import build_reduced_model


def run_table4():
    return table4.run(horizons=(100, 400, 1000))


def test_bench_table4(benchmark):
    result = benchmark.pedantic(run_table4, rounds=1, iterations=1)

    assert result.is_converged
    assert result.values[-1] == pytest.approx(result.steady_state, rel=1e-6)
    assert 0 < result.steady_state < 0.1

    # The reduction for the convergence property discards all per-stage
    # variables: the model must be *much* smaller than the error model
    # at the same parameters.
    error_model_states = build_reduced_model(
        table4.default_config()
    ).num_states
    assert result.states < error_model_states / 10
