"""Benchmark: regenerate Figure 2 (C1 as a function of L).

Asserts the plot's shape: strictly decreasing in L, with the absolute
per-step change collapsing past L ~= 5m (the paper's "stabilizes").
"""


from repro.experiments import figure2


def run_figure2():
    return figure2.run(lengths=(2, 3, 4, 5, 6, 7, 8), snr_db=8.0)


def test_bench_figure2(benchmark):
    result = benchmark.pedantic(run_figure2, rounds=1, iterations=1)

    assert result.is_decreasing

    changes = result.marginal_changes()
    # Early steps move C1 by much more than late steps (linear-scale
    # stabilization): the per-step change collapses monotonically and
    # by an order of magnitude across the sweep.
    assert all(a > b for a, b in zip(changes, changes[1:]))
    assert changes[-1] < changes[0] / 10
