#!/usr/bin/env python
"""Check relative markdown links in the docs tree.

Scans ``README.md`` and every ``docs/*.md`` page for markdown links
(``[text](target)``), resolves each relative target against the file
that contains it, and fails when the target file does not exist.
External links (``http://``, ``https://``, ``mailto:``) and pure
in-page anchors (``#section``) are skipped; a ``path#anchor`` target is
checked for the path part only.

Usage::

    python scripts/check_doc_links.py

Exit status is the number of broken links (0 = all good), so the CI
docs job can run it directly.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path
from typing import List, Tuple

ROOT = Path(__file__).resolve().parent.parent

#: ``[text](target)`` with no nested brackets; good enough for our docs.
_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")

#: Schemes that point off-repo and are not checked.
_EXTERNAL = ("http://", "https://", "mailto:")


def doc_files() -> List[Path]:
    """The markdown files under check: README + the docs tree."""
    files = [ROOT / "README.md"]
    files.extend(sorted((ROOT / "docs").glob("*.md")))
    return [f for f in files if f.exists()]


def broken_links(path: Path) -> List[Tuple[str, str]]:
    """``(target, reason)`` for every broken relative link in one file."""
    problems = []
    text = path.read_text()
    # Strip fenced code blocks — ``[x](y)`` inside them is not a link.
    text = re.sub(r"```.*?```", "", text, flags=re.S)
    for match in _LINK.finditer(text):
        target = match.group(1)
        if target.startswith(_EXTERNAL) or target.startswith("#"):
            continue
        file_part = target.split("#", 1)[0]
        if not file_part:
            continue
        resolved = (path.parent / file_part).resolve()
        if not resolved.exists():
            problems.append((target, f"no such file: {resolved}"))
    return problems


def main() -> int:
    """Entry point; returns the number of broken links."""
    total = 0
    for path in doc_files():
        for target, reason in broken_links(path):
            total += 1
            print(
                f"BROKEN {path.relative_to(ROOT)}: ({target}) — {reason}",
                file=sys.stderr,
            )
    checked = len(doc_files())
    if total == 0:
        print(f"all relative links resolve across {checked} file(s)")
    return total


if __name__ == "__main__":
    sys.exit(main())
