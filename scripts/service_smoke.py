#!/usr/bin/env python
"""CI smoke of the networked guarantee service (ISSUE 8 acceptance).

One honest end-to-end pass with *real worker processes*:

1. start a coordinator, an HTTP front-end, and two ``repro-zoo
   worker`` subprocesses;
2. run a 30-point remote sweep; once the first worker has completed a
   couple of shards, SIGKILL it mid-sweep;
3. assert the sweep still completes with results **bit-identical** to
   a serial run of the same seeded grid (the dead worker's leases were
   reassigned);
4. assert ``GET /healthz`` reports the fleet as degraded and names the
   dead worker, while ``GET /stats`` still serves;
5. exercise the serving path: a ``GET /guarantee`` miss returns 202
   with a pollable job, completes on the surviving worker, is banked
   to the store, and the repeat query is a warm 200 hit;
6. SIGTERM the surviving worker and assert it exits 0 (the graceful
   deregister path), then stop the servers — no orphans.

Run from the repository root::

    PYTHONPATH=src python scripts/service_smoke.py
"""

import json
import os
import signal
import subprocess
import sys
import tempfile
import threading
import time
import urllib.error
import urllib.request

sys.path.insert(0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src"))

from repro.engine import SmcConfig  # noqa: E402
from repro.service import (  # noqa: E402
    CoordinatorServer,
    Frontend,
    FrontendServer,
)
from repro.service.client import service_stats  # noqa: E402
from repro.store import ResultStore  # noqa: E402
from repro.zoo import sweep as zoo_sweep  # noqa: E402

GRID = {"snr_db": [float(snr) for snr in range(1, 31)]}  # 30 points
SMC = SmcConfig(epsilon=0.1, delta=0.1, seed=3)


def _get(url):
    try:
        with urllib.request.urlopen(url, timeout=30) as resp:
            return resp.status, json.load(resp)
    except urllib.error.HTTPError as exc:
        return exc.code, json.load(exc)


def main() -> int:
    env = dict(os.environ)
    src_root = os.path.join(
        os.path.dirname(os.path.abspath(__file__)), "..", "src"
    )
    env["PYTHONPATH"] = (
        os.path.abspath(src_root) + os.pathsep + env.get("PYTHONPATH", "")
    )

    server = CoordinatorServer(port=0, heartbeat=0.2).start()
    print(f"coordinator on {server.address}")
    workers = [
        subprocess.Popen(
            [sys.executable, "-m", "repro.zoo", "worker",
             "--connect", server.address, "--name", f"smoke-{i}"],
            env=env,
        )
        for i in range(2)
    ]
    store_path = os.path.join(tempfile.mkdtemp(prefix="service-smoke-"), "smoke.sqlite")
    store = ResultStore(store_path)
    front = FrontendServer(
        Frontend(server.coordinator, store=store), port=0
    ).start_background()
    print(f"front-end on http://{front.address}")

    deadline = time.time() + 60.0
    while time.time() < deadline:
        if service_stats(server.address)["workers_alive"] >= 2:
            break
        time.sleep(0.2)
    stats = service_stats(server.address)
    assert stats["workers_alive"] == 2, f"fleet never came up: {stats}"
    print("2 workers registered")

    # SIGKILL the first worker once it has served at least 2 shards.
    victim = workers[0]
    killed = threading.Event()

    def _assassin() -> None:
        while not killed.is_set():
            for snapshot in service_stats(server.address)["workers"]:
                if snapshot["pid"] == victim.pid and snapshot["shards_done"] >= 2:
                    os.kill(victim.pid, signal.SIGKILL)
                    killed.set()
                    print(f"SIGKILLed worker pid={victim.pid} mid-sweep")
                    return
            time.sleep(0.02)

    threading.Thread(target=_assassin, daemon=True).start()

    kwargs = dict(axes=GRID, backend="apmc", smc=SMC)
    serial = zoo_sweep("mimo-1xN", executor="serial", **kwargs)
    remote = zoo_sweep(
        "mimo-1xN", executor="remote", remote=server.address,
        shard_size=1, **kwargs,
    )
    assert killed.wait(timeout=30), "worker was never killed mid-sweep"
    assert victim.wait(timeout=10) == -signal.SIGKILL

    serial_values = [(r.value.estimate, r.value.samples) for r in serial]
    remote_values = [(r.value.estimate, r.value.samples) for r in remote]
    assert all(r.ok for r in remote), [r.error for r in remote if not r.ok]
    assert remote_values == serial_values, "remote sweep NOT bit-identical"
    print(f"remote sweep bit-identical to serial across {len(GRID['snr_db'])} points")

    status, health = _get(f"http://{front.address}/healthz")
    assert status == 200, health
    assert health["status"] == "degraded", health
    assert any(d["pid"] == victim.pid for d in health["dead"]), health
    print(f"healthz reports the dead worker: {health['dead'][0]['name']}")
    status, stats_body = _get(f"http://{front.address}/stats")
    assert status == 200 and stats_body["coordinator"]["workers_alive"] == 1

    # Serving path: miss -> 202 + poll -> banked -> warm 200 hit.
    query = "family=birth-death&n=12"
    status, body = _get(f"http://{front.address}/guarantee?{query}")
    assert status == 202 and not body["cached"], body
    poll_url = f"http://{front.address}{body['poll']}"
    deadline = time.time() + 60.0
    while time.time() < deadline:
        status, job = _get(poll_url)
        if job["done"]:
            break
        time.sleep(0.1)
    assert job["done"] and job["results"][0]["ok"], job
    deadline = time.time() + 15.0
    while time.time() < deadline and len(store) == 0:
        time.sleep(0.1)  # banking runs on the job-done callback thread
    status, warm = _get(f"http://{front.address}/guarantee?{query}")
    assert status == 200 and warm["cached"], warm
    assert warm["value"] == job["results"][0]["value"], (warm, job)
    print("guarantee miss -> job -> banked -> warm hit OK")

    # Graceful shutdown: SIGTERM deregisters and exits 0 (the Ctrl-C
    # path), unlike a coordinator-ordered die which is a hard exit.
    workers[1].send_signal(signal.SIGTERM)
    assert workers[1].wait(timeout=15) == 0, "surviving worker did not exit cleanly"
    front.stop()
    server.stop()
    store.close()
    print("clean shutdown, no orphaned workers")
    print("SERVICE SMOKE OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
