#!/usr/bin/env python
"""CI smoke of the networked guarantee service (ISSUE 8 acceptance).

One honest end-to-end pass with *real worker processes*:

1. start a coordinator, an HTTP front-end, and two ``repro-zoo
   worker`` subprocesses;
2. run a 30-point remote sweep; once the first worker has completed a
   couple of shards, SIGKILL it mid-sweep;
3. assert the sweep still completes with results **bit-identical** to
   a serial run of the same seeded grid (the dead worker's leases were
   reassigned);
4. assert ``GET /healthz`` reports the fleet as degraded and names the
   dead worker, while ``GET /stats`` still serves;
5. exercise the serving path: a ``GET /guarantee`` miss returns 202
   with a pollable job, completes on the surviving worker, is banked
   to the store, and the repeat query is a warm 200 hit;
6. exercise the history surfaces (ISSUE 9): the remote sweep banked
   its 30 points, so ``GET /dashboard`` returns 200 HTML naming the
   swept family and ``GET /history`` returns the banked trajectory;
   seed the store under two extra salts with a planted drift and
   assert ``repro-zoo history diff`` reports it and exits non-zero;
7. SIGTERM the surviving worker and assert it exits 0 (the graceful
   deregister path), then stop the servers — no orphans.

Then the durability phase (ISSUE 10) — this time the *coordinator*
is the victim:

8. start a journalled ``repro-zoo serve`` subprocess on fixed ports
   plus two reconnecting worker subprocesses, and SIGKILL the serve
   process once a few shards have been journalled mid-sweep;
9. restart the identical serve command on the same ports: with the
   workers SIGSTOPped, ``GET /healthz`` on the new incarnation reports
   ``degraded`` (replayed unfinished job, zero live workers) and a
   bumped epoch; after SIGCONT the workers re-register on their own
   and ``/healthz`` recovers to ``ok`` with no human intervention;
10. assert the client sweep — whose retry budget rode out the outage —
    completed bit-identical to serial, and the store banked exactly
    one row per point.

Run from the repository root::

    PYTHONPATH=src python scripts/service_smoke.py
"""

import json
import os
import signal
import subprocess
import sys
import tempfile
import threading
import time
import urllib.error
import urllib.request

sys.path.insert(0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src"))

from repro.engine import SmcConfig  # noqa: E402
from repro.service import (  # noqa: E402
    CoordinatorServer,
    Frontend,
    FrontendServer,
    free_port,
)
from repro.service.client import service_stats  # noqa: E402
from repro.store import ResultStore  # noqa: E402
from repro.zoo import sweep as zoo_sweep  # noqa: E402

GRID = {"snr_db": [float(snr) for snr in range(1, 31)]}  # 30 points
SMC = SmcConfig(epsilon=0.1, delta=0.1, seed=3)


def _get(url):
    try:
        with urllib.request.urlopen(url, timeout=30) as resp:
            return resp.status, json.load(resp)
    except urllib.error.HTTPError as exc:
        return exc.code, json.load(exc)


def _coordinator_crash_phase(env) -> None:
    """SIGKILL the coordinator mid-sweep, restart it on the same
    journal, and assert the fleet heals itself (ISSUE 10)."""
    tmp = tempfile.mkdtemp(prefix="service-smoke-crash-")
    journal = os.path.join(tmp, "journal.sqlite")
    store_path = os.path.join(tmp, "crash.sqlite")
    coord_port, http_port = free_port(), free_port()
    address = f"127.0.0.1:{coord_port}"
    serve_cmd = [
        sys.executable, "-m", "repro.zoo", "serve",
        "--coordinator-port", str(coord_port), "--port", str(http_port),
        "--workers", "0", "--journal", journal, "--store", store_path,
        "--heartbeat", "0.2",
    ]
    serve = subprocess.Popen(serve_cmd, env=env)
    workers = [
        subprocess.Popen(
            [sys.executable, "-m", "repro.zoo", "worker",
             "--connect", address, "--name", f"crash-{i}",
             "--reconnect-attempts", "60"],
            env=env,
        )
        for i in range(2)
    ]
    serve2 = None
    try:
        deadline = time.time() + 60.0
        while time.time() < deadline:
            if service_stats(address)["workers_alive"] >= 2:
                break
            time.sleep(0.2)
        stats = service_stats(address)
        assert stats["workers_alive"] == 2, f"crash fleet never came up: {stats}"
        epoch_before = stats["epoch"]
        print(f"journalled coordinator up (epoch {epoch_before}), 2 workers")

        grid = {"snr_db": [float(snr) for snr in range(1, 13)]}  # 12 points
        kwargs = dict(axes=grid, backend="apmc", smc=SMC)
        serial = zoo_sweep("mimo-1xN", executor="serial", **kwargs)
        store = ResultStore(store_path)
        box = {}

        def _client() -> None:
            box["results"] = zoo_sweep(
                "mimo-1xN", executor="remote", remote=address,
                shard_size=1, store=store, **kwargs,
            )

        runner = threading.Thread(target=_client, daemon=True)
        runner.start()

        # SIGKILL the serve process once a few shards are journalled.
        deadline = time.time() + 120.0
        while time.time() < deadline:
            merged = (service_stats(address)["journal"] or {}).get("results", 0)
            if merged >= 3:
                break
            time.sleep(0.05)
        assert 0 < merged < len(grid["snr_db"]), (
            f"needed a mid-sweep kill, journal had {merged} results"
        )
        serve.send_signal(signal.SIGKILL)
        assert serve.wait(timeout=10) == -signal.SIGKILL
        print(f"SIGKILLed coordinator mid-sweep ({merged} results journalled)")

        # Freeze the workers so the restarted service is observably
        # degraded before anyone re-registers.
        for proc in workers:
            proc.send_signal(signal.SIGSTOP)
        serve2 = subprocess.Popen(serve_cmd, env=env)
        deadline = time.time() + 60.0
        health = None
        while time.time() < deadline:
            try:
                _status, health = _get(f"http://127.0.0.1:{http_port}/healthz")
                break
            except (urllib.error.URLError, OSError):
                time.sleep(0.1)
        assert health is not None, "restarted front-end never answered"
        assert health["status"] == "degraded", health
        assert health["jobs_unfinished"] >= 1, health
        assert health["epoch"] > epoch_before, health
        print(
            f"restart replayed the journal: healthz degraded, "
            f"epoch {epoch_before} -> {health['epoch']}"
        )

        for proc in workers:
            proc.send_signal(signal.SIGCONT)
        deadline = time.time() + 120.0
        while time.time() < deadline:
            _status, health = _get(f"http://127.0.0.1:{http_port}/healthz")
            if health["status"] == "ok" and health["workers_alive"] == 2:
                break
            time.sleep(0.2)
        assert health["status"] == "ok", health
        print("workers re-registered on their own: healthz back to ok")

        runner.join(timeout=120.0)
        assert not runner.is_alive(), "client sweep never finished after restart"
        remote_values = [
            (r.value.estimate, r.value.samples) for r in box["results"]
        ]
        serial_values = [(r.value.estimate, r.value.samples) for r in serial]
        assert all(r.ok for r in box["results"])
        assert remote_values == serial_values, "post-crash sweep NOT bit-identical"
        assert len(store) == len(grid["snr_db"]), (
            f"expected one banked row per point, store has {len(store)}"
        )
        store.close()
        print(
            f"sweep rode out the coordinator crash: bit-identical across "
            f"{len(grid['snr_db'])} points, {len(grid['snr_db'])} rows banked"
        )
    finally:
        for proc in workers:
            proc.send_signal(signal.SIGCONT)  # harmless if running
            proc.send_signal(signal.SIGTERM)
        for proc in workers:
            try:
                proc.wait(timeout=15)
            except subprocess.TimeoutExpired:
                proc.kill()
        for proc in (serve, serve2):
            if proc is not None and proc.poll() is None:
                proc.terminate()
                try:
                    proc.wait(timeout=10)
                except subprocess.TimeoutExpired:
                    proc.kill()
    print("coordinator crash phase OK: no orphans")


def main() -> int:
    env = dict(os.environ)
    src_root = os.path.join(
        os.path.dirname(os.path.abspath(__file__)), "..", "src"
    )
    env["PYTHONPATH"] = (
        os.path.abspath(src_root) + os.pathsep + env.get("PYTHONPATH", "")
    )

    server = CoordinatorServer(port=0, heartbeat=0.2).start()
    print(f"coordinator on {server.address}")
    workers = [
        subprocess.Popen(
            [sys.executable, "-m", "repro.zoo", "worker",
             "--connect", server.address, "--name", f"smoke-{i}"],
            env=env,
        )
        for i in range(2)
    ]
    store_path = os.path.join(tempfile.mkdtemp(prefix="service-smoke-"), "smoke.sqlite")
    store = ResultStore(store_path)
    front = FrontendServer(
        Frontend(server.coordinator, store=store), port=0
    ).start_background()
    print(f"front-end on http://{front.address}")

    deadline = time.time() + 60.0
    while time.time() < deadline:
        if service_stats(server.address)["workers_alive"] >= 2:
            break
        time.sleep(0.2)
    stats = service_stats(server.address)
    assert stats["workers_alive"] == 2, f"fleet never came up: {stats}"
    print("2 workers registered")

    # SIGKILL the first worker once it has served at least 2 shards.
    victim = workers[0]
    killed = threading.Event()

    def _assassin() -> None:
        while not killed.is_set():
            for snapshot in service_stats(server.address)["workers"]:
                if snapshot["pid"] == victim.pid and snapshot["shards_done"] >= 2:
                    os.kill(victim.pid, signal.SIGKILL)
                    killed.set()
                    print(f"SIGKILLed worker pid={victim.pid} mid-sweep")
                    return
            time.sleep(0.02)

    threading.Thread(target=_assassin, daemon=True).start()

    kwargs = dict(axes=GRID, backend="apmc", smc=SMC)
    serial = zoo_sweep("mimo-1xN", executor="serial", **kwargs)
    # The remote sweep banks its points, feeding /history + /dashboard.
    remote = zoo_sweep(
        "mimo-1xN", executor="remote", remote=server.address,
        shard_size=1, store=store, **kwargs,
    )
    assert killed.wait(timeout=30), "worker was never killed mid-sweep"
    assert victim.wait(timeout=10) == -signal.SIGKILL

    serial_values = [(r.value.estimate, r.value.samples) for r in serial]
    remote_values = [(r.value.estimate, r.value.samples) for r in remote]
    assert all(r.ok for r in remote), [r.error for r in remote if not r.ok]
    assert remote_values == serial_values, "remote sweep NOT bit-identical"
    print(f"remote sweep bit-identical to serial across {len(GRID['snr_db'])} points")

    status, health = _get(f"http://{front.address}/healthz")
    assert status == 200, health
    assert health["status"] == "degraded", health
    assert any(d["pid"] == victim.pid for d in health["dead"]), health
    print(f"healthz reports the dead worker: {health['dead'][0]['name']}")
    status, stats_body = _get(f"http://{front.address}/stats")
    assert status == 200 and stats_body["coordinator"]["workers_alive"] == 1

    # Serving path: miss -> 202 + poll -> banked -> warm 200 hit.
    banked_before = len(store)
    assert banked_before >= len(GRID["snr_db"]), (
        f"remote sweep banked only {banked_before} rows"
    )
    query = "family=birth-death&n=12"
    status, body = _get(f"http://{front.address}/guarantee?{query}")
    assert status == 202 and not body["cached"], body
    poll_url = f"http://{front.address}{body['poll']}"
    deadline = time.time() + 60.0
    while time.time() < deadline:
        status, job = _get(poll_url)
        if job["done"]:
            break
        time.sleep(0.1)
    assert job["done"] and job["results"][0]["ok"], job
    deadline = time.time() + 15.0
    while time.time() < deadline and len(store) == banked_before:
        time.sleep(0.1)  # banking runs on the job-done callback thread
    status, warm = _get(f"http://{front.address}/guarantee?{query}")
    assert status == 200 and warm["cached"], warm
    assert warm["value"] == job["results"][0]["value"], (warm, job)
    print("guarantee miss -> job -> banked -> warm hit OK")

    # History surfaces: the 30 banked sweep points are visible as a
    # trajectory (one salt so far) and on the dashboard.
    status, hist = _get(
        f"http://{front.address}/history?family=mimo-1xN&snr_db=1.0&backend=apmc"
    )
    assert status == 200 and hist["count"] >= 1, hist
    assert hist["family"] == "mimo-1xN", hist
    assert hist["points"][0]["metric"] == serial[0].value.estimate, hist
    print(f"GET /history serves {hist['count']} banked point(s)")

    page_req = urllib.request.urlopen(
        f"http://{front.address}/dashboard", timeout=30
    )
    page = page_req.read().decode("utf-8")
    assert page_req.status == 200, page_req.status
    assert page_req.headers["Content-Type"].startswith("text/html"), (
        page_req.headers["Content-Type"]
    )
    assert "mimo-1xN" in page and "<svg" in page, page[:400]
    print("GET /dashboard returns HTML naming the swept family")

    # Cross-version gate: seed two salts with a planted drift and let
    # the CLI judge them — it must report the drift and exit non-zero.
    for salt, value in (("smoke-a", 0.5), ("smoke-b", 0.75)):
        with ResultStore(store_path, salt=salt) as seeded:
            seeded.put(
                ("smoke", ("planted",)), "P=? [ F ok ]", value,
                backend="exact", family="smoke-planted",
            )
    diff = subprocess.run(
        [sys.executable, "-m", "repro.zoo", "history", "diff",
         "smoke-a", "smoke-b", "--store", store_path],
        env=env, capture_output=True, text=True, timeout=60,
    )
    assert diff.returncode == 1, (diff.returncode, diff.stdout, diff.stderr)
    assert "DRIFT" in diff.stdout, diff.stdout
    print("repro-zoo history diff reports the planted drift and exits 1")

    # Graceful shutdown: SIGTERM deregisters and exits 0 (the Ctrl-C
    # path), unlike a coordinator-ordered die which is a hard exit.
    workers[1].send_signal(signal.SIGTERM)
    assert workers[1].wait(timeout=15) == 0, "surviving worker did not exit cleanly"
    front.stop()
    server.stop()
    store.close()
    print("clean shutdown, no orphaned workers")

    _coordinator_crash_phase(env)
    print("SERVICE SMOKE OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
