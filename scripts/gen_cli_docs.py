#!/usr/bin/env python
"""Generate the derived documentation pages from the code itself.

Two artifacts, both deterministic so CI can diff them:

* ``docs/cli.md`` — the full ``repro-zoo`` command reference, rendered
  by walking the real argparse tree (every subcommand and nested
  subcommand's ``--help`` text at a fixed 80-column width);
* the *generated section* of ``docs/http-api.md`` — the route table
  between the ``BEGIN/END GENERATED: routes`` markers, rendered from
  :data:`repro.service.frontend.ROUTES` (the machine-readable route
  reference the front-end itself documents).

Usage::

    python scripts/gen_cli_docs.py            # (re)write the files
    python scripts/gen_cli_docs.py --check    # exit 1 if anything is stale

CI runs ``--check`` in the docs job: a route or CLI flag change that
forgets to re-run the generator fails the build instead of silently
drifting the docs.
"""

from __future__ import annotations

import argparse
import os
import sys
from pathlib import Path
from typing import Dict, List, Tuple

# Deterministic argparse wrapping regardless of the invoking terminal.
os.environ["COLUMNS"] = "80"

ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))

from repro.service.frontend import ROUTES  # noqa: E402
from repro.zoo.cli import _build_parser  # noqa: E402

CLI_PATH = ROOT / "docs" / "cli.md"
API_PATH = ROOT / "docs" / "http-api.md"
BEGIN = "<!-- BEGIN GENERATED: routes -->"
END = "<!-- END GENERATED: routes -->"

CLI_HEADER = """\
# `repro-zoo` command reference

> **Generated file — do not edit.**  Rendered from the live argparse
> tree by [`scripts/gen_cli_docs.py`](../scripts/gen_cli_docs.py);
> CI fails if this page is stale (`gen_cli_docs.py --check`).

Run any command below as `repro-zoo ...` (installed entry point) or
`python -m repro.zoo ...` (from a checkout with `PYTHONPATH=src`).
"""


def _subcommands(
    parser: argparse.ArgumentParser,
) -> List[Tuple[str, argparse.ArgumentParser]]:
    """``(name, subparser)`` pairs of a parser's subcommands, in order."""
    for action in parser._actions:  # noqa: SLF001 - argparse has no public walk
        if isinstance(action, argparse._SubParsersAction):  # noqa: SLF001
            return list(action.choices.items())
    return []


def render_cli_page() -> str:
    """The whole ``docs/cli.md`` page as one string."""
    parser = _build_parser()
    sections = [CLI_HEADER]

    def emit(title: str, sub: argparse.ArgumentParser, depth: int) -> None:
        sections.append(f"{'#' * depth} `{title}`\n")
        sections.append("```text\n" + sub.format_help().rstrip() + "\n```\n")
        for name, nested in _subcommands(sub):
            emit(f"{title} {name}", nested, depth + 1)

    sections.append("## `repro-zoo`\n")
    sections.append("```text\n" + parser.format_help().rstrip() + "\n```\n")
    for name, sub in _subcommands(parser):
        emit(f"repro-zoo {name}", sub, 3)
    return "\n".join(sections)


def render_routes_section() -> str:
    """The generated route table for ``docs/http-api.md``."""
    lines = [
        BEGIN,
        "<!-- Rendered from repro.service.frontend.ROUTES by"
        " scripts/gen_cli_docs.py; edit the code, then re-run. -->",
        "",
        "| Route | Query parameters | Statuses | Summary |",
        "|---|---|---|---|",
    ]
    for route in ROUTES:
        statuses = "<br>".join(
            f"`{code}` — {text}" for code, text in sorted(route["statuses"].items())
        )
        lines.append(
            f"| `GET {route['path']}` | {route['query']} |"
            f" {statuses} | {route['summary']} |"
        )
    lines.append(END)
    return "\n".join(lines)


def render_api_page(current: str) -> str:
    """``docs/http-api.md`` with its generated section replaced."""
    try:
        head, rest = current.split(BEGIN, 1)
        _, tail = rest.split(END, 1)
    except ValueError:
        raise SystemExit(
            f"{API_PATH}: missing {BEGIN!r} / {END!r} markers"
        ) from None
    return head + render_routes_section() + tail


def main(argv: List[str] | None = None) -> int:
    """Entry point; ``--check`` diffs instead of writing."""
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument(
        "--check", action="store_true",
        help="exit non-zero if any generated doc is stale (write nothing)",
    )
    opts = ap.parse_args(argv)

    targets: Dict[Path, str] = {CLI_PATH: render_cli_page()}
    if API_PATH.exists():
        targets[API_PATH] = render_api_page(API_PATH.read_text())
    else:
        raise SystemExit(f"{API_PATH} does not exist; create the page first")

    stale = []
    for path, wanted in targets.items():
        current = path.read_text() if path.exists() else None
        if current != wanted:
            stale.append(path)
            if not opts.check:
                path.write_text(wanted)
                print(f"wrote {path.relative_to(ROOT)}")
    if opts.check and stale:
        for path in stale:
            print(f"STALE: {path.relative_to(ROOT)} — re-run"
                  " scripts/gen_cli_docs.py", file=sys.stderr)
        return 1
    if not stale:
        print("generated docs are up to date")
    return 0


if __name__ == "__main__":
    sys.exit(main())
