"""Tests for the N_R x 2 MIMO detector DTMC (the paper's Eq. 14 shape)."""

import pytest

from repro.core.reductions import are_bisimilar, quotient_by_function
from repro.mimo import (
    Mimo2x2State,
    MimoSystemConfig,
    build_detector_model_2tx,
    detect_pair_from_blocks,
    full_state_count_2tx,
    reduced_state_count_2tx,
    step_distribution_2tx,
)
from repro.pctl import check

SMALL = MimoSystemConfig(num_rx=1, snr_db=8.0, num_y_levels=2)
PAPER_2X2 = MimoSystemConfig(num_rx=2, snr_db=8.0, num_y_levels=2)


class TestDetection:
    def test_noiseless_decisions(self):
        # Blocks consistent with s = (+1, +1): y = h1 + h2.
        blocks = [(0.75, 0.75, 1.5), (0.75, -0.75, 0.0)]
        assert detect_pair_from_blocks(blocks) == (1, 1)

    def test_tie_breaks_to_lowest_pattern(self):
        # Zero observations: every candidate ties; (0, 0) wins.
        blocks = [(0.75, -0.75, 0.0)]
        assert detect_pair_from_blocks(blocks) == (0, 0)

    def test_antenna_resolution(self):
        # Antennas with opposite fading signs are separable.
        blocks = [(0.75, -0.75, 1.5)]  # fits s1=+1, s2=-1
        assert detect_pair_from_blocks(blocks) == (1, 0)


class TestDistributions:
    def test_reduced_distribution_sums_to_one(self):
        total = sum(p for p, _ in step_distribution_2tx(SMALL, reduced=True))
        assert total == pytest.approx(1.0)

    def test_full_distribution_sums_to_one(self):
        total = sum(p for p, _ in step_distribution_2tx(SMALL, reduced=False))
        assert total == pytest.approx(1.0)

    def test_counts_match_formulas(self):
        full = build_detector_model_2tx(SMALL, reduced=False)
        reduced = build_detector_model_2tx(SMALL, reduced=True)
        assert full.num_states == full_state_count_2tx(SMALL)
        assert reduced.num_states == reduced_state_count_2tx(SMALL)

    def test_paper_2x2_scale(self):
        reduced = build_detector_model_2tx(PAPER_2X2, reduced=True)
        assert reduced.num_states == reduced_state_count_2tx(PAPER_2X2)
        assert full_state_count_2tx(PAPER_2X2) > 10 * reduced.num_states


class TestSymmetrySoundness:
    def test_full_and_reduced_bisimilar(self):
        full = build_detector_model_2tx(SMALL, reduced=False)
        reduced = build_detector_model_2tx(SMALL, reduced=True)
        verdict = are_bisimilar(full.chain, reduced.chain, respect=["flag"])
        assert verdict.equivalent, verdict.witness

    def test_sorting_quotient_is_lumpable(self):
        full = build_detector_model_2tx(SMALL, reduced=False)
        result = quotient_by_function(
            full.chain, lambda s: Mimo2x2State(s.x, tuple(sorted(s.blocks)))
        )
        assert result.num_blocks == reduced_state_count_2tx(SMALL)

    def test_ver_identical_between_models(self):
        full = build_detector_model_2tx(SMALL, reduced=False)
        reduced = build_detector_model_2tx(SMALL, reduced=True)
        assert check(full.chain, "S=? [ flag ]").value == pytest.approx(
            check(reduced.chain, "S=? [ flag ]").value, abs=1e-12
        )


class TestMeasures:
    def test_biterr_at_most_flag(self):
        """Per-bit error rate <= vector error rate, >= half of it."""
        chain = build_detector_model_2tx(PAPER_2X2).chain
        ver = check(chain, "S=? [ flag ]").value
        ber = check(chain, 'R{"biterr"}=? [ S ]').value
        assert ber <= ver + 1e-12
        assert ber >= ver / 2 - 1e-12

    def test_finer_y_quantizer_improves_ber(self):
        """The coarse-quantization penalty: 1-bit y observations alias
        the four candidates (the same effect that explains the paper's
        anomalously high 1x2 BER in Table V)."""
        coarse = MimoSystemConfig(num_rx=1, snr_db=8.0, num_y_levels=2)
        fine = MimoSystemConfig(num_rx=1, snr_db=8.0, num_y_levels=5)
        ber_coarse = check(
            build_detector_model_2tx(coarse).chain, 'R{"biterr"}=? [ S ]'
        ).value
        ber_fine = check(
            build_detector_model_2tx(fine).chain, 'R{"biterr"}=? [ S ]'
        ).value
        assert ber_fine < ber_coarse

    def test_more_antennas_improve_ber(self):
        one_rx = MimoSystemConfig(num_rx=1, snr_db=8.0, num_y_levels=2)
        two_rx = MimoSystemConfig(num_rx=2, snr_db=8.0, num_y_levels=2)
        ber_one = check(
            build_detector_model_2tx(one_rx).chain, 'R{"biterr"}=? [ S ]'
        ).value
        ber_two = check(
            build_detector_model_2tx(two_rx).chain, 'R{"biterr"}=? [ S ]'
        ).value
        assert ber_two < ber_one

    def test_flat_in_horizon(self):
        chain = build_detector_model_2tx(SMALL).chain
        values = [
            check(chain, f'R{{"biterr"}}=? [ I={t} ]').value for t in (5, 20)
        ]
        assert values[0] == pytest.approx(values[1])
