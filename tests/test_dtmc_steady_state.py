"""Unit + property tests for steady-state analysis (repro.dtmc.steady_state)."""

import numpy as np
import pytest
from hypothesis import given, settings

from repro.dtmc import (
    DTMC,
    absorption_probabilities,
    assert_ergodic,
    bottom_sccs,
    distribution_at,
    dtmc_from_dict,
    long_run_distribution,
    long_run_reward,
    power_iteration,
    stationary_distribution,
)

from helpers import gamblers_ruin, knuth_yao_die, random_dtmcs, two_state_chain


class TestStationary:
    def test_two_state_closed_form(self):
        chain = two_state_chain(p=0.5, q=0.3)
        pi = stationary_distribution(chain)
        # pi_b = p / (p + q)
        assert pi == pytest.approx([0.3 / 0.8, 0.5 / 0.8])

    def test_is_fixed_point(self):
        chain = two_state_chain(p=0.2, q=0.9)
        pi = stationary_distribution(chain)
        assert np.allclose(pi @ chain.transition_matrix, pi)

    def test_rejects_reducible_chain(self):
        with pytest.raises(ValueError, match="irreducible"):
            stationary_distribution(gamblers_ruin())

    def test_single_state(self):
        chain = dtmc_from_dict({"a": {"a": 1.0}}, initial="a")
        assert stationary_distribution(chain).tolist() == [1.0]

    def test_power_iteration_agrees_with_solve(self):
        chain = two_state_chain(p=0.45, q=0.15)
        direct = stationary_distribution(chain)
        iterated = power_iteration(chain, tolerance=1e-14)
        assert np.allclose(direct, iterated, atol=1e-10)

    def test_uniform_for_doubly_stochastic(self):
        matrix = np.array(
            [[0.2, 0.3, 0.5], [0.5, 0.2, 0.3], [0.3, 0.5, 0.2]]
        )
        chain = DTMC(matrix, 0)
        assert stationary_distribution(chain) == pytest.approx([1 / 3] * 3)


class TestAbsorption:
    def test_gamblers_ruin_fair_game(self):
        chain = gamblers_ruin(n=4, p=0.5)  # start at 2
        classes = bottom_sccs(chain)
        probs = absorption_probabilities(chain, classes)
        assert probs.sum() == pytest.approx(1.0)
        # Fair game from the midpoint: equal ruin/win probability.
        assert probs == pytest.approx([0.5, 0.5], abs=1e-9)

    def test_gamblers_ruin_biased(self):
        chain = gamblers_ruin(n=4, p=0.75)
        classes = bottom_sccs(chain)
        win_class = next(
            k
            for k, members in enumerate(classes)
            if chain.label_vector("win")[members[0]]
        )
        probs = absorption_probabilities(chain, classes)
        # Classic formula with r = (1-p)/p = 1/3, start i=2 of n=4:
        r = 1 / 3
        expected_win = (1 - r**2) / (1 - r**4)
        assert probs[win_class] == pytest.approx(expected_win)

    def test_mass_starting_inside_class(self):
        chain = dtmc_from_dict({"a": {"a": 1.0}, "b": {"b": 1.0}}, initial="a")
        probs = absorption_probabilities(chain, [[0], [1]])
        assert probs == pytest.approx([1.0, 0.0])


class TestLongRun:
    def test_matches_stationary_when_ergodic(self):
        chain = two_state_chain(p=0.5, q=0.3)
        assert np.allclose(
            long_run_distribution(chain), stationary_distribution(chain)
        )

    def test_die_long_run_uniform_faces(self):
        chain = knuth_yao_die()
        pi = long_run_distribution(chain)
        for face in ["one", "two", "three", "four", "five", "six"]:
            (idx,) = chain.states_satisfying(face)
            assert pi[idx] == pytest.approx(1 / 6, abs=1e-9)

    def test_long_run_reward_equals_limit_of_instantaneous(self):
        chain = two_state_chain(p=0.5, q=0.3)
        lrr = long_run_reward(chain, "hit")
        pi_t = distribution_at(chain, 300)
        assert lrr == pytest.approx(float(pi_t @ chain.reward_vector("hit")), abs=1e-9)

    def test_assert_ergodic(self):
        assert assert_ergodic(two_state_chain()) == (True, True)
        irreducible, _ = assert_ergodic(gamblers_ruin())
        assert not irreducible


@given(random_dtmcs())
@settings(max_examples=40, deadline=None)
def test_long_run_distribution_is_distribution(chain):
    pi = long_run_distribution(chain)
    assert pi.min() >= -1e-9
    assert pi.sum() == pytest.approx(1.0, abs=1e-7)


@given(random_dtmcs())
@settings(max_examples=40, deadline=None)
def test_long_run_is_fixed_point(chain):
    """The limiting distribution must be invariant under P."""
    pi = long_run_distribution(chain)
    assert np.allclose(pi @ chain.transition_matrix, pi, atol=1e-7)
