"""Unit + property tests for transient analysis (repro.dtmc.transient)."""


import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dtmc import (
    bounded_invariance,
    bounded_reachability,
    cumulative_reward,
    distribution_at,
    distribution_trajectory,
    expected_visits,
    instantaneous_reward,
)

from helpers import knuth_yao_die, random_dtmcs, two_state_chain


def brute_force_reach(chain, target_label, t):
    """Enumerate all length-t paths to compute bounded reachability."""
    target = chain.label_vector(target_label)
    total = 0.0
    stack = [(i, p, target[i]) for i, p in enumerate(chain.initial_distribution) if p > 0]
    for _ in range(t + 1):
        next_stack = []
        for state, prob, hit in stack:
            if hit:
                total += prob
                continue
            for succ, q in chain.successors(state):
                next_stack.append((succ, prob * q, target[succ]))
        stack = next_stack
    # Paths that hit the target are counted once when first hitting it.
    return total


class TestDistribution:
    def test_t_zero_is_initial(self):
        chain = two_state_chain()
        assert np.allclose(distribution_at(chain, 0), chain.initial_distribution)

    def test_one_step_by_hand(self):
        chain = two_state_chain(p=0.25, q=0.75)
        assert distribution_at(chain, 1) == pytest.approx([0.75, 0.25])

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            distribution_at(two_state_chain(), -1)

    def test_trajectory_matches_pointwise(self):
        chain = two_state_chain(p=0.4, q=0.2)
        trajectory = list(distribution_trajectory(chain, 5))
        for t, pi in enumerate(trajectory):
            assert np.allclose(pi, distribution_at(chain, t))

    def test_die_terminal_distribution(self):
        chain = knuth_yao_die()
        pi = distribution_at(chain, 200)
        for face in ["one", "two", "three", "four", "five", "six"]:
            (idx,) = chain.states_satisfying(face)
            assert pi[idx] == pytest.approx(1.0 / 6.0, abs=1e-9)


class TestRewards:
    def test_instantaneous_reward_by_hand(self):
        chain = two_state_chain(p=0.25, q=0.75)
        # E[hit at t=1] = P(in b at 1) = 0.25
        assert instantaneous_reward(chain, "hit", 1) == pytest.approx(0.25)

    def test_cumulative_reward_sums_occupancy(self):
        chain = two_state_chain(p=0.5, q=0.5)
        # Steps 0..2: P(b at 0)=0, at 1=0.5, at 2=0.5 -> wait, C<=3 sums t=0,1,2
        expected = sum(
            float(distribution_at(chain, t)[1]) for t in range(3)
        )
        assert cumulative_reward(chain, "hit", 3) == pytest.approx(expected)

    def test_expected_visits(self):
        chain = two_state_chain(p=1.0, q=1.0)  # deterministic alternation
        visits = expected_visits(chain, 3)  # steps 0,1,2,3
        assert visits == pytest.approx([2.0, 2.0])


class TestBoundedOperators:
    def test_reachability_zero_steps(self):
        chain = two_state_chain()
        target = chain.label_vector("in_b")
        x = bounded_reachability(chain, target, 0)
        assert x.tolist() == [0.0, 1.0]

    def test_reachability_closed_form(self):
        chain = two_state_chain(p=0.25, q=0.0)
        target = chain.label_vector("in_b")
        # From a: P(reach b within t) = 1 - 0.75^t
        for t in range(5):
            x = bounded_reachability(chain, target, t)
            assert x[0] == pytest.approx(1 - 0.75**t)

    def test_reachability_matches_brute_force(self):
        chain = knuth_yao_die()
        for t in range(6):
            fast = float(
                bounded_reachability(chain, chain.label_vector("done"), t)
                @ chain.initial_distribution
            )
            slow = brute_force_reach(chain, "done", t)
            assert fast == pytest.approx(slow)

    def test_reachability_with_avoid(self):
        chain = knuth_yao_die()
        # Forbid the branch through s2: faces 4..6 unreachable.
        avoid = np.zeros(chain.num_states, dtype=bool)
        avoid[chain.states.index("s2")] = True
        x = bounded_reachability(
            chain, chain.label_vector("six"), 50, avoid=avoid
        )
        assert float(x @ chain.initial_distribution) == pytest.approx(0.0)

    def test_invariance_complements_reachability(self):
        chain = two_state_chain(p=0.3, q=0.1)
        safe = ~chain.label_vector("in_b")
        for t in range(4):
            g = bounded_invariance(chain, safe, t)
            f = bounded_reachability(chain, ~safe, t)
            assert np.allclose(g, 1.0 - f)

    def test_invariance_decreasing_in_t(self):
        chain = two_state_chain(p=0.3, q=0.1)
        safe = ~chain.label_vector("in_b")
        values = [
            float(bounded_invariance(chain, safe, t) @ chain.initial_distribution)
            for t in range(10)
        ]
        assert all(a >= b - 1e-12 for a, b in zip(values, values[1:]))


@given(random_dtmcs(), st.integers(min_value=0, max_value=20))
@settings(max_examples=50)
def test_distribution_stays_stochastic(chain, t):
    pi = distribution_at(chain, t)
    assert pi.min() >= -1e-12
    assert pi.sum() == pytest.approx(1.0)


@given(random_dtmcs(), st.integers(min_value=0, max_value=10))
@settings(max_examples=50)
def test_bounded_reachability_monotone_in_t(chain, t):
    target = chain.label_vector("mark")
    x_t = bounded_reachability(chain, target, t)
    x_t1 = bounded_reachability(chain, target, t + 1)
    assert np.all(x_t1 >= x_t - 1e-12)


@given(random_dtmcs(), st.integers(min_value=0, max_value=10))
@settings(max_examples=50)
def test_bounded_reachability_is_probability(chain, t):
    target = chain.label_vector("mark")
    x = bounded_reachability(chain, target, t)
    assert np.all(x >= -1e-12)
    assert np.all(x <= 1 + 1e-12)
