"""Tests for the bit-true Viterbi device (trellis + decoders)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.comm import PartialResponseTransmitter, UniformQuantizer, noise_sigma
from repro.viterbi import (
    ACSResult,
    BlockMLSequenceDetector,
    RTLViterbiDecoder,
    Trellis,
)


def make_trellis(num_levels=5, pm_max=6):
    return Trellis(
        PartialResponseTransmitter((1.0, 1.0)),
        UniformQuantizer(num_levels, -3.0, 3.0),
        pm_max=pm_max,
    )


class TestTrellisGeometry:
    def test_two_states_for_memory_one(self):
        trellis = make_trellis()
        assert trellis.num_states == 2
        assert trellis.memory == 1

    def test_next_state_is_input_bit(self):
        trellis = make_trellis()
        for s in (0, 1):
            for b in (0, 1):
                assert trellis.next_state(s, b) == b

    def test_predecessors_complete(self):
        trellis = make_trellis()
        assert trellis.predecessors(0) == [0, 1]
        assert trellis.predecessors(1) == [0, 1]

    def test_expected_outputs_duobinary(self):
        trellis = make_trellis()
        assert trellis.expected_output(0, 0) == -2.0
        assert trellis.expected_output(1, 1) == 2.0
        assert trellis.expected_output(0, 1) == 0.0
        assert trellis.expected_output(1, 0) == 0.0

    def test_memory_two_trellis(self):
        trellis = Trellis(
            PartialResponseTransmitter((1.0, 0.5, 0.5)),
            UniformQuantizer(5, -3, 3),
        )
        assert trellis.num_states == 4
        # Each state has exactly two predecessors.
        for s in range(4):
            assert len(trellis.predecessors(s)) == 2

    def test_branch_metric_is_index_distance(self):
        trellis = make_trellis(num_levels=5)
        # Levels of the 5-level [-3,3] quantizer: -2.4,-1.2,0,1.2,2.4;
        # expected output -2 quantizes to index 0, +2 to index 4.
        assert trellis.branch_metric(0, 0, 0) == 0
        assert trellis.branch_metric(4, 0, 0) == 4
        assert trellis.branch_metric(2, 1, 0) == 0  # 0-output branch


class TestACS:
    def test_normalization_keeps_min_zero(self):
        trellis = make_trellis()
        result = trellis.acs((0, 0), q_index=0)
        assert min(result.path_metrics) == 0

    def test_saturation(self):
        trellis = make_trellis(pm_max=2)
        metrics = trellis.initial_metrics()
        for _ in range(20):
            metrics = trellis.acs(metrics, q_index=0).path_metrics
        assert max(metrics) <= 2

    def test_survivor_points_to_argmin(self):
        trellis = make_trellis()
        # With q at the lowest level (-2 region), state 0's best
        # predecessor is 0 (branch 0->0 expects -2, metric 0).
        result = trellis.acs((0, 0), q_index=0)
        assert result.survivors[0] == 0

    def test_tie_breaks_to_lowest_index(self):
        trellis = make_trellis()
        # q at the middle level: branches 0->1 (expects 0 via bit 1 from
        # state 0) and 1->1 (expects +2) differ, but from equal path
        # metrics ties can occur for target 0; force one by symmetry.
        result = trellis.acs((3, 3), q_index=2)
        # Both predecessors add the same constant to equal metrics for
        # target state... verify determinism instead of a specific tie:
        again = trellis.acs((3, 3), q_index=2)
        assert result == again

    def test_best_state_tie_prefers_zero(self):
        result = ACSResult(path_metrics=(1, 1), survivors=(0, 0))
        assert result.best_state == 0

    def test_convergent_stage_detection(self):
        assert ACSResult((0, 1), (1, 1)).is_convergent()
        assert not ACSResult((0, 1), (0, 1)).is_convergent()

    def test_rejects_bad_pm_max(self):
        with pytest.raises(ValueError):
            make_trellis(pm_max=0)


class TestRTLDecoder:
    def setup_method(self):
        self.tx = PartialResponseTransmitter((1.0, 1.0))
        self.quantizer = UniformQuantizer(9, -3.0, 3.0)
        self.trellis = Trellis(self.tx, self.quantizer, pm_max=8)

    def drive(self, bits, sigma=0.0, seed=0, traceback=6):
        rng = np.random.default_rng(seed)
        decoder = RTLViterbiDecoder(self.trellis, traceback_length=traceback)
        clean = self.tx.transmit_sequence(bits, initial=0)
        noisy = clean + rng.normal(0.0, sigma, clean.shape) if sigma else clean
        q = self.quantizer.quantize_index(noisy)
        return decoder.decode_sequence(q)

    def test_noiseless_recovery(self):
        rng = np.random.default_rng(1)
        bits = rng.integers(0, 2, 200)
        decoded = self.drive(bits)
        latency = 5  # L-1
        assert np.array_equal(decoded, bits[: bits.size - latency])

    def test_latency(self):
        bits = [1] * 10
        decoded = self.drive(bits, traceback=4)
        assert decoded.size == 10 - 3

    def test_reset_restores_cold_state(self):
        decoder = RTLViterbiDecoder(self.trellis, traceback_length=4)
        q = self.quantizer.quantize_index(self.tx.transmit_sequence([1, 0, 1, 1, 0]))
        first = [decoder.step(int(i)) for i in q]
        decoder.reset()
        second = [decoder.step(int(i)) for i in q]
        assert first == second

    def test_low_noise_mostly_correct(self):
        rng = np.random.default_rng(2)
        bits = rng.integers(0, 2, 2000)
        sigma = noise_sigma(14.0)
        decoded = self.drive(bits, sigma=sigma, seed=3, traceback=8)
        reference = bits[: decoded.size]
        assert np.mean(decoded != reference) < 0.01

    def test_agrees_with_block_mlse_when_truncation_is_deep(self):
        rng = np.random.default_rng(4)
        bits = rng.integers(0, 2, 60)
        sigma = noise_sigma(6.0)
        clean = self.tx.transmit_sequence(bits, initial=0)
        noisy = clean + rng.normal(0.0, sigma, clean.shape)
        q = self.quantizer.quantize_index(noisy)

        block = BlockMLSequenceDetector(self.trellis).decode(q)
        rtl = RTLViterbiDecoder(self.trellis, traceback_length=40).decode_sequence(q)
        # Compare on the overlap; deep truncation ~= full traceback.
        overlap = rtl.size
        agreement = np.mean(block[:overlap] == rtl)
        assert agreement > 0.95

    def test_rejects_short_traceback(self):
        with pytest.raises(ValueError):
            RTLViterbiDecoder(self.trellis, traceback_length=1)

    @given(st.lists(st.integers(min_value=0, max_value=1), min_size=20, max_size=60))
    @settings(max_examples=25, deadline=None)
    def test_noiseless_recovery_property(self, bits):
        # A [0, 0] preamble pins the (otherwise ML-ambiguous) initial
        # channel state: the all-zero-metric cold start makes an
        # alternating sequence and its complement exactly tied.
        padded = [0, 0] + bits
        decoded = self.drive(padded, traceback=4)
        reference = np.asarray(padded[: len(padded) - 3])
        assert np.array_equal(decoded, reference)


class TestBlockMLSE:
    def test_noiseless_exact(self):
        tx = PartialResponseTransmitter((1.0, 1.0))
        quantizer = UniformQuantizer(9, -3, 3)
        trellis = Trellis(tx, quantizer, pm_max=8)
        rng = np.random.default_rng(5)
        bits = rng.integers(0, 2, 100)
        q = quantizer.quantize_index(tx.transmit_sequence(bits, initial=0))
        decoded = BlockMLSequenceDetector(trellis).decode(q)
        assert np.array_equal(decoded, bits)

    def test_output_length(self):
        tx = PartialResponseTransmitter((1.0, 1.0))
        trellis = Trellis(tx, UniformQuantizer(5, -3, 3))
        decoded = BlockMLSequenceDetector(trellis).decode([0, 2, 4])
        assert decoded.size == 3
