"""Unit tests for the DTMC representation (repro.dtmc.chain)."""

import numpy as np
import pytest
from hypothesis import given

from repro.dtmc import DTMC, DTMCValidationError, dtmc_from_dict

from helpers import knuth_yao_die, random_dtmcs, two_state_chain


class TestConstruction:
    def test_from_dense_matrix(self):
        chain = DTMC(np.array([[0.5, 0.5], [0.0, 1.0]]), 0)
        assert chain.num_states == 2
        assert chain.num_transitions == 3

    def test_integer_initial_becomes_point_mass(self):
        chain = DTMC(np.eye(3), 1)
        assert chain.initial_states() == [1]
        assert chain.initial_distribution[1] == 1.0

    def test_rejects_non_square(self):
        with pytest.raises(DTMCValidationError):
            DTMC(np.ones((2, 3)) / 3.0, 0)

    def test_rejects_substochastic_row(self):
        with pytest.raises(DTMCValidationError, match="not stochastic"):
            DTMC(np.array([[0.5, 0.4], [0.0, 1.0]]), 0)

    def test_rejects_negative_probability(self):
        with pytest.raises(DTMCValidationError):
            DTMC(np.array([[1.2, -0.2], [0.0, 1.0]]), 0)

    def test_rejects_bad_initial_distribution(self):
        with pytest.raises(DTMCValidationError):
            DTMC(np.eye(2), np.array([0.5, 0.4]))

    def test_rejects_wrong_length_label(self):
        with pytest.raises(DTMCValidationError, match="label"):
            DTMC(np.eye(2), 0, labels={"x": np.array([True])})

    def test_rejects_wrong_length_reward(self):
        with pytest.raises(DTMCValidationError, match="reward"):
            DTMC(np.eye(2), 0, rewards={"x": np.array([1.0])})

    def test_rejects_mismatched_state_objects(self):
        with pytest.raises(DTMCValidationError):
            DTMC(np.eye(2), 0, states=["only-one"])


class TestQueries:
    def test_successors(self):
        chain = two_state_chain(p=0.25, q=0.75)
        successors = dict(
            (j, p) for j, p in chain.successors(0)
        )
        assert successors == pytest.approx({0: 0.75, 1: 0.25})

    def test_transition_probability(self):
        chain = two_state_chain(p=0.25)
        assert chain.transition_probability(0, 1) == pytest.approx(0.25)
        assert chain.transition_probability(1, 1) == pytest.approx(0.7)

    def test_label_vector_unknown_name(self):
        chain = two_state_chain()
        with pytest.raises(KeyError, match="in_b"):
            chain.label_vector("nope")

    def test_states_satisfying(self):
        chain = two_state_chain()
        assert chain.states_satisfying("in_b") == [1]

    def test_add_label_from_predicate(self):
        chain = knuth_yao_die()
        chain.add_label_from_predicate("terminal", lambda s: s.startswith("d"))
        assert sorted(
            chain.states[i] for i in chain.states_satisfying("terminal")
        ) == ["d1", "d2", "d3", "d4", "d5", "d6"]

    def test_add_reward_from_function(self):
        chain = two_state_chain()
        chain.add_reward_from_function("idx", lambda s: 1.0 if s == "b" else 0.0)
        assert chain.reward_vector("idx").tolist() == [0.0, 1.0]


class TestFromDict:
    def test_die_structure(self):
        chain = knuth_yao_die()
        assert chain.num_states == 13
        # Terminal states were never sources: they become absorbing.
        for name in ["one", "two", "three", "four", "five", "six"]:
            (idx,) = chain.states_satisfying(name)
            assert chain.successors(idx) == [(idx, 1.0)]

    def test_unknown_initial_state_rejected(self):
        with pytest.raises(DTMCValidationError, match="initial"):
            dtmc_from_dict({"a": {"a": 1.0}}, initial="zzz")

    def test_rewards_mapping(self):
        chain = dtmc_from_dict(
            {"a": {"b": 1.0}, "b": {"a": 1.0}},
            initial="a",
            rewards={"r": {"b": 2.5}},
        )
        assert chain.reward_vector("r").tolist() == [0.0, 2.5]


class TestStructuralOps:
    def test_with_absorbing(self):
        chain = two_state_chain()
        frozen = chain.with_absorbing([1])
        assert frozen.successors(1) == [(1, 1.0)]
        # Original untouched.
        assert chain.transition_probability(1, 0) == pytest.approx(0.3)

    def test_restricted_to_adds_sink(self):
        chain = knuth_yao_die()
        keep = [i for i, s in enumerate(chain.states) if not s.startswith("d")]
        sub = chain.restricted_to(keep)
        assert sub.num_states == len(keep) + 1
        # Rows remain stochastic (validated on construction) and the
        # sink self-loops.
        assert sub.successors(sub.num_states - 1) == [(sub.num_states - 1, 1.0)]

    def test_restricted_to_preserves_labels(self):
        chain = two_state_chain()
        sub = chain.restricted_to([1])
        assert sub.label_vector("in_b").tolist() == [True, False]


@given(random_dtmcs())
def test_random_chains_validate(chain):
    """Any chain produced by the strategy passes stochasticity checks."""
    row_sums = np.asarray(chain.transition_matrix.sum(axis=1)).ravel()
    assert np.allclose(row_sums, 1.0)


@given(random_dtmcs())
def test_absorbing_copy_is_stochastic(chain):
    frozen = chain.with_absorbing(range(0, chain.num_states, 2))
    row_sums = np.asarray(frozen.transition_matrix.sum(axis=1)).ravel()
    assert np.allclose(row_sums, 1.0)
