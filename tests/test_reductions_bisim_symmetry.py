"""Tests for bisimilarity decision, symmetry reduction, and equivalence checking."""

import pytest

from repro.core.reductions import (
    are_bisimilar,
    assert_equivalent,
    disjoint_union,
    functions_equivalent,
    group_orbit_canonicalizer,
    orbit_sizes,
    quotient_by_function,
    sorted_blocks_canonicalizer,
    verify_permutation_invariance,
)
from repro.dtmc import build_dtmc

from helpers import knuth_yao_die, two_state_chain


def coins_chain(n=2, p=0.5, label="all_heads"):
    """n i.i.d. coins re-flipped every step."""
    import itertools

    outcomes = list(itertools.product([0, 1], repeat=n))

    def step(state):
        return [(p ** sum(o) * (1 - p) ** (n - sum(o)), o) for o in outcomes]

    return build_dtmc(
        step,
        initial=tuple([0] * n),
        labels={label: lambda s: all(s)},
    ).chain


class TestBisimilarity:
    def test_chain_bisimilar_to_itself(self):
        chain = knuth_yao_die()
        result = are_bisimilar(chain, chain)
        assert result.equivalent

    def test_chain_bisimilar_to_its_quotient(self):
        chain = coins_chain()
        quotient = quotient_by_function(chain, lambda s: tuple(sorted(s))).chain
        result = are_bisimilar(chain, quotient, respect=["all_heads"])
        assert result.equivalent
        assert quotient.num_states < chain.num_states

    def test_different_bias_not_bisimilar(self):
        fair = coins_chain(p=0.5)
        biased = coins_chain(p=0.6)
        result = are_bisimilar(fair, biased, respect=["all_heads"])
        assert not result.equivalent
        assert "initial mass differs" in result.witness

    def test_two_state_vs_die_not_bisimilar(self):
        a = two_state_chain()
        b = two_state_chain(p=0.9, q=0.9)
        result = are_bisimilar(a, b, respect=["in_b"])
        assert not result.equivalent

    def test_missing_shared_label_rejected(self):
        a = two_state_chain()
        b = knuth_yao_die()
        with pytest.raises(KeyError, match="shared"):
            are_bisimilar(a, b, respect=["in_b"])

    def test_disjoint_union_structure(self):
        a = two_state_chain()
        b = two_state_chain()
        union = disjoint_union(a, b)
        assert union.num_states == 4
        assert union.initial_distribution.sum() == pytest.approx(1.0)
        # No cross edges.
        assert union.transition_probability(0, 2) == 0.0


class TestSymmetry:
    def test_sorted_blocks_canonicalizer(self):
        canon = sorted_blocks_canonicalizer(
            extract=lambda s: (s[0], s[1]),
            rebuild=lambda blocks, rest: (blocks, rest),
        )
        assert canon((((3, 1), (1, 2)), "x")) == (((1, 2), (3, 1)), "x")

    def test_group_orbit_canonicalizer_rotation(self):
        # Cyclic rotation of a 3-tuple.
        rotate = lambda s: (s[1], s[2], s[0])  # noqa: E731
        canon = group_orbit_canonicalizer([rotate])
        assert canon((2, 0, 1)) == (0, 1, 2)
        assert canon((0, 1, 2)) == canon((1, 2, 0)) == canon((2, 0, 1))

    def test_orbit_sizes_histogram(self):
        states = [(0, 1), (1, 0), (0, 0), (1, 1)]
        sizes = orbit_sizes(states, lambda s: tuple(sorted(s)))
        assert sizes == {(0, 1): 2, (0, 0): 1, (1, 1): 1}

    def test_verify_permutation_invariance_holds_for_swap(self):
        chain = coins_chain()
        swap = lambda s: (s[1], s[0])  # noqa: E731
        assert verify_permutation_invariance(chain, swap)

    def test_verify_permutation_invariance_catches_asymmetry(self):
        # Coin 0 biased, coin 1 fair: swapping is NOT an automorphism.
        import itertools

        outcomes = list(itertools.product([0, 1], repeat=2))

        def step(state):
            return [
                (
                    (0.8 if o[0] else 0.2) * 0.5,
                    o,
                )
                for o in outcomes
            ]

        chain = build_dtmc(step, initial=(0, 0)).chain
        swap = lambda s: (s[1], s[0])  # noqa: E731
        with pytest.raises(AssertionError, match="not invariant"):
            verify_permutation_invariance(chain, swap)

    def test_on_the_fly_reduction_matches_post_hoc_quotient(self):
        """Building with canonicalize == quotienting the full chain."""
        import itertools

        outcomes = list(itertools.product([0, 1], repeat=3))

        def step(state):
            return [(1 / 8, o) for o in outcomes]

        full = build_dtmc(
            step, initial=(0, 0, 0), labels={"all": lambda s: all(s)}
        )
        reduced = build_dtmc(
            step,
            initial=(0, 0, 0),
            canonicalize=lambda s: tuple(sorted(s)),
            labels={"all": lambda s: all(s)},
        )
        quotient = quotient_by_function(full.chain, lambda s: tuple(sorted(s)))
        assert reduced.num_states == quotient.num_blocks == 4
        bisim = are_bisimilar(reduced.chain, quotient.chain, respect=["all"])
        assert bisim.equivalent


class TestEquivalenceChecker:
    def test_equivalent_boolean_functions(self):
        xor = lambda a, b: a != b  # noqa: E731
        alt = lambda a, b: (a and not b) or (b and not a)  # noqa: E731
        result = functions_equivalent(
            xor, alt, {"a": [False, True], "b": [False, True]}
        )
        assert result.equivalent
        assert result.cases_checked == 4

    def test_counterexample_reported(self):
        f = lambda a, b: a and b  # noqa: E731
        g = lambda a, b: a or b  # noqa: E731
        result = functions_equivalent(
            f, g, {"a": [False, True], "b": [False, True]}
        )
        assert not result.equivalent
        assert result.counterexample in (
            {"a": True, "b": False},
            {"a": False, "b": True},
        )

    def test_assert_equivalent_raises_with_witness(self):
        f = lambda a: a  # noqa: E731
        g = lambda a: not a  # noqa: E731
        with pytest.raises(AssertionError, match="differ"):
            assert_equivalent(f, g, {"a": [False, True]})

    def test_multivalued_domains(self):
        f = lambda x, y: min(x, y)  # noqa: E731
        g = lambda x, y: x if x < y else y  # noqa: E731
        assert assert_equivalent(f, g, {"x": range(5), "y": range(5)}) == 25
