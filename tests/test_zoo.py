"""Tests for the scenario model zoo: registry, pipeline, sweeps, CLI.

The reduction-pipeline coverage here is the zoo's soundness story:
every registered family must build at its defaults, the reduced chain
must be *provably* bisimilar to the full chain wherever the full chain
is buildable, and the statistical backends must agree with the exact
engine within their Hoeffding guarantee.
"""

import numpy as np
import pytest

from repro import check, zoo
from repro.engine import Engine, SmcConfig
from repro.zoo import (
    BuiltScenario,
    FamilyBuild,
    ModelFamily,
    ReductionSoundnessError,
    UnknownFamilyError,
    ZooError,
)
from repro.zoo import pipeline
from repro.zoo.cli import main as zoo_main
from repro.zoo.families import BUILTIN_FAMILIES


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------

class TestRegistry:
    def test_all_builtins_registered(self):
        names = [f.name for f in zoo.list_models()]
        assert len(names) >= 5
        for name in BUILTIN_FAMILIES:
            assert name in names

    def test_get_model_unknown_name(self):
        with pytest.raises(UnknownFamilyError, match="mimo-1xN"):
            zoo.get_model("no-such-family")

    def test_tag_filter(self):
        mimo = [f.name for f in zoo.list_models(tag="mimo")]
        assert mimo == ["mimo-1xN", "mimo-NRx2"]
        synth = [f.name for f in zoo.list_models(tag="synthetic")]
        assert set(synth) == {"birth-death", "random-sparse"}

    def test_duplicate_registration_rejected(self):
        family = ModelFamily(
            name="birth-death", builder=lambda params: None
        )
        with pytest.raises(ZooError, match="already registered"):
            zoo.register_model(family)

    def test_register_replace_and_unregister(self):
        family = ModelFamily(
            name="test-temp-family",
            builder=lambda params: None,
            defaults={"x": 1},
        )
        try:
            zoo.register_model(family)
            zoo.register_model(family, replace=True)
            assert zoo.get_model("test-temp-family").defaults == {"x": 1}
        finally:
            zoo.unregister_model("test-temp-family")
        with pytest.raises(UnknownFamilyError):
            zoo.get_model("test-temp-family")

    def test_unknown_parameter_rejected(self):
        with pytest.raises(ZooError, match="unknown parameter"):
            zoo.build("mimo-1xN", {"antennas": 3})


# ----------------------------------------------------------------------
# Pipeline: every family builds with full provenance
# ----------------------------------------------------------------------

EXPECTED_REDUCTIONS = {
    "mimo-1xN": "symmetry",
    "mimo-NRx2": "symmetry",
    "viterbi-memory-m": "abstraction",
    "viterbi-errcnt": "abstraction",
    "viterbi-convergence": "none",
    "birth-death": "lumping",
    "random-sparse": "lumping",
}


class TestPipeline:
    @pytest.mark.parametrize("name", BUILTIN_FAMILIES)
    def test_every_family_builds_at_defaults(self, name):
        scenario = zoo.build(name)
        assert isinstance(scenario, BuiltScenario)
        assert scenario.family == name
        assert scenario.chain.num_states == scenario.reduced_states > 0
        assert scenario.reduction == EXPECTED_REDUCTIONS[name]
        assert scenario.build_seconds >= 0.0
        assert scenario.reduce_seconds >= 0.0
        if scenario.full_states is not None:
            assert scenario.reduced_states <= scenario.full_states
        # The default property checks on the built chain.
        value = check(scenario.chain, scenario.default_property).value
        assert 0.0 <= float(value) <= 1.0

    @pytest.mark.parametrize(
        "name,params",
        [
            ("mimo-1xN", None),
            ("mimo-NRx2", {"num_rx": 1}),
            ("viterbi-memory-m", None),
            ("viterbi-errcnt", None),
            ("viterbi-convergence", {"traceback_length": 3, "num_levels": 3}),
            ("birth-death", {"n": 12}),
            ("random-sparse", None),
        ],
    )
    def test_reduced_bisimilar_to_full_at_small_params(self, name, params):
        """The zoo's soundness bar: are_bisimilar() on every family."""
        scenario = zoo.build(name, params, verify=True)
        assert scenario.verified is True
        assert scenario.full_chain is not None

    def test_random_sparse_lumps_to_block_graph(self):
        scenario = zoo.build("random-sparse")
        assert scenario.full_states == 64
        # Strongly lumpable by construction: quotient = block graph.
        assert scenario.reduced_states == 8
        assert scenario.reduction == "lumping"
        assert scenario.reduce_seconds > 0.0

    def test_full_build_limit_covers_lumping_scale(self):
        # The vectorized reduction engine handles 10^5+-state fallbacks;
        # the pipeline's full-model ceiling must not regress below that.
        assert pipeline.FULL_BUILD_LIMIT >= 500_000

    def test_large_random_sparse_through_lumping_fallback(self):
        # 20k states through build + refine + verified quotient — the
        # (scaled-down) shape of the CI smoke's 10^5-state scenario.
        scenario = zoo.build(
            "random-sparse", {"n": 20_000, "num_blocks": 1000, "degree": 3}
        )
        assert scenario.reduction == "lumping"
        assert scenario.reduced_states == 1000
        assert scenario.extra["refine_final_blocks"] == 1000

    def test_mimo_reduction_factor_and_counts(self):
        scenario = zoo.build("mimo-1xN", keep_full=True)
        assert scenario.full_chain is not None
        assert scenario.full_states == scenario.full_chain.num_states == 2592
        assert scenario.reduction_factor == pytest.approx(
            2592 / scenario.reduced_states
        )

    def test_no_reduce_builds_full_model(self):
        full = zoo.build("mimo-1xN", reduce=False)
        reduced = zoo.build("mimo-1xN")
        assert full.chain.num_states == 2592
        assert full.reduction == "none"
        # Same property, same answer, on both chains.
        prop = "P=? [ F<=10 flag ]"
        assert check(full.chain, prop).value == pytest.approx(
            check(reduced.chain, prop).value, abs=1e-10
        )

    def test_full_model_too_large_raises(self):
        # 1x4 detector: full support is ~3.4M states — counted, never built.
        scenario = zoo.build("mimo-1xN", {"num_rx": 4})
        assert scenario.full_states > 1_000_000
        with pytest.raises(ZooError, match="cannot build its full model"):
            zoo.build("mimo-1xN", {"num_rx": 4}, verify=True)

    def test_engine_registration(self):
        engine = Engine()
        scenario = zoo.build("birth-death", engine=engine)
        assert engine.num_registered_chains == 1
        # The registered chain's caches are shared by later checks.
        check(scenario.chain, "P=? [ F goal ]", engine=engine)
        assert engine.stats.prob01_computations >= 1
        assert engine.num_registered_chains == 1  # same chain, same slot

    def test_verify_failure_raises_soundness_error(self):
        from repro.dtmc import dtmc_from_dict

        fair = dtmc_from_dict(
            {"a": {"a": 0.5, "b": 0.5}, "b": {"b": 1.0}},
            initial="a",
            labels={"flag": ["b"]},
        )
        biased = dtmc_from_dict(
            {"a": {"a": 0.1, "b": 0.9}, "b": {"b": 1.0}},
            initial="a",
            labels={"flag": ["b"]},
        )

        def _builder(params):
            return FamilyBuild(
                build_reduced=lambda: _wrap(biased),
                build_full=lambda: _wrap(fair),
                reduction="abstraction",
                respect=("flag",),
            )

        def _wrap(chain):
            from repro.dtmc.builder import ExplorationResult

            return ExplorationResult(
                chain=chain, states=list(chain.states), index={}, bfs_levels=0
            )

        zoo.register_model(
            ModelFamily(name="test-broken-reduction", builder=_builder)
        )
        try:
            with pytest.raises(ReductionSoundnessError, match="NOT bisimilar"):
                zoo.build("test-broken-reduction", verify=True)
            # Without verification the (unsound) build goes through.
            assert zoo.build("test-broken-reduction").verified is None
        finally:
            zoo.unregister_model("test-broken-reduction")

    def test_viterbi_memory2_falls_back_to_lumping(self):
        scenario = zoo.build(
            "viterbi-memory-m",
            {"taps": (1.0, 0.5, 0.5), "memory": 2, "traceback_length": 3},
        )
        assert scenario.reduction == "lumping"
        assert scenario.reduced_states <= scenario.full_states


# ----------------------------------------------------------------------
# Exact vs statistical backends: the Hoeffding agreement bar
# ----------------------------------------------------------------------

class TestExactVsStatistical:
    EPSILON = 0.05
    DELTA = 0.1

    @pytest.mark.parametrize("family", ["mimo-1xN", "viterbi-memory-m"])
    def test_apmc_sweep_agrees_with_exact(self, family):
        smc = SmcConfig(epsilon=self.EPSILON, delta=self.DELTA, seed=0)
        exact = zoo.sweep(
            family, points=[{}], backend="exact", executor="serial"
        )
        apmc = zoo.sweep(
            family, points=[{}], backend="apmc", smc=smc, executor="serial"
        )
        assert exact[0].ok and apmc[0].ok
        estimate = apmc[0].value.estimate
        assert apmc[0].value.samples == apmc[0].value.samples
        assert abs(estimate - exact[0].value) <= self.EPSILON

    def test_sprt_sweep_decides_correctly(self):
        exact = zoo.sweep(
            "viterbi-memory-m", points=[{}], backend="exact",
            executor="serial",
        )[0].value
        for theta, expected in [(exact - 0.1, True), (exact + 0.1, False)]:
            result = zoo.sweep(
                "viterbi-memory-m", points=[{}], backend="sprt",
                theta=theta, executor="serial",
            )[0]
            assert result.ok
            assert result.value.accept is expected


# ----------------------------------------------------------------------
# Zoo sweeps
# ----------------------------------------------------------------------

class TestZooSweep:
    def test_exact_grid_sweep(self):
        results = zoo.sweep(
            "mimo-1xN",
            {"snr_db": [4.0, 8.0], "num_y_levels": [2, 3]},
            "P=? [ F<=10 flag ]",
            executor="serial",
        )
        assert len(results) == 4
        assert all(r.ok for r in results)
        assert results[0].point == {"snr_db": 4.0, "num_y_levels": 2}
        # Higher SNR -> lower error probability at equal quantization.
        by_point = {tuple(sorted(r.point.items())): r.value for r in results}
        assert by_point[
            (("num_y_levels", 3), ("snr_db", 8.0))
        ] < by_point[(("num_y_levels", 3), ("snr_db", 4.0))]

    def test_base_params_fix_the_plane(self):
        results = zoo.sweep(
            "birth-death",
            {"n": [8, 12]},
            "P=? [ F<=50 goal ]",
            base_params={"p_up": 0.4},
            executor="serial",
        )
        assert all(r.ok for r in results)
        assert results[0].value > results[1].value  # smaller chain hits sooner

    def test_executor_independent_statistical_results(self):
        smc = SmcConfig(epsilon=0.05, delta=0.1, seed=7)
        kwargs = dict(
            axes={"snr_db": [4.0, 8.0]}, backend="apmc", smc=smc
        )
        serial = zoo.sweep("mimo-1xN", executor="serial", **kwargs)
        threaded = zoo.sweep("mimo-1xN", executor="thread", **kwargs)
        assert [r.value.estimate for r in serial] == [
            r.value.estimate for r in threaded
        ]

    def test_axes_and_points_are_exclusive(self):
        with pytest.raises(ValueError, match="exactly one"):
            zoo.sweep("mimo-1xN", {"snr_db": [4.0]}, points=[{}])
        with pytest.raises(ValueError, match="exactly one"):
            zoo.sweep("mimo-1xN")

    def test_unknown_family_fails_fast(self):
        with pytest.raises(UnknownFamilyError):
            zoo.sweep("nope", {"x": [1]})

    def test_survey_whole_zoo(self):
        results = zoo.survey(executor="serial")
        assert set(results) >= set(BUILTIN_FAMILIES)
        assert all(r.ok for r in results.values())


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------

class TestCli:
    def test_list(self, capsys):
        assert zoo_main(["list"]) == 0
        out = capsys.readouterr().out
        for name in BUILTIN_FAMILIES:
            assert name in out

    def test_list_tag_filter(self, capsys):
        assert zoo_main(["list", "--tag", "synthetic"]) == 0
        out = capsys.readouterr().out
        assert "birth-death" in out and "mimo-1xN" not in out

    def test_build_with_params_verify_and_check(self, capsys):
        code = zoo_main(
            [
                "build", "viterbi-memory-m",
                "-p", "snr_db=6.0",
                "--verify", "--check",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "verified=True" in out
        assert "abstraction" in out
        assert "snr_db=6.0" in out

    def test_build_unknown_family_exits_nonzero(self, capsys):
        assert zoo_main(["build", "no-such-family"]) == 2
        assert "no family named" in capsys.readouterr().err

    def test_sweep_exact(self, capsys):
        code = zoo_main(
            [
                "sweep", "birth-death",
                "-g", "n=8,12",
                "--executor", "serial",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "n=8" in out and "n=12" in out and "0 failed" in out

    def test_sweep_sprt_without_theta_is_friendly(self, capsys):
        code = zoo_main(
            ["sweep", "viterbi-memory-m", "--backend", "sprt"]
        )
        assert code == 2
        assert "requires --theta" in capsys.readouterr().err

    def test_sweep_apmc(self, capsys):
        code = zoo_main(
            [
                "sweep", "mimo-1xN",
                "-g", "snr_db=8.0",
                "--backend", "apmc",
                "--epsilon", "0.05", "--delta", "0.1",
                "--executor", "serial",
            ]
        )
        assert code == 0
        assert "samples" in capsys.readouterr().out

    def test_survey(self, capsys):
        assert zoo_main(["survey", "--executor", "serial"]) == 0
        out = capsys.readouterr().out
        assert "0 failed" in out


# ----------------------------------------------------------------------
# Determinism
# ----------------------------------------------------------------------

class TestDeterminism:
    def test_random_sparse_is_seed_deterministic(self):
        a = zoo.build("random-sparse", {"seed": 3})
        b = zoo.build("random-sparse", {"seed": 3})
        c = zoo.build("random-sparse", {"seed": 4})
        assert np.allclose(
            a.full_chain.transition_matrix.toarray()
            if a.full_chain is not None
            else a.chain.transition_matrix.toarray(),
            b.full_chain.transition_matrix.toarray()
            if b.full_chain is not None
            else b.chain.transition_matrix.toarray(),
        )
        assert a.chain.num_states == b.chain.num_states
        # Different seed, different chain (overwhelmingly likely).
        assert not np.allclose(
            a.chain.transition_matrix.toarray(),
            c.chain.transition_matrix.toarray(),
        )
