"""Tests for the survey-history axis (ISSUE 9).

Covers the cross-salt behavior end to end:

* the store layer — ``salts()``, ``history()`` insertion ordering,
  ``compare()`` classification (unchanged / drifted / appeared /
  vanished) and its tolerance knob;
* the v1 -> v2 schema migration (salt column added in place, old rows
  readable under salt ``''``);
* ``StoredResult.describe()`` / ``StoreStats`` schema + per-salt rows;
* trend analytics — verdict ladder (stable / drift / flagged), axis
  summaries, scenario param parsing;
* the rendering layer — sparkline SVG and the dashboard page;
* the HTTP surfaces — ``/history`` JSON round-trip, ``/dashboard``
  HTML, and their error statuses;
* the CLI — ``history diff`` exits non-zero on planted drift.
"""

import json
import sqlite3
import time
import urllib.error
import urllib.request

import pytest

from repro.core import Guarantee
from repro.history import (
    TrendReport,
    render_dashboard,
    scenario_params,
    sparkline,
    trend_report,
    trend_reports,
)
from repro.resilience import ValidationWarning
from repro.service import Coordinator, Frontend, FrontendServer
from repro.store import (
    DRIFT_TOLERANCE,
    HistoryPoint,
    ResultStore,
    metric_of,
    relative_drift,
)
from repro.store.result_store import SCHEMA_VERSION
from repro.zoo.cli import main as cli_main

FORMULA = "P=? [ F<=10 flag ]"


def _scen(family, **params):
    """The real zoo scenario identity, as ``zoo.sweep`` banks them.

    Uses the sweep layer's own key builder so the rows seeded here are
    addressable by the HTTP front-end (which recomputes the identity
    from query parameters, merging family defaults).
    """
    from repro.zoo.sweep import _point_store_key

    return _point_store_key(
        params, family=family, base_params=None, reduce=True
    )


def _seed_two_salts(path, *, drift_to=0.75):
    """Bank the same 2-point grid under salts v1 and v2.

    The ``snr_db=4.0`` point drifts from 0.5 to ``drift_to`` between
    versions; the ``snr_db=6.0`` point stays at 0.9.  ``v2`` also
    banks a point ``v1`` never had (``snr_db=8.0``).
    """
    for salt, moved in (("v1", 0.5), ("v2", drift_to)):
        with ResultStore(path, salt=salt) as store:
            store.put(_scen("mimo-1xN", num_rx=2, snr_db=4.0), FORMULA,
                      moved, backend="exact", family="mimo-1xN", seconds=0.01)
            store.put(_scen("mimo-1xN", num_rx=2, snr_db=6.0), FORMULA,
                      0.9, backend="exact", family="mimo-1xN", seconds=0.01)
    with ResultStore(path, salt="v2") as store:
        store.put(_scen("mimo-1xN", num_rx=2, snr_db=8.0), FORMULA,
                  0.95, backend="exact", family="mimo-1xN", seconds=0.01)
    return path


# ----------------------------------------------------------------------
# Drift primitives
# ----------------------------------------------------------------------

class TestDriftPrimitives:
    def test_metric_of_scalars_and_results(self):
        assert metric_of(0.25) == 0.25
        assert metric_of(True) == 1.0
        assert metric_of("not numeric") is None
        g = Guarantee("P", FORMULA, 0.5, 2, 2, 0.0)
        assert metric_of(g) == 0.5

    def test_relative_drift_symmetric_and_scale_free(self):
        assert relative_drift(0.5, 0.75) == pytest.approx(1 / 3)
        assert relative_drift(0.75, 0.5) == pytest.approx(1 / 3)
        assert relative_drift(5e6, 7.5e6) == pytest.approx(1 / 3)
        assert relative_drift(0.0, 0.0) == 0.0
        assert relative_drift(None, 0.5) is None

    def test_history_point_flagged(self):
        warn = ValidationWarning("range", "out of [0,1]", value=1.2)
        g = Guarantee("P", FORMULA, 1.2, 2, 2, 0.0, warnings=(warn,))
        point = HistoryPoint(salt="v1", value=g, seconds=0.0,
                             samples=0, created=0.0)
        assert point.flagged and point.metric == 1.2


# ----------------------------------------------------------------------
# Store layer: salts, history, compare
# ----------------------------------------------------------------------

class TestStoreHistory:
    def test_salts_in_first_seen_order(self, tmp_path):
        db = _seed_two_salts(tmp_path / "h.sqlite")
        with ResultStore(db) as store:
            assert store.salts() == ["v1", "v2"]

    def test_history_ordering_across_salts(self, tmp_path):
        db = _seed_two_salts(tmp_path / "h.sqlite")
        with ResultStore(db) as store:
            points = store.history(
                _scen("mimo-1xN", num_rx=2, snr_db=4.0), FORMULA, "exact"
            )
        assert [p.salt for p in points] == ["v1", "v2"]
        assert [p.metric for p in points] == [0.5, 0.75]
        assert all(p.key for p in points)

    def test_history_narrows_by_salt(self, tmp_path):
        db = _seed_two_salts(tmp_path / "h.sqlite")
        with ResultStore(db) as store:
            only_v2 = store.history(
                _scen("mimo-1xN", num_rx=2, snr_db=4.0), FORMULA, "exact",
                salt="v2",
            )
        assert [p.salt for p in only_v2] == ["v2"]

    def test_compare_classification(self, tmp_path):
        db = _seed_two_salts(tmp_path / "h.sqlite")
        with ResultStore(db) as store:
            diff = store.compare("v1", "v2")
        assert len(diff.drifted) == 1
        assert diff.drifted[0].drift == pytest.approx(1 / 3)
        assert len(diff.unchanged) == 1
        assert len(diff.appeared) == 1  # snr_db=8.0 only exists in v2
        assert diff.vanished == []
        assert diff.has_drift
        assert diff.max_drift == pytest.approx(1 / 3)
        text = diff.describe()
        assert "DRIFT" in text and "NEW" in text

    def test_compare_vanished_is_symmetric(self, tmp_path):
        db = _seed_two_salts(tmp_path / "h.sqlite")
        with ResultStore(db) as store:
            diff = store.compare("v2", "v1")
        assert len(diff.vanished) == 1 and diff.appeared == []

    def test_compare_tolerance_silences_drift(self, tmp_path):
        db = _seed_two_salts(tmp_path / "h.sqlite")
        with ResultStore(db) as store:
            loose = store.compare("v1", "v2", tolerance=0.5)
        assert not loose.has_drift and len(loose.unchanged) == 2

    def test_compare_family_filter(self, tmp_path):
        db = _seed_two_salts(tmp_path / "h.sqlite")
        with ResultStore(db, salt="v1") as store:
            store.put(_scen("birth-death", n=8), FORMULA, 0.1,
                      backend="exact", family="birth-death")
        with ResultStore(db, salt="v2") as store:
            store.put(_scen("birth-death", n=8), FORMULA, 0.9,
                      backend="exact", family="birth-death")
            narrowed = store.compare("v1", "v2", family="mimo-1xN")
        assert all(e.family == "mimo-1xN" for e in narrowed.entries)

    def test_stats_schema_and_per_salt_rows(self, tmp_path):
        db = _seed_two_salts(tmp_path / "h.sqlite")
        with ResultStore(db) as store:
            stats = store.stats()
            row = store.query(limit=1)[0]
        assert stats.schema_version == SCHEMA_VERSION
        assert stats.salts == {"v1": 2, "v2": 3}
        text = stats.describe()
        assert f"schema: v{SCHEMA_VERSION}" in text
        assert "rows per salt" in text and "v1=2" in text
        assert row.salt in ("v1", "v2")
        assert row.salt in row.describe() and row.formula in row.describe()


# ----------------------------------------------------------------------
# Schema migration
# ----------------------------------------------------------------------

V1_SCHEMA = """
CREATE TABLE results (
    key      TEXT PRIMARY KEY,
    scenario TEXT NOT NULL,
    family   TEXT,
    formula  TEXT NOT NULL,
    backend  TEXT NOT NULL,
    config   TEXT NOT NULL,
    payload  TEXT NOT NULL,
    seconds  REAL NOT NULL,
    samples  INTEGER NOT NULL DEFAULT 0,
    extra    TEXT NOT NULL DEFAULT '{}',
    created  REAL NOT NULL,
    updated  REAL NOT NULL,
    hits     INTEGER NOT NULL DEFAULT 0
);
CREATE INDEX idx_results_family ON results (family);
CREATE INDEX idx_results_backend ON results (backend);
"""


class TestMigration:
    def test_v1_file_migrates_in_place(self, tmp_path):
        db = tmp_path / "old.sqlite"
        conn = sqlite3.connect(db)
        conn.executescript(V1_SCHEMA)
        now = time.time()
        conn.execute(
            "INSERT INTO results (key, scenario, family, formula, backend,"
            " config, payload, seconds, created, updated)"
            " VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
            ("k1", '["legacy"]', "mimo-1xN", FORMULA, "exact", "null",
             json.dumps({"kind": "json", "data": 0.5}), 0.01, now, now),
        )
        conn.commit()
        conn.close()
        with ResultStore(db, salt="new") as store:
            assert store.salts() == [""]
            row = store.query(limit=1)[0]
            assert row.salt == "" and row.value == 0.5
            # New writes land under the new salt, beside the legacy row.
            store.put(_scen("mimo-1xN", snr_db=4.0), FORMULA, 0.6,
                      backend="exact", family="mimo-1xN")
            assert store.salts() == ["", "new"]
            assert store.stats().salts == {"": 1, "new": 1}


# ----------------------------------------------------------------------
# Trend analytics
# ----------------------------------------------------------------------

class TestTrend:
    def test_scenario_params_zoo_shape(self):
        scen = json.loads(json.dumps(_scen("mimo-1xN", num_rx=2, snr_db=4.0)))
        params = scenario_params(scen)
        # Overrides survive the defaults merge the sweep layer does.
        assert params["num_rx"] == 2 and params["snr_db"] == 4.0
        assert scenario_params({"n": 8}) == {"n": 8}
        assert scenario_params("opaque") == {}

    def test_trend_report_verdicts_and_axes(self, tmp_path):
        db = _seed_two_salts(tmp_path / "h.sqlite")
        with ResultStore(db) as store:
            report = trend_report(store, "mimo-1xN")
        assert isinstance(report, TrendReport)
        assert report.verdict == "drift"
        assert report.salts == ["v1", "v2"]
        assert report.max_drift == pytest.approx(1 / 3)
        assert len(report.series) == 3
        drifted = report.drifted
        assert len(drifted) == 1 and drifted[0].params["snr_db"] == 4.0
        (axis,) = report.axis_summaries()  # num_rx is fixed: not an axis
        assert axis.name == "snr_db" and axis.worst_value == 4.0
        assert "drift" in report.describe()

    def test_flagged_beats_drift(self, tmp_path):
        db = tmp_path / "f.sqlite"
        warn = ValidationWarning("range", "out of [0,1]", value=1.2)
        flagged = Guarantee("P", FORMULA, 1.2, 2, 2, 0.0, warnings=(warn,))
        with ResultStore(db, salt="v1") as store:
            store.put(_scen("birth-death", n=8), FORMULA, flagged,
                      backend="exact", family="birth-death")
        with ResultStore(db, salt="v2") as store:
            store.put(_scen("birth-death", n=8), FORMULA, 0.2,
                      backend="exact", family="birth-death")
            report = trend_report(store, "birth-death")
        assert report.verdict == "flagged"
        assert report.series[0].flagged

    def test_trend_reports_one_per_family(self, tmp_path):
        db = _seed_two_salts(tmp_path / "h.sqlite")
        with ResultStore(db, salt="v1") as store:
            store.put(_scen("birth-death", n=8), FORMULA, 0.1,
                      backend="exact", family="birth-death")
            reports = trend_reports(store)
        assert [r.family for r in reports] == ["birth-death", "mimo-1xN"]


# ----------------------------------------------------------------------
# Rendering
# ----------------------------------------------------------------------

class TestRender:
    def test_sparkline_svg(self):
        svg = sparkline([0.5, 0.6, 0.7])
        assert svg.startswith("<svg") and "<polyline" in svg
        assert "circle" in svg  # latest-point marker
        assert sparkline([]).startswith("<svg")  # empty-safe
        assert "<polyline" not in sparkline([0.5])  # single point: dot only
        assert "<polyline" in sparkline([0.5, None, 0.7])  # gaps skipped

    def test_dashboard_html(self, tmp_path):
        db = _seed_two_salts(tmp_path / "h.sqlite")
        with ResultStore(db) as store:
            html = render_dashboard(
                trend_reports(store),
                stats={"store": {"entries": 5}, "guarantee_hits": 1,
                       "guarantee_misses": 2, "uptime": 3},
                health={"status": "ok", "workers": 2, "workers_alive": 2},
            )
        assert html.startswith("<!DOCTYPE html>")
        assert "mimo-1xN" in html and "<svg" in html
        assert "drift" in html  # verdict badge text, not color alone
        assert "prefers-color-scheme" in html

    def test_dashboard_empty_state(self):
        html = render_dashboard([])
        assert "No banked guarantees" in html


# ----------------------------------------------------------------------
# HTTP surfaces
# ----------------------------------------------------------------------

class TestHttpSurfaces:
    def test_history_json_round_trip(self, tmp_path):
        db = _seed_two_salts(tmp_path / "h.sqlite")
        with ResultStore(db) as store:
            front = Frontend(Coordinator(salt="s"), store=store)
            status, body = front.route(
                "GET", "/history?family=mimo-1xN&num_rx=2&snr_db=4.0"
            )
        assert status == 200
        assert body["family"] == "mimo-1xN" and body["count"] == 2
        assert body["salts"] == ["v1", "v2"]
        assert [p["metric"] for p in body["points"]] == [0.5, 0.75]
        json.dumps(body)  # actually JSON-serializable

    def test_history_errors(self, tmp_path):
        front = Frontend(Coordinator(salt="s"))  # no store
        assert front.route("GET", "/history?family=birth-death")[0] == 503
        with ResultStore(tmp_path / "e.sqlite") as store:
            front = Frontend(Coordinator(salt="s"), store=store)
            assert front.route("GET", "/history")[0] == 400
            assert front.route("GET", "/history?family=nope")[0] == 400

    def test_dashboard_route(self, tmp_path):
        db = _seed_two_salts(tmp_path / "h.sqlite")
        with ResultStore(db) as store:
            front = Frontend(Coordinator(salt="s"), store=store)
            status, page = front.route("GET", "/dashboard")
            assert status == 200 and isinstance(page, str)
            assert "mimo-1xN" in page
            assert front.route("GET", "/dashboard?tolerance=nope")[0] == 400

    def test_served_content_types(self, tmp_path):
        db = _seed_two_salts(tmp_path / "h.sqlite")
        with ResultStore(db) as store:
            front = Frontend(Coordinator(salt="s"), store=store)
            with FrontendServer(front, port=0) as server:
                base = f"http://{server.address}"
                with urllib.request.urlopen(
                    f"{base}/dashboard", timeout=10
                ) as resp:
                    assert resp.status == 200
                    assert resp.headers["Content-Type"].startswith("text/html")
                    assert b"mimo-1xN" in resp.read()
                url = f"{base}/history?family=mimo-1xN&num_rx=2&snr_db=4.0"
                with urllib.request.urlopen(url, timeout=10) as resp:
                    assert resp.headers["Content-Type"].startswith(
                        "application/json"
                    )
                    assert json.load(resp)["count"] == 2


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------

class TestCli:
    def test_history_list(self, tmp_path, capsys):
        db = str(_seed_two_salts(tmp_path / "h.sqlite"))
        assert cli_main(["history", "list", "--store", db]) == 0
        out = capsys.readouterr().out
        assert "v1" in out and "v2" in out and f"schema v{SCHEMA_VERSION}" in out

    def test_history_show(self, tmp_path, capsys):
        db = str(_seed_two_salts(tmp_path / "h.sqlite"))
        assert cli_main(["history", "show", "mimo-1xN", "--store", db]) == 0
        out = capsys.readouterr().out
        assert "mimo-1xN" in out and "drift" in out
        assert cli_main(["history", "show", "nope", "--store", db]) == 1

    def test_history_diff_exits_nonzero_on_drift(self, tmp_path, capsys):
        db = str(_seed_two_salts(tmp_path / "h.sqlite"))
        assert cli_main(["history", "diff", "v1", "v2", "--store", db]) == 1
        out = capsys.readouterr().out
        assert "DRIFT" in out and "33.3" in out
        # Same salt: nothing drifted, exit 0.
        assert cli_main(["history", "diff", "v1", "v1", "--store", db]) == 0
        # Loose tolerance silences the planted drift.
        assert cli_main([
            "history", "diff", "v1", "v2", "--store", db,
            "--tolerance", "0.5",
        ]) == 0

    def test_default_tolerance_matches_store_constant(self, tmp_path, capsys):
        db = str(_seed_two_salts(tmp_path / "h.sqlite", drift_to=0.5 + 1e-9))
        # Sub-tolerance wobble: not drift at the 1e-6 default.
        assert DRIFT_TOLERANCE == 1e-6
        assert cli_main(["history", "diff", "v1", "v2", "--store", db]) == 0
