"""Tests for the BDD/MTBDD engine and the symbolic DTMC analysis."""

import itertools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dtmc import distribution_at, instantaneous_reward, bounded_reachability
from repro.symbolic import BDD, MTBDD, StateEncoding, SymbolicEngine
from repro.viterbi import ViterbiModelConfig, build_reduced_model

from helpers import knuth_yao_die, random_dtmcs, two_state_chain


class TestBDD:
    def test_terminals(self):
        bdd = BDD(2)
        assert bdd.FALSE == 0
        assert bdd.TRUE == 1

    def test_hash_consing(self):
        bdd = BDD(3)
        f = bdd.apply_and(bdd.var(0), bdd.var(1))
        g = bdd.apply_and(bdd.var(0), bdd.var(1))
        assert f == g  # pointer equality == semantic equality

    def test_negation_involution(self):
        bdd = BDD(3)
        f = bdd.apply_or(bdd.var(0), bdd.apply_and(bdd.var(1), bdd.var(2)))
        assert bdd.apply_not(bdd.apply_not(f)) == f

    def test_de_morgan(self):
        bdd = BDD(2)
        a, b = bdd.var(0), bdd.var(1)
        left = bdd.apply_not(bdd.apply_and(a, b))
        right = bdd.apply_or(bdd.apply_not(a), bdd.apply_not(b))
        assert left == right

    def test_evaluation_truth_table(self):
        bdd = BDD(2)
        f = bdd.apply_xor(bdd.var(0), bdd.var(1))
        for a, b in itertools.product([False, True], repeat=2):
            assert bdd.evaluate(f, {0: a, 1: b}) == (a != b)

    def test_cube(self):
        bdd = BDD(3)
        f = bdd.cube({0: True, 2: False})
        assert bdd.evaluate(f, {0: True, 1: False, 2: False})
        assert not bdd.evaluate(f, {0: True, 1: False, 2: True})

    def test_sat_count(self):
        bdd = BDD(3)
        assert bdd.sat_count(bdd.TRUE) == 8
        assert bdd.sat_count(bdd.FALSE) == 0
        assert bdd.sat_count(bdd.var(0)) == 4
        f = bdd.apply_or(bdd.var(0), bdd.var(1))
        assert bdd.sat_count(f) == 6

    def test_satisfying_assignments(self):
        bdd = BDD(2)
        f = bdd.apply_and(bdd.var(0), bdd.apply_not(bdd.var(1)))
        solutions = list(bdd.satisfying_assignments(f))
        assert solutions == [{0: True, 1: False}]

    def test_exists(self):
        bdd = BDD(2)
        f = bdd.apply_and(bdd.var(0), bdd.var(1))
        assert bdd.exists(f, [1]) == bdd.var(0)
        assert bdd.exists(f, [0, 1]) == bdd.TRUE

    def test_forall(self):
        bdd = BDD(2)
        f = bdd.apply_or(bdd.var(0), bdd.var(1))
        assert bdd.forall(f, [1]) == bdd.var(0)

    def test_restrict(self):
        bdd = BDD(2)
        f = bdd.apply_xor(bdd.var(0), bdd.var(1))
        assert bdd.restrict(f, 0, False) == bdd.var(1)
        assert bdd.restrict(f, 0, True) == bdd.apply_not(bdd.var(1))

    def test_support(self):
        bdd = BDD(4)
        f = bdd.apply_and(bdd.var(0), bdd.var(3))
        assert bdd.support(f) == [0, 3]

    def test_implies(self):
        bdd = BDD(2)
        a, b = bdd.var(0), bdd.var(1)
        f = bdd.apply_implies(a, b)
        assert bdd.evaluate(f, {0: False, 1: False})
        assert not bdd.evaluate(f, {0: True, 1: False})

    @given(st.integers(min_value=0, max_value=255))
    @settings(max_examples=40)
    def test_random_function_roundtrip(self, truth_table):
        """Any 3-variable function built from minterms evaluates correctly."""
        bdd = BDD(3)
        f = bdd.FALSE
        for m in range(8):
            if (truth_table >> m) & 1:
                bits = {i: bool((m >> i) & 1) for i in range(3)}
                f = bdd.apply_or(f, bdd.cube(bits))
        for m in range(8):
            bits = {i: bool((m >> i) & 1) for i in range(3)}
            assert bdd.evaluate(f, bits) == bool((truth_table >> m) & 1)
        assert bdd.sat_count(f) == bin(truth_table).count("1")


class TestMTBDD:
    def test_constant_sharing(self):
        manager = MTBDD(2)
        assert manager.constant(0.5) == manager.constant(0.5)

    def test_pointwise_arithmetic(self):
        manager = MTBDD(2)
        f = manager.var(0, high_value=2.0, low_value=1.0)
        g = manager.var(1, high_value=10.0, low_value=0.0)
        h = manager.plus(f, g)
        assert manager.evaluate(h, {0: True, 1: True}) == 12.0
        assert manager.evaluate(h, {0: False, 1: False}) == 1.0
        p = manager.times(f, g)
        assert manager.evaluate(p, {0: True, 1: True}) == 20.0

    def test_min_max(self):
        manager = MTBDD(1)
        f = manager.var(0, 5.0, 1.0)
        g = manager.constant(3.0)
        assert manager.evaluate(manager.minimum(f, g), {0: True}) == 3.0
        assert manager.evaluate(manager.maximum(f, g), {0: False}) == 3.0

    def test_cube_value(self):
        manager = MTBDD(3)
        f = manager.cube({0: True, 1: False}, value=0.25)
        assert manager.evaluate(f, {0: True, 1: False, 2: True}) == 0.25
        assert manager.evaluate(f, {0: True, 1: True, 2: True}) == 0.0

    def test_sum_abstract(self):
        manager = MTBDD(2)
        # f = indicator(v0) * 3 + indicator(!v0) * 1, over v0 only
        f = manager.var(0, 3.0, 1.0)
        total = manager.sum_abstract(f, [0])
        assert manager.terminal_value(total) == 4.0

    def test_sum_abstract_free_variable_doubles(self):
        manager = MTBDD(2)
        f = manager.constant(2.5)
        total = manager.sum_abstract(f, [0, 1])
        assert manager.terminal_value(total) == 10.0

    def test_threshold(self):
        manager = MTBDD(1)
        f = manager.var(0, 0.8, 0.2)
        t = manager.threshold(f, 0.5)
        assert manager.evaluate(t, {0: True}) == 1.0
        assert manager.evaluate(t, {0: False}) == 0.0

    def test_ite(self):
        manager = MTBDD(1)
        cond = manager.var(0)  # 0/1 indicator
        result = manager.ite(cond, manager.constant(7.0), manager.constant(9.0))
        assert manager.evaluate(result, {0: True}) == 7.0
        assert manager.evaluate(result, {0: False}) == 9.0

    def test_rename(self):
        manager = MTBDD(4)
        f = manager.var(0, 5.0, 2.0)
        g = manager.rename(f, {0: 1})
        assert manager.evaluate(g, {1: True}) == 5.0
        assert manager.evaluate(g, {0: True, 1: False}) == 2.0

    def test_terminals_listing(self):
        manager = MTBDD(1)
        f = manager.var(0, 0.25, 0.75)
        assert manager.terminals(f) == [0.25, 0.75]


class TestStateEncoding:
    def test_bit_budget(self):
        assert StateEncoding(1).num_bits == 1
        assert StateEncoding(2).num_bits == 1
        assert StateEncoding(3).num_bits == 2
        assert StateEncoding(1000).num_bits == 10

    def test_interleaved_levels(self):
        enc = StateEncoding(4)
        assert enc.row_levels == [0, 2]
        assert enc.col_levels == [1, 3]

    def test_assignments_roundtrip(self):
        enc = StateEncoding(8)
        a = enc.row_assignment(5)
        assert a == {0: True, 2: False, 4: True}


class TestSymbolicEngine:
    def test_distribution_matches_sparse(self):
        chain = knuth_yao_die()
        engine = SymbolicEngine(chain)
        for t in (0, 1, 3, 7):
            symbolic = engine.distribution_at(t)
            sparse = distribution_at(chain, t)
            assert np.allclose(symbolic, sparse, atol=1e-12)

    def test_instantaneous_reward_matches_sparse(self):
        chain = two_state_chain(p=0.4, q=0.2)
        engine = SymbolicEngine(chain)
        for t in (0, 1, 5, 20):
            assert engine.instantaneous_reward("hit", t) == pytest.approx(
                instantaneous_reward(chain, "hit", t)
            )

    def test_bounded_reachability_matches_sparse(self):
        chain = knuth_yao_die()
        engine = SymbolicEngine(chain)
        for t in (0, 1, 3, 6):
            symbolic = engine.bounded_reachability("done", t)
            sparse = float(
                bounded_reachability(chain, chain.label_vector("done"), t)
                @ chain.initial_distribution
            )
            assert symbolic == pytest.approx(sparse)

    def test_viterbi_p2_on_symbolic_engine(self):
        """The paper's P2 on the reduced Viterbi model, symbolically."""
        config = ViterbiModelConfig(traceback_length=3, num_levels=3, pm_max=3)
        result = build_reduced_model(config)
        engine = SymbolicEngine(result.chain)
        symbolic = engine.instantaneous_reward("flag", 30)
        sparse = instantaneous_reward(result.chain, "flag", 30)
        assert symbolic == pytest.approx(sparse, abs=1e-12)

    def test_mtbdd_shares_structure(self):
        """Node count well below nnz on a highly regular chain."""
        # A uniform random walk on 64 states has 128 transitions but a
        # compact symbolic form.
        from repro.dtmc import build_dtmc

        def step(i):
            return [(0.5, (i + 1) % 64), (0.5, (i - 1) % 64)]

        chain = build_dtmc(step, initial=0).chain
        engine = SymbolicEngine(chain)
        assert engine.matrix_nodes < chain.num_transitions

    @given(random_dtmcs(max_states=5), st.integers(min_value=0, max_value=6))
    @settings(max_examples=15, deadline=None)
    def test_random_chain_agreement(self, chain, t):
        engine = SymbolicEngine(chain)
        assert np.allclose(
            engine.distribution_at(t), distribution_at(chain, t), atol=1e-9
        )
