"""Tests for the Monte-Carlo baseline (repro.sim) and SMC (repro.smc)."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mimo import MimoSystemConfig, build_detector_model
from repro.pctl import check
from repro.sim import (
    BerEstimate,
    clopper_pearson_interval,
    required_trials,
    rule_of_three_upper_bound,
    simulate_detector_ber,
    simulate_detector_ber_true_channel,
    simulate_viterbi_ber,
    simulate_viterbi_convergence,
    wilson_interval,
)
from repro.smc import (
    approximate_probability,
    hoeffding_sample_size,
    sprt_decide,
)
from repro.viterbi import ViterbiModelConfig, build_convergence_model, build_reduced_model
from repro.comm import bpsk_diversity_ber


class TestIntervals:
    def test_wilson_contains_point(self):
        low, high = wilson_interval(10, 100)
        assert low < 0.1 < high

    def test_wilson_zero_errors(self):
        low, high = wilson_interval(0, 1000)
        assert low == pytest.approx(0.0, abs=1e-12)
        assert 0 < high < 0.01

    def test_clopper_pearson_contains_point(self):
        cp = clopper_pearson_interval(5, 1000)
        assert cp[0] < 5 / 1000 < cp[1]

    def test_clopper_pearson_zero_errors(self):
        low, high = clopper_pearson_interval(0, 1000)
        assert low == 0.0
        assert 0 < high < 0.01

    def test_rule_of_three(self):
        assert rule_of_three_upper_bound(100_000) == pytest.approx(
            3.0 / 100_000, rel=0.01
        )

    def test_required_trials_low_ber(self):
        # ~1e-7 BER at 10% accuracy needs billions of trials.
        assert required_trials(1e-7, 0.1) > 1e9

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            wilson_interval(5, 0)
        with pytest.raises(ValueError):
            wilson_interval(11, 10)
        with pytest.raises(ValueError):
            required_trials(0.0)

    @given(
        st.integers(min_value=0, max_value=50),
        st.integers(min_value=50, max_value=10_000),
    )
    @settings(max_examples=50)
    def test_wilson_is_valid_interval(self, errors, trials):
        low, high = wilson_interval(errors, trials)
        assert 0.0 <= low <= high <= 1.0
        assert low <= errors / trials + 1e-12
        assert high >= errors / trials - 1e-12


class TestBerEstimate:
    def test_point_and_interval(self):
        est = BerEstimate(errors=25, trials=1000)
        assert est.point == 0.025
        assert est.contains(0.025)

    def test_str_is_informative(self):
        text = str(BerEstimate(errors=1, trials=10_000))
        assert "1/10000" in text
        assert "CI" in text

    def test_standard_error(self):
        est = BerEstimate(errors=100, trials=10_000)
        assert est.standard_error == pytest.approx(
            math.sqrt(0.01 * 0.99 / 10_000)
        )


class TestSimulators:
    def test_viterbi_simulation_matches_model(self):
        cfg = ViterbiModelConfig()
        model = check(build_reduced_model(cfg).chain, "S=? [ flag ]").value
        estimate = simulate_viterbi_ber(cfg, num_steps=60_000, seed=1)
        low, high = estimate.interval
        assert low * 0.7 <= model <= high * 1.3

    def test_viterbi_convergence_simulation_matches_model(self):
        cfg = ViterbiModelConfig()
        model = check(build_convergence_model(cfg).chain, "S=? [ nonconv ]").value
        estimate = simulate_viterbi_convergence(cfg, num_steps=60_000, seed=2)
        low, high = estimate.interval
        assert low * 0.7 <= model <= high * 1.3

    def test_detector_simulation_matches_model(self):
        cfg = MimoSystemConfig(num_rx=2, snr_db=8.0)
        model = check(build_detector_model(cfg).chain, "S=? [ flag ]").value
        estimate = simulate_detector_ber(cfg, num_steps=300_000, seed=3)
        assert estimate.contains(model) or abs(estimate.point - model) < 0.3 * model

    def test_true_channel_detector_near_theory(self):
        cfg = MimoSystemConfig(num_rx=2, snr_db=6.0)
        estimate = simulate_detector_ber_true_channel(cfg, num_steps=150_000, seed=4)
        theory = bpsk_diversity_ber(6.0, 2)
        assert 0.3 * theory < estimate.point < 3.0 * theory

    def test_zero_errors_at_high_diversity(self):
        """The paper's point: 1e5 steps of simulation see no errors
        where model checking still resolves the BER."""
        cfg = MimoSystemConfig(num_rx=4, snr_db=12.0)
        estimate = simulate_detector_ber(cfg, num_steps=100_000, seed=5)
        assert estimate.errors == 0
        model = check(build_detector_model(cfg).chain, "S=? [ flag ]").value
        assert 0 < model < rule_of_three_upper_bound(100_000)

    def test_seed_reproducibility(self):
        a = simulate_detector_ber(num_steps=5_000, seed=9)
        b = simulate_detector_ber(num_steps=5_000, seed=9)
        assert a.errors == b.errors


class TestHoeffding:
    def test_sample_size_formula(self):
        assert hoeffding_sample_size(0.01, 0.01) == math.ceil(
            math.log(200.0) / 0.0002
        )

    def test_sample_size_validation(self):
        with pytest.raises(ValueError):
            hoeffding_sample_size(0.0, 0.1)
        with pytest.raises(ValueError):
            hoeffding_sample_size(0.1, 1.5)

    def test_estimates_fair_coin(self):
        result = approximate_probability(
            lambda rng: rng.random() < 0.5, epsilon=0.02, delta=0.05, seed=6
        )
        assert abs(result.estimate - 0.5) < 0.02
        low, high = result.interval
        assert low <= 0.5 <= high

    def test_result_str(self):
        result = approximate_probability(
            lambda rng: True, epsilon=0.1, delta=0.1, seed=0
        )
        assert "samples" in str(result)
        assert result.estimate == 1.0


class TestSprt:
    def test_accepts_true_hypothesis(self):
        result = sprt_decide(
            lambda rng: rng.random() < 0.7, theta=0.5, half_width=0.05, seed=7
        )
        assert result.accept
        assert result.samples < 1000

    def test_rejects_false_hypothesis(self):
        result = sprt_decide(
            lambda rng: rng.random() < 0.3, theta=0.5, half_width=0.05, seed=8
        )
        assert not result.accept

    def test_fewer_samples_for_clear_cases(self):
        clear = sprt_decide(
            lambda rng: rng.random() < 0.95, theta=0.5, half_width=0.05, seed=9
        )
        close = sprt_decide(
            lambda rng: rng.random() < 0.60, theta=0.5, half_width=0.05, seed=9
        )
        assert clear.samples < close.samples

    def test_invalid_indifference_region(self):
        with pytest.raises(ValueError):
            sprt_decide(lambda rng: True, theta=0.005, half_width=0.01)

    def test_smc_agrees_with_model_checker(self):
        """Qualitative SMC on the detector: BER < 0.01 at 8 dB."""
        cfg = MimoSystemConfig(num_rx=2, snr_db=8.0)
        model = check(build_detector_model(cfg).chain, "S=? [ flag ]").value
        assert model < 0.01

        import numpy as np

        h_quantizer = cfg.make_h_quantizer()
        y_quantizer = cfg.make_y_quantizer()

        def one_cycle_error(rng: np.random.Generator) -> bool:
            bit = int(rng.integers(0, 2))
            s = 2.0 * bit - 1.0
            h = h_quantizer.quantize(rng.normal(0.0, math.sqrt(0.5), cfg.num_blocks))
            y = y_quantizer.quantize(h * s + rng.normal(0.0, cfg.sigma, cfg.num_blocks))
            detected = 0 if np.abs(y + h).sum() <= np.abs(y - h).sum() else 1
            return detected != bit

        # Test "P(error) >= 0.01" - should be rejected.
        result = sprt_decide(one_cycle_error, theta=0.01, half_width=0.005, seed=10)
        assert not result.accept