"""Tests for interval-bounded operators: U[a,b], F[a,b], G[a,b]."""

import pytest

from repro.dtmc import dtmc_from_dict
from repro.pctl import (
    Eventually,
    PctlSyntaxError,
    Until,
    check,
    parse_formula,
)

from helpers import knuth_yao_die, two_state_chain


def pipeline_chain():
    """Deterministic 4-stage pipeline: s0 -> s1 -> s2 -> s3 (absorbing)."""
    return dtmc_from_dict(
        {"s0": {"s1": 1.0}, "s1": {"s2": 1.0}, "s2": {"s3": 1.0}, "s3": {"s3": 1.0}},
        initial="s0",
        labels={"ready": ["s2"], "done": ["s3"]},
    )


class TestParsing:
    def test_interval_until(self):
        formula = parse_formula("P=? [ a U[2,5] b ]")
        assert formula.path == Until(
            parse_formula("a"), parse_formula("b"), bound=5, lower=2
        )

    def test_interval_eventually(self):
        formula = parse_formula("P=? [ F[1,3] done ]")
        assert formula.path == Eventually(parse_formula("done"), bound=3, lower=1)

    def test_interval_globally(self):
        formula = parse_formula("P=? [ G[2,4] safe ]")
        assert formula.path.lower == 2
        assert formula.path.bound == 4

    def test_round_trip(self):
        for text in [
            "P=? [ a U[2,5] b ]",
            "P=? [ F[1,3] done ]",
            "P=? [ G[2,4] safe ]",
        ]:
            assert parse_formula(str(parse_formula(text))) == parse_formula(text)

    def test_empty_window_rejected(self):
        with pytest.raises(PctlSyntaxError, match="empty"):
            parse_formula("P=? [ F[5,2] done ]")

    def test_weak_until_interval_rejected(self):
        with pytest.raises(PctlSyntaxError, match="weak"):
            parse_formula("P=? [ a W[1,2] b ]")

    def test_plain_bounds_unchanged(self):
        assert parse_formula("P=? [ F<=3 done ]").path.lower == 0


class TestSemanticsDeterministic:
    """On a deterministic pipeline, windows either hit or miss exactly."""

    def test_event_inside_window(self):
        chain = pipeline_chain()
        assert check(chain, "P=? [ F[2,2] ready ]").value == pytest.approx(1.0)
        assert check(chain, "P=? [ F[1,3] ready ]").value == pytest.approx(1.0)

    def test_event_outside_window(self):
        chain = pipeline_chain()
        # `ready` holds only at step 2.
        assert check(chain, "P=? [ F[0,1] ready ]").value == pytest.approx(0.0)
        assert check(chain, "P=? [ F[3,5] ready ]").value == pytest.approx(0.0)

    def test_globally_window(self):
        chain = pipeline_chain()
        # From step 3 on, `done` holds forever.
        assert check(chain, "P=? [ G[3,10] done ]").value == pytest.approx(1.0)
        assert check(chain, "P=? [ G[2,3] done ]").value == pytest.approx(0.0)

    def test_until_ramp_constraint(self):
        chain = pipeline_chain()
        chain.add_label_from_predicate("early", lambda s: s in ("s0", "s1"))
        # Path stays in `early` for steps 0..1, hits `ready` at 2.
        assert check(chain, "P=? [ early U[2,4] ready ]").value == pytest.approx(1.0)
        # Demanding the ramp last 3 steps fails: s2 is not `early`.
        assert check(chain, "P=? [ early U[3,4] ready ]").value == pytest.approx(0.0)


class TestSemanticsProbabilistic:
    def test_consistency_with_plain_bound(self):
        chain = knuth_yao_die()
        a = check(chain, "P=? [ F[0,4] done ]").value
        b = check(chain, "P=? [ F<=4 done ]").value
        assert a == pytest.approx(b)

    def test_window_splits_total(self):
        """P(first hit in [0,b]) = P(hit in [0,a-1]) + P(hit in [a,b])
        for the *first-passage* decomposition on a chain where `done`
        is absorbing... here checked via complementary windows."""
        chain = two_state_chain(p=0.25, q=0.0)  # b absorbing
        total = check(chain, "P=? [ F<=4 in_b ]").value
        early = check(chain, "P=? [ F<=1 in_b ]").value
        # First passage in [2,4]: ramp through !in_b for 2 steps.
        late = check(chain, "P=? [ !in_b U[2,4] in_b ]").value
        assert early + late == pytest.approx(total)

    def test_interval_leq_plain(self):
        chain = knuth_yao_die()
        window = check(chain, "P=? [ F[2,4] done ]").value
        plain = check(chain, "P=? [ F<=4 done ]").value
        assert window <= plain + 1e-12

    def test_unbounded_with_lower(self):
        chain = two_state_chain(p=0.25, q=0.0)
        # Eventually reach b, but only counting from step 2 on; since b
        # is absorbing this equals plain F (reach-and-stay).
        value = check(chain, "P=? [ F[2,inf] in_b ]").value if False else None
        # 'inf' isn't part of the grammar; use the AST directly.
        from repro.pctl import Eventually, Label, ProbQuery
        from repro.pctl.checker import ModelChecker

        query = ProbQuery(Eventually(Label("in_b"), bound=None, lower=2))
        result = ModelChecker(chain).check(query)
        assert result.value == pytest.approx(
            check(chain, "P=? [ F in_b ]").value
        )
