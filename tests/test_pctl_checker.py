"""Unit tests for the pCTL model checker (repro.pctl.checker)."""

import math
from collections import namedtuple

import numpy as np
import pytest

from repro.dtmc import DTMC, build_dtmc, dtmc_from_dict
from repro.pctl import ModelChecker, PctlSemanticsError, check, parse_formula

from helpers import gamblers_ruin, knuth_yao_die, two_state_chain


class TestBooleanLayer:
    def test_label_satisfaction(self):
        chain = two_state_chain()
        checker = ModelChecker(chain)
        assert checker.satisfaction(parse_formula("in_b")).tolist() == [False, True]

    def test_boolean_connectives(self):
        chain = two_state_chain()
        checker = ModelChecker(chain)
        assert checker.satisfaction(parse_formula("!in_b | in_b")).all()
        assert not checker.satisfaction(parse_formula("in_b & !in_b")).any()
        assert checker.satisfaction(parse_formula("in_b => in_b")).all()

    def test_top_level_boolean_checks_initial_states(self):
        chain = two_state_chain()  # initial state is "a"
        assert check(chain, "!in_b").value is True
        assert check(chain, "in_b").value is False

    def test_unknown_atom_raises(self):
        chain = DTMC(np.eye(2), 0)  # no labels, no state objects
        with pytest.raises(PctlSemanticsError, match="no state"):
            check(chain, "mystery")


class TestVariableAtoms:
    State = namedtuple("State", ["count", "flag"])

    def make_chain(self):
        def step(s):
            if s.count >= 2:
                return [(1.0, s)]
            return [
                (0.5, self.State(s.count + 1, False)),
                (0.5, self.State(s.count + 1, True)),
            ]

        return build_dtmc(step, initial=self.State(0, False)).chain

    def test_namedtuple_attribute_comparison(self):
        chain = self.make_chain()
        result = check(chain, "P=? [ F<=2 count>=2 ]")
        assert result.value == pytest.approx(1.0)

    def test_boolean_variable_as_atom(self):
        chain = self.make_chain()
        result = check(chain, "P=? [ F<=2 flag ]")
        assert result.value == pytest.approx(0.75)

    def test_dict_states(self):
        chain = dtmc_from_dict(
            {0: {1: 1.0}, 1: {1: 1.0}}, initial=0
        )
        chain.states = [{"level": 0}, {"level": 7}]
        assert check(chain, "P=? [ X level=7 ]").value == pytest.approx(1.0)

    def test_missing_variable_raises(self):
        chain = self.make_chain()
        with pytest.raises(PctlSemanticsError, match="nope"):
            check(chain, "nope>3")


class TestBoundedOperators:
    def test_bounded_eventually_die(self):
        chain = knuth_yao_die()
        # P(done within 3 flips of the 3-level tree) = 6/8
        assert check(chain, "P=? [ F<=3 done ]").value == pytest.approx(0.75)

    def test_bounded_globally_matches_complement(self):
        chain = two_state_chain(p=0.3, q=0.1)
        g = check(chain, "P=? [ G<=5 !in_b ]").value
        f = check(chain, "P=? [ F<=5 in_b ]").value
        assert g == pytest.approx(1.0 - f)

    def test_bounded_until_respects_left_constraint(self):
        chain = knuth_yao_die()
        # Reaching "six" without ever passing through s2 is impossible.
        chain.add_label_from_predicate("not_s2", lambda s: s != "s2")
        assert check(chain, "P=? [ not_s2 U<=50 six ]").value == pytest.approx(0.0)

    def test_next(self):
        chain = knuth_yao_die()
        assert check(chain, "P=? [ X done ]").value == pytest.approx(0.0)
        chain2 = two_state_chain(p=0.25)
        assert check(chain2, "P=? [ X in_b ]").value == pytest.approx(0.25)

    def test_bound_decision(self):
        chain = knuth_yao_die()
        assert check(chain, "P>=0.7 [ F<=3 done ]").value is True
        assert check(chain, "P>=0.8 [ F<=3 done ]").value is False


class TestUnboundedOperators:
    def test_die_faces_are_uniform(self):
        chain = knuth_yao_die()
        for face in ["one", "two", "three", "four", "five", "six"]:
            assert check(chain, f"P=? [ F {face} ]").value == pytest.approx(1 / 6)

    def test_eventually_certain(self):
        chain = knuth_yao_die()
        assert check(chain, "P=? [ F done ]").value == pytest.approx(1.0)

    def test_gamblers_ruin_unbounded(self):
        chain = gamblers_ruin(n=4, p=0.5)
        assert check(chain, "P=? [ F win ]").value == pytest.approx(0.5)
        assert check(chain, "P=? [ F ruin ]").value == pytest.approx(0.5)

    def test_until_with_constraint(self):
        chain = gamblers_ruin(n=4, p=0.5)
        # Win while staying above 1.  Solving x2 = x3/2, x3 = 1/2 + x2/2
        # (oscillation 2<->3 is allowed) gives x2 = 1/3.
        chain.add_label_from_predicate("above1", lambda s: s > 1)
        assert check(chain, "P=? [ above1 U win ]").value == pytest.approx(1 / 3)

    def test_unbounded_globally(self):
        chain = gamblers_ruin(n=4, p=0.5)
        chain.add_label_from_predicate("not_ruin", lambda s: s != 0)
        assert check(chain, "P=? [ G not_ruin ]").value == pytest.approx(0.5)

    def test_prob0_region(self):
        chain = knuth_yao_die()
        # From the d1 absorbing state, "six" is unreachable.
        result = check(chain, "P=? [ F six ]")
        d1 = chain.states.index("d1")
        assert result.vector[d1] == pytest.approx(0.0)

    def test_prob1_region(self):
        chain = knuth_yao_die()
        result = check(chain, "P=? [ F done ]")
        assert np.allclose(result.vector, 1.0)


class TestSteadyState:
    def test_steady_probability(self):
        chain = two_state_chain(p=0.5, q=0.3)
        assert check(chain, "S=? [ in_b ]").value == pytest.approx(0.5 / 0.8)

    def test_steady_bound(self):
        chain = two_state_chain(p=0.5, q=0.3)
        assert check(chain, "S>=0.6 [ in_b ]").value is True
        assert check(chain, "S>=0.7 [ in_b ]").value is False


class TestRewards:
    def test_instantaneous(self):
        chain = two_state_chain(p=0.25, q=0.75)
        assert check(chain, "R=? [ I=1 ]").value == pytest.approx(0.25)

    def test_instantaneous_zero(self):
        chain = two_state_chain()
        assert check(chain, "R=? [ I=0 ]").value == pytest.approx(0.0)

    def test_instantaneous_converges_to_steady(self):
        chain = two_state_chain(p=0.5, q=0.3)
        at_large_t = check(chain, "R=? [ I=200 ]").value
        steady = check(chain, "S=? [ in_b ]").value
        assert at_large_t == pytest.approx(steady, abs=1e-9)

    def test_cumulative(self):
        chain = two_state_chain(p=0.5, q=0.5)
        expected = sum(
            check(chain, f"R=? [ I={t} ]").value for t in range(4)
        )
        assert check(chain, "R=? [ C<=4 ]").value == pytest.approx(expected)

    def test_named_reward(self):
        chain = two_state_chain()
        chain.rewards["other"] = np.array([5.0, 0.0])
        assert check(chain, 'R{"other"}=? [ I=0 ]').value == pytest.approx(5.0)

    def test_unnamed_reward_ambiguous(self):
        chain = two_state_chain()
        chain.rewards["other"] = np.array([5.0, 0.0])
        with pytest.raises(PctlSemanticsError, match="reward"):
            check(chain, "R=? [ I=0 ]")

    def test_reachability_reward_expected_flips(self):
        # Expected steps to absorb in the die chain = 11/3 (Knuth-Yao).
        chain = knuth_yao_die()
        chain.add_reward_from_function("steps", lambda s: 1.0)
        result = check(chain, 'R{"steps"}=? [ F done ]')
        assert result.value == pytest.approx(11 / 3)

    def test_reachability_reward_infinite_when_unreachable(self):
        chain = gamblers_ruin(n=4, p=0.5)
        chain.add_reward_from_function("steps", lambda s: 1.0)
        result = check(chain, 'R{"steps"}=? [ F win ]')
        assert math.isinf(result.value)

    def test_long_run_reward(self):
        chain = two_state_chain(p=0.5, q=0.3)
        assert check(chain, "R=? [ S ]").value == pytest.approx(0.625)


class TestNestedFormulas:
    def test_bounded_operator_nested(self):
        chain = gamblers_ruin(n=4, p=0.5)
        # States that win with probability > 0.49 are {2, 3, 4}.  (The
        # threshold deliberately avoids the exact value 0.5, where the
        # linear solver's last-ulp rounding would make the test flaky.)
        checker = ModelChecker(chain)
        sat = checker.satisfaction(parse_formula("P>=0.49 [ F win ]"))
        winners = {chain.states[i] for i in np.nonzero(sat)[0]}
        assert winners == {2, 3, 4}

    def test_nested_query_without_bound_rejected(self):
        chain = two_state_chain()
        with pytest.raises(PctlSemanticsError, match="bound"):
            check(chain, "P=? [ F in_b ] & in_b")

    def test_probability_of_reaching_good_region(self):
        chain = gamblers_ruin(n=4, p=0.5)
        value = check(chain, "P=? [ F P>=0.74 [ F win ] ]").value
        # P(F win)=0.75 exactly at state 3; from 2, P(reach {3,4}) = 2/3.
        assert value == pytest.approx(2 / 3)
