"""Unit + property tests for the communication substrate (repro.comm)."""


import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.comm import (
    AWGNChannel,
    BPSK,
    ConvolutionalEncoder,
    PartialResponseTransmitter,
    QPSK,
    RayleighFadingChannel,
    UniformQuantizer,
    bpsk_awgn_ber,
    bpsk_diversity_ber,
    bpsk_rayleigh_ber,
    db_to_linear,
    linear_to_db,
    noise_sigma,
    noise_variance,
    q_function,
    q_function_inverse,
    sigma_to_snr_db,
)


class TestSnr:
    def test_db_round_trip(self):
        for db in [-10, 0, 3, 8, 12]:
            assert linear_to_db(db_to_linear(db)) == pytest.approx(db)

    def test_known_values(self):
        assert db_to_linear(0) == pytest.approx(1.0)
        assert db_to_linear(10) == pytest.approx(10.0)
        assert db_to_linear(3) == pytest.approx(1.9953, abs=1e-3)

    def test_noise_variance_convention(self):
        # Es/N0 = 1 (0 dB) with Es=1 -> N0 = 1 -> per-dimension var 0.5.
        assert noise_variance(0.0) == pytest.approx(0.5)

    def test_sigma_round_trip(self):
        for db in [0.0, 5.0, 8.0, 12.0]:
            assert sigma_to_snr_db(noise_sigma(db)) == pytest.approx(db)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            linear_to_db(0.0)
        with pytest.raises(ValueError):
            noise_variance(5.0, symbol_energy=-1.0)
        with pytest.raises(ValueError):
            sigma_to_snr_db(0.0)


class TestModulation:
    def test_bpsk_mapping(self):
        mod = BPSK()
        assert mod.modulate([0, 1]).tolist() == [-1.0, 1.0]

    def test_bpsk_round_trip(self):
        mod = BPSK()
        bits = np.array([0, 1, 1, 0, 1])
        assert np.array_equal(mod.demodulate(mod.modulate(bits)), bits)

    def test_bpsk_energy(self):
        mod = BPSK(symbol_energy=4.0)
        assert np.allclose(np.abs(mod.modulate([0, 1])), 2.0)

    def test_bpsk_rejects_non_bits(self):
        with pytest.raises(ValueError):
            BPSK().modulate([0, 2])

    def test_qpsk_round_trip(self):
        mod = QPSK()
        bits = np.array([0, 0, 0, 1, 1, 0, 1, 1])
        assert np.array_equal(mod.demodulate(mod.modulate(bits)), bits)

    def test_qpsk_unit_energy(self):
        mod = QPSK(symbol_energy=1.0)
        assert np.allclose(np.abs(mod.constellation()), 1.0)

    def test_qpsk_needs_even_bits(self):
        with pytest.raises(ValueError, match="even"):
            QPSK().modulate([0, 1, 1])

    @given(st.lists(st.integers(min_value=0, max_value=1), min_size=1, max_size=64))
    def test_bpsk_round_trip_property(self, bits):
        mod = BPSK()
        assert np.array_equal(mod.demodulate(mod.modulate(bits)), np.asarray(bits))


class TestQuantizer:
    def test_level_layout(self):
        q = UniformQuantizer(4, -2.0, 2.0)
        assert q.thresholds.tolist() == [-1.0, 0.0, 1.0]
        assert q.levels.tolist() == [-1.5, -0.5, 0.5, 1.5]

    def test_for_bits(self):
        q = UniformQuantizer.for_bits(3, -1, 1)
        assert q.num_levels == 8

    def test_quantize_saturates(self):
        q = UniformQuantizer(4, -2.0, 2.0)
        assert q.quantize([-100.0, 100.0]).tolist() == [-1.5, 1.5]

    def test_quantize_index(self):
        q = UniformQuantizer(4, -2.0, 2.0)
        assert q.quantize_index([-1.5, -0.5, 0.5, 1.5]).tolist() == [0, 1, 2, 3]

    def test_cell_probabilities_sum_to_one(self):
        q = UniformQuantizer(8, -3, 3)
        probs = q.cell_probabilities(mean=0.7, sigma=0.5)
        assert probs.sum() == pytest.approx(1.0)
        assert (probs >= 0).all()

    def test_cell_probabilities_concentrate_at_mean(self):
        q = UniformQuantizer(8, -4, 4)
        probs = q.cell_probabilities(mean=2.5, sigma=0.1)
        assert q.levels[np.argmax(probs)] == pytest.approx(2.5)
        assert probs.max() > 0.99

    def test_cell_probabilities_match_empirical(self):
        q = UniformQuantizer(5, -2, 2)
        sigma, mean = 0.8, 0.3
        rng = np.random.default_rng(7)
        samples = rng.normal(mean, sigma, 200_000)
        counts = np.bincount(q.quantize_index(samples), minlength=5) / samples.size
        assert np.allclose(counts, q.cell_probabilities(mean, sigma), atol=5e-3)

    def test_output_distribution_cutoff(self):
        q = UniformQuantizer(8, -4, 4)
        pairs = q.output_distribution(0.0, 0.3, cutoff=1e-6)
        assert len(pairs) < 8
        assert sum(p for p, _ in pairs) == pytest.approx(1.0)

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            UniformQuantizer(1, -1, 1)
        with pytest.raises(ValueError):
            UniformQuantizer(4, 1, -1)
        with pytest.raises(ValueError):
            UniformQuantizer(4, -1, 1).cell_probabilities(0.0, 0.0)

    @given(
        st.integers(min_value=2, max_value=16),
        st.floats(min_value=-3, max_value=3),
        st.floats(min_value=0.05, max_value=4.0),
    )
    @settings(max_examples=60)
    def test_probabilities_always_stochastic(self, levels, mean, sigma):
        q = UniformQuantizer(levels, -5, 5)
        probs = q.cell_probabilities(mean, sigma)
        assert probs.sum() == pytest.approx(1.0)
        assert (probs >= 0).all()


class TestChannels:
    def test_awgn_statistics(self):
        channel = AWGNChannel(sigma=0.5, rng=np.random.default_rng(1))
        out = channel(np.zeros(100_000))
        assert out.mean() == pytest.approx(0.0, abs=1e-2)
        assert out.std() == pytest.approx(0.5, abs=1e-2)

    def test_awgn_complex(self):
        channel = AWGNChannel(sigma=0.5, complex_valued=True, rng=np.random.default_rng(2))
        out = channel(np.zeros(100_000, dtype=complex))
        assert out.real.std() == pytest.approx(0.5, abs=1e-2)
        assert out.imag.std() == pytest.approx(0.5, abs=1e-2)

    def test_rayleigh_unit_energy(self):
        channel = RayleighFadingChannel(2, 2, 0.1, rng=np.random.default_rng(3))
        hs = np.stack([channel.sample_h() for _ in range(20_000)])
        assert np.mean(np.abs(hs) ** 2) == pytest.approx(1.0, abs=2e-2)

    def test_transmit_shape_checked(self):
        channel = RayleighFadingChannel(2, 2, 0.1)
        with pytest.raises(ValueError, match="shape"):
            channel.transmit(np.ones(3))

    def test_transmit_block_matches_loop(self):
        channel = RayleighFadingChannel(2, 1, 0.0, rng=np.random.default_rng(4))
        x = np.ones((5, 1))
        y, h = channel.transmit_block(x)
        assert y.shape == (5, 2)
        assert np.allclose(y, np.einsum("nij,nj->ni", h, x))


class TestPartialResponse:
    def test_duobinary_alphabet(self):
        tx = PartialResponseTransmitter((1.0, 1.0))
        assert tx.alphabet() == [-2.0, 0.0, 2.0]
        assert tx.memory == 1

    def test_output_values(self):
        tx = PartialResponseTransmitter((1.0, 1.0))
        assert tx.output([1, 1]) == 2.0
        assert tx.output([0, 0]) == -2.0
        assert tx.output([1, 0]) == 0.0

    def test_sequence_matches_stepwise(self):
        tx = PartialResponseTransmitter((1.0, 1.0))
        bits = [1, 0, 0, 1, 1]
        seq = tx.transmit_sequence(bits, initial=0)
        expected = []
        prev = 0
        for b in bits:
            expected.append(tx.output([b, prev]))
            prev = b
        assert seq.tolist() == expected

    def test_memory_two(self):
        tx = PartialResponseTransmitter((1.0, 0.5, 0.5))
        assert tx.memory == 2
        assert tx.output([1, 1, 1]) == 2.0
        assert tx.output([1, 0, 0]) == 0.0


class TestConvolutional:
    def test_k3_rate_half_known_vector(self):
        # Standard (7,5) code: input 1011 -> output 11 10 00 01 (zero state).
        enc = ConvolutionalEncoder((0b111, 0b101), 3)
        out = enc.encode([1, 0, 1, 1])
        assert out.tolist() == [1, 1, 1, 0, 0, 0, 0, 1]

    def test_termination_returns_to_zero(self):
        enc = ConvolutionalEncoder((0b111, 0b101), 3)
        state = 0
        for bit in [1, 0, 1, 1] + [0, 0]:
            state, _ = enc.step(state, bit)
        assert state == 0

    def test_rate(self):
        enc = ConvolutionalEncoder((0b111, 0b101), 3)
        assert enc.rate == (1, 2)
        assert enc.num_states == 4

    def test_invalid_generator(self):
        with pytest.raises(ValueError):
            ConvolutionalEncoder((0b1111,), 3)

    def test_expected_outputs_bpsk(self):
        enc = ConvolutionalEncoder((0b1,), 1)
        assert enc.expected_outputs(0, 1) == (1.0,)
        assert enc.expected_outputs(0, 0) == (-1.0,)


class TestTheory:
    def test_q_function_values(self):
        assert q_function(0.0) == pytest.approx(0.5)
        assert q_function(1.96) == pytest.approx(0.025, abs=1e-3)
        assert q_function(-10) == pytest.approx(1.0)

    def test_q_function_inverse(self):
        for p in [0.4, 0.1, 1e-3, 1e-7]:
            assert q_function(q_function_inverse(p)) == pytest.approx(p, rel=1e-6)

    def test_bpsk_awgn_known_points(self):
        # Es/N0 = 0 dB -> Q(sqrt 2) ~ 0.0786; 9.6 dB -> ~1e-5.
        assert bpsk_awgn_ber(0.0) == pytest.approx(0.0786, abs=1e-3)
        assert bpsk_awgn_ber(9.6) == pytest.approx(1e-5, rel=0.15)

    def test_rayleigh_worse_than_awgn(self):
        for snr in [0.0, 5.0, 10.0]:
            assert bpsk_rayleigh_ber(snr) > bpsk_awgn_ber(snr)

    def test_diversity_reduces_ber(self):
        snr = 8.0
        bers = [bpsk_diversity_ber(snr, branches) for branches in (1, 2, 4)]
        assert bers[0] > bers[1] > bers[2]
        assert bpsk_diversity_ber(snr, 1) == pytest.approx(bpsk_rayleigh_ber(snr))

    def test_diversity_order_asymptotics(self):
        # Doubling branches roughly squares the BER slope: at high SNR,
        # BER(L=2) ~ BER(L=1)^2 up to a constant.
        b1 = bpsk_diversity_ber(25.0, 1)
        b2 = bpsk_diversity_ber(25.0, 2)
        assert b2 < 10 * b1**2

    def test_monte_carlo_agrees_with_awgn_formula(self):
        snr_db = 4.0
        mod = BPSK()
        rng = np.random.default_rng(11)
        channel = AWGNChannel(noise_sigma(snr_db), rng=rng)
        bits = rng.integers(0, 2, 400_000)
        decoded = mod.demodulate(channel(mod.modulate(bits)))
        ber = np.mean(decoded != bits)
        assert ber == pytest.approx(bpsk_awgn_ber(snr_db), rel=0.05)

    def test_monte_carlo_agrees_with_diversity_formula(self):
        snr_db = 5.0
        rng = np.random.default_rng(12)
        channel = RayleighFadingChannel(2, 1, noise_sigma(snr_db), rng=rng)
        n = 200_000
        bits = rng.integers(0, 2, n)
        x = (2.0 * bits - 1.0).reshape(-1, 1).astype(complex)
        y, h = channel.transmit_block(x)
        # ML/MRC decision for BPSK: sign of Re(h^H y).
        decision = (np.einsum("ni,ni->n", h[:, :, 0].conj(), y).real >= 0).astype(int)
        ber = np.mean(decision != bits)
        assert ber == pytest.approx(bpsk_diversity_ber(snr_db, 2), rel=0.08)
