"""Tests for abstraction quotients and optimal lumping."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.reductions import (
    LumpingError,
    coarsest_lumping,
    initial_partition,
    lump,
    quotient_by_function,
    quotient_by_partition,
)
from repro.dtmc import (
    DTMC,
    build_dtmc,
    distribution_at,
    dtmc_from_dict,
    instantaneous_reward,
)
from repro.pctl import check

from helpers import knuth_yao_die, random_dtmcs, two_state_chain


def symmetric_pair_chain():
    """Two i.i.d. coins re-flipped each step; label = both heads.

    States (a, b); the partition by multiset {a, b} is strongly
    lumpable.
    """

    def step(state):
        return [
            (0.25, (0, 0)),
            (0.25, (0, 1)),
            (0.25, (1, 0)),
            (0.25, (1, 1)),
        ]

    return build_dtmc(
        step,
        initial=(0, 0),
        labels={"both": lambda s: s == (1, 1)},
        rewards={"both": lambda s: float(s == (1, 1))},
    ).chain


class TestQuotientByPartition:
    def test_valid_lumping_accepted(self):
        chain = symmetric_pair_chain()
        block_of = [0 if s in [(0, 1), (1, 0)] else (1 if s == (0, 0) else 2)
                    for s in chain.states]
        result = quotient_by_partition(chain, block_of)
        assert result.num_blocks == 3
        assert result.reduction_factor == pytest.approx(4 / 3)

    def test_invalid_lumping_rejected(self):
        # a and b jump to the absorbing state c with different
        # probabilities, so {a, b} is not a lumpable block.
        chain = dtmc_from_dict(
            {
                "a": {"a": 0.5, "c": 0.5},
                "b": {"b": 0.1, "c": 0.9},
                "c": {"c": 1.0},
            },
            initial="a",
        )
        with pytest.raises(LumpingError, match="strongly lumpable"):
            quotient_by_partition(chain, [0, 0, 1])

    def test_label_only_mismatch_reported_as_label(self):
        chain = two_state_chain(p=0.5, q=0.3)
        # Transition-lumpable into one block, but the label differs.
        with pytest.raises(LumpingError, match="label"):
            quotient_by_partition(chain, [0, 0])

    def test_label_mismatch_rejected(self):
        chain = symmetric_pair_chain()
        # Merging (1,1) with (0,0) violates label constancy.
        block_of = [0 if s in [(0, 0), (1, 1)] else 1 for s in chain.states]
        with pytest.raises(LumpingError, match="label|lumpable"):
            quotient_by_partition(chain, block_of)

    def test_partition_shape_validated(self):
        chain = two_state_chain()
        with pytest.raises(ValueError, match="covers"):
            quotient_by_partition(chain, [0])
        with pytest.raises(ValueError, match="contiguous"):
            quotient_by_partition(chain, [0, 2])

    def test_quotient_transitions_aggregate(self):
        chain = symmetric_pair_chain()
        result = quotient_by_function(chain, lambda s: tuple(sorted(s)))
        mixed = result.chain.states.index((0, 1))
        row = dict(result.chain.successors(mixed))
        assert row[mixed] == pytest.approx(0.5)


class TestQuotientByFunction:
    def test_preserves_transient_label_probability(self):
        chain = symmetric_pair_chain()
        result = quotient_by_function(chain, lambda s: tuple(sorted(s)))
        for t in range(5):
            full = float(distribution_at(chain, t) @ chain.label_vector("both"))
            red = float(
                distribution_at(result.chain, t)
                @ result.chain.label_vector("both")
            )
            assert full == pytest.approx(red)

    def test_preserves_pctl_values(self):
        chain = symmetric_pair_chain()
        result = quotient_by_function(chain, lambda s: tuple(sorted(s)))
        for prop in ["P=? [ F<=3 both ]", "P=? [ G<=3 !both ]", "R=? [ I=4 ]",
                     "S=? [ both ]"]:
            assert check(chain, prop).value == pytest.approx(
                check(result.chain, prop).value
            )

    def test_requires_state_objects(self):
        chain = DTMC(np.eye(2), 0)
        with pytest.raises(ValueError, match="state objects"):
            quotient_by_function(chain, lambda s: 0)

    def test_identity_abstraction_is_isomorphism(self):
        chain = knuth_yao_die()
        result = quotient_by_function(chain, lambda s: s)
        assert result.num_blocks == chain.num_states
        assert result.reduction_factor == 1.0


class TestCoarsestLumping:
    def test_initial_partition_by_labels(self):
        chain = knuth_yao_die()
        block_of = initial_partition(chain, respect=["done"])
        assert len(set(block_of.tolist())) == 2

    def test_initial_partition_unknown_name(self):
        with pytest.raises(KeyError):
            initial_partition(knuth_yao_die(), respect=["nope"])

    def test_die_lumps_faces_together(self):
        chain = knuth_yao_die()
        # Respecting only "done", all faces are equivalent, and the
        # symmetric halves of the tree collapse.
        block_of = coarsest_lumping(chain, respect=["done"])
        d_blocks = {block_of[i] for i in chain.states_satisfying("done")}
        assert len(d_blocks) == 1
        # s1 and s2 are symmetric, as are s3/s6 and s4/s5.
        idx = {s: i for i, s in enumerate(chain.states)}
        assert block_of[idx["s1"]] == block_of[idx["s2"]]
        assert block_of[idx["s4"]] == block_of[idx["s5"]]

    def test_lump_preserves_reachability_values(self):
        chain = knuth_yao_die()
        result = lump(chain, respect=["done"])
        assert result.num_blocks < chain.num_states
        assert check(result.chain, "P=? [ F<=3 done ]").value == pytest.approx(
            check(chain, "P=? [ F<=3 done ]").value
        )

    def test_lump_respecting_all_labels_keeps_faces_apart(self):
        chain = knuth_yao_die()
        result = lump(chain)  # respects one..six individually
        for face in ["one", "six"]:
            assert check(result.chain, f"P=? [ F {face} ]").value == pytest.approx(1 / 6)

    def test_already_minimal_chain_unchanged(self):
        chain = two_state_chain()
        result = lump(chain)
        assert result.num_blocks == 2


@given(random_dtmcs(), st.integers(min_value=0, max_value=8))
@settings(max_examples=30, deadline=None)
def test_lumping_preserves_instantaneous_reward(chain, t):
    """Quotienting by the coarsest lumping never changes R=?[I=t]."""
    result = lump(chain)
    full = instantaneous_reward(chain, "mark", t)
    reduced = instantaneous_reward(result.chain, "mark", t)
    assert full == pytest.approx(reduced, abs=1e-7)


@given(random_dtmcs())
@settings(max_examples=30, deadline=None)
def test_lumping_is_idempotent(chain):
    """Lumping the lumped chain must not shrink it further."""
    once = lump(chain)
    twice = lump(once.chain)
    assert twice.num_blocks == once.num_blocks
