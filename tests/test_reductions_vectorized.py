"""Tests for the vectorized reduction engine.

Covers the sparse-algebra rewrite of ``repro.core.reductions``:

* golden parity of both refinement strategies against the retained
  pure-Python reference, on small hypothesis chains and on larger
  seeded random-sparse chains;
* permutation invariance — relabeling states must permute the blocks,
  never change them;
* ``decimals`` rounding edge cases near block boundaries;
* 0-state / 0-block regression cases (empty quotients, empty
  bisimilarity);
* input validation of ``initial_partition`` / ``quotient_by_partition``
  (duplicate ``respect`` names, unknown names listing what exists);
* refinement provenance (``RefinementStats``, ``BuiltScenario.extra``).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from scipy import sparse

from repro import zoo
from repro.core.reductions import (
    LumpingError,
    RefinementStats,
    are_bisimilar,
    coarsest_lumping,
    coarsest_lumping_with_stats,
    initial_partition,
    lump,
    quotient_by_partition,
)
from repro.core.reductions.lumping import _coarsest_lumping_reference
from repro.dtmc import DTMC, dtmc_from_dict

from helpers import knuth_yao_die, random_dtmcs, two_state_chain

STRATEGIES = ("rounds", "splitters")


def empty_chain() -> DTMC:
    return DTMC(
        sparse.csr_matrix((0, 0)),
        np.zeros(0),
        labels={"goal": np.zeros(0, dtype=bool)},
        rewards={"cost": np.zeros(0)},
    )


def random_sparse_chain(n=400, num_blocks=20, seed=3) -> DTMC:
    return zoo.build(
        "random-sparse",
        {"n": n, "num_blocks": num_blocks, "degree": 3, "seed": seed},
        reduce=False,
    ).chain


# ----------------------------------------------------------------------
# Golden parity: vectorized strategies vs pure-Python reference
# ----------------------------------------------------------------------

class TestGoldenParity:
    @given(random_dtmcs())
    @settings(max_examples=30, deadline=None)
    def test_small_random_chains_match_reference(self, chain):
        reference = _coarsest_lumping_reference(chain)
        for strategy in STRATEGIES:
            assert np.array_equal(
                coarsest_lumping(chain, strategy=strategy), reference
            )

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_random_sparse_chains_match_reference(self, seed):
        chain = random_sparse_chain(seed=seed)
        reference = _coarsest_lumping_reference(chain, respect=["goal"])
        for strategy in STRATEGIES:
            assert np.array_equal(
                coarsest_lumping(chain, respect=["goal"], strategy=strategy),
                reference,
            )

    def test_strategies_agree_respecting_rewards(self):
        chain = random_sparse_chain()
        partitions = [
            coarsest_lumping(chain, respect=["block"], strategy=strategy)
            for strategy in STRATEGIES
        ]
        assert np.array_equal(partitions[0], partitions[1])
        assert np.array_equal(
            partitions[0], _coarsest_lumping_reference(chain, respect=["block"])
        )

    def test_canonical_numbering_is_first_seen(self):
        chain = knuth_yao_die()
        block_of = coarsest_lumping(chain, respect=["done"])
        # First occurrences of each block id must appear in id order.
        first_seen = [int(block_of[np.flatnonzero(block_of == b)[0]])
                      for b in range(int(block_of.max()) + 1)]
        assert first_seen == sorted(first_seen)

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ValueError, match="unknown refinement strategy"):
            coarsest_lumping(two_state_chain(), strategy="magic")

    def test_max_rounds_enforced(self):
        # The die needs 3 refinement rounds when respecting "done".
        chain = knuth_yao_die()
        with pytest.raises(RuntimeError, match="max_rounds"):
            coarsest_lumping(chain, respect=["done"], max_rounds=1)
        block_of = coarsest_lumping(chain, respect=["done"], max_rounds=10)
        assert int(block_of.max()) + 1 == 5


# ----------------------------------------------------------------------
# Permutation invariance
# ----------------------------------------------------------------------

class TestPermutationInvariance:
    @pytest.mark.parametrize("strategy", STRATEGIES)
    @pytest.mark.parametrize("seed", [0, 5])
    def test_blocked_permutation_invariance(self, strategy, seed):
        """Relabeling states permutes the partition, never changes it."""
        chain = random_sparse_chain(n=300, num_blocks=15, seed=seed)
        rng = np.random.default_rng(seed + 100)
        perm = rng.permutation(chain.num_states)
        # permuted[perm[i]] corresponds to original state i.
        p = sparse.csr_matrix(
            (np.ones(chain.num_states), (perm, np.arange(chain.num_states))),
            shape=(chain.num_states,) * 2,
        )
        permuted = DTMC(
            (p @ chain.transition_matrix @ p.T).tocsr(),
            np.asarray(p @ chain.initial_distribution).ravel(),
            labels={k: np.asarray(p @ v, dtype=bool) for k, v in chain.labels.items()},
            rewards={k: np.asarray(p @ v) for k, v in chain.rewards.items()},
        )
        original = coarsest_lumping(chain, respect=["goal"], strategy=strategy)
        shuffled = coarsest_lumping(permuted, respect=["goal"], strategy=strategy)
        # Same number of blocks, and i ~ j iff perm[i] ~ perm[j].
        assert int(original.max()) == int(shuffled.max())
        pulled_back = shuffled[perm]
        for block in range(int(original.max()) + 1):
            members = np.flatnonzero(original == block)
            assert len(set(pulled_back[members].tolist())) == 1

    def test_permuted_chain_is_bisimilar(self):
        chain = random_sparse_chain(n=120, num_blocks=6, seed=1)
        rng = np.random.default_rng(9)
        perm = rng.permutation(chain.num_states)
        p = sparse.csr_matrix(
            (np.ones(chain.num_states), (perm, np.arange(chain.num_states))),
            shape=(chain.num_states,) * 2,
        )
        permuted = DTMC(
            (p @ chain.transition_matrix @ p.T).tocsr(),
            np.asarray(p @ chain.initial_distribution).ravel(),
            labels={"goal": np.asarray(p @ chain.labels["goal"], dtype=bool)},
        )
        assert are_bisimilar(chain, permuted, respect=["goal"]).equivalent


# ----------------------------------------------------------------------
# Rounding (`decimals`) edge cases near block boundaries
# ----------------------------------------------------------------------

class TestDecimalsEdgeCases:
    @staticmethod
    def _near_tie_chain(delta: float) -> DTMC:
        """a and b jump to the labeled sink with probabilities delta apart."""
        return dtmc_from_dict(
            {
                "a": {"c": 0.5, "a": 0.5},
                "b": {"c": 0.5 + delta, "b": 0.5 - delta},
                "c": {"c": 1.0},
            },
            initial="a",
            labels={"sink": ["c"]},
        )

    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_sub_rounding_difference_is_merged(self, strategy):
        chain = self._near_tie_chain(1e-12)
        block_of = coarsest_lumping(chain, strategy=strategy, decimals=10)
        assert block_of[0] == block_of[1]

    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_supra_rounding_difference_splits(self, strategy):
        chain = self._near_tie_chain(1e-12)
        block_of = coarsest_lumping(chain, strategy=strategy, decimals=14)
        assert block_of[0] != block_of[1]
        coarse = self._near_tie_chain(1e-4)
        block_of = coarsest_lumping(coarse, strategy=strategy, decimals=10)
        assert block_of[0] != block_of[1]

    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_mass_rounding_to_zero_is_dropped(self, strategy):
        """A residual 1e-14 edge must not distinguish otherwise-equal states."""
        tiny = 1e-14
        matrix = sparse.csr_matrix(
            np.array(
                [
                    [0.5, 0.0, 0.5, 0.0],
                    [0.5 - tiny, tiny, 0.5, 0.0],
                    [0.0, 0.0, 0.0, 1.0],
                    [0.0, 0.0, 0.0, 1.0],
                ]
            )
        )
        chain = DTMC(matrix, 0, labels={"end": np.array([0, 0, 1, 1], dtype=bool)})
        block_of = coarsest_lumping(chain, strategy=strategy, decimals=10)
        assert block_of[0] == block_of[1]

    def test_negative_zero_rewards_do_not_split(self):
        chain = DTMC(
            sparse.identity(2, format="csr"),
            np.array([0.5, 0.5]),
            rewards={"drift": np.array([-1e-15, 1e-15])},
        )
        assert int(initial_partition(chain, decimals=10).max()) == 0


# ----------------------------------------------------------------------
# 0-state / 0-block regressions (satellite)
# ----------------------------------------------------------------------

class TestEmptyChains:
    def test_empty_quotient(self):
        result = quotient_by_partition(empty_chain(), [])
        assert result.num_blocks == 0
        assert result.chain.num_states == 0
        assert result.blocks == []
        assert result.block_of.shape == (0,)

    def test_empty_initial_partition_and_lumping(self):
        chain = empty_chain()
        assert initial_partition(chain).shape == (0,)
        for strategy in STRATEGIES:
            assert coarsest_lumping(chain, strategy=strategy).shape == (0,)

    def test_empty_lump(self):
        result = lump(empty_chain())
        assert result.num_blocks == 0
        assert result.refinement.final_blocks == 0

    def test_two_empty_chains_are_bisimilar(self):
        verdict = are_bisimilar(empty_chain(), empty_chain())
        assert verdict.equivalent is True

    def test_empty_vs_nonempty_not_bisimilar(self):
        verdict = are_bisimilar(empty_chain(), two_state_chain())
        assert verdict.equivalent is False
        assert "empty" in verdict.witness


# ----------------------------------------------------------------------
# Input validation (satellite)
# ----------------------------------------------------------------------

class TestValidation:
    def test_initial_partition_unknown_name_lists_available(self):
        with pytest.raises(KeyError, match="in_b"):
            initial_partition(two_state_chain(), respect=["nope"])
        with pytest.raises(KeyError, match="hit"):
            initial_partition(two_state_chain(), respect=["nope"])

    def test_initial_partition_duplicate_respect_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            initial_partition(two_state_chain(), respect=["in_b", "in_b"])
        with pytest.raises(ValueError, match="duplicate"):
            coarsest_lumping(two_state_chain(), respect=["hit", "in_b", "hit"])

    def test_quotient_unknown_respect_lists_available(self):
        with pytest.raises(KeyError, match="in_b"):
            quotient_by_partition(two_state_chain(), [0, 1], respect=["nope"])

    def test_quotient_rejects_negative_block_ids(self):
        with pytest.raises(ValueError, match="contiguous"):
            quotient_by_partition(two_state_chain(), [-1, 0])


# ----------------------------------------------------------------------
# Vectorized verification spot checks
# ----------------------------------------------------------------------

class TestVectorizedVerification:
    def test_implicit_zero_mass_detected(self):
        """A member with *no* edge into the target block must count as 0."""
        chain = dtmc_from_dict(
            {
                "a": {"c": 1.0},
                "b": {"b": 1.0},
                "c": {"c": 1.0},
            },
            initial="a",
        )
        with pytest.raises(LumpingError, match="strongly lumpable"):
            quotient_by_partition(chain, [0, 0, 1])

    def test_reward_constancy_vectorized(self):
        chain = DTMC(
            sparse.identity(3, format="csr"),
            np.array([1.0, 0.0, 0.0]),
            rewards={"cost": np.array([1.0, 2.0, 2.0])},
        )
        with pytest.raises(LumpingError, match="reward 'cost'"):
            quotient_by_partition(chain, [0, 0, 1])
        result = quotient_by_partition(chain, [0, 1, 1])
        assert result.chain.rewards["cost"].tolist() == [1.0, 2.0]

    def test_large_verified_quotient_matches_known_answer(self):
        chain = random_sparse_chain(n=600, num_blocks=30, seed=12)
        block_of = coarsest_lumping(chain, respect=["goal"])
        result = quotient_by_partition(
            chain, block_of, atol=1e-9 * 10, respect=["goal"], verify=True
        )
        assert result.num_blocks == 30
        row_sums = np.asarray(result.chain.transition_matrix.sum(axis=1)).ravel()
        assert np.allclose(row_sums, 1.0)


# ----------------------------------------------------------------------
# Refinement provenance
# ----------------------------------------------------------------------

class TestProvenance:
    def test_with_stats_reports_rounds_and_splitters(self):
        chain = knuth_yao_die()
        for strategy in STRATEGIES:
            block_of, stats = coarsest_lumping_with_stats(
                chain, respect=["done"], strategy=strategy
            )
            assert isinstance(stats, RefinementStats)
            assert stats.strategy == strategy
            assert stats.rounds >= 1
            assert stats.splitters >= stats.initial_blocks
            assert stats.initial_blocks == 2
            assert stats.final_blocks == int(block_of.max()) + 1 == 5

    def test_lump_attaches_refinement(self):
        result = lump(knuth_yao_die(), respect=["done"])
        assert result.refinement is not None
        assert result.refinement.final_blocks == result.num_blocks

    def test_pipeline_records_refinement_in_extra(self):
        scenario = zoo.build("random-sparse", {"n": 64, "num_blocks": 8})
        assert scenario.reduction == "lumping"
        assert scenario.extra["refine_strategy"] == "splitters"
        assert scenario.extra["refine_rounds"] >= 1
        assert scenario.extra["refine_splitters"] >= 1
        assert scenario.extra["refine_final_blocks"] == scenario.reduced_states
        assert "refine(" in scenario.describe()

    def test_direct_reductions_leave_extra_empty(self):
        scenario = zoo.build("mimo-1xN")
        assert "refine_rounds" not in scenario.extra
