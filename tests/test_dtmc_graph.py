"""Unit tests for graph analyses (repro.dtmc.graph)."""


from repro.dtmc import (
    DTMC,
    backward_reachable,
    bottom_sccs,
    dtmc_from_dict,
    is_aperiodic,
    is_irreducible,
    period,
    reachability_iterations,
    reachable_states,
    strongly_connected_components,
)

from helpers import gamblers_ruin, knuth_yao_die, two_state_chain


def chain_line(n: int) -> DTMC:
    """0 -> 1 -> ... -> n-1 (absorbing)."""
    transitions = {i: {i + 1: 1.0} for i in range(n - 1)}
    transitions[n - 1] = {n - 1: 1.0}
    return dtmc_from_dict(transitions, initial=0)


class TestReachability:
    def test_reachable_from_initial(self):
        chain = knuth_yao_die()
        assert len(reachable_states(chain)) == chain.num_states

    def test_reachable_from_custom_source(self):
        chain = chain_line(4)
        assert reachable_states(chain, sources=[2]) == {2, 3}

    def test_backward_reachable(self):
        chain = chain_line(4)
        assert backward_reachable(chain, [3]) == {0, 1, 2, 3}
        assert backward_reachable(chain, [0]) == {0}

    def test_reachability_iterations_line(self):
        # A line of n states needs n-1 BFS levels to saturate.
        chain = chain_line(7)
        assert reachability_iterations(chain) == 6

    def test_reachability_iterations_absorbing_start(self):
        chain = dtmc_from_dict({"a": {"a": 1.0}}, initial="a")
        assert reachability_iterations(chain) == 0


class TestSCC:
    def test_two_state_single_scc(self):
        chain = two_state_chain()
        components = strongly_connected_components(chain)
        assert len(components) == 1
        assert sorted(components[0]) == [0, 1]

    def test_die_sccs(self):
        chain = knuth_yao_die()
        components = strongly_connected_components(chain)
        sizes = sorted(len(c) for c in components)
        # {s1,s3} and {s2,s6} are 2-cycles; everything else is trivial.
        assert sizes == [1] * 9 + [2, 2]

    def test_scc_reverse_topological_order(self):
        chain = chain_line(5)
        components = strongly_connected_components(chain)
        order = [c[0] for c in components]
        # Sinks first: state 4 must appear before state 0.
        assert order.index(4) < order.index(0)

    def test_bottom_sccs_gamblers_ruin(self):
        chain = gamblers_ruin(5)
        bottoms = bottom_sccs(chain)
        members = sorted(tuple(b) for b in bottoms)
        ruin = chain.states_satisfying("ruin")[0]
        win = chain.states_satisfying("win")[0]
        assert members == sorted([(ruin,), (win,)])

    def test_irreducible(self):
        assert is_irreducible(two_state_chain())
        assert not is_irreducible(gamblers_ruin())


class TestPeriodicity:
    def test_two_cycle_has_period_2(self):
        chain = dtmc_from_dict(
            {"a": {"b": 1.0}, "b": {"a": 1.0}}, initial="a"
        )
        assert period(chain, 0) == 2
        assert not is_aperiodic(chain)

    def test_self_loop_is_aperiodic(self):
        chain = two_state_chain()
        assert period(chain, 0) == 1
        assert is_aperiodic(chain)

    def test_three_cycle_period(self):
        chain = dtmc_from_dict(
            {"a": {"b": 1.0}, "b": {"c": 1.0}, "c": {"a": 1.0}}, initial="a"
        )
        assert period(chain, 0) == 3

    def test_mixed_cycles_gcd(self):
        # Cycles of length 2 and 3 through state a -> period 1.
        chain = dtmc_from_dict(
            {
                "a": {"b": 0.5, "c": 0.5},
                "b": {"a": 1.0},
                "c": {"d": 1.0},
                "d": {"a": 1.0},
            },
            initial="a",
        )
        assert period(chain, 0) == 1
        assert is_aperiodic(chain)

    def test_absorbing_states_aperiodic(self):
        assert is_aperiodic(gamblers_ruin())
