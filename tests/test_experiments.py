"""Tests for the experiment drivers (repro.experiments) at quick scale."""

import pytest

from repro.experiments import figure2, table1, table2, table3, table4, table5
from repro.experiments.report import banner, format_table, format_value
from repro.mimo import MimoSystemConfig
from repro.viterbi import ViterbiModelConfig

QUICK_VITERBI = ViterbiModelConfig(traceback_length=3, num_levels=3, pm_max=3)


class TestReportHelpers:
    def test_format_value_scientific_for_extremes(self):
        assert format_value(1.5e-7) == "1.500e-07"
        assert format_value(0.25) == "0.25"
        assert format_value(0.0) == "0"
        assert format_value(12) == "12"

    def test_format_table_alignment(self):
        text = format_table(["a", "bbb"], [[1, 2.5], [10, 0.125]])
        lines = text.splitlines()
        assert len(lines) == 4
        # All rows share the same width.
        assert len(set(len(line) for line in lines)) == 1

    def test_format_table_empty_rows(self):
        text = format_table(["x"], [])
        assert "x" in text

    def test_banner(self):
        text = banner("Hello")
        assert text.splitlines()[1] == "Hello"


class TestTable1:
    def test_rows_and_shape(self):
        rows = table1.run(QUICK_VITERBI, horizon=50)
        assert [r.name for r in rows] == ["P1", "P2", "P3"]
        for row in rows:
            assert row.states_reduced < row.states_full
            assert row.values_agree
            assert 0 <= row.value_reduced <= 1

    def test_main_prints_paper_reference(self, capsys):
        table1.main(QUICK_VITERBI, horizon=50)
        out = capsys.readouterr().out
        assert "53558744" in out  # paper reference column
        assert "shape checks" in out


class TestTable2:
    def test_factors(self):
        rows = table2.run(
            configs=[("1x2", MimoSystemConfig(num_rx=2, snr_db=8.0))]
        )
        assert rows[0].full_was_built
        assert rows[0].reduction_factor > 5

    def test_main_output(self, capsys):
        table2.main(configs=[("1x2", MimoSystemConfig(num_rx=2, snr_db=8.0))])
        out = capsys.readouterr().out
        assert "Table II" in out


class TestTable3:
    def test_convergence_flags(self):
        result = table3.run(QUICK_VITERBI, horizons=(20, 50, 100))
        assert result.is_converged
        assert result.values[-1] == pytest.approx(result.steady_state, rel=1e-6)
        assert result.reachability_iterations >= 1

    def test_main_output(self, capsys):
        table3.main(QUICK_VITERBI, horizons=(20, 50))
        out = capsys.readouterr().out
        assert "RI" in out and "steady state" in out


class TestTable4:
    def test_result_structure(self):
        result = table4.run(QUICK_VITERBI, horizons=(20, 60))
        assert len(result.values) == 2
        assert result.states < 100
        assert 0 <= result.steady_state < 1

    def test_default_config_is_paper_setting(self):
        config = table4.default_config()
        assert config.traceback_length == 8
        assert config.snr_db == 8.0

    def test_main_output(self, capsys):
        table4.main(QUICK_VITERBI, horizons=(20, 60))
        out = capsys.readouterr().out
        assert "Table IV" in out


class TestTable5:
    def test_without_simulation(self):
        result = table5.run(
            configs=[("1x2", MimoSystemConfig(num_rx=2, snr_db=8.0))],
            horizons=(5, 10),
            with_simulation=False,
        )
        assert result.short_sim is None
        assert result.rows[0].values[0] == pytest.approx(
            result.rows[0].values[1]
        )

    def test_with_simulation_small(self):
        result = table5.run(
            configs=[
                ("1x2", MimoSystemConfig(num_rx=2, snr_db=8.0)),
                ("1x4", MimoSystemConfig(num_rx=4, snr_db=12.0)),
            ],
            horizons=(5,),
            short_sim_steps=20_000,
            long_sim_steps=50_000,
        )
        assert result.short_sim is not None
        assert result.short_sim.errors == 0  # high diversity, short run

    def test_main_output(self, capsys):
        table5.main(
            configs=[
                ("1x2", MimoSystemConfig(num_rx=2, snr_db=8.0)),
                ("1x4", MimoSystemConfig(num_rx=4, snr_db=12.0)),
            ],
            horizons=(5,),
            with_simulation=False,
        )
        out = capsys.readouterr().out
        assert "diversity gap" in out


class TestFigure2:
    def test_sweep_shape(self):
        result = figure2.run(lengths=(2, 4, 6), snr_db=8.0)
        assert result.is_decreasing
        assert len(result.marginal_changes()) == 2

    def test_horizon_variant(self):
        steady = figure2.run(lengths=(3,), snr_db=8.0)
        bounded = figure2.run(lengths=(3,), snr_db=8.0, horizon=400)
        assert steady.values[0] == pytest.approx(bounded.values[0], rel=1e-6)

    def test_main_output(self, capsys):
        figure2.main(lengths=(2, 3, 4), snr_db=8.0)
        out = capsys.readouterr().out
        assert "Figure 2" in out
        assert "*" in out  # the ascii plot
