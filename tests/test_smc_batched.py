"""Tests for the vectorized SMC layer: alias sampling, fused batch
trials, batch-aware APMC/SPRT, and the engine/sweep integration."""

import numpy as np
import pytest

from repro.core.analyzer import PerformanceAnalyzer
from repro.dtmc import PathSampler
from repro.engine import Engine, SmcConfig, sweep_check
from repro.mimo import MimoSystemConfig, build_detector_model
from repro.pctl import check
from repro.smc import (
    as_batch_trial,
    is_batch_trial,
    make_batch_trial,
    make_path_trial,
    smc_decide,
    smc_estimate,
    sprt_decide,
)
from repro.viterbi import ViterbiModelConfig, build_reduced_model

from helpers import gamblers_ruin, knuth_yao_die, two_state_chain


@pytest.fixture(scope="module")
def viterbi_chain():
    return build_reduced_model(ViterbiModelConfig()).chain


@pytest.fixture(scope="module")
def mimo_chain():
    return build_detector_model(MimoSystemConfig(num_rx=2, snr_db=8.0)).chain


class TestBatchedSampling:
    def test_seed_for_seed_determinism(self):
        sampler = PathSampler(knuth_yao_die())
        a = sampler.paths(50, 8, rng=np.random.default_rng(3))
        b = sampler.paths(50, 8, rng=np.random.default_rng(3))
        assert (a == b).all()

    def test_batched_paths_match_sequential_scalar(self):
        """Row i of paths() is the i-th sequential path() on one rng."""
        sampler = PathSampler(knuth_yao_die())
        r1, r2 = np.random.default_rng(7), np.random.default_rng(7)
        sequential = np.stack([sampler.path(9, rng=r1) for _ in range(40)])
        batched = sampler.paths(40, 9, rng=r2)
        assert (sequential == batched).all()

    def test_batched_paths_with_starts(self):
        sampler = PathSampler(two_state_chain())
        starts = np.array([0, 1, 0, 1], dtype=np.int64)
        r1, r2 = np.random.default_rng(5), np.random.default_rng(5)
        sequential = np.stack(
            [sampler.path(6, start=int(s), rng=r1) for s in starts]
        )
        batched = sampler.paths(4, 6, rng=r2, starts=starts)
        assert (sequential == batched).all()

    def test_advance_respects_support(self):
        chain = knuth_yao_die()
        sampler = PathSampler(chain, np.random.default_rng(2))
        states = sampler.sample_initials(500)
        nxt = sampler.steps(states)
        for a, b in zip(states, nxt):
            assert chain.transition_probability(int(a), int(b)) > 0

    def test_alias_marginals_match_rows(self):
        chain = two_state_chain(p=0.3, q=0.6)
        sampler = PathSampler(chain, np.random.default_rng(9))
        nxt = sampler.steps(np.zeros(40_000, dtype=np.int64))
        assert np.mean(nxt == 1) == pytest.approx(0.3, abs=0.01)

    def test_search_method_keeps_scalar_api(self):
        sampler = PathSampler(knuth_yao_die(), method="search")
        assert sampler.paths(5, 4, rng=np.random.default_rng(0)).shape == (5, 5)
        with pytest.raises(ValueError, match="alias"):
            sampler.advance(np.array([0]), np.array([0.5]))

    def test_unknown_method_rejected(self):
        with pytest.raises(ValueError, match="method"):
            PathSampler(knuth_yao_die(), method="magic")


class TestBatchTrialAgreement:
    PROPS = [
        "P=? [ F<=3 done ]",
        "P=? [ G<=4 !done ]",
        "P=? [ !six U<=6 done ]",
        "P=? [ !six W<=6 done ]",
        "P=? [ X !done ]",
    ]

    @pytest.mark.parametrize("prop", PROPS)
    def test_batched_equals_scalar_outcomes(self, prop):
        """Bit-for-bit: a batch of n trials is the same Bernoulli
        sequence n sequential scalar trials draw from the same seed."""
        chain = knuth_yao_die()
        scalar = make_path_trial(chain, prop)
        batched = make_batch_trial(chain, prop)
        r1, r2 = np.random.default_rng(11), np.random.default_rng(11)
        sequential = np.array([scalar(r1) for _ in range(600)])
        assert (sequential == batched(r2, 600)).all()

    def test_estimates_identical_per_seed(self):
        chain = knuth_yao_die()
        prop = "P=? [ F<=3 done ]"
        scalar = smc_estimate(chain, prop, epsilon=0.05, seed=4, batched=False)
        batched = smc_estimate(chain, prop, epsilon=0.05, seed=4, batched=True)
        assert scalar.estimate == batched.estimate
        assert scalar.samples == batched.samples

    def test_scalar_trial_does_not_mutate_shared_sampler(self):
        """The PR-1 sweep-runner hazard: trials must not assign onto a
        shared sampler's rng."""
        chain = knuth_yao_die()
        sampler = PathSampler(chain, np.random.default_rng(0))
        trial = make_path_trial(chain, "P=? [ F<=3 done ]", sampler=sampler)
        before = sampler.rng
        trial(np.random.default_rng(1))
        assert sampler.rng is before

    def test_trial_protocol_detection(self):
        assert not is_batch_trial(lambda rng: True)
        assert is_batch_trial(lambda rng, n: np.ones(n, bool))
        assert is_batch_trial(make_batch_trial(knuth_yao_die(), "P=? [ X done ]"))
        adapted = as_batch_trial(lambda rng: rng.random() < 0.5)
        assert is_batch_trial(adapted)
        out = adapted(np.random.default_rng(0), 16)
        assert out.shape == (16,) and out.dtype == bool


class TestExactVsBatchedSmc:
    def test_viterbi_bounded_until_within_hoeffding(self, viterbi_chain):
        prop = "P=? [ !flag U<=50 flag ]"
        exact = check(viterbi_chain, prop).value
        result = smc_estimate(viterbi_chain, prop, epsilon=0.02, delta=0.01, seed=1)
        assert abs(result.estimate - exact) <= 0.02

    def test_mimo_bounded_eventually_within_hoeffding(self, mimo_chain):
        prop = "P=? [ F<=10 flag ]"
        exact = check(mimo_chain, prop).value
        result = smc_estimate(mimo_chain, prop, epsilon=0.02, delta=0.01, seed=2)
        assert abs(result.estimate - exact) <= 0.02

    def test_viterbi_decide_agrees_with_exact(self, viterbi_chain):
        prop = "P=? [ !flag U<=50 flag ]"
        exact = check(viterbi_chain, prop).value  # ~0.866
        verdict = smc_decide(
            viterbi_chain, prop, theta=exact - 0.1, half_width=0.03, seed=3
        )
        assert verdict.accept
        verdict = smc_decide(
            viterbi_chain, prop, theta=exact + 0.1, half_width=0.03, seed=3
        )
        assert not verdict.accept

    def test_sprt_stopping_sample_exact_vs_scalar(self, viterbi_chain):
        """The chunked SPRT stops on the same data-dependent sample as
        the scalar run for the same seed."""
        prop = "P=? [ !flag U<=50 flag ]"
        for theta, seed in [(0.3, 0), (0.6, 1), (0.45, 2)]:
            scalar = smc_decide(
                viterbi_chain, prop, theta=theta, half_width=0.05,
                seed=seed, batched=False,
            )
            chunked = smc_decide(
                viterbi_chain, prop, theta=theta, half_width=0.05,
                seed=seed, batched=True,
            )
            assert scalar.accept == chunked.accept
            assert scalar.samples == chunked.samples

    def test_sprt_chunked_scalar_parity_on_raw_trials(self):
        """Same parity holds for plain Bernoulli trials through the
        scalar-vs-batched protocol (identical outcome sequences)."""
        outcomes = np.random.default_rng(42).random(5000) < 0.62

        def scalar_factory():
            it = iter(outcomes)
            return lambda rng: bool(next(it))

        def batched(rng, n, _pos=[0]):
            start = _pos[0]
            _pos[0] += n
            return outcomes[start : start + n]

        batched.is_batch = True
        a = sprt_decide(scalar_factory(), theta=0.5, half_width=0.05, seed=0)
        b = sprt_decide(batched, theta=0.5, half_width=0.05, seed=0)
        assert (a.accept, a.samples) == (b.accept, b.samples)


class TestEarlyTermination:
    def test_absorbing_goal_stops_walk_early(self):
        chain = gamblers_ruin(4)
        trial = make_batch_trial(chain, "P=? [ F<=200 ruin ]")
        outcomes = trial(np.random.default_rng(0), 4000)
        exact = check(chain, "P=? [ F<=200 ruin ]").value
        assert trial.last_walk_steps < 200  # all walkers absorbed early
        assert abs(outcomes.mean() - exact) < 0.03

    def test_early_termination_matches_scalar(self):
        chain = gamblers_ruin(6)
        for prop in [
            "P=? [ F<=100 ruin ]",
            "P=? [ G<=100 !win ]",
            "P=? [ !win W<=100 ruin ]",
        ]:
            scalar = make_path_trial(chain, prop)
            batched = make_batch_trial(chain, prop)
            r1, r2 = np.random.default_rng(8), np.random.default_rng(8)
            sequential = np.array([scalar(r1) for _ in range(400)])
            assert (sequential == batched(r2, 400)).all(), prop
            assert batched.last_walk_steps < 100


class TestEngineAndSweepIntegration:
    def test_engine_caches_alias_tables(self):
        chain = knuth_yao_die()
        engine = Engine()
        first = engine.path_sampler(chain)
        again = engine.path_sampler(chain)
        assert first is again
        assert engine.stats.sampler_builds == 1
        assert engine.stats.sampler_cache_hits == 1
        assert engine.stats.cache_hits >= 1

    def test_analyzer_statistical_guarantee_provenance(self):
        analyzer = PerformanceAnalyzer(knuth_yao_die(), "die")
        guarantee = analyzer.check_statistical(
            "P=? [ F<=3 done ]", smc=SmcConfig(epsilon=0.02, delta=0.05)
        )
        assert guarantee.backend == "apmc"
        assert guarantee.samples > 0
        assert not guarantee.is_exact
        assert abs(guarantee.value - 0.75) <= 0.02
        decision = analyzer.check_statistical("P=? [ F<=3 done ]", theta=0.6)
        assert decision.backend == "sprt"
        assert decision.value == 1.0
        # Both checks shared one alias-table build through the engine.
        assert analyzer.engine.stats.sampler_builds == 1
        assert "samples" in str(guarantee)

    def test_exact_guarantee_reports_exact(self):
        analyzer = PerformanceAnalyzer(knuth_yao_die(), "die")
        guarantee = analyzer.check("P=? [ F<=3 done ]")
        assert guarantee.is_exact and guarantee.samples == 0

    @pytest.mark.parametrize("executor", ["serial", "thread"])
    def test_sweep_check_backends(self, executor):
        points = [{"i": 0}, {"i": 1}, {"i": 2}]
        exact = sweep_check(
            lambda p: knuth_yao_die(), points, "P=? [ F<=3 done ]",
            backend="exact", executor=executor,
        )
        assert [r.value for r in exact] == [0.75, 0.75, 0.75]
        assert [r.point for r in exact] == points
        apmc = sweep_check(
            lambda p: knuth_yao_die(), points, "P=? [ F<=3 done ]",
            backend="apmc", smc=SmcConfig(epsilon=0.03, delta=0.05),
            executor=executor,
        )
        for result in apmc:
            assert result.ok
            assert abs(result.value.estimate - 0.75) <= 0.03
        sprt = sweep_check(
            lambda p: knuth_yao_die(), points, "P=? [ F<=3 done ]",
            backend="sprt", theta=0.6, executor=executor,
        )
        assert all(r.value.accept for r in sprt)

    def test_sweep_check_is_executor_independent(self):
        points = [{"i": i} for i in range(4)]
        serial = sweep_check(
            lambda p: knuth_yao_die(), points, "P=? [ F<=3 done ]",
            backend="apmc", smc=SmcConfig(epsilon=0.05), executor="serial",
        )
        threaded = sweep_check(
            lambda p: knuth_yao_die(), points, "P=? [ F<=3 done ]",
            backend="apmc", smc=SmcConfig(epsilon=0.05), executor="thread",
        )
        assert [r.value.estimate for r in serial] == [
            r.value.estimate for r in threaded
        ]

    def test_sweep_check_validation(self):
        with pytest.raises(ValueError, match="backend"):
            sweep_check(lambda p: knuth_yao_die(), [{}], "P=? [ X done ]",
                        backend="montecarlo")
        with pytest.raises(ValueError, match="theta"):
            sweep_check(lambda p: knuth_yao_die(), [{}], "P=? [ X done ]",
                        backend="sprt")

    def test_smc_config_validation(self):
        with pytest.raises(ValueError, match="epsilon"):
            SmcConfig(epsilon=0.0)
        with pytest.raises(ValueError, match="batch"):
            SmcConfig(batch=0)
