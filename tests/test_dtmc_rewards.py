"""Tests for reward structures (repro.dtmc.rewards)."""

import numpy as np
import pytest
from scipy import sparse

from repro.dtmc import (
    RewardStructure,
    attach_reward,
    cumulative_reward,
    instantaneous_reward,
)

from helpers import two_state_chain


class TestRewardStructure:
    def test_state_rewards_only(self):
        chain = two_state_chain(p=0.5, q=0.5)
        structure = RewardStructure(np.array([0.0, 2.0]))
        assert structure.expected_step_reward(chain).tolist() == [0.0, 2.0]

    def test_transition_rewards_folded(self):
        chain = two_state_chain(p=0.5, q=0.5)
        # Earn 4 on the a->b edge only.
        iota = sparse.csr_matrix(np.array([[0.0, 4.0], [0.0, 0.0]]))
        structure = RewardStructure(np.zeros(2), iota)
        expected = structure.expected_step_reward(chain)
        # From a: 0 + P(a->b) * 4 = 2; from b: 0.
        assert expected.tolist() == [2.0, 0.0]

    def test_instantaneous_ignores_transition_rewards(self):
        chain = two_state_chain(p=0.5, q=0.5)
        iota = sparse.csr_matrix(np.array([[0.0, 4.0], [0.0, 0.0]]))
        structure = RewardStructure(np.array([1.0, 0.0]), iota)
        # Standard semantics: I=t uses state rewards only.
        assert structure.instantaneous(chain, 0) == pytest.approx(1.0)

    def test_cumulative_includes_transition_rewards(self):
        chain = two_state_chain(p=1.0, q=1.0)  # deterministic alternation
        iota = sparse.csr_matrix(np.array([[0.0, 4.0], [0.0, 0.0]]))
        structure = RewardStructure(np.zeros(2), iota)
        # Steps 0 and 2 take the a->b edge... starting at a: step 0
        # a->b earns 4, step 1 b->a earns 0, step 2 a->b earns 4.
        assert structure.cumulative(chain, 3) == pytest.approx(8.0)

    def test_long_run_with_transition_rewards(self):
        chain = two_state_chain(p=0.5, q=0.5)
        iota = sparse.csr_matrix(np.array([[0.0, 1.0], [1.0, 0.0]]))
        structure = RewardStructure(np.zeros(2), iota)
        # Every step crosses an edge with reward 1 w.p. 1/2.
        assert structure.long_run(chain) == pytest.approx(0.5)

    def test_attach_reward(self):
        chain = two_state_chain(p=0.5, q=0.5)
        structure = RewardStructure(np.array([0.0, 3.0]))
        attach_reward(chain, "bonus", structure)
        assert instantaneous_reward(chain, "bonus", 1) == pytest.approx(1.5)

    def test_attach_reward_size_mismatch(self):
        chain = two_state_chain()
        with pytest.raises(ValueError, match="states"):
            attach_reward(chain, "bad", RewardStructure(np.zeros(5)))

    def test_matches_plain_vector_path(self):
        chain = two_state_chain(p=0.3, q=0.7)
        structure = RewardStructure(np.array([0.5, 1.5]))
        attach_reward(chain, "r", structure)
        for t in (0, 1, 5):
            assert structure.instantaneous(chain, t) == pytest.approx(
                instantaneous_reward(chain, "r", t)
            )
        assert structure.cumulative(chain, 4) == pytest.approx(
            cumulative_reward(chain, "r", 4)
        )
