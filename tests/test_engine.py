"""Tests for the unified solver engine (repro.engine).

Covers backend selection and agreement (all five solver methods must
produce the same until/reward answers), the per-chain caches (at most
one LU factorization / Prob0-Prob1 precomputation per target set), the
provenance recorded on Guarantee records, and the reducible-chain
stationary-distribution guard.
"""

import gc
import warnings

import numpy as np
import pytest

from repro import PerformanceAnalyzer, SolverConfig, check
from repro.core.metrics import average_case_error, best_case_error, steady_state_ber
from repro.dtmc import ReducibleChainError, dtmc_from_dict, stationary_distribution
from repro.engine import SOLVER_METHODS, Engine, default_engine
from repro.mimo import MimoSystemConfig, build_detector_model
from repro.pctl import ModelChecker
from repro.viterbi import ViterbiModelConfig, build_reduced_model

QUICK_VITERBI = ViterbiModelConfig(traceback_length=3, num_levels=3, pm_max=3)

AGREEMENT_TOLERANCE = 1e-8


def _with_zone_label(chain):
    """Label a deterministic 2/3 subset of states as ``zone`` so that
    ``zone U flag`` has a non-trivial unknown set (a plain
    ``!flag U flag`` is just ``F flag`` and never needs a solve)."""
    chain.add_label("zone", np.nonzero(np.arange(chain.num_states) % 3 != 0)[0])
    return chain


@pytest.fixture(scope="module")
def viterbi_chain():
    return _with_zone_label(build_reduced_model(QUICK_VITERBI).chain)


@pytest.fixture(scope="module")
def mimo_1x2_chain():
    return _with_zone_label(
        build_detector_model(
            MimoSystemConfig(num_rx=2, snr_db=8.0), reduced=True
        ).chain
    )


def reducible_chain():
    """Reducible chain with non-trivial Prob0/Prob1 sets.

    From ``s0`` the chain branches towards ``goal`` (via ``s1``, which
    reaches it almost surely: Prob1) or towards ``trap`` (via ``s2``,
    which never reaches it: Prob0); ``s0`` itself is the genuinely
    unknown state the linear solve must determine.
    """
    return dtmc_from_dict(
        {
            "s0": {"s0": 0.2, "s1": 0.4, "s2": 0.4},
            "s1": {"s1": 0.5, "goal": 0.5},
            "s2": {"s2": 0.5, "trap": 0.5},
            "goal": {"goal": 1.0},
            "trap": {"trap": 1.0},
        },
        initial="s0",
        labels={"goal": ["goal"], "live": ["s0", "s1", "s2"]},
        rewards={"step": {"s0": 1.0, "s1": 2.0, "s2": 1.0}},
    )


class TestSolverConfig:
    def test_default_is_lu(self):
        assert SolverConfig().method == "lu"

    @pytest.mark.parametrize("method", SOLVER_METHODS)
    def test_all_methods_constructible(self, method):
        assert SolverConfig(method=method).method == method

    def test_aliases_normalize(self):
        assert SolverConfig(method="gs").method == "gauss-seidel"
        assert SolverConfig(method="lu-cached").method == "lu"
        assert SolverConfig(method="spsolve").method == "direct"

    def test_unknown_method_rejected(self):
        with pytest.raises(ValueError, match="unknown solver method"):
            SolverConfig(method="cholesky")

    def test_bad_tolerance_rejected(self):
        with pytest.raises(ValueError, match="tolerance"):
            SolverConfig(tolerance=0.0)

    def test_bad_max_iterations_rejected(self):
        with pytest.raises(ValueError, match="max_iterations"):
            SolverConfig(max_iterations=0)

    def test_coerce_accepts_string_and_none(self):
        assert SolverConfig.coerce(None).method == "lu"
        assert SolverConfig.coerce("jacobi").method == "jacobi"
        config = SolverConfig(method="power")
        assert SolverConfig.coerce(config) is config

    def test_with_method(self):
        config = SolverConfig(tolerance=1e-10)
        other = config.with_method("power")
        assert other.method == "power"
        assert other.tolerance == 1e-10

    def test_default_engine_rejects_both(self):
        with pytest.raises(ValueError, match="either an engine or a config"):
            default_engine("jacobi", Engine())

    def test_default_engine_rejects_non_engine(self):
        # Catches ModelChecker(chain, "jacobi") — config passed in the
        # engine slot — at construction instead of deep in a check.
        with pytest.raises(TypeError, match="must be an Engine"):
            default_engine(None, "jacobi")

    def test_prob01_cache_immune_to_caller_mutation(self):
        chain = reducible_chain()
        engine = Engine()
        n = chain.num_states
        ones = np.ones(n, dtype=bool)
        goal = chain.label_vector("goal")
        prob0, prob1 = engine.prob01(chain, ones, goal)
        prob0[:] = True  # caller scribbles on the result
        prob1[:] = False
        again0, again1 = engine.prob01(chain, ones, goal)
        assert not again0.all()
        assert again1.any()


class TestBackendAgreement:
    """All five backends agree to 1e-8 on until and reward properties."""

    @pytest.mark.parametrize("method", SOLVER_METHODS)
    @pytest.mark.parametrize(
        "chain_fixture", ["viterbi_chain", "mimo_1x2_chain"]
    )
    def test_unbounded_until_agreement(self, method, chain_fixture, request):
        chain = request.getfixturevalue(chain_fixture)
        prop = "P=? [ zone U flag ]"
        reference_engine = Engine("direct")
        reference = check(chain, prop, engine=reference_engine).vector
        # Non-vacuous: the property requires an actual linear solve.
        assert reference_engine.stats.solves >= 1
        result = check(chain, prop, config=method).vector
        assert np.allclose(result, reference, atol=AGREEMENT_TOLERANCE)

    @pytest.mark.parametrize("method", SOLVER_METHODS)
    @pytest.mark.parametrize(
        "chain_fixture", ["viterbi_chain", "mimo_1x2_chain"]
    )
    def test_reachability_reward_agreement(self, method, chain_fixture, request):
        chain = request.getfixturevalue(chain_fixture)
        prop = "R=? [ F flag ]"
        reference_engine = Engine("direct")
        reference = check(chain, prop, engine=reference_engine).vector
        assert reference_engine.stats.solves >= 1
        result = check(chain, prop, config=method).vector
        assert np.isfinite(reference).all()
        assert np.allclose(result, reference, atol=AGREEMENT_TOLERANCE)

    @pytest.mark.parametrize("method", SOLVER_METHODS)
    def test_reducible_until_agreement(self, method):
        chain = reducible_chain()
        result = check(chain, "P=? [ F goal ]", config=method)
        # Exact value: from s0, P(F goal) = 0.4/(0.8) via s1's certainty.
        assert result.value == pytest.approx(0.5, abs=AGREEMENT_TOLERANCE)
        reference = check(chain, "P=? [ F goal ]", config="direct").vector
        assert np.allclose(result.vector, reference, atol=AGREEMENT_TOLERANCE)

    @pytest.mark.parametrize("method", SOLVER_METHODS)
    def test_reducible_reward_agreement(self, method):
        chain = reducible_chain()
        prop = 'R{"step"}=? [ F goal ]'
        reference = check(chain, prop, config="direct").vector
        result = check(chain, prop, config=method).vector
        # Trap-bound states carry infinite expected reward on every
        # backend (the Prob0/Prob1 structure is backend-independent).
        assert (np.isinf(result) == np.isinf(reference)).all()
        finite = np.isfinite(reference)
        assert finite.sum() == 2  # s1 and goal
        assert np.allclose(
            result[finite], reference[finite], atol=AGREEMENT_TOLERANCE
        )

    def test_reducible_prob01_structure(self):
        chain = reducible_chain()
        engine = Engine()
        n = chain.num_states
        prob0, prob1 = engine.prob01(
            chain, np.ones(n, dtype=bool), chain.label_vector("goal")
        )
        names = chain.states
        assert {names[i] for i in np.nonzero(prob0)[0]} == {"s2", "trap"}
        assert {names[i] for i in np.nonzero(prob1)[0]} == {"s1", "goal"}


class TestEngineCaching:
    def test_lu_reused_across_rhs(self, viterbi_chain):
        engine = Engine("lu")
        checker = ModelChecker(viterbi_chain, engine=engine)
        checker.check("R=? [ F flag ]")
        lu_after_first = engine.stats.lu_factorizations
        # A different property over the same target set reuses the
        # cached factorization (and the cached Prob0/Prob1 sets).
        checker.check("R=? [ F flag ]")
        assert engine.stats.lu_factorizations == lu_after_first
        assert engine.stats.cache_hits > 0

    def test_one_factorization_per_target_set(self, viterbi_chain):
        """The acceptance criterion: >=4 metrics, at most one LU and one
        Prob0/Prob1 precomputation per (chain, target-set)."""
        engine = Engine("lu")
        analyzer = PerformanceAnalyzer(
            viterbi_chain, name="viterbi-reduced", engine=engine
        )
        guarantees = analyzer.check_many(
            [
                best_case_error(50),        # P1: bounded, no solve
                average_case_error(50),     # P2: transient, no solve
                steady_state_ber(),         # BER: long-run structure
                "P=? [ !flag U flag ]",     # until solve, target set A
                "R=? [ F flag ]",           # reward solve, target set B
                "S=? [ flag ]",             # repeat of the BER structure
            ]
        )
        assert len(guarantees) == 6
        stats = analyzer.engine.stats
        # Two distinct subsystems were solved (the until unknown set and
        # the reward solve set) -> at most one factorization each.
        assert stats.lu_factorizations <= 2
        assert stats.prob01_computations <= 2
        # BSCC / stationary structure computed once, reused by the
        # second steady-state query.
        assert stats.long_run_computations == 1
        assert stats.long_run_cache_hits >= 1

    def test_identical_property_hits_solution_cache(self, viterbi_chain):
        engine = Engine()
        checker = ModelChecker(viterbi_chain, engine=engine)
        first = checker.check("P=? [ !flag U flag ]")
        hits_before = engine.stats.solution_cache_hits
        second = checker.check("P=? [ !flag U flag ]")
        assert engine.stats.solution_cache_hits > hits_before
        assert first.value == second.value

    def test_guarantee_provenance(self, viterbi_chain):
        analyzer = PerformanceAnalyzer(viterbi_chain, solver="lu")
        first = analyzer.check("R=? [ F flag ]")
        second = analyzer.check("R=? [ F flag ]")
        assert first.backend == "lu"
        assert second.cache_hits > 0
        assert "lu engine" in str(second)

    def test_cache_evicted_when_chain_collected(self):
        engine = Engine()
        chain = reducible_chain()
        check(chain, "P=? [ F goal ]", engine=engine)
        assert len(engine._chains) == 1
        del chain
        gc.collect()
        assert len(engine._chains) == 0

    def test_clear_resets_caches(self, viterbi_chain):
        engine = Engine("lu")
        checker = ModelChecker(viterbi_chain, engine=engine)
        checker.check("R=? [ F flag ]")
        factorizations = engine.stats.lu_factorizations
        engine.clear()
        checker.check("R=? [ F flag ]")
        assert engine.stats.lu_factorizations == 2 * factorizations

    def test_transient_matvec_accounting(self, viterbi_chain):
        engine = Engine()
        checker = ModelChecker(viterbi_chain, engine=engine)
        checker.check("R=? [ I=25 ]")
        assert engine.stats.matvecs >= 25

    def test_engines_do_not_share_state(self, viterbi_chain):
        one, two = Engine(), Engine()
        ModelChecker(viterbi_chain, engine=one).check("R=? [ F flag ]")
        assert one.stats.lu_factorizations == 1
        assert two.stats.lu_factorizations == 0


class TestReducibleStationaryGuard:
    def test_upfront_rejection_unchanged(self):
        with pytest.raises(ValueError, match="irreducible"):
            stationary_distribution(reducible_chain())

    def test_reducible_chain_raises_instead_of_silent_fallback(self):
        """A reducible chain whose direct solve fails must raise, not
        quietly return a start-state-dependent power-iteration result."""
        chain = dtmc_from_dict(
            {"a": {"a": 1.0}, "b": {"b": 1.0}}, initial="a"
        )
        with pytest.raises(ReducibleChainError, match="no unique stationary"):
            with warnings.catch_warnings():
                warnings.simplefilter("ignore")  # expected MatrixRankWarning
                stationary_distribution(chain, assume_irreducible=True)

    def test_assume_irreducible_skips_tarjan_but_solves(self):
        chain = dtmc_from_dict(
            {"a": {"a": 0.5, "b": 0.5}, "b": {"a": 0.3, "b": 0.7}},
            initial="a",
        )
        pi = stationary_distribution(chain, assume_irreducible=True)
        assert pi == pytest.approx(
            stationary_distribution(chain), abs=1e-12
        )

    @pytest.mark.parametrize("method", SOLVER_METHODS)
    def test_steady_state_agreement_across_backends(self, method):
        chain = dtmc_from_dict(
            {"a": {"a": 0.5, "b": 0.5}, "b": {"a": 0.3, "b": 0.7}},
            initial="a",
            labels={"up": ["a"]},
        )
        value = check(chain, "S=? [ up ]", config=method).value
        assert value == pytest.approx(0.375, abs=AGREEMENT_TOLERANCE)

    @pytest.mark.parametrize("method", SOLVER_METHODS)
    def test_periodic_chain_steady_state_all_backends(self, method):
        """Iterative backends must converge on periodic irreducible
        chains too (damped/lazy iteration), matching the direct Cesàro
        limit instead of oscillating until the iteration cap."""
        chain = dtmc_from_dict(
            {
                "a": {"b": 1.0},
                "b": {"a": 0.5, "c": 0.5},
                "c": {"b": 1.0},
            },
            initial="a",
            labels={"mid": ["b"]},
        )
        value = check(chain, "S=? [ mid ]", config=method).value
        assert value == pytest.approx(0.5, abs=AGREEMENT_TOLERANCE)
