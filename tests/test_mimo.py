"""Tests for the MIMO detector: ML rule, DTMC model, symmetry soundness."""

import itertools
import math

import numpy as np
import pytest

from repro.comm import bpsk_diversity_ber
from repro.core.reductions import (
    are_bisimilar,
    quotient_by_function,
    verify_permutation_invariance,
)
from repro.mimo import (
    MimoState,
    MimoSystemConfig,
    QuantizedMLDetector,
    block_metrics,
    bpsk_candidates,
    build_detector_model,
    full_state_count,
    ml_detect,
    ml_detect_batch,
    reduced_state_count,
    step_distribution_full,
    step_distribution_reduced,
)
from repro.pctl import check

CFG_1X2 = MimoSystemConfig(num_rx=2, snr_db=8.0)
CFG_1X4 = MimoSystemConfig(num_rx=4, snr_db=12.0)
TINY = MimoSystemConfig(num_rx=2, snr_db=8.0, num_y_levels=2)


class TestMLDetector:
    def test_candidates_bit_order(self):
        c = bpsk_candidates(2)
        assert c.tolist() == [[-1, -1], [-1, 1], [1, -1], [1, 1]]

    def test_block_metrics_layout(self):
        y = np.array([1 + 2j, 3 + 4j])
        h = np.array([[1.0], [1.0]])
        m = block_metrics(y, h, np.array([1.0]))
        assert m.tolist() == [0.0, 2.0, 2.0, 4.0]

    def test_detect_noiseless(self):
        h = np.array([[0.8 + 0.1j], [0.5 - 0.3j]])
        for bit in (0, 1):
            s = 2.0 * bit - 1.0
            y = (h * s).ravel()
            assert ml_detect(y, h).tolist() == [bit]

    def test_detect_2x2_noiseless(self):
        rng = np.random.default_rng(0)
        h = rng.normal(size=(2, 2)) + 1j * rng.normal(size=(2, 2))
        for bits in itertools.product((0, 1), repeat=2):
            s = 2.0 * np.asarray(bits) - 1.0
            y = h @ s
            assert ml_detect(y, h).tolist() == list(bits)

    def test_batch_matches_scalar(self):
        rng = np.random.default_rng(1)
        n = 50
        h = rng.normal(size=(n, 2, 1)) + 1j * rng.normal(size=(n, 2, 1))
        y = rng.normal(size=(n, 2)) + 1j * rng.normal(size=(n, 2))
        batch = ml_detect_batch(y, h)
        for k in range(n):
            assert batch[k].tolist() == ml_detect(y[k], h[k]).tolist()

    def test_batch_ber_matches_diversity_theory(self):
        snr_db = 6.0
        rng = np.random.default_rng(2)
        cfg = MimoSystemConfig(num_rx=2, snr_db=snr_db)
        channel = cfg.make_channel(rng)
        n = 150_000
        bits = rng.integers(0, 2, n)
        x = (2.0 * bits - 1.0).reshape(-1, 1).astype(complex)
        y, h = channel.transmit_block(x)
        detected = ml_detect_batch(y, h)[:, 0]
        ber = float(np.mean(detected != bits))
        # The L1 (Eq. 15) metric is slightly suboptimal vs matched
        # filtering, so allow a generous band around MRC theory.
        reference = bpsk_diversity_ber(snr_db, 2)
        assert 0.3 * reference < ber < 3.0 * reference

    def test_quantized_detector_tie_breaks_to_zero(self):
        detector = QuantizedMLDetector()
        assert detector.detect([(0.75, 0.0), (0.75, 0.0)]) == 0

    def test_quantized_detector_majority(self):
        detector = QuantizedMLDetector()
        blocks = [(0.75, 0.75), (0.75, 0.75), (0.75, -0.75)]
        assert detector.detect(blocks) == 1


class TestStateCounts:
    def test_full_count_matches_built_model(self):
        full = build_detector_model(CFG_1X2, reduced=False)
        assert full.num_states == full_state_count(CFG_1X2)

    def test_reduced_count_matches_built_model(self):
        reduced = build_detector_model(CFG_1X2, reduced=True)
        assert reduced.num_states == reduced_state_count(CFG_1X2)

    def test_reduction_factor_grows_with_antennas(self):
        """Table II shape: 1x4 reduction factor >> 1x2 factor."""
        factor_1x2 = full_state_count(CFG_1X2) / reduced_state_count(CFG_1X2)
        factor_1x4 = full_state_count(CFG_1X4) / reduced_state_count(CFG_1X4)
        assert factor_1x4 > 10 * factor_1x2
        assert factor_1x2 > 5

    def test_distribution_sizes(self):
        full = step_distribution_full(TINY)
        reduced = step_distribution_reduced(TINY)
        assert len(full) == 2 * (2 * 2) ** 4
        assert len(reduced) == 2 * math.comb(4 + 4 - 1, 4)


class TestDistributions:
    def test_full_distribution_sums_to_one(self):
        total = sum(p for p, _ in step_distribution_full(TINY))
        assert total == pytest.approx(1.0)

    def test_reduced_distribution_sums_to_one(self):
        total = sum(p for p, _ in step_distribution_reduced(TINY))
        assert total == pytest.approx(1.0)

    def test_reduced_aggregates_full(self):
        """The multiset probability equals the summed ordered-tuple mass."""
        full = step_distribution_full(TINY)
        reduced = dict()
        for p, state in step_distribution_reduced(TINY):
            reduced[state] = reduced.get(state, 0.0) + p
        aggregated = dict()
        for p, state in full:
            key = MimoState(state.x, tuple(sorted(state.blocks)))
            aggregated[key] = aggregated.get(key, 0.0) + p
        assert set(reduced) == set(aggregated)
        for key, value in aggregated.items():
            assert reduced[key] == pytest.approx(value)


class TestSymmetrySoundness:
    def test_block_swap_is_automorphism(self):
        full = build_detector_model(TINY, reduced=False)

        def swap(state):
            blocks = list(state.blocks)
            blocks[0], blocks[1] = blocks[1], blocks[0]
            return MimoState(state.x, tuple(blocks))

        # The cold-start initial state is symmetric (all blocks equal),
        # so the full labeled chain must be invariant under the swap.
        assert verify_permutation_invariance(full.chain, swap)

    def test_quotient_by_sorting_is_lumpable(self):
        full = build_detector_model(TINY, reduced=False)
        result = quotient_by_function(
            full.chain, lambda s: MimoState(s.x, tuple(sorted(s.blocks)))
        )
        assert result.num_blocks == reduced_state_count(TINY)

    def test_full_and_reduced_bisimilar(self):
        full = build_detector_model(TINY, reduced=False)
        reduced = build_detector_model(TINY, reduced=True)
        verdict = are_bisimilar(full.chain, reduced.chain, respect=["flag"])
        assert verdict.equivalent, verdict.witness

    def test_ber_identical_between_full_and_reduced(self):
        full = build_detector_model(CFG_1X2, reduced=False)
        reduced = build_detector_model(CFG_1X2, reduced=True)
        b_full = check(full.chain, "S=? [ flag ]").value
        b_reduced = check(reduced.chain, "S=? [ flag ]").value
        assert b_full == pytest.approx(b_reduced, abs=1e-12)


class TestPaperShapes:
    def test_diversity_orders_of_magnitude(self):
        """Table V shape: the 1x4 BER is far below the 1x2 BER."""
        ber_1x2 = check(
            build_detector_model(CFG_1X2).chain, "S=? [ flag ]"
        ).value
        ber_1x4 = check(
            build_detector_model(CFG_1X4).chain, "S=? [ flag ]"
        ).value
        assert ber_1x4 < ber_1x2 / 100
        assert ber_1x2 > 1e-5

    def test_instantaneous_reward_reaches_steady_immediately(self):
        """The detector redraws everything per cycle: R[I=T] is flat in
        T (the explicit-state analogue of the paper's RI=3)."""
        chain = build_detector_model(CFG_1X2).chain
        values = [check(chain, f"R=? [ I={t} ]").value for t in (5, 10, 20)]
        assert values[0] == pytest.approx(values[1])
        assert values[1] == pytest.approx(values[2])

    def test_ber_decreases_with_snr(self):
        bers = []
        for snr in (4.0, 8.0, 12.0):
            cfg = MimoSystemConfig(num_rx=2, snr_db=snr)
            bers.append(
                check(build_detector_model(cfg).chain, "S=? [ flag ]").value
            )
        assert bers[0] > bers[1] > bers[2]

    def test_branch_cutoff_prunes_rare_outcomes(self):
        pruned = build_detector_model(CFG_1X4, branch_cutoff=1e-15)
        unpruned = build_detector_model(CFG_1X4)
        assert pruned.discarded_branches > 0
        assert pruned.num_states <= unpruned.num_states
        # BER unaffected at this cutoff.
        b_pruned = check(pruned.chain, "S=? [ flag ]").value
        b_unpruned = check(unpruned.chain, "S=? [ flag ]").value
        assert b_pruned == pytest.approx(b_unpruned, abs=1e-8)


class TestModelMatchesSimulation:
    def test_monte_carlo_quantized_pipeline_matches_model(self):
        """Simulating the quantized datapath reproduces the model BER."""
        cfg = CFG_1X2
        model_ber = check(build_detector_model(cfg).chain, "S=? [ flag ]").value

        rng = np.random.default_rng(3)
        hq = cfg.make_h_quantizer()
        yq = cfg.make_y_quantizer()
        detector = QuantizedMLDetector()
        n = 400_000
        bits = rng.integers(0, 2, n)
        symbols = 2.0 * bits - 1.0
        errors = 0
        # Vectorized: per-dimension h levels and y levels.
        h = rng.normal(0.0, math.sqrt(0.5), (n, cfg.num_blocks))
        h_val = hq.quantize(h)
        noise = rng.normal(0.0, cfg.sigma, (n, cfg.num_blocks))
        y_val = yq.quantize(h_val * symbols[:, None] + noise)
        metric_minus = np.abs(y_val + h_val).sum(axis=1)
        metric_plus = np.abs(y_val - h_val).sum(axis=1)
        detected = (metric_minus > metric_plus).astype(np.int64)
        ber = float(np.mean(detected != bits))
        tolerance = 4.0 * math.sqrt(model_ber * (1 - model_ber) / n) + 1e-5
        assert abs(ber - model_ber) < max(tolerance, 0.25 * model_ber)
