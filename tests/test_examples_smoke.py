"""Smoke tests: every example script runs end to end.

Examples are user-facing documentation; a broken example is a broken
deliverable.  Each script is executed in-process (monkeypatched argv)
with its ``main()`` entry point where available.
"""

import pathlib
import runpy

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"

FAST_EXAMPLES = ["quickstart.py", "custom_rtl_model.py"]
SLOW_EXAMPLES = [
    "viterbi_error_analysis.py",
    "mimo_detector_ber.py",
    "traceback_convergence.py",
]


def run_example(name, capsys):
    path = EXAMPLES_DIR / name
    assert path.exists(), f"missing example {name}"
    runpy.run_path(str(path), run_name="__main__")
    return capsys.readouterr().out


@pytest.mark.parametrize("name", FAST_EXAMPLES)
def test_fast_examples_run(name, capsys):
    out = run_example(name, capsys)
    assert len(out.splitlines()) > 3


def test_quickstart_output(capsys):
    out = run_example("quickstart.py", capsys)
    assert "P1" in out
    assert "steady state is guaranteed" in out


def test_custom_rtl_model_agrees_with_closed_form(capsys):
    out = run_example("custom_rtl_model.py", capsys)
    assert "agreement: True" in out


@pytest.mark.slow
@pytest.mark.parametrize("name", SLOW_EXAMPLES)
def test_slow_examples_run(name, capsys):
    out = run_example(name, capsys)
    assert len(out.splitlines()) > 5
