"""Tests for the core metrics and PerformanceAnalyzer API."""

import pytest

from repro import PerformanceAnalyzer
from repro.core import (
    Guarantee,
    PAPER_METRICS,
    average_case_error,
    best_case_error,
    convergence_rate,
    steady_state_ber,
    worst_case_error,
)
from repro.pctl import parse_formula
from repro.viterbi import ViterbiModelConfig

from helpers import two_state_chain

CFG = ViterbiModelConfig()


class TestMetricSpecs:
    def test_p1_renders_paper_property(self):
        spec = best_case_error(300)
        assert spec.property_string == "P=? [ G<=300 !flag ]"
        parse_formula(spec.property_string)  # must be valid pCTL

    def test_p2_renders_paper_property(self):
        spec = average_case_error(300)
        assert spec.property_string == "R=? [ I=300 ]"

    def test_p2_with_named_reward(self):
        spec = average_case_error(100, reward="err")
        assert spec.property_string == 'R{"err"}=? [ I=100 ]'
        parse_formula(spec.property_string)

    def test_p3_renders_paper_property(self):
        spec = worst_case_error(300, threshold=1)
        assert spec.property_string == "P=? [ F<=300 errcnt>1 ]"
        parse_formula(spec.property_string)

    def test_c1_renders_convergence_property(self):
        spec = convergence_rate(1000)
        assert spec.property_string == 'R{"nonconv"}=? [ I=1000 ]'
        parse_formula(spec.property_string)

    def test_ber_spec(self):
        assert steady_state_ber().property_string == "S=? [ flag ]"

    def test_paper_metrics_triple(self):
        specs = PAPER_METRICS(300)
        assert [s.name for s in specs] == ["P1", "P2", "P3"]

    def test_str_mentions_name_and_property(self):
        text = str(best_case_error(10))
        assert "P1" in text and "G<=10" in text


class TestAnalyzer:
    @pytest.fixture(scope="class")
    def analyzer(self):
        return PerformanceAnalyzer.for_viterbi(CFG)

    def test_table1_shape(self, analyzer):
        p1 = analyzer.best_case(300).value
        p2 = analyzer.average_case(300).value
        assert p1 < 1e-3
        assert 0.001 < p2 < 0.5
        p3 = PerformanceAnalyzer.for_viterbi_worst_case(CFG).worst_case(300).value
        assert p3 > 0.99
        assert p1 < p2 < p3

    def test_guarantee_provenance(self, analyzer):
        guarantee = analyzer.average_case(100)
        assert isinstance(guarantee, Guarantee)
        assert guarantee.model_states == analyzer.chain.num_states
        assert guarantee.check_seconds >= 0
        assert "I=100" in guarantee.property_string

    def test_history_accumulates(self):
        analyzer = PerformanceAnalyzer.for_viterbi(CFG)
        analyzer.ber()
        analyzer.average_case(10)
        assert len(analyzer.history) == 2
        assert "BER" in analyzer.summary()

    def test_raw_property_check(self, analyzer):
        guarantee = analyzer.check("P=? [ F<=10 flag ]")
        assert 0 <= guarantee.value <= 1

    def test_ber_equals_large_horizon_p2(self, analyzer):
        ber = analyzer.ber().value
        p2 = analyzer.average_case(400).value
        assert ber == pytest.approx(p2, rel=1e-6)

    def test_steady_state_preconditions(self, analyzer):
        conditions = analyzer.steady_state_preconditions()
        assert conditions["aperiodic"]

    def test_reachability_iterations_positive(self, analyzer):
        assert analyzer.reachability_iterations() >= 1

    def test_full_vs_reduced_factories_agree(self):
        full = PerformanceAnalyzer.for_viterbi(CFG, reduced=False)
        reduced = PerformanceAnalyzer.for_viterbi(CFG, reduced=True)
        assert full.average_case(50).value == pytest.approx(
            reduced.average_case(50).value, abs=1e-10
        )
        assert full.chain.num_states > reduced.chain.num_states

    def test_convergence_factory(self):
        analyzer = PerformanceAnalyzer.for_viterbi_convergence(CFG)
        c1 = analyzer.convergence(400)
        assert 0 < c1.value < 1
        assert "nonconv" in c1.property_string

    def test_mimo_factory(self):
        analyzer = PerformanceAnalyzer.for_mimo_detector()
        ber = analyzer.ber().value
        assert 0 < ber < 0.01

    def test_generic_chain_constructor(self):
        chain = two_state_chain(p=0.5, q=0.3)
        analyzer = PerformanceAnalyzer(chain, name="toy")
        guarantee = analyzer.check("S=? [ in_b ]")
        assert guarantee.value == pytest.approx(0.625)
        assert "toy" in analyzer.summary()
