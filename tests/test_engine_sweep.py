"""Tests for the scenario-sweep runner (repro.engine.sweep)."""

import math
import threading

import pytest

from repro.engine import SweepResult, grid, sweep, sweep_values


def _square(x):
    return x * x


def _flaky(x):
    if x == 2:
        raise ValueError("bad point")
    return x


class TestGrid:
    def test_cartesian_product_in_axis_order(self):
        points = grid(snr_db=[4, 8], levels=[3, 5])
        assert points == [
            {"snr_db": 4, "levels": 3},
            {"snr_db": 4, "levels": 5},
            {"snr_db": 8, "levels": 3},
            {"snr_db": 8, "levels": 5},
        ]

    def test_single_axis(self):
        assert grid(length=[2, 3]) == [{"length": 2}, {"length": 3}]

    def test_empty(self):
        assert grid() == [{}]


class TestSweep:
    @pytest.mark.parametrize("executor", ["serial", "thread", "process"])
    def test_results_ordered_and_correct(self, executor):
        results = sweep(_square, [3, 1, 2], executor=executor)
        assert [r.value for r in results] == [9, 1, 4]
        assert [r.point for r in results] == [3, 1, 2]
        assert all(isinstance(r, SweepResult) for r in results)
        assert all(r.ok for r in results)
        assert all(r.seconds >= 0 for r in results)

    def test_error_capture_continues(self):
        results = sweep(_flaky, [1, 2, 3], executor="serial")
        assert [r.ok for r in results] == [True, False, True]
        assert results[1].value is None
        assert "ValueError: bad point" in results[1].error
        assert results[2].value == 3

    def test_error_raise_mode(self):
        with pytest.raises(RuntimeError, match="bad point"):
            sweep(_flaky, [1, 2, 3], executor="serial", on_error="raise")

    def test_sweep_values_raises_on_failure(self):
        assert sweep_values(_square, [2, 4], executor="serial") == [4, 16]
        with pytest.raises(RuntimeError, match="bad point"):
            sweep_values(_flaky, [2], executor="serial")

    def test_unknown_executor_rejected(self):
        with pytest.raises(ValueError, match="unknown executor"):
            sweep(_square, [1], executor="fork-bomb")

    def test_unknown_on_error_rejected(self):
        with pytest.raises(ValueError, match="on_error"):
            sweep(_square, [1, 2], executor="serial", on_error="ignore")

    def test_thread_pool_actually_fans_out(self):
        """With enough workers, sleeping points overlap in time."""
        barrier = threading.Barrier(3, timeout=10)

        def rendezvous(_):
            # Only reachable if three points run concurrently.
            barrier.wait()
            return True

        results = sweep(
            rendezvous, [0, 1, 2], executor="thread", max_workers=3
        )
        assert [r.value for r in results] == [True, True, True]

    def test_max_workers_one_is_sequential(self):
        results = sweep(
            _square, [1, 2, 3], executor="thread", max_workers=1
        )
        assert [r.value for r in results] == [1, 4, 9]

    def test_closure_points_with_threads(self):
        scale = 10
        results = sweep(lambda p: p * scale, [1, 2], executor="thread")
        assert [r.value for r in results] == [10, 20]

    def test_process_pool_with_module_function(self):
        assert [
            r.value
            for r in sweep(math.sqrt, [1.0, 4.0, 9.0], executor="process")
        ] == [1.0, 2.0, 3.0]


class TestExperimentDriversAcrossExecutors:
    """The experiment drivers must work under every executor — in
    particular "process", which requires their sweep functions to be
    picklable (module-level, not closures)."""

    @pytest.mark.parametrize("executor", ["serial", "thread", "process"])
    def test_figure2_sweep(self, executor):
        from repro.experiments import figure2

        result = figure2.run(lengths=(2, 3), snr_db=8.0, executor=executor)
        assert len(result.values) == 2
        assert result.values[0] > result.values[1] > 0
