"""Tests for the weak-until operator (W) across parser and checker."""

import numpy as np
import pytest

from repro.dtmc import dtmc_from_dict
from repro.pctl import Bound, Label, ProbQuery, WeakUntil, check, parse_formula

from helpers import gamblers_ruin, two_state_chain


def branching_chain():
    """s -> goal (0.25) | trap (0.25) | stay (0.5); safe = {s, goal}."""
    return dtmc_from_dict(
        {
            "s": {"s": 0.5, "g": 0.25, "bad": 0.25},
            "g": {"g": 1.0},
            "bad": {"bad": 1.0},
        },
        initial="s",
        labels={"safe": ["s", "g"], "goal": ["g"]},
    )


class TestParsing:
    def test_unbounded(self):
        formula = parse_formula("P=? [ safe W goal ]")
        assert formula == ProbQuery(
            WeakUntil(Label("safe"), Label("goal")), Bound(None)
        )

    def test_bounded(self):
        formula = parse_formula("P=? [ safe W<=10 goal ]")
        assert formula.path.bound == 10

    def test_round_trip(self):
        for text in ["P=? [ safe W goal ]", "P=? [ safe W<=10 goal ]"]:
            assert parse_formula(str(parse_formula(text))) == formula_norm(text)


def formula_norm(text):
    return parse_formula(text)


class TestSemantics:
    def test_weak_until_at_least_until(self):
        """W is weaker than U: P(a W b) >= P(a U b) everywhere."""
        chain = gamblers_ruin(n=4, p=0.5)
        chain.add_label_from_predicate("mid", lambda s: 0 < s < 4)
        chain.add_label_from_predicate("win", lambda s: s == 4)
        w = check(chain, "P=? [ mid W win ]")
        u = check(chain, "P=? [ mid U win ]")
        assert np.all(w.vector >= u.vector - 1e-12)

    def test_violation_complement(self):
        chain = branching_chain()
        # Violation requires entering `bad` before `goal`: prob 0.5.
        assert check(chain, "P=? [ safe W goal ]").value == pytest.approx(0.5)

    def test_globally_as_weak_until_false(self):
        chain = branching_chain()
        g = check(chain, "P=? [ G safe ]").value
        w = check(chain, "P=? [ safe W false ]").value
        assert g == pytest.approx(w)

    def test_bounded_weak_until(self):
        chain = branching_chain()
        # Within 1 step the only violation is the direct jump to bad.
        assert check(chain, "P=? [ safe W<=1 goal ]").value == pytest.approx(0.75)
        # Bound 0: nothing can have gone wrong yet.
        assert check(chain, "P=? [ safe W<=0 goal ]").value == pytest.approx(1.0)

    def test_true_weak_until_anything_is_one(self):
        chain = two_state_chain()
        assert check(chain, "P=? [ true W in_b ]").value == pytest.approx(1.0)

    def test_decreasing_in_bound(self):
        chain = branching_chain()
        values = [
            check(chain, f"P=? [ safe W<={t} goal ]").value for t in range(6)
        ]
        assert all(a >= b - 1e-12 for a, b in zip(values, values[1:]))
        # Converges to the unbounded value from above.
        unbounded = check(chain, "P=? [ safe W goal ]").value
        assert values[-1] >= unbounded
