"""Tests for the Viterbi DTMC models and the soundness of the reduction.

These encode the paper's Section IV-A proof obligations as executable
checks:

* Part A — the error functions of ``M`` and ``M_R`` are equivalent
  (checked exhaustively, the Formality substitute);
* Part B — quotienting ``M`` by ``F_abs`` is strongly lumpable, and the
  quotient is probabilistically bisimilar to the directly-built ``M_R``;
* the model-checked properties P1/P2/P3 coincide on ``M`` and ``M_R``;
* the DTMC is a faithful model of the bit-true RTL decoder (Monte-Carlo
  cross-check).
"""


import numpy as np
import pytest

from repro.core.reductions import (
    are_bisimilar,
    quotient_by_function,
)
from repro.dtmc import assert_ergodic, reachability_iterations
from repro.pctl import check
from repro.viterbi import (
    RTLViterbiDecoder,
    ViterbiModelConfig,
    abstraction_function,
    build_convergence_model,
    build_error_count_model,
    build_full_model,
    build_reduced_model,
    traceback_flag,
)

SMALL = ViterbiModelConfig(traceback_length=3, num_levels=3, pm_max=3)
DEFAULT = ViterbiModelConfig()


@pytest.fixture(scope="module")
def small_models():
    return build_full_model(SMALL), build_reduced_model(SMALL)


@pytest.fixture(scope="module")
def default_models():
    return build_full_model(DEFAULT), build_reduced_model(DEFAULT)


class TestModelStructure:
    def test_reduction_shrinks_state_space(self, default_models):
        full, reduced = default_models
        assert reduced.num_states < full.num_states
        assert full.num_states / reduced.num_states > 2

    def test_initial_state_has_no_error(self, default_models):
        full, reduced = default_models
        for result in default_models:
            init = result.states[result.chain.initial_states()[0]]
            assert init.flag == 0

    def test_flag_is_function_of_other_variables(self, small_models):
        full, _ = small_models
        for state in full.states:
            assert state.flag == traceback_flag(state.pm, state.prev, state.x)

    def test_path_metrics_normalized(self, default_models):
        full, _ = default_models
        for state in full.states:
            assert min(state.pm) == 0
            assert max(state.pm) <= DEFAULT.pm_max

    def test_chain_is_ergodic(self, default_models):
        _, reduced = default_models
        irreducible_ok, aperiodic = assert_ergodic(reduced.chain)
        # The paper argues steady state via irreducibility+aperiodicity
        # of the recurrent behaviour; cold-start states may be
        # transient, so check aperiodicity (and RI finiteness) instead
        # of global irreducibility.
        assert aperiodic

    def test_reachability_iterations_reported(self, default_models):
        full, reduced = default_models
        assert full.bfs_levels >= 1
        assert reduced.bfs_levels >= 1


class TestReductionSoundness:
    def test_part_a_error_functions_equivalent(self, small_models):
        """Eq. 5 == Eq. 9 on every reachable state (Formality substitute)."""
        full, _ = small_models
        for state in full.states:
            reduced_state = abstraction_function(state)
            assert reduced_state.flag == state.flag, (
                f"flag mismatch on {state}"
            )

    def test_part_b_quotient_is_strongly_lumpable(self, small_models):
        """Quotienting M by F_abs must pass the Strong Lumping check."""
        full, _ = small_models
        result = quotient_by_function(full.chain, abstraction_function)
        assert result.num_blocks < full.num_states

    def test_quotient_bisimilar_to_direct_reduced_model(self, small_models):
        full, reduced = small_models
        quotient = quotient_by_function(full.chain, abstraction_function)
        verdict = are_bisimilar(
            quotient.chain, reduced.chain, respect=["flag"]
        )
        assert verdict.equivalent, verdict.witness

    def test_full_and_reduced_bisimilar(self, small_models):
        full, reduced = small_models
        verdict = are_bisimilar(full.chain, reduced.chain, respect=["flag"])
        assert verdict.equivalent, verdict.witness

    @pytest.mark.parametrize(
        "prop",
        [
            "P=? [ G<=40 !flag ]",
            "R=? [ I=40 ]",
            "P=? [ F<=40 flag ]",
            "S=? [ flag ]",
        ],
    )
    def test_properties_agree_between_m_and_mr(self, default_models, prop):
        full, reduced = default_models
        v_full = check(full.chain, prop).value
        v_reduced = check(reduced.chain, prop).value
        assert v_full == pytest.approx(v_reduced, abs=1e-10)


class TestPaperProperties:
    def test_p1_small_p3_large_at_low_snr(self, default_models):
        """Table I shape: P1 ~ 0, P3 ~ 1, P2 in between at 5 dB."""
        _, reduced = default_models
        horizon = 300
        p1 = check(reduced.chain, f"P=? [ G<={horizon} !flag ]").value
        p2 = check(reduced.chain, f"R=? [ I={horizon} ]").value
        assert p1 < 1e-3
        assert 0.001 < p2 < 0.5

    def test_p3_with_error_counter(self):
        result = build_error_count_model(DEFAULT)
        p3 = check(result.chain, "P=? [ F<=300 errcnt>1 ]").value
        assert p3 > 0.99  # worst case ~ 1 at poor SNR (Table I)

    def test_p3_monotone_in_horizon(self):
        result = build_error_count_model(DEFAULT)
        values = [
            check(result.chain, f"P=? [ F<={t} errcnt>1 ]").value
            for t in (5, 20, 80)
        ]
        assert values[0] <= values[1] <= values[2]

    def test_p2_converges_past_reachability_fixpoint(self, default_models):
        """Table III shape: P2 stabilizes for T >> RI."""
        _, reduced = default_models
        ri = reachability_iterations(reduced.chain)
        late = [
            check(reduced.chain, f"R=? [ I={t} ]").value
            for t in (ri * 10, ri * 20)
        ]
        assert late[0] == pytest.approx(late[1], rel=1e-6)
        steady = check(reduced.chain, "S=? [ flag ]").value
        assert late[1] == pytest.approx(steady, rel=1e-6)

    def test_p2_decreases_with_snr(self):
        bers = []
        for snr in (2.0, 5.0, 8.0):
            cfg = ViterbiModelConfig(snr_db=snr)
            result = build_reduced_model(cfg)
            bers.append(check(result.chain, "S=? [ flag ]").value)
        assert bers[0] > bers[1] > bers[2]


class TestConvergenceModel:
    def test_tiny_state_space(self):
        result = build_convergence_model(DEFAULT)
        assert result.num_states < 200

    def test_count_semantics(self):
        result = build_convergence_model(DEFAULT)
        # count resets on convergent stages: some successor of a
        # high-count state has count 0.
        chain = result.chain
        high = [i for i, s in enumerate(result.states) if s.count >= 2]
        assert high, "expected reachable count >= 2"
        resets = any(
            result.states[j].count == 0
            for i in high
            for j, _ in chain.successors(i)
        )
        assert resets

    def test_c1_decreases_with_traceback_length(self):
        """Figure 2 shape: non-convergence probability decays with L."""
        values = []
        for length in (2, 4, 6):
            cfg = ViterbiModelConfig(
                snr_db=8.0, traceback_length=length
            )
            result = build_convergence_model(cfg)
            values.append(check(result.chain, "S=? [ nonconv ]").value)
        assert values[0] > values[1] > values[2]

    def test_c1_via_instantaneous_reward_matches_steady(self):
        result = build_convergence_model(DEFAULT)
        c1_reward = check(result.chain, "R=? [ I=400 ]").value
        c1_steady = check(result.chain, "S=? [ nonconv ]").value
        assert c1_reward == pytest.approx(c1_steady, rel=1e-6)


class TestModelMatchesDevice:
    def test_monte_carlo_ber_matches_p2(self):
        """The DTMC is a faithful model of the RTL decoder."""
        cfg = DEFAULT
        reduced = build_reduced_model(cfg)
        p2 = check(reduced.chain, "S=? [ flag ]").value

        rng = np.random.default_rng(42)
        trellis = cfg.make_trellis()
        quantizer = cfg.make_quantizer()
        tx = cfg.make_transmitter()
        decoder = RTLViterbiDecoder(trellis, cfg.traceback_length)
        n = 120_000
        bits = rng.integers(0, 2, n)
        clean = tx.transmit_sequence(bits, initial=0)
        noisy = clean + rng.normal(0.0, cfg.sigma, n)
        q = quantizer.quantize_index(noisy)
        decoded = decoder.decode_sequence(q)
        reference = bits[: decoded.size]
        ber = float(np.mean(decoded != reference))
        # Three-sigma Monte-Carlo band around the model-checked value.
        tolerance = 3.0 * np.sqrt(p2 * (1 - p2) / n) + 1e-4
        assert abs(ber - p2) < max(tolerance, 0.15 * p2)
