"""Shared test utilities: small reference chains and random-chain strategies."""

from __future__ import annotations

import numpy as np
from hypothesis import strategies as st

from repro.dtmc import DTMC, dtmc_from_dict


def knuth_yao_die() -> DTMC:
    """Knuth-Yao simulation of a fair die with a fair coin.

    The canonical PRISM example: 13 states, terminal states labeled
    ``one`` .. ``six`` each reached with probability 1/6.
    """
    transitions = {
        "s0": {"s1": 0.5, "s2": 0.5},
        "s1": {"s3": 0.5, "s4": 0.5},
        "s2": {"s5": 0.5, "s6": 0.5},
        "s3": {"s1": 0.5, "d1": 0.5},
        "s4": {"d2": 0.5, "d3": 0.5},
        "s5": {"d4": 0.5, "d5": 0.5},
        "s6": {"s2": 0.5, "d6": 0.5},
    }
    labels = {
        "one": ["d1"],
        "two": ["d2"],
        "three": ["d3"],
        "four": ["d4"],
        "five": ["d5"],
        "six": ["d6"],
        "done": ["d1", "d2", "d3", "d4", "d5", "d6"],
    }
    return dtmc_from_dict(transitions, initial="s0", labels=labels)


def two_state_chain(p: float = 0.5, q: float = 0.3) -> DTMC:
    """Ergodic two-state chain: a -> b with prob p, b -> a with prob q."""
    return dtmc_from_dict(
        {"a": {"a": 1 - p, "b": p}, "b": {"a": q, "b": 1 - q}},
        initial="a",
        labels={"in_b": ["b"]},
        rewards={"hit": {"b": 1.0}},
    )


def gamblers_ruin(n: int = 5, p: float = 0.5) -> DTMC:
    """Gambler's ruin on {0..n} with win probability p, absorbing ends."""
    transitions = {}
    for i in range(1, n):
        transitions[i] = {i + 1: p, i - 1: 1 - p}
    transitions[0] = {0: 1.0}
    transitions[n] = {n: 1.0}
    return dtmc_from_dict(
        transitions,
        initial=n // 2,
        labels={"ruin": [0], "win": [n]},
    )


def random_stochastic_matrix(draw, max_states: int = 6):
    """Hypothesis helper drawing a random row-stochastic matrix."""
    n = draw(st.integers(min_value=1, max_value=max_states))
    rows = []
    for _ in range(n):
        weights = draw(
            st.lists(
                st.floats(min_value=0.01, max_value=1.0, allow_nan=False),
                min_size=n,
                max_size=n,
            )
        )
        weights = np.asarray(weights)
        rows.append(weights / weights.sum())
    return np.vstack(rows)


@st.composite
def random_dtmcs(draw, max_states: int = 6) -> DTMC:
    """Strategy producing small random ergodic-ish DTMCs with a label."""
    matrix = random_stochastic_matrix(draw, max_states)
    n = matrix.shape[0]
    labels = {"mark": np.array([i % 2 == 0 for i in range(n)])}
    rewards = {"unit": np.ones(n), "mark": labels["mark"].astype(float)}
    return DTMC(matrix, 0, labels=labels, rewards=rewards)
