"""Tests for the persistent guarantee store (repro.store) and the
store/shard integration of the sweep layer.

Covers the ISSUE-6 acceptance surface:

* round-trip fidelity of every stored value type (floats, ApmcResult,
  SprtResult, Guarantee) field by field;
* key sensitivity — a different formula, backend, smc config, seed or
  salt must miss;
* cross-process concurrent writers against one store file;
* invalidation and maintenance APIs;
* cold-vs-warm ``zoo.sweep`` equivalence (bit-identical values);
* duplicate-point deduplication inside one sweep call;
* sharded ``executor="process"`` results bit-identical to the
  serial/thread path on the statistical backends;
* the survey rewrite: dedicated ``label`` field, untouched ``point``,
  one shared executor pass.
"""

import math
import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import asdict
import pickle

import pytest

from repro import dtmc_from_dict, zoo
from repro.core import Guarantee
from repro.engine import SmcConfig, sweep_check
from repro.engine.sweep import _shard, sweep
from repro.smc.hoeffding import ApmcResult
from repro.smc.sprt import SprtResult
from repro.store import (
    ResultStore,
    StoreError,
    check_fingerprint,
    make_key,
    read_through,
)

FORMULA = "P=? [ F<=50 goal ]"


def _tiny_chain(point):
    """Module-level build fn (picklable) for engine-level sweep checks."""
    p = float(point["p"])
    return dtmc_from_dict(
        {0: {0: 1.0 - p, 1: p}, 1: {1: 1.0}},
        initial=0,
        labels={"goal": [1]},
    )


_BUILD_CALLS = []


def _counting_chain(point):
    _BUILD_CALLS.append(dict(point))
    return _tiny_chain(point)


def _failing_chain(point):
    if point["p"] > 0.5:
        raise ValueError("unbuildable point")
    return _tiny_chain(point)


# ----------------------------------------------------------------------
# Value encoding: every supported type round-trips field by field
# ----------------------------------------------------------------------

class TestValueRoundTrip:
    @pytest.fixture
    def store(self, tmp_path):
        with ResultStore(tmp_path / "rt.sqlite") as store:
            yield store

    def test_float_bit_exact(self, store):
        value = 0.1 + 0.2  # not representable prettily: repr must survive
        store.put({"x": 1}, FORMULA, value)
        assert store.get({"x": 1}, FORMULA).value == value

    @pytest.mark.parametrize(
        "value", [0, 3, True, None, "text", [1, 2.5, "a"], {"k": [1, 2]}]
    )
    def test_json_scalars_and_containers(self, store, value):
        store.put({"v": repr(value)}, FORMULA, value)
        assert store.get({"v": repr(value)}, FORMULA).value == value

    def test_numpy_scalar_becomes_float(self, store):
        import numpy as np

        store.put({"np": 1}, FORMULA, np.float64(1 / 3))
        got = store.get({"np": 1}, FORMULA).value
        assert isinstance(got, float) and got == 1 / 3

    def test_apmc_result_all_fields(self, store):
        value = ApmcResult(estimate=0.123456789, samples=738, epsilon=0.05, delta=0.1)
        store.put({"a": 1}, FORMULA, value, backend="apmc")
        got = store.get({"a": 1}, FORMULA, backend="apmc").value
        assert isinstance(got, ApmcResult)
        assert asdict(got) == asdict(value)
        assert got == value
        assert got.interval == value.interval

    def test_sprt_result_all_fields(self, store):
        value = SprtResult(
            accept=True, samples=412, theta=0.7,
            half_width=0.01, alpha=0.01, beta=0.02,
        )
        store.put({"s": 1}, FORMULA, value, backend="sprt")
        got = store.get({"s": 1}, FORMULA, backend="sprt").value
        assert isinstance(got, SprtResult)
        assert asdict(got) == asdict(value)

    def test_guarantee_all_fields(self, store):
        value = Guarantee(
            metric="BER",
            property_string="S=? [ flag ]",
            value=1.25e-3,
            model_states=96,
            model_transitions=1234,
            check_seconds=0.75,
            backend="lu",
            cache_hits=3,
            samples=0,
        )
        store.put({"g": 1}, "S=? [ flag ]", value)
        got = store.get({"g": 1}, "S=? [ flag ]").value
        assert isinstance(got, Guarantee)
        assert asdict(got) == asdict(value)
        assert got.is_exact

    def test_samples_provenance_lifted_from_value(self, store):
        value = ApmcResult(estimate=0.5, samples=999, epsilon=0.1, delta=0.1)
        store.put({"p": 1}, FORMULA, value, backend="apmc")
        assert store.get({"p": 1}, FORMULA, backend="apmc").samples == 999

    def test_unencodable_value_raises(self, store):
        with pytest.raises(StoreError, match="cannot store"):
            store.put({"bad": 1}, FORMULA, object())

    def test_unjsonable_scenario_raises(self, store):
        with pytest.raises(StoreError, match="canonicalize"):
            store.put({"obj": object()}, FORMULA, 1.0)


# ----------------------------------------------------------------------
# Store basics: upsert, key sensitivity, maintenance
# ----------------------------------------------------------------------

class TestResultStore:
    def test_miss_returns_none(self, tmp_path):
        store = ResultStore(tmp_path / "s.sqlite")
        assert store.get({"n": 1}, FORMULA) is None

    def test_upsert_overwrites(self, tmp_path):
        store = ResultStore(tmp_path / "s.sqlite")
        store.put({"n": 1}, FORMULA, 0.25, seconds=1.0)
        store.put({"n": 1}, FORMULA, 0.75, seconds=2.0)
        row = store.get({"n": 1}, FORMULA)
        assert row.value == 0.75 and row.seconds == 2.0
        assert len(store) == 1

    def test_scenario_key_is_order_insensitive(self, tmp_path):
        store = ResultStore(tmp_path / "s.sqlite")
        store.put({"a": 1, "b": 2}, FORMULA, 0.5)
        assert store.get({"b": 2, "a": 1}, FORMULA).value == 0.5

    def test_key_sensitivity(self, tmp_path):
        """Different formula / backend / config / seed must all miss."""
        store = ResultStore(tmp_path / "s.sqlite")
        smc = SmcConfig(epsilon=0.05, delta=0.1, seed=0)
        config = check_fingerprint("apmc", smc=smc)
        store.put({"n": 8}, FORMULA, 0.5, backend="apmc", config=config)
        assert store.get({"n": 8}, FORMULA, "apmc", config).value == 0.5
        # formula
        assert store.get({"n": 8}, "P=? [ F<=51 goal ]", "apmc", config) is None
        # backend
        assert store.get({"n": 8}, FORMULA, "sprt", config) is None
        # scenario
        assert store.get({"n": 9}, FORMULA, "apmc", config) is None
        # epsilon
        other = check_fingerprint("apmc", smc=SmcConfig(epsilon=0.06, delta=0.1, seed=0))
        assert store.get({"n": 8}, FORMULA, "apmc", other) is None
        # seed
        reseeded = check_fingerprint("apmc", smc=SmcConfig(epsilon=0.05, delta=0.1, seed=1))
        assert store.get({"n": 8}, FORMULA, "apmc", reseeded) is None

    def test_solver_fingerprint_distinguishes_methods(self):
        exact_lu = check_fingerprint("exact", solver="lu")
        exact_gs = check_fingerprint("exact", solver="gs")
        assert exact_lu != exact_gs
        assert make_key("s", {}, FORMULA, "exact", exact_lu) != make_key(
            "s", {}, FORMULA, "exact", exact_gs
        )

    def test_salt_invalidates_wholesale(self, tmp_path):
        path = tmp_path / "s.sqlite"
        ResultStore(path, salt="v1").put({"n": 1}, FORMULA, 0.5)
        assert ResultStore(path, salt="v2").get({"n": 1}, FORMULA) is None
        assert ResultStore(path, salt="v1").get({"n": 1}, FORMULA).value == 0.5

    def test_hits_counter_persists(self, tmp_path):
        store = ResultStore(tmp_path / "s.sqlite")
        store.put({"n": 1}, FORMULA, 0.5)
        store.get({"n": 1}, FORMULA)
        store.get({"n": 1}, FORMULA)
        assert store.query()[0].hits == 2
        assert store.stats().total_hits == 2

    def test_get_many_parallel_to_queries(self, tmp_path):
        store = ResultStore(tmp_path / "s.sqlite")
        store.put({"n": 1}, FORMULA, 0.1)
        store.put({"n": 3}, FORMULA, 0.3)
        rows = store.get_many(
            [
                ({"n": 1}, FORMULA, "exact", None),
                ({"n": 2}, FORMULA, "exact", None),
                ({"n": 3}, FORMULA, "exact", None),
            ]
        )
        assert [r.value if r else None for r in rows] == [0.1, None, 0.3]

    def test_query_filters_and_limit(self, tmp_path):
        store = ResultStore(tmp_path / "s.sqlite")
        store.put({"n": 1}, FORMULA, 0.1, family="birth-death")
        store.put({"n": 2}, FORMULA, 0.2, family="birth-death")
        store.put({"m": 1}, "P=? [ F<=10 flag ]", 0.3, family="mimo-1xN")
        assert len(store.query(family="birth-death")) == 2
        assert len(store.query(formula="P=? [ F<=10 flag ]")) == 1
        assert len(store.query(limit=1)) == 1
        assert store.query(family="nope") == []

    def test_family_column_from_extra(self, tmp_path):
        store = ResultStore(tmp_path / "s.sqlite")
        store.put({"n": 1}, FORMULA, 0.1, extra={"family": "birth-death"})
        assert store.query(family="birth-death")[0].extra == {
            "family": "birth-death"
        }

    def test_invalidate(self, tmp_path):
        store = ResultStore(tmp_path / "s.sqlite")
        store.put({"n": 1}, FORMULA, 0.1, family="a", backend="exact")
        store.put({"n": 2}, FORMULA, 0.2, family="b", backend="apmc")
        store.put({"n": 3}, FORMULA, 0.3, family="b", backend="exact")
        assert store.invalidate(family="b", backend="exact") == 1
        assert len(store) == 2
        assert store.invalidate() == 2
        assert len(store) == 0

    def test_stats(self, tmp_path):
        store = ResultStore(tmp_path / "s.sqlite")
        store.put({"n": 1}, FORMULA, 0.1, family="a", seconds=1.5)
        store.put({"n": 2}, FORMULA, 0.2, family="b", seconds=0.5)
        stats = store.stats()
        assert stats.entries == 2
        assert stats.families == {"a": 1, "b": 1}
        assert stats.backends == {"exact": 2}
        assert stats.compute_seconds == pytest.approx(2.0)
        assert stats.db_bytes > 0
        assert "entries: 2" in stats.describe()

    def test_pickle_reopens_by_location(self, tmp_path):
        store = ResultStore(tmp_path / "s.sqlite", salt="pickled")
        store.put({"n": 1}, FORMULA, 0.5)
        clone = pickle.loads(pickle.dumps(store))
        assert clone.salt == "pickled"
        assert clone.get({"n": 1}, FORMULA).value == 0.5


# ----------------------------------------------------------------------
# Cross-process concurrent writers
# ----------------------------------------------------------------------

def _hammer_store(args):
    path, worker, count = args
    store = ResultStore(path, salt="concurrent")
    for i in range(count):
        store.put(
            {"worker": worker, "i": i}, FORMULA, float(worker * count + i),
            seconds=0.001, family=f"w{worker}",
        )
    store.close()
    return worker


def _hammer_mixed_load(args):
    """One simulated remote host: interleaved ``put``/``get_many``
    rounds against the shared WAL file (the cross-host write pattern of
    the networked guarantee service, where every worker's results are
    banked into one store by the front-end)."""
    path, host, rounds = args
    store = ResultStore(path, salt="cross-host")
    observed_hits = 0
    for i in range(rounds):
        store.put(
            {"host": host, "i": i}, FORMULA, float(host * 1000 + i),
            seconds=0.001, family=f"host{host}",
        )
        # Every host also upserts the same contended row over and over;
        # last-write-wins there, but the row must never tear or vanish.
        store.put(
            {"shared": "row"}, FORMULA, float(host),
            seconds=0.001, family="shared",
        )
        queries = [
            ({"host": host, "i": j}, FORMULA, "exact", None)
            for j in range(i + 1)
        ] + [({"shared": "row"}, FORMULA, "exact", None)]
        rows = store.get_many(queries)
        # Reads racing other hosts' writes: our *own* rows are always
        # visible and never corrupted.
        for j, row in enumerate(rows[:-1]):
            if row is None or row.value != float(host * 1000 + j):
                store.close()
                return (host, f"lost update at i={i} j={j}: {row!r}")
        if rows[-1] is not None:
            observed_hits += 1
    store.close()
    return (host, observed_hits)


class TestCrossHostWriters:
    """ISSUE-8 satellite: many processes hammering ``put``/``get_many``
    on one WAL store, as networked workers + front-end would."""

    HOSTS = 6
    ROUNDS = 20

    def test_no_lost_updates_under_mixed_hammering(self, tmp_path):
        path = os.fspath(tmp_path / "cross-host.sqlite")
        with ProcessPoolExecutor(max_workers=self.HOSTS) as pool:
            outcomes = list(
                pool.map(
                    _hammer_mixed_load,
                    [(path, h, self.ROUNDS) for h in range(self.HOSTS)],
                )
            )
        failures = [o for o in outcomes if not isinstance(o[1], int)]
        assert not failures, failures
        # Every host saw the contended row on every read round.
        assert all(hits == self.ROUNDS for _, hits in outcomes)
        store = ResultStore(path, salt="cross-host")
        # No lost updates: every per-host row landed, plus the one
        # contended row, and nothing else.
        assert len(store) == self.HOSTS * self.ROUNDS + 1
        queries = [
            ({"host": h, "i": i}, FORMULA, "exact", None)
            for h in range(self.HOSTS)
            for i in range(self.ROUNDS)
        ]
        rows = store.get_many(queries)
        assert all(row is not None for row in rows)
        assert [row.value for row in rows] == [
            float(h * 1000 + i)
            for h in range(self.HOSTS)
            for i in range(self.ROUNDS)
        ]
        # The contended row holds one of the competing writes, intact.
        shared = store.get({"shared": "row"}, FORMULA)
        assert shared is not None
        assert shared.value in {float(h) for h in range(self.HOSTS)}
        store.close()

    def test_stats_stay_consistent_after_hammering(self, tmp_path):
        path = os.fspath(tmp_path / "cross-host-stats.sqlite")
        with ProcessPoolExecutor(max_workers=self.HOSTS) as pool:
            list(
                pool.map(
                    _hammer_mixed_load,
                    [(path, h, self.ROUNDS) for h in range(self.HOSTS)],
                )
            )
        store = ResultStore(path, salt="cross-host")
        stats = store.stats()
        assert stats.entries == self.HOSTS * self.ROUNDS + 1
        assert stats.entries == len(store)
        # Per-family counts add up exactly: one family per host plus
        # the contended row's family.
        assert stats.families.get("shared") == 1
        for h in range(self.HOSTS):
            assert stats.families.get(f"host{h}") == self.ROUNDS
        assert sum(stats.families.values()) == stats.entries
        assert sum(stats.backends.values()) == stats.entries
        store.close()


class TestConcurrentWriters:
    def test_parallel_processes_share_one_file(self, tmp_path):
        path = os.fspath(tmp_path / "concurrent.sqlite")
        workers, per_worker = 4, 25
        with ProcessPoolExecutor(max_workers=4) as pool:
            done = list(
                pool.map(
                    _hammer_store,
                    [(path, w, per_worker) for w in range(workers)],
                )
            )
        assert sorted(done) == list(range(workers))
        store = ResultStore(path, salt="concurrent")
        assert len(store) == workers * per_worker
        for w in range(workers):
            for i in range(per_worker):
                row = store.get({"worker": w, "i": i}, FORMULA)
                assert row is not None
                assert row.value == float(w * per_worker + i)


# ----------------------------------------------------------------------
# sweep_check integration: read-through caching + deduplication
# ----------------------------------------------------------------------

class TestSweepCheckStore:
    def test_cold_then_warm(self, tmp_path):
        store = ResultStore(tmp_path / "s.sqlite")
        points = [{"p": 0.1}, {"p": 0.2}, {"p": 0.3}]
        cold = sweep_check(
            _tiny_chain, points, FORMULA, executor="serial", store=store
        )
        warm = sweep_check(
            _tiny_chain, points, FORMULA, executor="serial", store=store
        )
        assert [r.cached for r in cold] == [False, False, False]
        assert [r.cached for r in warm] == [True, True, True]
        assert [r.value for r in warm] == [r.value for r in cold]
        assert [r.point for r in warm] == points

    def test_partial_overlap_only_computes_new_points(self, tmp_path):
        store = ResultStore(tmp_path / "s.sqlite")
        sweep_check(
            _tiny_chain, [{"p": 0.1}], FORMULA, executor="serial", store=store
        )
        mixed = sweep_check(
            _tiny_chain, [{"p": 0.1}, {"p": 0.4}], FORMULA,
            executor="serial", store=store,
        )
        assert [r.cached for r in mixed] == [True, False]
        assert len(store) == 2

    def test_statistical_warm_equals_cold_bitwise(self, tmp_path):
        store = ResultStore(tmp_path / "s.sqlite")
        smc = SmcConfig(epsilon=0.1, delta=0.2, seed=3)
        points = [{"p": 0.2}, {"p": 0.6}]
        cold = sweep_check(
            _tiny_chain, points, FORMULA, backend="apmc", smc=smc,
            executor="serial", store=store,
        )
        warm = sweep_check(
            _tiny_chain, points, FORMULA, backend="apmc", smc=smc,
            executor="serial", store=store,
        )
        for a, b in zip(cold, warm):
            assert b.cached and not a.cached
            assert asdict(a.value) == asdict(b.value)

    def test_different_seed_misses(self, tmp_path):
        store = ResultStore(tmp_path / "s.sqlite")
        kwargs = dict(backend="apmc", executor="serial", store=store)
        sweep_check(
            _tiny_chain, [{"p": 0.2}], FORMULA,
            smc=SmcConfig(epsilon=0.1, delta=0.2, seed=0), **kwargs,
        )
        reseeded = sweep_check(
            _tiny_chain, [{"p": 0.2}], FORMULA,
            smc=SmcConfig(epsilon=0.1, delta=0.2, seed=1), **kwargs,
        )
        assert reseeded[0].cached is False

    def test_failures_are_not_banked(self, tmp_path):
        store = ResultStore(tmp_path / "s.sqlite")
        points = [{"p": 0.2}, {"p": 0.9}]
        first = sweep_check(
            _failing_chain, points, FORMULA, executor="serial", store=store
        )
        assert [r.ok for r in first] == [True, False]
        assert len(store) == 1  # only the success
        second = sweep_check(
            _failing_chain, points, FORMULA, executor="serial", store=store
        )
        assert second[0].cached is True
        assert second[1].ok is False and second[1].cached is False

    def test_duplicate_points_solved_once(self):
        _BUILD_CALLS.clear()
        points = [{"p": 0.1}, {"p": 0.2}, {"p": 0.1}, {"p": 0.1}]
        results = sweep_check(
            _counting_chain, points, FORMULA, executor="serial"
        )
        assert len(_BUILD_CALLS) == 2  # distinct points only
        assert [r.point for r in results] == points
        assert results[0].value == results[2].value == results[3].value
        assert results[0].ok

    def test_duplicate_points_share_first_seed_stream(self):
        smc = SmcConfig(epsilon=0.1, delta=0.2, seed=5)
        dup = sweep_check(
            _tiny_chain, [{"p": 0.3}, {"p": 0.3}], FORMULA,
            backend="apmc", smc=smc, executor="serial",
        )
        solo = sweep_check(
            _tiny_chain, [{"p": 0.3}], FORMULA,
            backend="apmc", smc=smc, executor="serial",
        )
        assert dup[0].value == dup[1].value == solo[0].value

    def test_on_error_raise_still_raises(self, tmp_path):
        store = ResultStore(tmp_path / "s.sqlite")
        with pytest.raises(RuntimeError, match="unbuildable"):
            sweep_check(
                _failing_chain, [{"p": 0.9}], FORMULA,
                executor="serial", store=store, on_error="raise",
            )

    def test_read_through_decorator_binds_store(self, tmp_path):
        store = ResultStore(tmp_path / "s.sqlite")
        cached_check = read_through(store)(sweep_check)
        cold = cached_check(_tiny_chain, [{"p": 0.25}], FORMULA, executor="serial")
        warm = cached_check(_tiny_chain, [{"p": 0.25}], FORMULA, executor="serial")
        assert cold[0].cached is False and warm[0].cached is True
        assert warm[0].value == cold[0].value


# ----------------------------------------------------------------------
# zoo.sweep integration: merged-spec keys, cold/warm equivalence
# ----------------------------------------------------------------------

class TestZooSweepStore:
    def test_cold_vs_warm_equivalence_exact(self, tmp_path):
        store = ResultStore(tmp_path / "z.sqlite")
        axes = {"n": [8, 12, 16], "p_up": [0.25, 0.35]}
        cold = zoo.sweep("birth-death", axes, FORMULA, store=store, executor="serial")
        warm = zoo.sweep("birth-death", axes, FORMULA, store=store, executor="serial")
        assert all(not r.cached for r in cold)
        assert all(r.cached for r in warm)
        assert [r.value for r in warm] == [r.value for r in cold]
        assert [r.point for r in warm] == [r.point for r in cold]

    def test_cold_vs_warm_equivalence_apmc(self, tmp_path):
        store = ResultStore(tmp_path / "z.sqlite")
        smc = SmcConfig(epsilon=0.1, delta=0.2, seed=11)
        kwargs = dict(
            axes={"n": [8, 12]}, backend="apmc", smc=smc,
            store=store, executor="serial",
        )
        cold = zoo.sweep("birth-death", **kwargs)
        warm = zoo.sweep("birth-death", **kwargs)
        assert all(r.cached for r in warm)
        assert [asdict(r.value) for r in warm] == [
            asdict(r.value) for r in cold
        ]

    def test_defaults_and_explicit_params_share_a_key(self, tmp_path):
        """points=[{}] and the spelled-out defaults hit the same row."""
        store = ResultStore(tmp_path / "z.sqlite")
        fam = zoo.get_model("birth-death")
        zoo.sweep(
            "birth-death", points=[{}], formula=FORMULA,
            store=store, executor="serial",
        )
        explicit = zoo.sweep(
            "birth-death", points=[dict(fam.defaults)], formula=FORMULA,
            store=store, executor="serial",
        )
        assert explicit[0].cached is True
        assert len(store) == 1

    def test_base_params_are_part_of_the_key(self, tmp_path):
        store = ResultStore(tmp_path / "z.sqlite")
        zoo.sweep(
            "birth-death", points=[{"n": 8}], formula=FORMULA,
            store=store, executor="serial",
        )
        shifted = zoo.sweep(
            "birth-death", points=[{"n": 8}], formula=FORMULA,
            base_params={"p_up": 0.4}, store=store, executor="serial",
        )
        assert shifted[0].cached is False
        assert len(store) == 2

    def test_reduce_flag_is_part_of_the_key(self, tmp_path):
        store = ResultStore(tmp_path / "z.sqlite")
        zoo.sweep(
            "birth-death", points=[{"n": 8}], formula=FORMULA,
            store=store, executor="serial",
        )
        full = zoo.sweep(
            "birth-death", points=[{"n": 8}], formula=FORMULA,
            reduce=False, store=store, executor="serial",
        )
        assert full[0].cached is False

    def test_family_provenance_lands_in_store(self, tmp_path):
        store = ResultStore(tmp_path / "z.sqlite")
        zoo.sweep(
            "birth-death", points=[{"n": 8}], formula=FORMULA,
            store=store, executor="serial",
        )
        rows = store.query(family="birth-death")
        assert len(rows) == 1
        assert rows[0].backend == "exact"
        assert rows[0].seconds > 0


# ----------------------------------------------------------------------
# Sharded process executor: bit-identical merges
# ----------------------------------------------------------------------

class TestShardedProcessSweep:
    def test_shard_helper_covers_and_orders(self):
        points = list(range(10))
        shards = _shard(points, workers=2, shard_size=3)
        assert [stop - start for start, stop in shards] == [3, 3, 3, 1]
        covered = [i for start, stop in shards for i in range(start, stop)]
        assert covered == list(range(len(points)))

    def test_shard_default_targets_four_per_worker(self):
        shards = _shard(list(range(100)), workers=4, shard_size=None)
        # ceil(100 / (4 workers * 4)) = 7 points per shard, 15 shards.
        assert [stop - start for start, stop in shards[:-1]] == [7] * 14
        covered = [i for start, stop in shards for i in range(start, stop)]
        assert covered == list(range(100))

    def test_shard_size_must_be_positive(self):
        with pytest.raises(ValueError, match="shard_size"):
            sweep(math.sqrt, [1.0, 4.0], executor="process", shard_size=0)

    def test_sharded_sweep_results_ordered(self):
        results = sweep(
            math.sqrt, [float(i) for i in range(9)],
            executor="process", shard_size=2,
        )
        assert [r.value for r in results] == [math.sqrt(i) for i in range(9)]

    @pytest.mark.parametrize("backend", ["apmc", "sprt"])
    def test_process_bit_identical_to_serial(self, backend):
        smc = SmcConfig(epsilon=0.1, delta=0.2, seed=9)
        kwargs = dict(
            axes={"n": [8, 10, 12, 14]},
            backend=backend,
            theta=0.5 if backend == "sprt" else None,
            smc=smc,
        )
        serial = zoo.sweep("birth-death", executor="serial", **kwargs)
        process = zoo.sweep(
            "birth-death", executor="process", shard_size=2, **kwargs
        )
        assert [r.point for r in serial] == [r.point for r in process]
        assert [asdict(r.value) for r in serial] == [
            asdict(r.value) for r in process
        ]

    def test_process_store_roundtrip(self, tmp_path):
        """Store traffic stays in the parent: process sweeps cache too."""
        store = ResultStore(tmp_path / "p.sqlite")
        axes = {"n": [8, 10, 12]}
        cold = zoo.sweep(
            "birth-death", axes, FORMULA,
            store=store, executor="process", shard_size=2,
        )
        warm = zoo.sweep(
            "birth-death", axes, FORMULA, store=store, executor="serial"
        )
        assert all(r.cached for r in warm)
        assert [r.value for r in warm] == [r.value for r in cold]


# ----------------------------------------------------------------------
# Survey: label field, untouched points, one shared pass
# ----------------------------------------------------------------------

class TestSurvey:
    def test_point_not_clobbered_and_label_set(self):
        results = zoo.survey(executor="serial")
        for name, result in results.items():
            assert result.label == name
            assert result.point == {}  # the defaults dict, untouched

    def test_shared_pass_matches_serial(self):
        serial = zoo.survey(executor="serial")
        threaded = zoo.survey(executor="thread")
        assert set(serial) == set(threaded)
        for name in serial:
            assert serial[name].value == threaded[name].value

    def test_survey_store_warm_pass_is_cached(self, tmp_path):
        store = ResultStore(tmp_path / "sv.sqlite")
        cold = zoo.survey(executor="serial", store=store)
        warm = zoo.survey(executor="thread", store=store)
        assert all(not r.cached for r in cold.values())
        assert all(r.cached for r in warm.values())
        assert {n: r.value for n, r in warm.items()} == {
            n: r.value for n, r in cold.items()
        }
