"""Unit tests for the guarded-command modeling language (repro.prog)."""

import pytest

from repro.dtmc import stationary_distribution
from repro.pctl import check
from repro.prog import (
    Const,
    ModelError,
    Module,
    Var,
    compile_module,
    explore_module,
    ite,
    maximum,
    minimum,
)


def make_walk(lo=0, hi=4, start=2):
    m = Module("walk")
    x = m.int_var("x", lo, hi, init=start)
    m.command(x == lo, [(1.0, {x: x + 1})], label="reflect_low")
    m.command(x == hi, [(1.0, {x: x - 1})], label="reflect_high")
    m.command(
        (x > lo) & (x < hi),
        [(0.5, {x: x - 1}), (0.5, {x: x + 1})],
        label="step",
    )
    return m


class TestExpressions:
    def test_arithmetic(self):
        x = Var("x")
        env = {"x": 3}
        assert (x + 1).evaluate(env) == 4
        assert (2 * x - 1).evaluate(env) == 5
        assert (x % 2).evaluate(env) == 1
        assert (x // 2).evaluate(env) == 1
        assert (-x).evaluate(env) == -3

    def test_comparisons_and_logic(self):
        x = Var("x")
        env = {"x": 3}
        assert (x == 3).evaluate(env)
        assert (x != 4).evaluate(env)
        assert ((x > 1) & (x < 5)).evaluate(env)
        assert ((x < 1) | (x >= 3)).evaluate(env)
        assert (~(x < 1)).evaluate(env)

    def test_ite_and_minmax(self):
        x = Var("x")
        assert ite(x > 0, "pos", "neg").evaluate({"x": 1}) == "pos"
        assert ite(x > 0, "pos", "neg").evaluate({"x": -1}) == "neg"
        assert minimum(x, 2).evaluate({"x": 5}) == 2
        assert maximum(x, 2).evaluate({"x": 5}) == 5

    def test_unknown_variable(self):
        with pytest.raises(NameError, match="y"):
            Var("y").evaluate({"x": 1})

    def test_variables_set(self):
        x, y = Var("x"), Var("y")
        assert (x + y * 2).variables() == {"x", "y"}
        assert Const(5).variables() == frozenset()


class TestModuleDeclaration:
    def test_duplicate_variable_rejected(self):
        m = Module("m")
        m.int_var("x", 0, 1)
        with pytest.raises(ModelError, match="twice"):
            m.int_var("x", 0, 1)

    def test_bad_range_rejected(self):
        m = Module("m")
        with pytest.raises(ModelError):
            m.int_var("x", 5, 2)

    def test_init_outside_domain_rejected(self):
        m = Module("m")
        with pytest.raises(ModelError, match="outside"):
            m.int_var("x", 0, 3, init=7)

    def test_assignment_to_undeclared_rejected(self):
        m = Module("m")
        x = m.int_var("x", 0, 1)
        with pytest.raises(ModelError, match="undeclared"):
            m.command(x == 0, [(1.0, {"ghost": 1})])

    def test_domain_size(self):
        m = Module("m")
        m.int_var("x", 0, 4)
        m.bool_var("b")
        assert m.domain_size() == 10

    def test_empty_module_rejected(self):
        with pytest.raises(ModelError, match="variables"):
            compile_module(Module("empty"))


class TestSemantics:
    def test_walk_statespace(self):
        result = explore_module(make_walk())
        assert result.num_states == 5

    def test_unassigned_variables_keep_value(self):
        m = Module("m")
        x = m.int_var("x", 0, 3, init=0)
        y = m.int_var("y", 0, 3, init=2)
        m.command(x < 3, [(1.0, {x: x + 1})])
        m.command(x == 3, [(1.0, {})])
        result = explore_module(m)
        assert all(s.y == 2 for s in result.states)

    def test_simultaneous_update_reads_old_values(self):
        # Classic swap: both assignments read the pre-state.
        m = Module("swap")
        a = m.int_var("a", 0, 1, init=0)
        b = m.int_var("b", 0, 1, init=1)
        m.command(True, [(1.0, {a: b, b: a})])
        compiled = compile_module(m)
        ((_, nxt),) = compiled.transition(compiled.initial_state)
        assert (nxt.a, nxt.b) == (1, 0)

    def test_no_enabled_command_raises(self):
        m = Module("m")
        x = m.int_var("x", 0, 3, init=0)
        m.command(x == 0, [(1.0, {x: 3})])  # state x=3 has no command
        with pytest.raises(ModelError, match="no command enabled"):
            explore_module(m)

    def test_overlapping_guards_raise(self):
        m = Module("m")
        x = m.int_var("x", 0, 3, init=0)
        m.command(x >= 0, [(1.0, {x: 0})], label="first")
        m.command(x == 0, [(1.0, {x: 1})], label="second")
        with pytest.raises(ModelError, match="nondeterminism"):
            explore_module(m)

    def test_domain_escape_raises(self):
        m = Module("m")
        x = m.int_var("x", 0, 3, init=3)
        m.command(True, [(1.0, {x: x + 1})])
        with pytest.raises(ModelError, match="domain"):
            explore_module(m)

    def test_probability_expression(self):
        # Transition probability depending on the state.
        m = Module("biased")
        x = m.int_var("x", 0, 2, init=1)
        stay = ite(x == 1, 0.75, 1.0)
        m.command(x == 1, [(stay, {}), (1 - stay.evaluate({"x": 1}), {x: 2})])
        m.command(x != 1, [(1.0, {})])
        result = explore_module(m)
        i = result.index[result.states[0]._replace(x=1)]
        j = result.index[result.states[0]._replace(x=2)]
        assert result.chain.transition_probability(i, j) == pytest.approx(0.25)

    def test_zero_probability_branch_dropped(self):
        m = Module("m")
        x = m.int_var("x", 0, 1, init=0)
        m.command(True, [(1.0, {}), (0.0, {x: 1})])
        result = explore_module(m)
        assert result.num_states == 1


class TestIntegrationWithChecker:
    def test_walk_stationary_uniform_interior(self):
        result = explore_module(make_walk())
        pi = stationary_distribution(result.chain)
        # Reflecting walk on 0..4: stationary mass 1/8,2/8,2/8,2/8,1/8.
        by_x = {s.x: pi[i] for i, s in enumerate(result.states)}
        assert by_x[0] == pytest.approx(1 / 8)
        assert by_x[2] == pytest.approx(2 / 8)

    def test_pctl_over_module_variables(self):
        result = explore_module(make_walk())
        # From x=2 the walk hits an end within 2 steps with prob 1/2.
        value = check(result.chain, "P=? [ F<=2 (x=0 | x=4) ]").value
        assert value == pytest.approx(0.5)

    def test_labels_and_rewards_from_expressions(self):
        m = make_walk()
        x = Var("x")
        result = explore_module(
            m, labels={"edge": (x == 0) | (x == 4)}, rewards={"pos": x}
        )
        assert check(result.chain, "P=? [ F edge ]").value == pytest.approx(1.0)
        assert check(result.chain, "R=? [ I=0 ]").value == pytest.approx(2.0)


class TestEnumVariables:
    def test_enum_domain_and_init(self):
        m = Module("enum")
        mode = m.enum_var("mode", ["idle", "rx", "tx"], init="idle")
        m.command(mode == "idle", [(1.0, {mode: "rx"})])
        m.command(mode == "rx", [(0.5, {mode: "tx"}), (0.5, {mode: "idle"})])
        m.command(mode == "tx", [(1.0, {mode: "idle"})])
        result = explore_module(m)
        assert result.num_states == 3
        assert {s.mode for s in result.states} == {"idle", "rx", "tx"}

    def test_enum_default_init_is_first(self):
        m = Module("enum")
        v = m.enum_var("v", [7, 9])
        assert m.initial_values() == {"v": 7}

    def test_enum_value_outside_domain(self):
        m = Module("enum")
        v = m.enum_var("v", [1, 2])
        m.command(True, [(1.0, {v: 3})])
        with pytest.raises(ModelError, match="domain"):
            explore_module(m)

    def test_duplicate_enum_values_rejected(self):
        m = Module("enum")
        with pytest.raises(ModelError, match="duplicate"):
            m.enum_var("v", [1, 1, 2])


class TestIntrospection:
    def test_variable_names_order(self):
        m = make_walk()
        assert m.variable_names == ("x",)

    def test_initial_values(self):
        m = make_walk(start=3)
        assert m.initial_values() == {"x": 3}

    def test_command_labels_in_error_message(self):
        m = Module("m")
        x = m.int_var("x", 0, 1, init=0)
        m.command(x >= 0, [(1.0, {})], label="alpha")
        m.command(x == 0, [(1.0, {})], label="beta")
        with pytest.raises(ModelError, match="alpha.*beta"):
            explore_module(m)
