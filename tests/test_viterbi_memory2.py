"""Tests for the memory-m generalization of the Viterbi full model.

The paper's case studies fix m = 1 ("our methodology is not limited to
these assumptions"); the full model here supports any memory-m
partial-response channel with a 2^m-state trellis.
"""

import numpy as np
import pytest

from repro.pctl import check
from repro.sim import simulate_viterbi_ber
from repro.viterbi import (
    ViterbiModelConfig,
    build_convergence_model,
    build_full_model,
    build_reduced_model,
)

MEM2 = ViterbiModelConfig(
    snr_db=6.0,
    traceback_length=4,
    num_levels=5,
    pm_max=4,
    taps=(1.0, 0.5, 0.5),
)


class TestConfigValidation:
    def test_memory_property(self):
        assert MEM2.memory == 2
        assert ViterbiModelConfig().memory == 1

    def test_single_tap_rejected(self):
        with pytest.raises(ValueError, match="taps"):
            ViterbiModelConfig(taps=(1.0,))

    def test_traceback_must_exceed_memory(self):
        with pytest.raises(ValueError, match="memory"):
            ViterbiModelConfig(taps=(1.0, 0.5, 0.5), traceback_length=2)


class TestMemory2Model:
    @pytest.fixture(scope="class")
    def model(self):
        return build_full_model(MEM2)

    def test_four_trellis_states(self, model):
        state = model.states[0]
        assert len(state.pm) == 4
        assert len(state.prev[0]) == 4

    def test_chain_valid_and_nontrivial(self, model):
        assert model.num_states > 100
        sums = np.asarray(model.chain.transition_matrix.sum(axis=1)).ravel()
        assert np.allclose(sums, 1.0)

    def test_ber_checkable(self, model):
        ber = check(model.chain, "S=? [ flag ]").value
        assert 0 < ber < 0.5

    def test_ber_decreases_with_snr(self):
        bers = []
        for snr in (2.0, 6.0, 10.0):
            config = ViterbiModelConfig(
                snr_db=snr,
                traceback_length=4,
                num_levels=5,
                pm_max=4,
                taps=(1.0, 0.5, 0.5),
            )
            chain = build_full_model(config).chain
            bers.append(check(chain, "S=? [ flag ]").value)
        assert bers[0] > bers[1] > bers[2]

    def test_monte_carlo_agreement(self, model):
        """The m=2 DTMC matches the bit-true decoder on the same channel."""
        model_ber = check(model.chain, "S=? [ flag ]").value
        estimate = simulate_viterbi_ber(MEM2, num_steps=80_000, seed=13)
        low, high = estimate.interval
        assert low * 0.7 <= model_ber <= high * 1.3


class TestMemory1Restrictions:
    def test_reduced_model_rejects_memory2(self):
        with pytest.raises(ValueError, match="memory"):
            build_reduced_model(MEM2)

    def test_convergence_model_rejects_memory2(self):
        with pytest.raises(ValueError, match="memory"):
            build_convergence_model(MEM2)
