"""Unit tests for the state-space builder (repro.dtmc.builder)."""

import numpy as np
import pytest

from repro.dtmc import (
    DTMCValidationError,
    ExplorationLimitError,
    build_dtmc,
    distribution_at,
    reachability_iterations,
)


def random_walk(state):
    """Bounded random walk on 0..4 with reflecting ends."""
    lo, hi = 0, 4
    if state == lo:
        return [(1.0, state + 1)]
    if state == hi:
        return [(1.0, state - 1)]
    return [(0.5, state - 1), (0.5, state + 1)]


def coin_pair(state):
    """Two independent coins re-flipped each step (order irrelevant)."""
    return [
        (0.25, (0, 0)),
        (0.25, (0, 1)),
        (0.25, (1, 0)),
        (0.25, (1, 1)),
    ]


class TestBasicExploration:
    def test_explores_reachable_states(self):
        result = build_dtmc(random_walk, initial=2)
        assert result.num_states == 5
        assert set(result.states) == {0, 1, 2, 3, 4}

    def test_chain_is_valid(self):
        result = build_dtmc(random_walk, initial=2)
        sums = np.asarray(result.chain.transition_matrix.sum(axis=1)).ravel()
        assert np.allclose(sums, 1.0)

    def test_initial_distribution(self):
        result = build_dtmc(random_walk, initial=[(0.5, 0), (0.5, 4)])
        init = result.chain.initial_distribution
        assert init[result.index[0]] == pytest.approx(0.5)
        assert init[result.index[4]] == pytest.approx(0.5)

    def test_labels_and_rewards_evaluated(self):
        result = build_dtmc(
            random_walk,
            initial=2,
            labels={"edge": lambda s: s in (0, 4)},
            rewards={"pos": lambda s: float(s)},
        )
        chain = result.chain
        edge_states = {result.states[i] for i in chain.states_satisfying("edge")}
        assert edge_states == {0, 4}
        assert chain.reward_vector("pos")[result.index[3]] == 3.0

    def test_bfs_levels_equal_reachability_iterations(self):
        result = build_dtmc(random_walk, initial=2)
        assert result.bfs_levels == reachability_iterations(result.chain)

    def test_duplicate_successors_merged(self):
        def fn(state):
            return [(0.5, "x"), (0.25, "x"), (0.25, "y")]

        result = build_dtmc(fn, initial="x")
        i, j = result.index["x"], result.index["y"]
        assert result.chain.transition_probability(i, i) == pytest.approx(0.75)
        assert result.chain.transition_probability(i, j) == pytest.approx(0.25)


class TestValidation:
    def test_rejects_nonstochastic_branches(self):
        def fn(state):
            return [(0.5, 0)]

        with pytest.raises(DTMCValidationError, match="sum"):
            build_dtmc(fn, initial=0)

    def test_rejects_negative_probability(self):
        def fn(state):
            return [(1.5, 0), (-0.5, 1)]

        with pytest.raises(DTMCValidationError, match="negative"):
            build_dtmc(fn, initial=0)

    def test_max_states_enforced(self):
        def counter(state):
            return [(1.0, state + 1)]

        with pytest.raises(ExplorationLimitError):
            build_dtmc(counter, initial=0, max_states=100)


class TestCanonicalize:
    def test_symmetry_quotient(self):
        """Sorting the coin pair folds (0,1) and (1,0) into one state."""
        full = build_dtmc(coin_pair, initial=(0, 0))
        reduced = build_dtmc(
            coin_pair,
            initial=(0, 0),
            canonicalize=lambda s: tuple(sorted(s)),
        )
        assert full.num_states == 4
        assert reduced.num_states == 3
        mixed = reduced.index[(0, 1)]
        row = dict(reduced.chain.successors(mixed))
        assert row[mixed] == pytest.approx(0.5)

    def test_quotient_preserves_transient_probability(self):
        full = build_dtmc(
            coin_pair,
            initial=(0, 0),
            labels={"both_heads": lambda s: s == (1, 1)},
        )
        reduced = build_dtmc(
            coin_pair,
            initial=(0, 0),
            canonicalize=lambda s: tuple(sorted(s)),
            labels={"both_heads": lambda s: s == (1, 1)},
        )
        for t in range(4):
            p_full = float(
                distribution_at(full.chain, t) @ full.chain.label_vector("both_heads")
            )
            p_red = float(
                distribution_at(reduced.chain, t)
                @ reduced.chain.label_vector("both_heads")
            )
            assert p_full == pytest.approx(p_red)


class TestBranchCutoff:
    def test_cutoff_drops_rare_branch_and_renormalizes(self):
        def fn(state):
            if state == "start":
                return [(1e-20, "rare"), (1.0 - 1e-20, "common")]
            return [(1.0, state)]

        result = build_dtmc(fn, initial="start", branch_cutoff=1e-15)
        assert "rare" not in result.index
        assert result.discarded_branches == 1
        i = result.index["start"]
        j = result.index["common"]
        assert result.chain.transition_probability(i, j) == pytest.approx(1.0)

    def test_zero_cutoff_keeps_everything(self):
        def fn(state):
            return [(1e-20, "rare"), (1.0 - 1e-20, "common")] if state == "s" else [(1.0, state)]

        result = build_dtmc(fn, initial="s")
        assert "rare" in result.index
        assert result.discarded_branches == 0

    def test_cutoff_cannot_empty_a_row(self):
        def fn(state):
            return [(1e-20, "a"), (1e-20, "b")]

        with pytest.raises(DTMCValidationError, match="cutoff"):
            build_dtmc(fn, initial="x", branch_cutoff=1e-15)
