"""Tests for DTMC path sampling and the statistical-checking bridge."""

import numpy as np
import pytest

from repro.dtmc import PathSampler, sample_path
from repro.pctl import PctlSemanticsError, check
from repro.smc import make_path_trial, path_satisfies, smc_decide, smc_estimate

from helpers import gamblers_ruin, knuth_yao_die, two_state_chain


class TestPathSampler:
    def test_path_shape_and_start(self):
        chain = two_state_chain()
        path = sample_path(chain, 10, rng=np.random.default_rng(0))
        assert path.shape == (11,)
        assert path[0] == 0  # single initial state

    def test_paths_matrix(self):
        sampler = PathSampler(two_state_chain(), np.random.default_rng(1))
        paths = sampler.paths(20, 5)
        assert paths.shape == (20, 6)

    def test_transitions_respect_support(self):
        chain = knuth_yao_die()
        sampler = PathSampler(chain, np.random.default_rng(2))
        path = sampler.path(50)
        for a, b in zip(path, path[1:]):
            assert chain.transition_probability(int(a), int(b)) > 0

    def test_empirical_frequencies_match(self):
        chain = two_state_chain(p=0.3, q=0.6)
        sampler = PathSampler(chain, np.random.default_rng(3))
        # Long path: occupancy ~ stationary distribution (2/3, 1/3).
        path = sampler.path(30_000)
        occupancy = np.mean(path == 1)
        assert occupancy == pytest.approx(1 / 3, abs=0.02)

    def test_explicit_start_state(self):
        chain = gamblers_ruin(4)
        (ruin,) = chain.states_satisfying("ruin")
        path = sample_path(chain, 3, rng=np.random.default_rng(4), start=ruin)
        assert (path == ruin).all()  # ruin is absorbing

    def test_initial_distribution_sampling(self):
        import numpy as np

        from repro.dtmc import DTMC

        chain = DTMC(np.eye(2), np.array([0.25, 0.75]))
        sampler = PathSampler(chain, np.random.default_rng(5))
        starts = [sampler.sample_initial() for _ in range(4000)]
        assert np.mean(starts) == pytest.approx(0.75, abs=0.03)


class TestPathSatisfies:
    def test_globally(self):
        left = np.array([True, True, False])
        assert path_satisfies("globally", 2, left, None, np.array([0, 1, 0]))
        assert not path_satisfies("globally", 2, left, None, np.array([0, 2, 0]))

    def test_until_requires_right_within_bound(self):
        left = np.array([True, False, False])
        right = np.array([False, True, False])
        assert path_satisfies("until", 2, left, right, np.array([0, 0, 1]))
        assert not path_satisfies("until", 2, left, right, np.array([0, 0, 0]))
        # Entering state 2 (neither left nor right) before right fails.
        assert not path_satisfies("until", 2, left, right, np.array([0, 2, 1]))

    def test_weak_until_survives_without_right(self):
        left = np.array([True, False])
        right = np.array([False, False])
        assert path_satisfies("weak", 2, left, right, np.array([0, 0, 0]))
        assert not path_satisfies("weak", 2, left, right, np.array([0, 1, 0]))

    def test_next(self):
        right = np.array([False, True])
        assert path_satisfies("next", 1, None, right, np.array([0, 1]))
        assert not path_satisfies("next", 1, None, right, np.array([0, 0]))

    def test_left_violation_after_right_is_fine(self):
        left = np.array([True, False])
        right = np.array([False, True])
        # Path hits right at t=1; later left-violations are irrelevant.
        assert path_satisfies("until", 3, left, right, np.array([0, 1, 1, 1]))


class TestSmcAgainstExactChecker:
    @pytest.mark.parametrize(
        "prop",
        [
            "P=? [ F<=3 done ]",
            "P=? [ G<=4 !done ]",
            "P=? [ !six U<=6 done ]",
            "P=? [ X !done ]",
        ],
    )
    def test_estimate_within_hoeffding_band(self, prop):
        chain = knuth_yao_die()
        exact = check(chain, prop).value
        result = smc_estimate(chain, prop, epsilon=0.03, delta=0.01, seed=42)
        assert abs(result.estimate - exact) <= 0.03

    def test_decide_true_threshold(self):
        chain = knuth_yao_die()
        # P(F<=3 done) = 0.75: clearly above 0.6.
        verdict = smc_decide(
            chain, "P=? [ F<=3 done ]", theta=0.6, half_width=0.03, seed=7
        )
        assert verdict.accept

    def test_decide_false_threshold(self):
        chain = knuth_yao_die()
        verdict = smc_decide(
            chain, "P=? [ F<=3 done ]", theta=0.9, half_width=0.03, seed=8
        )
        assert not verdict.accept

    def test_unbounded_rejected(self):
        chain = knuth_yao_die()
        with pytest.raises(PctlSemanticsError, match="unbounded"):
            smc_estimate(chain, "P=? [ F done ]")

    def test_non_probability_query_rejected(self):
        chain = knuth_yao_die()
        with pytest.raises(PctlSemanticsError, match="P operator"):
            smc_estimate(chain, "S=? [ done ]")

    def test_trial_is_deterministic_given_rng(self):
        chain = knuth_yao_die()
        trial = make_path_trial(chain, "P=? [ F<=3 done ]")
        a = [trial(np.random.default_rng(5)) for _ in range(3)]
        b = [trial(np.random.default_rng(5)) for _ in range(3)]
        assert a == b

    def test_interval_lower_bound_rejected(self):
        chain = knuth_yao_die()
        with pytest.raises(PctlSemanticsError, match="interval"):
            smc_estimate(chain, "P=? [ F[2,5] done ]")
