"""Durability of the guarantee service (`repro.service`) — ISSUE 10.

The coordinator may now die too.  Layer by layer:

* **journal**: submit/result/quarantine round trips, first-write-wins
  idempotency under double delivery, monotone boot epochs across
  reopen, replay skipping done/cancelled jobs, pruning;
* **epoch fencing**: results/heartbeats/leases stamped with a
  pre-restart epoch are answered ``reregister`` and never merged;
* **coordinator replay**: a second coordinator built on the same
  journal resumes exactly the missing grid ranges and finishes the
  sweep bit-identical, ignoring stale deliveries along the way;
* **chaos**: an in-process coordinator is stopped mid-sweep and a new
  incarnation started on the same port + journal — workers reconnect
  and re-register on their own, the client's retry budget rides
  through the outage, and the merged sweep equals the serial run with
  every grid index journalled exactly once;
* **store writes**: a remote ``zoo.sweep`` submitted to one
  incarnation and computed entirely by its replayed successor banks
  every point exactly once (zero duplicate store writes);
* **wire faults**: the injector's corrupt/truncate/disconnect/delay
  perturbations each surface as the right typed, retryable transport
  error on the receive side;
* **client retries**: transient transport failures back off and
  recover; exhausted budgets collapse into ``ServiceUnavailable``;
  application-level ``RemoteError`` is never retried;
* **front-end degradation**: the circuit breaker state machine, 503 +
  ``Retry-After`` on misses while open (warm hits still serve 200),
  429 load shedding past ``max_inflight``, and ``/healthz`` carrying
  breaker/epoch/journal state.

The variant that SIGKILLs a *real* ``repro-zoo serve`` process lives
in ``scripts/service_smoke.py`` (run by CI); here the crash is modelled
in-process to keep the suite fast and deterministic.
"""

import socket
import threading
import time
import types
import urllib.error
import urllib.request

import pytest

from repro import zoo
from repro.engine import sweep
from repro.resilience import CircuitBreaker, FaultInjector, RetryPolicy, WireFault
from repro.service import (
    Coordinator,
    CoordinatorServer,
    Frontend,
    FrontendServer,
    JobJournal,
    Worker,
    call_with_retry,
    free_port,
    remote_sweep,
)
from repro.service import wire
from repro.service.wire import (
    FrameCorrupted,
    RemoteError,
    ServiceUnavailable,
    WireError,
)
from repro.store import ResultStore

pytestmark = pytest.mark.filterwarnings(
    "ignore::pytest.PytestUnhandledThreadExceptionWarning"
)


def _slow_double(x):
    time.sleep(0.08)
    return 2 * x


class _TameWorker(Worker):
    """Coordinator-ordered death stops the loop instead of ``os._exit``
    (which would take the test process with it)."""

    def _die(self):
        self.stop()


def _register(coord, name="w"):
    reply = coord.handle(
        {
            "type": "register",
            "protocol": wire.PROTOCOL_VERSION,
            "salt": coord.salt,
            "name": name,
            "pid": 1,
            "host": "testhost",
        }
    )
    assert reply["type"] == "welcome"
    return reply["worker"]


# ----------------------------------------------------------------------
# The journal on its own
# ----------------------------------------------------------------------

class TestJournal:
    def test_submit_result_replay_round_trip(self, tmp_path):
        with JobJournal(tmp_path / "j.sqlite") as journal:
            journal.record_submit(
                "job-1",
                fn={"enc": "pickle", "data": "xx"},
                retry={},
                points=[{"p": i} for i in range(5)],
                created=123.0,
                point_budget=2.5,
                shard_size=2,
                meta={"kind": "test"},
            )
            journal.record_results("job-1", [(0, {"v": 0}), (1, {"v": 1})])
            journal.record_results("job-1", [(3, {"v": 3})])
            journal.record_quarantine("job-1", 4, {"error": "boom", "attempts": 2})
            jobs = journal.replay()
        assert len(jobs) == 1
        job = jobs[0]
        assert job.id == "job-1"
        assert job.created == 123.0
        assert job.point_budget == 2.5
        assert job.shard_size == 2
        assert job.meta == {"kind": "test"}
        assert job.results == {0: {"v": 0}, 1: {"v": 1}, 3: {"v": 3}}
        assert job.quarantined == {4: {"error": "boom", "attempts": 2}}
        assert job.missing == [2]
        assert job.missing_ranges() == [(2, 3)]

    def test_double_delivery_is_idempotent_first_write_wins(self, tmp_path):
        with JobJournal(tmp_path / "j.sqlite") as journal:
            journal.record_submit(
                "job-1", fn={}, retry={}, points=[{}, {}],
                created=0.0, point_budget=None, shard_size=None, meta={},
            )
            journal.record_results("job-1", [(0, {"v": "first"})])
            # A reassigned lease completing late delivers the same index
            # again — the journal must keep the first write.
            journal.record_results("job-1", [(0, {"v": "second"})])
            journal.record_quarantine("job-1", 1, {"error": "a"})
            journal.record_quarantine("job-1", 1, {"error": "b"})
            [job] = journal.replay()
            assert job.results[0] == {"v": "first"}
            assert job.quarantined[1] == {"error": "a"}
            assert journal.stats()["results"] == 1

    def test_epoch_monotone_across_reopen(self, tmp_path):
        path = tmp_path / "j.sqlite"
        with JobJournal(path) as journal:
            assert journal.epoch == 0
            assert journal.bump_epoch() == 1
            assert journal.bump_epoch() == 2
        with JobJournal(path) as journal:
            assert journal.epoch == 2  # persisted, not reset
            assert journal.bump_epoch() == 3

    def test_replay_skips_done_and_cancelled(self, tmp_path):
        with JobJournal(tmp_path / "j.sqlite") as journal:
            for name in ("open", "done", "cancelled"):
                journal.record_submit(
                    f"job-{name}", fn={}, retry={}, points=[{}],
                    created=0.0, point_budget=None, shard_size=None, meta={},
                )
            journal.record_done("job-done")
            journal.record_cancelled("job-cancelled")
            assert [j.id for j in journal.replay()] == ["job-open"]
            assert journal.stats()["jobs_open"] == 1
            assert journal.prune() == 2
            assert journal.stats()["jobs"] == 1

    def test_missing_ranges_are_contiguous_runs(self, tmp_path):
        with JobJournal(tmp_path / "j.sqlite") as journal:
            journal.record_submit(
                "job-1", fn={}, retry={}, points=[{} for _ in range(8)],
                created=0.0, point_budget=None, shard_size=None, meta={},
            )
            journal.record_results("job-1", [(2, {}), (5, {})])
            [job] = journal.replay()
            assert job.missing_ranges() == [(0, 2), (3, 5), (6, 8)]


# ----------------------------------------------------------------------
# Epoch fencing at the coordinator
# ----------------------------------------------------------------------

class TestEpochFence:
    def test_stale_epoch_results_are_rejected_not_merged(self):
        coord = Coordinator(salt="s", epoch=7)
        worker = _register(coord)
        job = coord.submit({"enc": "x"}, [{"p": 0}, {"p": 1}], shard_size=2)
        shard = coord.handle({"type": "lease", "worker": worker, "epoch": 7})
        stale = coord.handle(
            {
                "type": "result", "worker": worker, "epoch": 6,
                "job": job, "lease": shard["lease"],
                "start": 0, "stop": 2, "results": ["old-0", "old-1"],
            }
        )
        assert stale["type"] == "reregister"
        assert "stale epoch" in stale["reason"]
        assert stale["epoch"] == 7
        assert coord.jobs[job].results == {}  # nothing of it was merged
        # The same payload under the live epoch merges normally.
        ok = coord.handle(
            {
                "type": "result", "worker": worker, "epoch": 7,
                "job": job, "lease": shard["lease"],
                "start": 0, "stop": 2, "results": ["new-0", "new-1"],
            }
        )
        assert ok["type"] == "ok"
        assert coord.jobs[job].results[0] == "new-0"

    def test_stale_heartbeat_and_lease_are_fenced(self):
        coord = Coordinator(salt="s", epoch=3)
        worker = _register(coord)
        for kind in ("heartbeat", "lease"):
            reply = coord.handle({"type": kind, "worker": worker, "epoch": 2})
            assert reply["type"] == "reregister", kind
        # Current epoch passes through to the ordinary handlers.
        assert coord.handle(
            {"type": "heartbeat", "worker": worker, "epoch": 3}
        )["type"] == "ok"

    def test_worker_rides_reregister_directive(self):
        with CoordinatorServer(port=0, heartbeat=0.1, salt=None) as server:
            worker = _TameWorker(server.address, poll=0.02)
            worker.register()
            first_id, first_epoch = worker.worker_id, worker.epoch
            assert first_epoch == server.coordinator.epoch
            # Simulate a restart: epoch moves on, worker table wiped.
            server.coordinator.epoch += 1
            server.coordinator.workers.clear()
            thread = threading.Thread(target=worker.run, daemon=True)
            thread.start()
            deadline = time.time() + 10.0
            while time.time() < deadline and worker.registrations < 2:
                time.sleep(0.01)
            worker.stop()
            thread.join(timeout=5.0)
            assert worker.registrations >= 2
            assert worker.epoch == server.coordinator.epoch


# ----------------------------------------------------------------------
# Coordinator replay from the journal (no sockets)
# ----------------------------------------------------------------------

class TestReplay:
    def test_replay_resumes_missing_ranges_and_finishes(self, tmp_path):
        path = tmp_path / "journal.sqlite"
        first = Coordinator(salt="s", journal=path)
        worker = _register(first)
        job = first.submit(
            {"enc": "x"}, [{"p": i} for i in range(6)], shard_size=2
        )
        shard = first.handle(
            {"type": "lease", "worker": worker, "epoch": first.epoch}
        )
        first.handle(
            {
                "type": "result", "worker": worker, "epoch": first.epoch,
                "job": job, "lease": shard["lease"],
                "start": shard["start"], "stop": shard["stop"],
                "results": ["r0", "r1"],
            }
        )

        # The crash: a brand-new coordinator on the same journal file.
        second = Coordinator(salt="s", journal=path)
        assert second.epoch == first.epoch + 1
        replayed = second.jobs[job]
        assert replayed.results == {0: "r0", 1: "r1"}
        assert replayed.pending == [(2, 4), (4, 6)]  # resharded misses
        assert replayed.meta["replayed_epoch"] == second.epoch

        # A worker that slept through the restart cannot write into it.
        stale = second.handle(
            {
                "type": "result", "worker": worker, "epoch": first.epoch,
                "job": job, "lease": "lease-999",
                "start": 2, "stop": 4, "results": ["stale-2", "stale-3"],
            }
        )
        assert stale["type"] == "reregister"
        assert replayed.results == {0: "r0", 1: "r1"}

        # A fresh registration finishes exactly the missing ranges.
        fresh = _register(second)
        while True:
            granted = second.handle(
                {"type": "lease", "worker": fresh, "epoch": second.epoch}
            )
            if granted["type"] != "shard":
                break
            second.handle(
                {
                    "type": "result", "worker": fresh, "epoch": second.epoch,
                    "job": job, "lease": granted["lease"],
                    "start": granted["start"], "stop": granted["stop"],
                    "results": [
                        f"r{i}" for i in range(granted["start"], granted["stop"])
                    ],
                }
            )
        assert replayed.done
        assert replayed.results == {i: f"r{i}" for i in range(6)}

        # A third incarnation has nothing left to replay.
        third = Coordinator(salt="s", journal=path)
        assert third.jobs == {}
        assert third.epoch == second.epoch + 1

    def test_replayed_ids_do_not_collide_with_fresh_ones(self, tmp_path):
        path = tmp_path / "journal.sqlite"
        first = Coordinator(salt="s", journal=path)
        for _ in range(3):
            _register(first)  # burn counter: jobs land on higher suffixes
        job = first.submit({"enc": "x"}, [{"p": 0}])
        second = Coordinator(salt="s", journal=path)
        assert job in second.jobs
        assert second.submit({"enc": "y"}, [{"p": 0}]) != job

    def test_submit_rejected_while_shutting_down(self):
        coord = Coordinator(salt="s")
        coord._on_shutdown({})
        with pytest.raises(WireError, match="shutting down"):
            coord.submit({"enc": "x"}, [{"p": 0}])


# ----------------------------------------------------------------------
# Chaos: coordinator dies mid-sweep, a new incarnation takes over
# ----------------------------------------------------------------------

class TestCoordinatorCrash:
    def test_crash_mid_sweep_restart_resumes_bit_identical(self, tmp_path):
        journal = str(tmp_path / "journal.sqlite")
        port = free_port()
        address = f"127.0.0.1:{port}"
        points = list(range(24))
        serial = sweep(_slow_double, points, executor="serial")

        first = CoordinatorServer(
            port=port, heartbeat=0.1, journal=journal
        ).start()
        workers = [
            _TameWorker(address, poll=0.02, name=f"durable-{i}")
            for i in range(2)
        ]
        threads = [
            threading.Thread(target=w.run, daemon=True) for w in workers
        ]
        for thread in threads:
            thread.start()

        box = {}

        def client():
            box["results"] = remote_sweep(
                _slow_double, points, connect=address, shard_size=2,
            )

        runner = threading.Thread(target=client, daemon=True)
        second = None
        try:
            runner.start()
            # Let some shards land, then kill the coordinator abruptly
            # (no shutdown handshake — workers are NOT told to die).
            deadline = time.time() + 30.0
            while time.time() < deadline:
                stats = first.coordinator.stats()
                if (stats["journal"] or {}).get("results", 0) >= 4:
                    break
                time.sleep(0.02)
            merged_before = stats["journal"]["results"]
            assert 0 < merged_before < len(points), "crash must be mid-sweep"
            first.stop(shutdown_workers=False)

            second = CoordinatorServer(
                port=port, heartbeat=0.1, journal=journal
            ).start()
            assert second.coordinator.epoch == first.coordinator.epoch + 1
            runner.join(timeout=60.0)
            assert not runner.is_alive(), "client never finished after restart"
        finally:
            for worker in workers:
                worker.stop()
            if second is not None:
                second.stop()
            elif runner.is_alive():
                first.stop()
            for thread in threads:
                thread.join(timeout=5.0)

        # Bit-identical to serial despite the restart...
        assert [r.value for r in box["results"]] == [r.value for r in serial]
        assert all(r.ok for r in box["results"])
        # ...the workers re-registered on their own...
        assert all(w.registrations >= 2 for w in workers)
        # ...and every grid index was journalled exactly once (first
        # write wins end to end — re-leased shards never double up).
        with JobJournal(journal) as jj:
            assert jj.stats()["results"] == len(points)
            assert jj.stats()["jobs_open"] == 0

    def test_replayed_job_banks_each_point_exactly_once(self, tmp_path):
        """Submit to one incarnation, compute entirely on its replayed
        successor: the store sees exactly one write per point."""
        journal = str(tmp_path / "journal.sqlite")
        port = free_port()
        address = f"127.0.0.1:{port}"
        axes = {"n": [6, 8, 10, 12]}
        serial = zoo.sweep("birth-death", axes=axes, executor="serial")

        puts = []
        store = ResultStore(tmp_path / "bank.sqlite")
        real_put = store.put

        def counting_put(scenario_id, formula, value, **kwargs):
            puts.append(repr(scenario_id))
            return real_put(scenario_id, formula, value, **kwargs)

        store.put = counting_put

        first = CoordinatorServer(
            port=port, heartbeat=0.1, journal=journal
        ).start()
        box = {}

        def client():
            box["results"] = zoo.sweep(
                "birth-death", axes=axes, executor="remote",
                remote=address, shard_size=1, store=store,
            )

        runner = threading.Thread(target=client, daemon=True)
        runner.start()
        # Wait until the submit is journalled, then crash: no worker
        # ever registered with the first incarnation, so the whole
        # sweep is computed by the replayed job.
        deadline = time.time() + 30.0
        while time.time() < deadline:
            if (first.coordinator.stats()["journal"] or {}).get("jobs_open", 0):
                break
            time.sleep(0.02)
        first.stop(shutdown_workers=False)

        second = CoordinatorServer(
            port=port, heartbeat=0.1, journal=journal
        ).start()
        worker = _TameWorker(address, poll=0.02, name="late")
        thread = threading.Thread(target=worker.run, daemon=True)
        thread.start()
        try:
            runner.join(timeout=60.0)
            assert not runner.is_alive()
        finally:
            worker.stop()
            second.stop()
            thread.join(timeout=5.0)
            store.close()

        assert [r.value for r in box["results"]] == [r.value for r in serial]
        # Zero duplicate store writes: one put per distinct scenario.
        assert len(puts) == len(serial)
        assert len(set(puts)) == len(puts)


# ----------------------------------------------------------------------
# Wire-level fault injection
# ----------------------------------------------------------------------

class TestWireFaults:
    def test_wire_fault_validation(self):
        with pytest.raises(ValueError, match="unknown wire fault"):
            WireFault(kind="gremlin")
        with pytest.raises(ValueError, match="times"):
            WireFault(times=0)
        with pytest.raises(ValueError, match="delay_seconds"):
            WireFault(kind="delay", delay_seconds=-1.0)

    def _pair(self):
        return socket.socketpair()

    def test_corrupted_frame_surfaces_as_frame_corrupted(self, tmp_path):
        injector = FaultInjector({}, tmp_path / "score")
        a, b = self._pair()
        try:
            assert injector.send_through(
                a, {"type": "ping"}, WireFault(kind="corrupt")
            )
            with pytest.raises(FrameCorrupted):
                wire.recv_message(b)
        finally:
            a.close()
            b.close()

    def test_truncated_frame_surfaces_as_mid_frame_eof(self, tmp_path):
        injector = FaultInjector({}, tmp_path / "score")
        a, b = self._pair()
        try:
            assert injector.send_through(
                a, {"type": "ping", "pad": "x" * 64}, WireFault(kind="truncate")
            )
            with pytest.raises(WireError, match="mid-frame"):
                wire.recv_message(b)
        finally:
            b.close()

    def test_disconnect_surfaces_as_wire_error(self, tmp_path):
        injector = FaultInjector({}, tmp_path / "score")
        a, b = self._pair()
        try:
            assert injector.send_through(
                a, {"type": "ping"}, WireFault(kind="disconnect")
            )
            with pytest.raises(WireError):
                wire.recv_message(b)
        finally:
            b.close()

    def test_delay_passes_an_intact_frame(self, tmp_path):
        injector = FaultInjector({}, tmp_path / "score")
        a, b = self._pair()
        try:
            started = time.monotonic()
            injector.send_through(
                a,
                {"type": "ping"},
                WireFault(kind="delay", delay_seconds=0.1),
            )
            assert time.monotonic() - started >= 0.1
            assert wire.recv_message(b) == {"type": "ping"}
        finally:
            a.close()
            b.close()

    def test_times_budget_is_shared_across_injectors(self, tmp_path):
        fault = WireFault(kind="corrupt", times=1, key="flaky")
        # Two injector instances over the same scoreboard model two
        # processes: the second send must pass through untouched.
        first = FaultInjector({}, tmp_path / "score")
        second = FaultInjector({}, tmp_path / "score")
        a, b = self._pair()
        try:
            assert first.send_through(a, {"n": 1}, fault) is True
            with pytest.raises(FrameCorrupted):
                wire.recv_message(b)
            assert second.send_through(a, {"n": 2}, fault) is False
            assert wire.recv_message(b) == {"n": 2}
        finally:
            a.close()
            b.close()


# ----------------------------------------------------------------------
# Client retries
# ----------------------------------------------------------------------

class TestClientRetries:
    def test_exhausted_budget_raises_service_unavailable(self):
        dead = f"127.0.0.1:{free_port()}"  # nothing listens here
        policy = RetryPolicy(max_attempts=3, backoff=0.0)
        with pytest.raises(ServiceUnavailable, match="3 attempts") as exc:
            call_with_retry(dead, {"type": "stats"}, retry=policy)
        assert isinstance(exc.value.__cause__, OSError)

    def test_transient_refusal_is_ridden_out(self):
        port = free_port()
        address = f"127.0.0.1:{port}"
        server_box = {}

        def late_start():
            time.sleep(0.3)
            server_box["server"] = CoordinatorServer(port=port, salt="s").start()

        starter = threading.Thread(target=late_start, daemon=True)
        starter.start()
        try:
            reply = call_with_retry(
                address,
                {"type": "stats"},
                retry=RetryPolicy(max_attempts=10, backoff=0.1),
            )
            assert reply["type"] == "stats"
        finally:
            starter.join(timeout=5.0)
            if "server" in server_box:
                server_box["server"].stop()

    def test_remote_error_is_never_retried(self):
        with CoordinatorServer(port=0, salt="s") as server:
            with pytest.raises(RemoteError, match="unknown job"):
                call_with_retry(
                    server.address,
                    {"type": "collect", "job": "job-404"},
                    retry=RetryPolicy(max_attempts=5, backoff=5.0),
                )  # backoff=5s x 5 would blow the test timeout if retried

    def test_worker_reregister_budget_exhaustion(self):
        dead = f"127.0.0.1:{free_port()}"
        worker = Worker(
            dead, reconnect=RetryPolicy(max_attempts=2, backoff=0.0)
        )
        with pytest.raises(ServiceUnavailable, match="registration attempts"):
            worker.reregister()

    def test_worker_salt_mismatch_is_fatal_not_retried(self):
        with CoordinatorServer(port=0, salt="right") as server:
            worker = Worker(server.address, salt="wrong")
            with pytest.raises(RemoteError, match="cache-compatible"):
                worker.reregister()


# ----------------------------------------------------------------------
# Circuit breaker + front-end degradation
# ----------------------------------------------------------------------

class TestCircuitBreaker:
    def test_state_machine(self):
        clock = types.SimpleNamespace(now=0.0)
        breaker = CircuitBreaker(
            failure_threshold=2, cooldown=10.0, clock=lambda: clock.now
        )
        assert breaker.state == CircuitBreaker.CLOSED
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.CLOSED  # below threshold
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.OPEN
        assert not breaker.allow()
        clock.now = 9.9
        assert not breaker.allow()  # still cooling down
        clock.now = 10.0
        assert breaker.state == CircuitBreaker.HALF_OPEN
        assert breaker.allow()       # exactly one probe slot
        assert not breaker.allow()   # a second caller is refused
        breaker.record_failure()     # the probe failed: re-open
        assert breaker.state == CircuitBreaker.OPEN
        clock.now = 20.0
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == CircuitBreaker.CLOSED
        assert breaker.allow() and breaker.allow()  # closed is unlimited
        snapshot = breaker.snapshot()
        assert snapshot["state"] == "closed"
        assert snapshot["trips"] == 2

    def test_validation(self):
        with pytest.raises(ValueError, match="failure_threshold"):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ValueError, match="cooldown"):
            CircuitBreaker(cooldown=-1.0)


class TestFrontendDegradation:
    def _tripped(self, **frontend_kwargs):
        """A frontend whose breaker is already open."""
        breaker = CircuitBreaker(failure_threshold=1, cooldown=60.0)
        breaker.record_failure()
        return Frontend(
            Coordinator(salt="s"), breaker=breaker, **frontend_kwargs
        )

    def test_miss_answers_503_with_retry_after_while_open(self):
        front = self._tripped()
        status, body = front.route("GET", "/guarantee?family=birth-death&n=8")
        assert status == 503
        assert "circuit breaker" in body["error"]
        assert 0 < body["retry_after"] <= 60.0
        assert front.shed == 1

    def test_warm_hit_still_serves_while_open(self):
        front = self._tripped()
        hit = types.SimpleNamespace(value=0.25, seconds=0.1, samples=100)
        front._store_lookup = lambda query: ("sid", "fp", hit)
        status, body = front.route("GET", "/guarantee?family=birth-death&n=8")
        assert status == 200
        assert body["cached"] and body["value"] == 0.25
        assert front.hits == 1 and front.shed == 0

    def test_submit_failure_trips_the_breaker(self):
        coord = Coordinator(salt="s")
        coord._on_shutdown({})  # every submit now raises
        front = Frontend(
            coord, breaker=CircuitBreaker(failure_threshold=1, cooldown=60.0)
        )
        status, body = front.route("GET", "/guarantee?family=birth-death&n=8")
        assert status == 503 and "shutting down" in body["error"]
        assert front.breaker.state == CircuitBreaker.OPEN
        # The next miss is refused by the open breaker without ever
        # touching the coordinator.
        status, _body = front.route("GET", "/guarantee?family=birth-death&n=9")
        assert status == 503
        assert front.shed == 2

    def test_inflight_bound_sheds_with_429(self):
        front = Frontend(Coordinator(salt="s"), max_inflight=1)
        status, _body = front.route("GET", "/guarantee?family=birth-death&n=8")
        assert status == 202  # no workers: the job stays in flight
        status, body = front.route("GET", "/guarantee?family=birth-death&n=9")
        assert status == 429
        assert body["retry_after"] == 1.0
        assert front.shed == 1
        # The *same* query shares the in-flight job instead of shedding.
        status, body = front.route("GET", "/guarantee?family=birth-death&n=8")
        assert status == 202

    def test_healthz_reports_breaker_epoch_and_journal(self, tmp_path):
        coord = Coordinator(
            salt="s", journal=tmp_path / "j.sqlite"
        )
        front = Frontend(coord)
        status, body = front.healthz()
        assert status == 200 and body["status"] == "ok"
        assert body["breaker"]["state"] == "closed"
        assert body["epoch"] == coord.epoch
        assert body["journal"]["path"].endswith("j.sqlite")
        front.breaker.record_failure()
        front.breaker.record_failure()
        front.breaker.record_failure()
        front.breaker.record_failure()
        front.breaker.record_failure()
        _status, body = front.healthz()
        assert body["status"] == "degraded"
        assert body["breaker"]["state"] == "open"

    def test_healthz_degrades_on_unfinished_jobs_without_workers(self):
        coord = Coordinator(salt="s")
        front = Frontend(coord)
        assert front.healthz()[1]["status"] == "ok"
        coord.submit({"enc": "x"}, [{"p": 0}])
        body = front.healthz()[1]
        assert body["status"] == "degraded"
        assert body["jobs_unfinished"] == 1

    def test_http_503_carries_retry_after_header(self):
        front = self._tripped()
        with FrontendServer(front, port=0) as server:
            url = f"http://{server.address}/guarantee?family=birth-death&n=8"
            with pytest.raises(urllib.error.HTTPError) as exc:
                urllib.request.urlopen(url, timeout=10)
            assert exc.value.code == 503
            assert int(exc.value.headers["Retry-After"]) >= 1
