"""Unit tests for the pCTL parser (repro.pctl.parser)."""

import pytest

from repro.pctl import (
    And,
    Bound,
    Cumulative,
    Eventually,
    Globally,
    Implies,
    Instantaneous,
    Label,
    LongRunReward,
    Next,
    Not,
    Or,
    PctlSyntaxError,
    ProbQuery,
    ReachReward,
    RewardQuery,
    SteadyQuery,
    TrueFormula,
    Until,
    VarComparison,
    parse_formula,
)


class TestPaperProperties:
    """The four properties the paper checks, verbatim."""

    def test_p1_best_case(self):
        formula = parse_formula("P=? [ G<=300 !flag ]")
        assert formula == ProbQuery(
            Globally(Not(Label("flag")), bound=300), Bound(None)
        )

    def test_p2_average_case(self):
        formula = parse_formula("R=? [ I=300 ]")
        assert formula == RewardQuery(Instantaneous(300), Bound(None), None)

    def test_p3_worst_case(self):
        formula = parse_formula("P=? [ F<=300 flag>1 ]")
        assert formula == ProbQuery(
            Eventually(VarComparison("flag", ">", 1), bound=300), Bound(None)
        )

    def test_c1_convergence(self):
        formula = parse_formula("R=? [ I=1000 ]")
        assert formula == RewardQuery(Instantaneous(1000), Bound(None), None)


class TestStateFormulas:
    def test_constants(self):
        assert parse_formula("true") == TrueFormula()

    def test_precedence_not_and_or(self):
        formula = parse_formula("!a & b | c")
        assert formula == Or(And(Not(Label("a")), Label("b")), Label("c"))

    def test_implies_is_right_associative(self):
        formula = parse_formula("a => b => c")
        assert formula == Implies(Label("a"), Implies(Label("b"), Label("c")))

    def test_parentheses(self):
        formula = parse_formula("a & (b | c)")
        assert formula == And(Label("a"), Or(Label("b"), Label("c")))

    def test_quoted_labels(self):
        assert parse_formula('"flag"') == Label("flag")

    def test_variable_comparisons(self):
        assert parse_formula("count>=3") == VarComparison("count", ">=", 3)
        assert parse_formula("count != 2") == VarComparison("count", "!=", 2)
        assert parse_formula("x = 0.5") == VarComparison("x", "=", 0.5)

    def test_scientific_notation(self):
        formula = parse_formula("P>=1e-3 [ F flag ]")
        assert formula.bound == Bound(">=", 1e-3)


class TestOperators:
    def test_probability_bound(self):
        formula = parse_formula("P>=0.99 [ F done ]")
        assert formula == ProbQuery(Eventually(Label("done")), Bound(">=", 0.99))

    def test_next(self):
        assert parse_formula("P=? [ X done ]") == ProbQuery(
            Next(Label("done")), Bound(None)
        )

    def test_unbounded_until(self):
        formula = parse_formula("P=? [ safe U goal ]")
        assert formula == ProbQuery(Until(Label("safe"), Label("goal")), Bound(None))

    def test_bounded_until(self):
        formula = parse_formula("P=? [ safe U<=10 goal ]")
        assert formula == ProbQuery(
            Until(Label("safe"), Label("goal"), bound=10), Bound(None)
        )

    def test_steady_state_operator(self):
        assert parse_formula("S=? [ flag ]") == SteadyQuery(Label("flag"), Bound(None))

    def test_named_reward(self):
        formula = parse_formula('R{"errors"}=? [ C<=100 ]')
        assert formula == RewardQuery(Cumulative(100), Bound(None), "errors")

    def test_reachability_reward(self):
        formula = parse_formula("R=? [ F done ]")
        assert formula == RewardQuery(ReachReward(Label("done")), Bound(None), None)

    def test_long_run_reward(self):
        formula = parse_formula("R=? [ S ]")
        assert formula == RewardQuery(LongRunReward(), Bound(None), None)

    def test_nested_operator_as_atom(self):
        formula = parse_formula("P>=0.5 [ F done ] & flag")
        assert isinstance(formula, And)
        assert isinstance(formula.left, ProbQuery)


class TestErrors:
    @pytest.mark.parametrize(
        "text",
        [
            "P=? [ ]",
            "P=? [ F ",
            "P=? F done ]",
            "R=? [ I<300 ]",
            "P=? [ G<=3.5 flag ]",
            "P=? [ done U ]",
            "Q=? [ F done ]",
            "P=? [ F done ] extra",
            "",
            "P=? [ F done@ ]",
        ],
    )
    def test_malformed_strings_rejected(self, text):
        with pytest.raises(PctlSyntaxError):
            parse_formula(text)

    def test_round_trip_via_str(self):
        for text in [
            "P=? [ G<=300 !flag ]",
            "R=? [ I=300 ]",
            "P>=0.99 [ safe U<=10 goal ]",
            "S=? [ flag ]",
        ]:
            formula = parse_formula(text)
            assert parse_formula(str(formula)) == formula
