"""Tests for the PRISM interoperability layer (repro.interop)."""

import numpy as np
import pytest

from repro.core.reductions import are_bisimilar
from repro.dtmc import distribution_at
from repro.interop import (
    from_prism_explicit,
    module_to_prism,
    render_expr,
    to_prism_lab,
    to_prism_srew,
    to_prism_tra,
    write_prism_files,
)
from repro.prog import Module, Var, ite, minimum
from repro.viterbi import ViterbiModelConfig, build_reduced_model

from helpers import knuth_yao_die, two_state_chain


class TestExplicitExport:
    def test_tra_header_and_lines(self):
        chain = two_state_chain(p=0.25, q=0.75)
        text = to_prism_tra(chain)
        lines = text.strip().splitlines()
        assert lines[0] == "2 4"
        assert lines[1].startswith("0 0 ")
        assert len(lines) == 5

    def test_lab_header_ids(self):
        chain = two_state_chain()
        text = to_prism_lab(chain)
        header = text.splitlines()[0]
        assert '0="init"' in header
        assert '1="in_b"' in header
        # State 0 is initial, state 1 carries in_b.
        assert "0: 0" in text
        assert "1: 1" in text

    def test_srew_nonzero_only(self):
        chain = two_state_chain()
        text = to_prism_srew(chain, "hit")
        lines = text.strip().splitlines()
        assert lines[0] == "2 1"
        assert lines[1].split()[0] == "1"

    def test_unknown_reward_rejected(self):
        with pytest.raises(KeyError):
            to_prism_srew(two_state_chain(), "nope")

    def test_write_files(self, tmp_path):
        chain = two_state_chain()
        paths = write_prism_files(chain, str(tmp_path / "model"))
        assert len(paths) == 3  # .tra, .lab, one .srew
        for path in paths:
            assert (tmp_path / path.split("/")[-1]).exists()


class TestRoundTrip:
    def test_two_state_round_trip_exact(self):
        chain = two_state_chain(p=0.3, q=0.6)
        back = from_prism_explicit(
            to_prism_tra(chain),
            to_prism_lab(chain),
            {"hit": to_prism_srew(chain, "hit")},
        )
        assert np.allclose(
            back.transition_matrix.toarray(),
            chain.transition_matrix.toarray(),
        )
        assert np.array_equal(back.label_vector("in_b"), chain.label_vector("in_b"))
        assert np.allclose(back.reward_vector("hit"), chain.reward_vector("hit"))
        assert np.allclose(back.initial_distribution, chain.initial_distribution)

    def test_die_round_trip_behaviour(self):
        chain = knuth_yao_die()
        back = from_prism_explicit(to_prism_tra(chain), to_prism_lab(chain))
        verdict = are_bisimilar(chain, back, respect=["six"])
        assert verdict.equivalent
        assert np.allclose(
            distribution_at(back, 10), distribution_at(chain, 10)
        )

    def test_viterbi_model_round_trip(self):
        config = ViterbiModelConfig(traceback_length=3, num_levels=3, pm_max=3)
        chain = build_reduced_model(config).chain
        back = from_prism_explicit(
            to_prism_tra(chain),
            to_prism_lab(chain),
            {"flag": to_prism_srew(chain, "flag")},
        )
        assert back.num_states == chain.num_states
        assert np.allclose(
            back.transition_matrix.toarray(),
            chain.transition_matrix.toarray(),
        )

    def test_import_without_labels_defaults_initial(self):
        chain = two_state_chain()
        back = from_prism_explicit(to_prism_tra(chain))
        assert back.initial_states() == [0]


class TestExpressionRendering:
    def test_arithmetic_and_comparison(self):
        x = Var("x")
        assert render_expr((x + 1) * 2) == "((x + 1) * 2)"
        assert render_expr(x <= 3) == "(x <= 3)"
        assert render_expr((x > 0) & (x < 5)) == "((x > 0) & (x < 5))"

    def test_booleans_and_not(self):
        x = Var("x")
        assert render_expr(~(x == 1)) == "!((x = 1))"

    def test_ite_and_min(self):
        x = Var("x")
        assert render_expr(ite(x > 0, 1, 2)) == "((x > 0) ? 1 : 2)"
        assert render_expr(minimum(x, 7)) == "min(x, 7)"

    def test_constants(self):
        from repro.prog import Const

        assert render_expr(Const(True)) == "true"
        assert render_expr(Const(0.5)) == "0.5"


class TestModuleExport:
    def make_module(self):
        m = Module("walker")
        x = m.int_var("x", 0, 4, init=2)
        b = m.bool_var("done", init=False)
        m.command(x == 0, [(1.0, {x: x + 1})], label="reflect")
        m.command(
            (x > 0) & (x < 4),
            [(0.5, {x: x - 1}), (0.5, {x: x + 1})],
        )
        m.command(x == 4, [(1.0, {b: True})], label="finish")
        return m

    def test_render_contains_declarations(self):
        text = module_to_prism(self.make_module())
        assert text.startswith("dtmc")
        assert "module walker" in text
        assert "x : [0..4] init 2;" in text
        assert "done : bool init false;" in text
        assert text.rstrip().endswith("endmodule")

    def test_render_commands(self):
        text = module_to_prism(self.make_module())
        assert "[] (x = 0) -> 1.0 : (x'=(x + 1)); // reflect" in text
        assert "0.5 : (x'=(x - 1)) + 0.5 : (x'=(x + 1));" in text

    def test_empty_update_renders_true(self):
        m = Module("idle")
        m.int_var("x", 0, 1)
        m.command(True, [(1.0, {})])
        assert "1.0 : true;" in module_to_prism(m)

    def test_non_contiguous_domain_rejected(self):
        m = Module("bad")
        m.enum_var("e", [0, 2, 5])
        m.command(True, [(1.0, {})])
        with pytest.raises(ValueError, match="contiguous"):
            module_to_prism(m)
