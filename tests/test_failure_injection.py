"""Failure-injection tests: unsound inputs must be *detected*, not absorbed.

The library's safety story is that reductions are verified, models are
validated, and bad inputs fail loudly.  Each test here injects a
specific defect and asserts the precise diagnostic.
"""

import numpy as np
import pytest

from repro.core.reductions import (
    LumpingError,
    are_bisimilar,
    quotient_by_function,
    verify_permutation_invariance,
)
from repro.dtmc import DTMC, DTMCValidationError, build_dtmc, dtmc_from_dict
from repro.pctl import PctlSemanticsError, PctlSyntaxError, check
from repro.prog import ModelError, Module

from helpers import two_state_chain


class TestUnsoundAbstractionsAreCaught:
    def test_merging_behaviourally_different_states(self):
        """An abstraction that confuses a fast and a slow state fails
        the strong-lumping check with a witness."""

        def step(s):
            if s == "fast":
                return [(0.9, "goal"), (0.1, s)]
            if s == "slow":
                return [(0.1, "goal"), (0.9, s)]
            return [(1.0, s)]

        chain = build_dtmc(
            step, initial=[(0.5, "fast"), (0.5, "slow")]
        ).chain
        with pytest.raises(LumpingError) as excinfo:
            quotient_by_function(
                chain, lambda s: "merged" if s != "goal" else s
            )
        assert "strongly lumpable" in str(excinfo.value)

    def test_label_breaking_abstraction(self):
        chain = two_state_chain(p=0.5, q=0.5)
        with pytest.raises(LumpingError, match="label"):
            quotient_by_function(chain, lambda s: "one")

    def test_fake_symmetry_is_rejected(self):
        """A permutation that is not an automorphism is reported."""
        chain = dtmc_from_dict(
            {"a": {"a": 0.9, "b": 0.1}, "b": {"a": 0.5, "b": 0.5}},
            initial="a",
        )
        swap = lambda s: {"a": "b", "b": "a"}[s]  # noqa: E731
        with pytest.raises(AssertionError, match="not invariant"):
            verify_permutation_invariance(chain, swap)

    def test_wrong_reduction_flagged_by_bisimilarity(self):
        """A 'reduced' chain with subtly different dynamics is caught."""
        good = two_state_chain(p=0.5, q=0.3)
        bad = two_state_chain(p=0.5, q=0.31)
        verdict = are_bisimilar(good, bad, respect=["in_b"])
        assert not verdict.equivalent
        assert verdict.witness is not None


class TestModelDefectsAreCaught:
    def test_probability_leak(self):
        def leaky(state):
            return [(0.7, state)]  # 0.3 missing

        with pytest.raises(DTMCValidationError, match="sum"):
            build_dtmc(leaky, initial=0)

    def test_probability_overflow(self):
        def overflowing(state):
            return [(0.7, 0), (0.7, 1)]

        with pytest.raises(DTMCValidationError, match="sum"):
            build_dtmc(overflowing, initial=0)

    def test_nan_probability_rejected(self):
        matrix = np.array([[np.nan, 1.0], [0.0, 1.0]])
        with pytest.raises(DTMCValidationError):
            DTMC(matrix, 0)

    def test_rtl_register_overflow_equivalent(self):
        """The DSL catches assignments escaping declared widths —
        the modeling analogue of an RTL overflow bug."""
        m = Module("ctr")
        x = m.int_var("x", 0, 3, init=0)
        m.command(True, [(1.0, {x: x + 1})])
        from repro.prog import explore_module

        with pytest.raises(ModelError, match="domain"):
            explore_module(m)


class TestPropertyDefectsAreCaught:
    def test_typo_in_label(self):
        chain = two_state_chain()
        with pytest.raises(PctlSemanticsError, match="in_bb"):
            check(chain, "P=? [ F in_bb ]")

    def test_query_nested_without_bound(self):
        chain = two_state_chain()
        with pytest.raises(PctlSemanticsError, match="bound"):
            check(chain, "!P=? [ F in_b ]")

    def test_syntax_error_names_offending_token(self):
        with pytest.raises(PctlSyntaxError, match="U"):
            check(two_state_chain(), "P=? [ in_b U ]")

    def test_reward_name_typo(self):
        chain = two_state_chain()
        with pytest.raises(KeyError, match="hit"):
            check(chain, 'R{"hits"}=? [ I=3 ]')
