"""Networked guarantee service (`repro.service`) tests — ISSUE 8.

Layer by layer:

* **wire**: framed-message round trips, frame-size guards, and the
  dual codec (store tagged-JSON first, pickle fallback for objects
  JSON would mangle), including full ``SweepResult`` round trips;
* **coordinator**: lease bookkeeping driven synchronously through
  :meth:`Coordinator.handle` with synthetic clocks — registration
  gating (protocol/salt), shard sizing, first-write-wins merges,
  reaping of dead workers and blown budgets, range bisection down to
  a quarantined point, kill directives;
* **fleet integration**: in-process workers (threads whose "die" is a
  stop, so chaos stays inside one interpreter) against a live
  ``CoordinatorServer`` — remote sweeps bit-identical to serial,
  silent worker death mid-sweep recovered by lease reassignment,
  hung leases expired and quarantined;
* **front-end**: route errors, store-backed warm hits that never
  touch the engine or fleet, 202-miss → job poll → banked → warm hit,
  in-flight dedup of identical queries, healthz degradation, and the
  asyncio HTTP server end to end;
* **satellites**: executor validation fails fast with the full list,
  Ctrl-C surfaces as :class:`SweepInterrupted` carrying partials which
  ``sweep_check`` banks to the store, CLI exit codes.

The one test that SIGKILLs a *real* worker subprocess mid-sweep lives
in ``scripts/service_smoke.py`` (run by CI); here worker death is
modelled in-process to keep the suite fast.
"""

import contextlib
import json
import os
import socket
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro import zoo
from repro.engine import (
    EXECUTORS,
    SmcConfig,
    SweepInterrupted,
    sweep,
    sweep_check,
)
from repro.engine.sweep import SweepResult
from repro.resilience import DeadlinePolicy, RetryPolicy
from repro.resilience.validate import ValidationWarning
from repro.service import (
    Coordinator,
    CoordinatorServer,
    Frontend,
    FrontendServer,
    Worker,
    WireError,
    parse_address,
)
from repro.service import wire
from repro.service.client import kill_worker, remote_sweep, service_stats
from repro.store import ResultStore
from repro.zoo.registry import ZooError

pytestmark = pytest.mark.filterwarnings("ignore::pytest.PytestUnhandledThreadExceptionWarning")


# ----------------------------------------------------------------------
# Module-level sweep functions (picklable by reference).
# ----------------------------------------------------------------------

def _square(x):
    return x * x


def _slow_inc(x):
    time.sleep(0.05)
    return x + 1


def _sleepy(x):
    if x == "hang":
        time.sleep(30.0)
    return x


def _interrupt_at_three(x):
    if x == 3:
        raise KeyboardInterrupt
    return x


# ----------------------------------------------------------------------
# In-process workers: chaos without leaving the interpreter.
# ----------------------------------------------------------------------

class _TameWorker(Worker):
    """A worker whose coordinator-ordered death stops the loop instead
    of ``os._exit`` (which would take the test process with it)."""

    def _die(self):
        self.stop()


class _CrashWorker(_TameWorker):
    """Dies *silently*: no deregistration, heartbeats just stop — the
    in-process footprint of a SIGKILL, recovered by the lease reaper."""

    def _deregister(self):
        pass


@contextlib.contextmanager
def _fleet(classes=(_TameWorker, _TameWorker), heartbeat=0.1, **coordinator_kwargs):
    """A live ``CoordinatorServer`` plus in-process worker threads."""
    server = CoordinatorServer(
        port=0, heartbeat=heartbeat, **coordinator_kwargs
    ).start()
    workers = [
        cls(server.address, poll=0.02, name=f"inproc-{i}")
        for i, cls in enumerate(classes)
    ]
    threads = [
        threading.Thread(target=w.run, daemon=True, name=f"fleet-worker-{i}")
        for i, w in enumerate(workers)
    ]
    for thread in threads:
        thread.start()
    deadline = time.time() + 10.0
    while time.time() < deadline:
        if all(w.worker_id is not None for w in workers):
            break
        time.sleep(0.01)
    try:
        yield server, workers
    finally:
        server.stop()  # orders every worker to exit on its next poll
        for worker in workers:
            worker.stop()
        for thread in threads:
            thread.join(timeout=2.0)


# ----------------------------------------------------------------------
# Wire protocol
# ----------------------------------------------------------------------

class TestWire:
    def test_parse_address(self):
        assert parse_address("localhost:9100") == ("localhost", 9100)
        assert parse_address(":9100") == ("127.0.0.1", 9100)
        assert parse_address(("host", "7")) == ("host", 7)
        with pytest.raises(WireError, match="HOST:PORT"):
            parse_address("no-port-here")
        with pytest.raises(WireError, match="HOST:PORT"):
            parse_address("host:notaport")

    def test_framing_round_trip_and_eof(self):
        a, b = socket.socketpair()
        try:
            wire.send_message(a, {"type": "ping", "n": 1})
            assert wire.recv_message(b) == {"type": "ping", "n": 1}
            a.close()
            with pytest.raises(WireError, match="closed"):
                wire.recv_message(b)
        finally:
            b.close()

    def test_frame_size_guards(self, monkeypatch):
        from repro.service.wire import FrameTooLarge

        monkeypatch.setattr(wire, "MAX_FRAME", 16)
        a, b = socket.socketpair()
        try:
            with pytest.raises(FrameTooLarge, match="MAX_FRAME"):
                wire.send_message(a, {"pad": "x" * 64})
            # A lying length prefix must not trigger a huge allocation.
            a.sendall(wire._HEADER.pack(10_000, 0))
            with pytest.raises(FrameTooLarge, match="MAX_FRAME"):
                wire.recv_message(b)
        finally:
            a.close()
            b.close()

    def test_corrupt_frame_raises_typed_retryable_error(self):
        from repro.service.wire import FrameCorrupted

        a, b = socket.socketpair()
        try:
            data = bytearray(wire.frame({"type": "ping"}))
            data[-1] ^= 0xFF  # flip one payload byte
            a.sendall(bytes(data))
            with pytest.raises(FrameCorrupted, match="CRC32"):
                wire.recv_message(b)
            # FrameCorrupted is a transport error (retryable), never an
            # application rejection.
            assert issubclass(FrameCorrupted, ConnectionError)
        finally:
            a.close()
            b.close()

    def test_codec_prefers_store_encoding(self):
        for value in (None, True, 3, 0.1, "text", [1.5, 2.5], {"a": 1}):
            envelope = wire.encode(value)
            assert envelope["enc"] == "store", value
            assert wire.decode(envelope) == value

    def test_codec_pickle_fallback_preserves_types(self):
        # JSON would turn these into lists / string-keyed dicts — the
        # codec must fall back to pickle rather than silently mangle.
        for value in ((1, 2), {1: "x"}, [(0, {"n": 8})], {"k": (1, 2)}):
            envelope = wire.encode(value)
            assert envelope["enc"] == "pickle", value
            assert wire.decode(envelope) == value
        assert wire.decode(wire.encode(_square))(4) == 16
        with pytest.raises(WireError, match="unknown wire encoding"):
            wire.decode({"enc": "carrier-pigeon", "data": ""})

    def test_sweep_result_round_trip(self):
        warning = ValidationWarning(
            code="range", message="probability 1.2 above 1",
            value=1.2, clipped=1.0,
        )
        original = SweepResult(
            point=(3, {"snr_db": 8.0}),
            value=0.125,
            seconds=0.5,
            error=None,
            label="mimo-1xN",
            attempts=2,
            warnings=(warning,),
        )
        decoded = wire.decode_result(wire.encode_result(original))
        assert decoded == original
        failed = SweepResult(
            point={"n": 8}, value=None, seconds=0.1,
            error="ValueError: boom", traceback="  ...\nValueError: boom",
        )
        assert wire.decode_result(wire.encode_result(failed)) == failed


# ----------------------------------------------------------------------
# Coordinator bookkeeping (no sockets: drive handle() synchronously)
# ----------------------------------------------------------------------

def _register(coord, name="w"):
    reply = coord.handle(
        {
            "type": "register",
            "protocol": wire.PROTOCOL_VERSION,
            "salt": coord.salt,
            "name": name,
            "pid": os.getpid(),
            "host": "testhost",
        }
    )
    assert reply["type"] == "welcome"
    assert reply["epoch"] == coord.epoch
    return reply["worker"]


def _handle(coord, message):
    """Drive one worker-side message with the current epoch stamped,
    as a live (post-welcome) worker would send it."""
    return coord.handle({"epoch": coord.epoch, **message})


class TestCoordinator:
    def test_registration_gating(self):
        coord = Coordinator(salt="s1")
        bad_protocol = coord.handle(
            {"type": "register", "protocol": 999, "salt": "s1"}
        )
        assert bad_protocol["type"] == "error"
        assert "protocol mismatch" in bad_protocol["error"]
        bad_salt = coord.handle(
            {
                "type": "register",
                "protocol": wire.PROTOCOL_VERSION,
                "salt": "other",
            }
        )
        assert bad_salt["type"] == "error"
        assert "cache-compatible" in bad_salt["error"]
        assert coord.handle({"type": "???"})["type"] == "error"

    def test_lease_result_merge_first_write_wins(self):
        coord = Coordinator(salt="s")
        worker = _register(coord)
        job = coord.submit(
            {"enc": "x"}, [{"p": i} for i in range(4)], shard_size=2
        )
        shard = _handle(coord, {"type": "lease", "worker": worker})
        assert shard["type"] == "shard"
        assert (shard["start"], shard["stop"]) == (0, 2)
        assert shard["points"] == [{"p": 0}, {"p": 1}]
        post = {
            "type": "result", "worker": worker, "job": job,
            "lease": shard["lease"], "start": 0, "stop": 2,
            "results": ["first-0", "first-1"],
        }
        assert _handle(coord, post)["type"] == "ok"
        # A reassigned twin completing late must not clobber the merge.
        _handle(coord, {**post, "results": ["second-0", "second-1"]})
        snapshot = coord.collect(job)
        assert snapshot["results"]["0"] == "first-0"
        assert snapshot["status"] == "queued"  # second shard untouched
        shard2 = _handle(coord, {"type": "lease", "worker": worker})
        _handle(
            coord,
            {
                "type": "result", "worker": worker, "job": job,
                "lease": shard2["lease"], "start": 2, "stop": 4,
                "results": ["a", "b"],
            }
        )
        done = coord.collect(job)
        assert done["done"] and done["status"] == "done"
        assert done["completed"] == 4
        info = coord.workers[worker]
        assert info.shards_done == 3 and info.points_done == 6

    def test_shard_sizing(self):
        coord = Coordinator(salt="s")
        _register(coord)
        _register(coord)
        # ~4 shards per live worker by default.
        assert len(coord._shards(64, None)) == 8
        assert coord._shards(5, 2) == [(0, 2), (2, 4), (4, 5)]
        with pytest.raises(WireError, match="shard_size"):
            coord._shards(4, 0)

    def test_reap_bisects_and_quarantines(self):
        coord = Coordinator(salt="s", heartbeat=0.1, quarantine_strikes=2)
        worker = _register(coord)
        job_id = coord.submit({"enc": "x"}, [{"p": i} for i in range(4)], shard_size=4)
        lease = _handle(coord, {"type": "lease", "worker": worker})
        assert (lease["start"], lease["stop"]) == (0, 4)
        # Silence past the liveness cutoff: the range is bisected.
        assert coord.reap(now=time.time() + 60.0) == 1
        job = coord.jobs[job_id]
        assert job.pending == [(0, 2), (2, 4)]
        assert all(job.strikes[i] == 1 for i in range(4))
        # Walk a fresh worker through repeated deaths down to one point.
        for _ in range(8):
            if job.done:
                break
            w = _register(coord)
            granted = _handle(coord, {"type": "lease", "worker": w})
            if granted["type"] != "shard":
                break
            coord.reap(now=time.time() + 60.0)
        assert job.done
        assert set(job.quarantined) == {0, 1, 2, 3}
        record = job.quarantined[0]
        assert "WorkerLost" in record["error"]
        assert record["attempts"] >= 2

    def test_reap_expires_blown_budgets_of_live_workers(self):
        # liveness is huge: only the lease deadline can expire it.
        coord = Coordinator(salt="s", liveness=10_000.0, lease_grace=0.1)
        worker = _register(coord)
        job_id = coord.submit(
            {"enc": "x"}, [{"p": 0}, {"p": 1}], shard_size=2,
            point_budget=0.2,
        )
        _handle(coord, {"type": "lease", "worker": worker})
        assert coord.reap(now=time.time() + 0.1) == 0  # within budget
        assert coord.reap(now=time.time() + 60.0) == 1
        job = coord.jobs[job_id]
        assert job.pending == [(0, 1), (1, 2)]
        # Quarantine reason names the deadline, not a worker death.
        for _ in range(8):
            if job.done:
                break
            granted = _handle(coord, {"type": "lease", "worker": worker})
            if granted["type"] != "shard":
                break
            coord.reap(now=time.time() + 60.0)
        assert job.done
        assert all(
            q["error"].startswith("DeadlineExceeded")
            for q in job.quarantined.values()
        )

    def test_cancel_keeps_partials(self):
        coord = Coordinator(salt="s")
        worker = _register(coord)
        job = coord.submit({"enc": "x"}, [{"p": i} for i in range(4)], shard_size=1)
        shard = _handle(coord, {"type": "lease", "worker": worker})
        _handle(
            coord,
            {
                "type": "result", "worker": worker, "job": job,
                "lease": shard["lease"], "start": shard["start"],
                "stop": shard["stop"], "results": ["kept"],
            }
        )
        snapshot = coord.cancel(job)
        assert snapshot["status"] == "cancelled"
        assert snapshot["results"] == {"0": "kept"}
        assert _handle(coord, {"type": "lease", "worker": worker})["type"] == "idle"

    def test_kill_directive_and_unknown_worker(self):
        coord = Coordinator(salt="s")
        worker = _register(coord)
        assert coord.handle({"type": "kill", "worker": "any"}) == {
            "type": "ok", "worker": worker,
        }
        order = _handle(coord, {"type": "heartbeat", "worker": worker})
        assert order["type"] == "die"
        # No live worker left to kill now.
        assert coord.handle({"type": "kill", "worker": "any"})["type"] == "error"
        # A worker the coordinator has never seen is told to re-register
        # (it may simply predate a coordinator restart).
        lost = _handle(coord, {"type": "heartbeat", "worker": "w999"})
        assert lost["type"] == "reregister"
        assert "re-register" in lost["reason"]
        assert lost["epoch"] == coord.epoch

    def test_stats_shape(self):
        coord = Coordinator(salt="s")
        _register(coord, name="alpha")
        coord.submit({"enc": "x"}, [{"p": 0}])
        stats = coord.stats()
        assert stats["salt"] == "s"
        assert stats["workers_alive"] == 1
        assert stats["workers"][0]["name"] == "alpha"
        assert stats["jobs"] == {"queued": 1}
        assert stats["jobs_total"] == 1


# ----------------------------------------------------------------------
# Fleet integration: in-process workers against a live server
# ----------------------------------------------------------------------

class TestFleet:
    def test_remote_sweep_matches_serial(self):
        points = list(range(10))
        serial = sweep(_square, points, executor="serial")
        with _fleet() as (server, _workers):
            remote = sweep(
                _square, points,
                executor="remote", remote=server.address, shard_size=2,
            )
            stats = service_stats(server.address)
        assert [r.value for r in remote] == [r.value for r in serial]
        assert [r.point for r in remote] == points
        assert all(r.ok for r in remote)
        assert sum(w["points_done"] for w in stats["workers"]) == len(points)

    def test_remote_zoo_sweep_bit_identical(self):
        smc = SmcConfig(epsilon=0.2, delta=0.2, seed=5)
        kwargs = dict(
            axes={"n": [6, 8, 10, 12]}, formula="P=? [ F<=50 goal ]",
            backend="apmc", smc=smc,
        )
        serial = zoo.sweep("birth-death", executor="serial", **kwargs)
        with _fleet() as (server, _workers):
            remote = zoo.sweep(
                "birth-death", executor="remote", remote=server.address,
                shard_size=1, **kwargs,
            )
        assert [r.point for r in remote] == [r.point for r in serial]
        # Bit-identical, not approximately equal: same seeds, same
        # sample counts, same estimates, regardless of which worker ran
        # which lease.
        assert [(r.value.estimate, r.value.samples) for r in remote] == [
            (r.value.estimate, r.value.samples) for r in serial
        ]

    def test_worker_dies_mid_sweep_lease_reassigned(self):
        points = list(range(12))
        with _fleet(classes=(_CrashWorker, _TameWorker)) as (server, workers):
            victim = workers[0]
            killer = threading.Timer(
                0.15, kill_worker, args=(server.address, victim.worker_id)
            )
            killer.start()
            try:
                remote = sweep(
                    _slow_inc, points,
                    executor="remote", remote=server.address, shard_size=1,
                )
            finally:
                killer.cancel()
            deadline = time.time() + 5.0
            while time.time() < deadline and not victim._stop.is_set():
                time.sleep(0.02)  # die order lands on the victim's next poll
            assert victim._stop.is_set()  # the chaos kill actually landed
        assert [r.value for r in remote] == [x + 1 for x in points]
        assert all(r.ok for r in remote)

    def test_hung_lease_expires_and_quarantines(self):
        points = [0, 1, 2, 3, "hang"]
        with _fleet(lease_grace=0.1) as (server, _workers):
            remote = remote_sweep(
                _sleepy, points,
                connect=server.address, shard_size=1,
                deadline=DeadlinePolicy(timeout=0.3, grace=0.1),
            )
        assert [r.value for r in remote[:4]] == [0, 1, 2, 3]
        hung = remote[4]
        assert not hung.ok
        assert hung.error.startswith("DeadlineExceeded")
        assert hung.timed_out
        assert hung.attempts >= 2  # one strike per expired lease

    def test_retry_policy_applies_in_worker(self):
        injected = _FlakyOnce()
        with _fleet(classes=(_TameWorker,)) as (server, _workers):
            results = remote_sweep(
                injected, [1, 2],
                connect=server.address,
                retry=RetryPolicy(max_attempts=3, backoff=0.01),
            )
        assert [r.value for r in results] == [1, 2]
        assert results[0].attempts >= 1

    def test_remote_sweep_timeout_cancels(self):
        with _fleet(classes=()) as (server, _workers):  # no workers at all
            with pytest.raises(TimeoutError, match="incomplete"):
                remote_sweep(
                    _square, [1, 2, 3],
                    connect=server.address, timeout=0.3, poll=0.02,
                )
            stats = service_stats(server.address)
        assert stats["jobs"].get("cancelled") == 1


class _FlakyOnce:
    """Fails the first point attempt per value; picklable state-free
    retry probe (the failure marker travels in the exception type)."""

    _seen = set()

    def __call__(self, x):
        marker = (os.getpid(), x)
        if marker not in self._seen:
            self._seen.add(marker)
            raise OSError(f"transient glitch on {x}")
        return x


# ----------------------------------------------------------------------
# HTTP front-end
# ----------------------------------------------------------------------

class TestFrontend:
    def test_route_errors(self):
        front = Frontend(Coordinator(salt="s"))
        assert front.route("POST", "/guarantee")[0] == 400
        assert front.route("GET", "/nope")[0] == 404
        assert front.route("GET", "/jobs/job-999")[0] == 404
        status, body = front.route("GET", "/guarantee")
        assert status == 400 and "family" in body["error"]
        status, body = front.route("GET", "/guarantee?family=not-a-family")
        assert status == 400
        status, body = front.route(
            "GET", "/guarantee?family=birth-death&backend=psychic"
        )
        assert status == 400 and "psychic" in body["error"]
        status, body = front.route(
            "GET", "/guarantee?family=birth-death&backend=sprt"
        )
        assert status == 400 and "theta" in body["error"]

    def test_healthz_degrades_on_dead_worker(self):
        coord = Coordinator(salt="s", heartbeat=0.1)
        front = Frontend(coord)
        worker = _register(coord, name="mortal")
        status, body = front.healthz()
        assert (status, body["status"]) == (200, "ok")
        assert body["workers_alive"] == 1
        coord.workers[worker].last_seen -= 100.0  # silence: it died
        status, body = front.healthz()
        assert body["status"] == "degraded"
        assert body["workers_alive"] == 0
        assert body["dead"][0]["name"] == "mortal"

    def test_guarantee_miss_poll_bank_then_warm_hit(self, tmp_path):
        serial = zoo.sweep(
            "birth-death", points=[{"n": 8}], executor="serial"
        )[0]
        with ResultStore(tmp_path / "serve.sqlite") as store:
            with _fleet(classes=(_TameWorker,)) as (server, _workers):
                front = Frontend(server.coordinator, store=store)
                status, body = front.route(
                    "GET", "/guarantee?family=birth-death&n=8"
                )
                assert status == 202 and not body["cached"]
                job_id = body["job"]
                # An identical query racing the first shares its job.
                status2, body2 = front.route(
                    "GET", "/guarantee?family=birth-death&n=8"
                )
                if status2 == 202:  # may already have landed and banked
                    assert body2["job"] == job_id
                deadline = time.time() + 30.0
                while time.time() < deadline:
                    status, poll = front.route("GET", f"/jobs/{job_id}")
                    if poll["done"]:
                        break
                    time.sleep(0.05)
                assert poll["done"] and poll["results"][0]["ok"]
                assert poll["results"][0]["value"] == serial.value
                # Banked: the warm hit answers from the store without
                # touching the engine or enqueuing anything new.
                deadline = time.time() + 10.0
                while time.time() < deadline and len(store) == 0:
                    time.sleep(0.05)  # _bank runs on the job-done thread
                jobs_before = len(server.coordinator.jobs)
                status, warm = front.route(
                    "GET", "/guarantee?family=birth-death&n=8"
                )
                assert status == 200 and warm["cached"]
                assert warm["value"] == serial.value
                assert len(server.coordinator.jobs) == jobs_before
                assert front.hits == 1

    def test_stats_payload_includes_store_and_coordinator(self, tmp_path):
        with ResultStore(tmp_path / "stats.sqlite") as store:
            front = Frontend(Coordinator(salt="s"), store=store)
            status, body = front.stats_payload()
        assert status == 200
        assert body["store"]["entries"] == 0
        assert body["coordinator"]["salt"] == "s"
        assert body["guarantee_hits"] == 0

    def test_http_server_end_to_end(self):
        coord = Coordinator(salt="s")
        with FrontendServer(Frontend(coord), port=0) as server:
            base = f"http://{server.address}"
            with urllib.request.urlopen(f"{base}/healthz", timeout=10) as resp:
                assert resp.status == 200
                assert json.load(resp)["status"] == "ok"
            with urllib.request.urlopen(f"{base}/stats", timeout=10) as resp:
                assert json.load(resp)["coordinator"]["salt"] == "s"
            with pytest.raises(urllib.error.HTTPError) as exc:
                urllib.request.urlopen(f"{base}/teapot", timeout=10)
            assert exc.value.code == 404
            with pytest.raises(urllib.error.HTTPError) as exc:
                urllib.request.urlopen(f"{base}/guarantee", timeout=10)
            assert exc.value.code == 400


# ----------------------------------------------------------------------
# Satellites: fast-fail validation, Ctrl-C semantics, CLI exit codes
# ----------------------------------------------------------------------

class TestExecutorValidation:
    def test_engine_sweep_lists_executors(self):
        with pytest.raises(ValueError, match="remote"):
            sweep(_square, [1], executor="bogus")

    def test_engine_sweep_check_fails_before_store_traffic(self):
        with pytest.raises(ValueError) as exc:
            sweep_check(
                lambda p: None, [{"n": 1}], "P=? [ F<=5 goal ]",
                executor="carrier-pigeon",
            )
        for name in EXECUTORS:
            assert name in str(exc.value)

    def test_zoo_sweep_and_survey_fail_fast(self):
        with pytest.raises(ZooError, match="remote"):
            zoo.sweep("birth-death", axes={"n": [8]}, executor="bogus")
        with pytest.raises(ZooError, match="remote"):
            zoo.survey(executor="bogus")

    def test_remote_needs_an_address(self, monkeypatch):
        monkeypatch.delenv("REPRO_COORDINATOR", raising=False)
        with pytest.raises(ValueError, match="REPRO_COORDINATOR"):
            sweep(_square, [1, 2], executor="remote")

    def test_cli_rejects_unknown_executor(self, capsys):
        from repro.zoo.cli import main

        with pytest.raises(SystemExit):
            main(["sweep", "birth-death", "-g", "n=8", "--executor", "bogus"])
        assert "remote" in capsys.readouterr().err

    def test_cli_remote_requires_connect(self, monkeypatch, capsys):
        from repro.zoo.cli import main

        monkeypatch.delenv("REPRO_COORDINATOR", raising=False)
        code = main(
            ["sweep", "birth-death", "-g", "n=8", "--executor", "remote"]
        )
        assert code == 2
        assert "--connect" in capsys.readouterr().err


class TestInterrupts:
    def test_serial_interrupt_carries_partials(self):
        with pytest.raises(SweepInterrupted) as exc:
            sweep(_interrupt_at_three, [0, 1, 2, 3, 4], executor="serial")
        assert [r.value for r in exc.value.partial] == [0, 1, 2]
        assert isinstance(exc.value, KeyboardInterrupt)  # still a ^C

    def test_thread_interrupt_carries_partials(self):
        with pytest.raises(SweepInterrupted) as exc:
            sweep(
                _interrupt_at_three, [0, 1, 2, 3, 4],
                executor="thread", max_workers=1,
            )
        values = [r.value for r in exc.value.partial]
        # Point 3 raised, so it can never be in the salvage; the pool
        # worker may or may not have reached 4 before the shutdown.
        assert 3 not in values
        assert [v for v in values if v < 3] == [0, 1, 2]

    def test_sweep_check_banks_partials_on_interrupt(self, tmp_path, monkeypatch):
        import importlib

        # The package re-exports a `sweep` *function*, which shadows
        # the submodule as an attribute — resolve the module directly.
        engine_sweep_module = importlib.import_module("repro.engine.sweep")
        original = engine_sweep_module._check_point
        calls = {"n": 0}

        def interrupting(entry, **kwargs):
            if calls["n"] >= 2:
                raise KeyboardInterrupt
            calls["n"] += 1
            return original(entry, **kwargs)

        axes = {"n": [6, 8, 10, 12]}
        with ResultStore(tmp_path / "ckpt.sqlite") as store:
            monkeypatch.setattr(
                engine_sweep_module, "_check_point", interrupting
            )
            with pytest.raises(SweepInterrupted) as exc:
                zoo.sweep(
                    "birth-death", axes=axes, store=store, executor="serial"
                )
            assert len(exc.value.partial) == 2
            # The two finished points were banked before the interrupt
            # propagated — the resumable-^C contract.
            assert len(store) == 2
            monkeypatch.setattr(engine_sweep_module, "_check_point", original)
            resumed = zoo.sweep(
                "birth-death", axes=axes, store=store, executor="serial"
            )
            assert all(r.ok for r in resumed)
            assert sum(r.cached for r in resumed) == 2
            assert len(store) == 4

    def test_cli_reports_interrupt_and_exits_130(self, monkeypatch, capsys):
        import repro.zoo.cli as cli

        def fake_sweep(*args, **kwargs):
            raise SweepInterrupted(
                [SweepResult(point={"n": 8}, value=1.0, seconds=0.0)]
            )

        monkeypatch.setattr(cli, "_sweep", fake_sweep)
        code = cli.main(
            ["sweep", "birth-death", "-g", "n=8", "--executor", "serial"]
        )
        assert code == 130
        err = capsys.readouterr().err
        assert "interrupted" in err and "--store" in err
