"""Chaos suite for the fault-tolerant sweep fabric (repro.resilience).

Covers the ISSUE-7 acceptance surface:

* retry policies: attempt budgets, exception allowlists, deterministic
  exponential backoff with per-point jitter;
* deadline policies: watchdog kills on the serial/thread executors,
  pool-level budgets on the process executor;
* crash recovery: worker kills (``BrokenProcessPool``) survive, the
  poisoned point is bisected out and quarantined, and every surviving
  point's value is bit-identical to the serial path;
* checkpoint/resume: an interrupted store-backed sweep resumed against
  the same store recomputes only the missing points and returns values
  identical to an uninterrupted cold run;
* the regression satellite: a failed point is *never* banked in the
  ResultStore and never served as a warm hit;
* guarantee validation: NaN/Inf/range violations downgrade to
  structured ``ValidationWarning`` records on the result;
* ``SweepReport`` triage counts and the abbreviated-traceback /
  ``attempts`` post-mortem fields.

All injected faults are deterministic (:class:`FaultInjector` keeps a
filesystem scoreboard), so every scenario reproduces across executors
and machines.
"""

import math
import time

import pytest

from repro import dtmc_from_dict
from repro.core import Guarantee
from repro.engine import sweep, sweep_check
from repro.engine.sweep import SweepResult, _abbreviate_traceback
from repro.resilience import (
    DeadlineExceeded,
    DeadlinePolicy,
    Fault,
    FaultInjector,
    InjectedFault,
    RetryPolicy,
    SweepReport,
    ValidationWarning,
    formula_kind,
    validate_guarantee,
    validate_monotone,
)
from repro.store import ResultStore

FORMULA = "P=? [ F<=50 goal ]"


def _square(point):
    """Module-level sweep fn (picklable) for chaos runs."""
    return point["x"] ** 2


def _tiny_chain(point):
    """Module-level build fn (picklable) for sweep_check chaos runs."""
    p = float(point["p"])
    return dtmc_from_dict(
        {0: {0: 1.0 - p, 1: p}, 1: {1: 1.0}},
        initial=0,
        labels={"goal": [1]},
    )


def _poisoned_build(point):
    if point.get("poison"):
        raise RuntimeError("poisoned build")
    return _tiny_chain(point)


def _deep_raise(point, depth=6):
    if depth:
        return _deep_raise(point, depth - 1)
    raise ValueError("boom at the bottom")


# ----------------------------------------------------------------------
# Policies: coercion, retry decisions, deterministic backoff
# ----------------------------------------------------------------------

class TestRetryPolicy:
    def test_coerce_accepts_int_policy_none(self):
        assert RetryPolicy.coerce(None) is None
        assert RetryPolicy.coerce(4) == RetryPolicy(max_attempts=4)
        policy = RetryPolicy(max_attempts=2, backoff=0.5)
        assert RetryPolicy.coerce(policy) is policy

    def test_coerce_rejects_bool_and_junk(self):
        with pytest.raises(TypeError):
            RetryPolicy.coerce(True)
        with pytest.raises(TypeError):
            RetryPolicy.coerce("3")

    def test_validation(self):
        with pytest.raises(ValueError, match="max_attempts"):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError, match="jitter"):
            RetryPolicy(jitter=1.5)
        with pytest.raises(ValueError, match="backoff_factor"):
            RetryPolicy(backoff_factor=0.5)

    def test_should_retry_respects_budget_and_allowlist(self):
        policy = RetryPolicy(max_attempts=3, retry_on=(KeyError,))
        assert policy.should_retry(KeyError("x"), 1)
        assert policy.should_retry(KeyError("x"), 2)
        assert not policy.should_retry(KeyError("x"), 3)  # budget spent
        assert not policy.should_retry(ValueError("x"), 1)  # not listed

    def test_bare_exception_class_normalized_to_tuple(self):
        policy = RetryPolicy(retry_on=KeyError)
        assert policy.retry_on == (KeyError,)

    def test_delay_deterministic_and_bounded(self):
        policy = RetryPolicy(backoff=1.0, backoff_factor=2.0, jitter=0.1)
        first = policy.delay('{"x": 1}', 1)
        assert first == policy.delay('{"x": 1}', 1)  # pure function
        assert 0.9 <= first <= 1.1  # base 1.0 +- 10%
        second = policy.delay('{"x": 1}', 2)
        assert 1.8 <= second <= 2.2  # base 2.0 +- 10%
        assert first != policy.delay('{"x": 2}', 1)  # per-point jitter

    def test_delay_clamped_and_zero_without_backoff(self):
        assert RetryPolicy().delay("k", 1) == 0.0
        capped = RetryPolicy(backoff=10.0, max_backoff=12.0, jitter=0.0)
        assert capped.delay("k", 5) == 12.0


class TestDeadlinePolicy:
    def test_coerce_accepts_number_policy_none(self):
        assert DeadlinePolicy.coerce(None) is None
        assert DeadlinePolicy.coerce(2.5) == DeadlinePolicy(timeout=2.5)
        policy = DeadlinePolicy(timeout=1.0, grace=0.0)
        assert DeadlinePolicy.coerce(policy) is policy

    def test_coerce_rejects_bool_and_junk(self):
        with pytest.raises(TypeError):
            DeadlinePolicy.coerce(True)
        with pytest.raises(TypeError):
            DeadlinePolicy.coerce("fast")

    def test_validation(self):
        with pytest.raises(ValueError, match="timeout"):
            DeadlinePolicy(timeout=0.0)
        with pytest.raises(ValueError, match="grace"):
            DeadlinePolicy(timeout=1.0, grace=-1.0)


# ----------------------------------------------------------------------
# Fault injector: deterministic chaos on demand
# ----------------------------------------------------------------------

class TestFaultInjector:
    def test_transient_raise_then_success(self, tmp_path):
        injector = FaultInjector(
            [({"x": 1}, Fault(kind="raise", times=2))], tmp_path
        )
        wrapped = injector.wrap(_square)
        with pytest.raises(InjectedFault):
            wrapped({"x": 1})
        with pytest.raises(InjectedFault):
            wrapped({"x": 1})
        assert wrapped({"x": 1}) == 1  # third call: fault budget spent
        assert wrapped({"x": 3}) == 9  # unplanned points never fault
        assert injector.attempts({"x": 1}) == 3

    def test_corrupt_fault_replaces_value(self, tmp_path):
        injector = FaultInjector(
            [({"x": 2}, Fault(kind="corrupt", corrupt_value=float("nan")))],
            tmp_path,
        )
        assert math.isnan(injector.wrap(_square)({"x": 2}))

    def test_reset_clears_the_scoreboard(self, tmp_path):
        injector = FaultInjector(
            [({"x": 1}, Fault(kind="raise", times=1))], tmp_path
        )
        with pytest.raises(InjectedFault):
            injector.wrap(_square)({"x": 1})
        injector.reset()
        assert injector.attempts({"x": 1}) == 0
        with pytest.raises(InjectedFault):  # the fault is armed again
            injector.wrap(_square)({"x": 1})

    def test_sample_is_seed_deterministic(self, tmp_path):
        points = [{"x": i} for i in range(50)]
        fault = Fault(kind="raise")
        first = FaultInjector.sample(
            points, fault, tmp_path / "a", rate=0.2, seed=7
        )
        second = FaultInjector.sample(
            points, fault, tmp_path / "b", rate=0.2, seed=7
        )
        assert first.plan.keys() == second.plan.keys()
        assert 0 < len(first.plan) < len(points)
        none = FaultInjector.sample(points, fault, tmp_path / "c", rate=0.0)
        assert not none.plan
        everything = FaultInjector.sample(
            points, fault, tmp_path / "d", rate=1.0
        )
        assert len(everything.plan) == len(points)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="fault kind"):
            Fault(kind="explode")


# ----------------------------------------------------------------------
# Retries on the watchdog executors
# ----------------------------------------------------------------------

class TestRetries:
    @pytest.mark.parametrize("executor", ["serial", "thread"])
    def test_transient_fault_absorbed(self, tmp_path, executor):
        injector = FaultInjector(
            [({"x": 1}, Fault(kind="raise", times=2))], tmp_path
        )
        results = sweep(
            injector.wrap(_square),
            [{"x": 0}, {"x": 1}, {"x": 2}],
            executor=executor,
            retry=RetryPolicy(max_attempts=3),
        )
        assert [r.value for r in results] == [0, 1, 4]
        assert [r.attempts for r in results] == [1, 3, 1]
        assert all(r.ok for r in results)

    def test_budget_exhaustion_quarantines_with_postmortem(self, tmp_path):
        injector = FaultInjector(
            [({"x": 1}, Fault(kind="raise"))], tmp_path
        )
        results = sweep(
            injector.wrap(_square),
            [{"x": 0}, {"x": 1}],
            executor="serial",
            retry=RetryPolicy(max_attempts=2),
        )
        assert results[0].ok and results[0].attempts == 1
        failed = results[1]
        assert not failed.ok
        assert failed.error.startswith("InjectedFault:")
        assert failed.attempts == 2
        assert "InjectedFault" in failed.traceback

    def test_retry_on_allowlist_fails_fast(self, tmp_path):
        injector = FaultInjector(
            [({"x": 1}, Fault(kind="raise", times=2))], tmp_path
        )
        results = sweep(
            injector.wrap(_square),
            [{"x": 1}],
            executor="serial",
            retry=RetryPolicy(max_attempts=5, retry_on=(KeyError,)),
        )
        assert not results[0].ok
        assert results[0].attempts == 1  # InjectedFault is not retryable

    def test_bare_int_retry_coerced(self, tmp_path):
        injector = FaultInjector(
            [({"x": 1}, Fault(kind="raise", times=1))], tmp_path
        )
        results = sweep(
            injector.wrap(_square), [{"x": 1}], executor="serial", retry=2
        )
        assert results[0].ok and results[0].attempts == 2


# ----------------------------------------------------------------------
# Deadlines on the watchdog executors
# ----------------------------------------------------------------------

class TestDeadlines:
    @pytest.mark.parametrize("executor", ["serial", "thread"])
    def test_hang_killed_at_deadline(self, tmp_path, executor):
        injector = FaultInjector(
            [({"x": 1}, Fault(kind="hang", hang_seconds=5.0))], tmp_path
        )
        start = time.perf_counter()
        results = sweep(
            injector.wrap(_square),
            [{"x": 0}, {"x": 1}, {"x": 2}],
            executor=executor,
            deadline=0.3,
        )
        assert time.perf_counter() - start < 4.0  # not the 5s hang
        assert [r.ok for r in results] == [True, False, True]
        assert results[1].timed_out
        assert results[1].error.startswith("DeadlineExceeded")
        assert [r.value for r in results] == [0, None, 4]

    def test_deadline_retryable_when_listed(self, tmp_path):
        injector = FaultInjector(
            [({"x": 1}, Fault(kind="hang", times=1, hang_seconds=5.0))],
            tmp_path,
        )
        results = sweep(
            injector.wrap(_square),
            [{"x": 1}],
            executor="serial",
            retry=RetryPolicy(max_attempts=2, retry_on=(DeadlineExceeded,)),
            deadline=DeadlinePolicy(timeout=0.3),
        )
        assert results[0].ok  # first attempt hung, second succeeded
        assert results[0].value == 1
        assert results[0].attempts == 2


# ----------------------------------------------------------------------
# Process executor: crash recovery, bisection, pool-level deadlines
# ----------------------------------------------------------------------

class TestProcessRecovery:
    def test_worker_kill_quarantined_survivors_identical(self, tmp_path):
        points = [{"x": i} for i in range(12)]
        injector = FaultInjector(
            [({"x": 5}, Fault(kind="kill"))], tmp_path
        )
        chaos = sweep(
            injector.wrap(_square),
            points,
            executor="process",
            shard_size=3,
            max_workers=2,
        )
        serial = sweep(_square, points, executor="serial")
        for index, (got, want) in enumerate(zip(chaos, serial)):
            if index == 5:
                assert not got.ok
                assert got.error.startswith("BrokenProcessPool")
                assert got.attempts >= 2  # implicated across waves
            else:
                assert got.ok
                assert got.value == want.value  # bit-identical survivors

    def test_two_poisoned_points_both_isolated(self, tmp_path):
        points = [{"x": i} for i in range(8)]
        injector = FaultInjector(
            [
                ({"x": 2}, Fault(kind="kill")),
                ({"x": 6}, Fault(kind="kill")),
            ],
            tmp_path,
        )
        results = sweep(
            injector.wrap(_square),
            points,
            executor="process",
            shard_size=4,
            max_workers=2,
        )
        failed = {i for i, r in enumerate(results) if not r.ok}
        assert failed == {2, 6}
        for index, result in enumerate(results):
            if index not in failed:
                assert result.value == index**2

    def test_in_worker_retries_absorb_transients(self, tmp_path):
        points = [{"x": i} for i in range(6)]
        injector = FaultInjector(
            [({"x": 3}, Fault(kind="raise", times=1))], tmp_path
        )
        results = sweep(
            injector.wrap(_square),
            points,
            executor="process",
            shard_size=2,
            max_workers=2,
            retry=RetryPolicy(max_attempts=2),
        )
        assert all(r.ok for r in results)
        assert [r.value for r in results] == [i**2 for i in range(6)]
        assert results[3].attempts == 2

    def test_hard_hang_quarantined_by_pool_budget(self, tmp_path):
        points = [{"x": i} for i in range(6)]
        injector = FaultInjector(
            [({"x": 2}, Fault(kind="hang", hang_seconds=120.0))], tmp_path
        )
        start = time.perf_counter()
        results = sweep(
            injector.wrap(_square),
            points,
            executor="process",
            shard_size=2,
            max_workers=2,
            deadline=DeadlinePolicy(timeout=0.3, grace=0.5),
        )
        assert time.perf_counter() - start < 60.0  # never the 120s hang
        assert [r.ok for r in results] == [True, True, False, True, True, True]
        assert results[2].timed_out
        assert "pool budget" in results[2].error
        survivors = [r.value for i, r in enumerate(results) if i != 2]
        assert survivors == [0, 1, 9, 16, 25]


# ----------------------------------------------------------------------
# Checkpoint/resume and the never-bank-failures satellite
# ----------------------------------------------------------------------

class TestCheckpointResume:
    def test_resume_matches_uninterrupted_cold_run(self, tmp_path):
        points = [{"p": 0.1}, {"p": 0.2}, {"p": 0.3}, {"p": 0.4}]
        cold = sweep_check(_tiny_chain, points, FORMULA, executor="serial")
        with ResultStore(tmp_path / "ckpt.sqlite") as store:
            # "Interrupted" run: only half the grid completed.
            sweep_check(
                _tiny_chain, points[:2], FORMULA,
                executor="serial", store=store,
            )
            resumed = sweep_check(
                _tiny_chain, points, FORMULA,
                executor="serial", store=store,
            )
        assert [r.cached for r in resumed] == [True, True, False, False]
        assert [r.value for r in resumed] == [r.value for r in cold]
        report = SweepReport.from_results(resumed)
        assert report.cached == 2 and report.recomputed == 2

    def test_failed_points_are_never_banked(self, tmp_path):
        points = [{"p": 0.1}, {"p": 0.2, "poison": 1}, {"p": 0.3}]
        with ResultStore(tmp_path / "bank.sqlite") as store:
            first = sweep_check(
                _poisoned_build, points, FORMULA,
                executor="serial", store=store,
            )
            assert [r.ok for r in first] == [True, False, True]
            assert first[1].error.startswith("RuntimeError: poisoned build")
            assert len(store) == 2  # only the successes were banked
            second = sweep_check(
                _poisoned_build, points, FORMULA,
                executor="serial", store=store,
            )
        # The failure was recomputed, never served as a warm hit.
        assert [r.cached for r in second] == [True, False, True]
        assert not second[1].ok

    def test_guarantee_warnings_round_trip_through_store(self, tmp_path):
        flagged = Guarantee(
            metric="ber",
            property_string="P=? [ F flag ]",
            value=1.0000002,
            model_states=4,
            model_transitions=8,
            check_seconds=0.01,
            warnings=validate_guarantee(1.0000002, kind="probability"),
        )
        assert flagged.warnings  # premise: the value is actually flagged
        with ResultStore(tmp_path / "g.sqlite") as store:
            store.put(["g"], "P=? [ F flag ]", flagged, backend="exact")
            row = store.get(["g"], "P=? [ F flag ]", "exact")
        assert row is not None
        assert row.value == flagged
        assert isinstance(row.value.warnings[0], ValidationWarning)


# ----------------------------------------------------------------------
# Guarantee validation: warnings, never exceptions
# ----------------------------------------------------------------------

class TestValidateGuarantee:
    def test_clean_probability_passes(self):
        assert validate_guarantee(0.25, kind="probability") == ()

    def test_nan_flagged(self):
        codes = [w.code for w in validate_guarantee(float("nan"))]
        assert codes == ["nan"]

    def test_probability_range_flagged_with_clip(self):
        warnings = validate_guarantee(1.0 + 1e-6, kind="probability")
        assert [w.code for w in warnings] == ["range"]
        assert warnings[0].clipped == 1.0
        below = validate_guarantee(-0.5, kind="probability")
        assert below[0].clipped == 0.0

    def test_range_tolerance_absorbs_roundoff(self):
        assert validate_guarantee(1.0 + 1e-12, kind="probability") == ()

    def test_infinite_reward_allowed_negative_flagged(self):
        assert validate_guarantee(float("inf"), kind="reward") == ()
        assert [
            w.code for w in validate_guarantee(float("-inf"), kind="reward")
        ] == ["inf"]
        assert [
            w.code for w in validate_guarantee(-0.5, kind="reward")
        ] == ["range"]

    def test_infinite_probability_flagged(self):
        assert [
            w.code for w in validate_guarantee(float("inf"), kind="probability")
        ] == ["inf"]

    def test_kind_derived_from_formula(self):
        assert formula_kind("P=? [ F<=10 goal ]") == "probability"
        assert formula_kind("S=? [ flag ]") == "probability"
        assert formula_kind("R=? [ I=10 ]") == "reward"
        assert formula_kind("not a formula") is None
        assert formula_kind(None) is None
        # A formula string drives the same classification.
        assert validate_guarantee(1.5, formula="P=? [ F<=10 goal ]")

    def test_duck_typed_values_unwrapped(self):
        class FakeApmc:
            estimate = float("nan")

        assert [w.code for w in validate_guarantee(FakeApmc())] == ["nan"]
        assert validate_guarantee(object()) == ()  # nothing checkable

    def test_cross_backend_probe_flags_implausible_exact_value(self):
        chain = _tiny_chain({"p": 0.3})
        agree = validate_guarantee(
            0.9997, formula=FORMULA, cross_check_chain=chain,
            cross_check_epsilon=0.05,
        )
        assert agree == ()
        disagree = validate_guarantee(
            0.2, formula=FORMULA, cross_check_chain=chain,
            cross_check_epsilon=0.05,
        )
        assert [w.code for w in disagree] == ["cross-backend"]

    def test_monotone_inversions_flagged(self):
        assert validate_monotone([0.5, 0.4, 0.3], decreasing=True) == ()
        warnings = validate_monotone(
            [0.5, 0.6, 0.3], decreasing=True, labels=["a", "b", "c"]
        )
        assert [w.code for w in warnings] == ["monotonicity"]
        assert "'b'" in warnings[0].message
        rising = validate_monotone([0.1, 0.05], decreasing=False)
        assert [w.code for w in rising] == ["monotonicity"]

    def test_monotone_skips_failed_points(self):
        assert validate_monotone(
            [0.5, None, float("nan"), 0.4], decreasing=True
        ) == ()


class TestSweepCheckValidation:
    def _patched_results(self, monkeypatch, fake_value, formula=FORMULA,
                         **kwargs):
        import importlib

        # "import repro.engine.sweep" resolves to the sweep *function*
        # (the package re-exports it under the same name).
        sweep_mod = importlib.import_module("repro.engine.sweep")

        def fake_check(entry, **_ignored):
            return fake_value

        monkeypatch.setattr(sweep_mod, "_check_point", fake_check)
        return sweep_check(
            _tiny_chain, [{"p": 0.2}], formula, executor="serial", **kwargs
        )

    def test_nan_value_flagged_not_raised(self, monkeypatch):
        results = self._patched_results(monkeypatch, float("nan"))
        assert results[0].ok  # the sweep itself succeeded
        assert [w.code for w in results[0].warnings] == ["nan"]

    def test_out_of_range_probability_flagged(self, monkeypatch):
        results = self._patched_results(monkeypatch, 1.5)
        assert [w.code for w in results[0].warnings] == ["range"]
        assert results[0].warnings[0].clipped == 1.0

    def test_reward_formula_not_range_checked_against_unit(self, monkeypatch):
        results = self._patched_results(
            monkeypatch, 42.0, formula="R=? [ I=10 ]"
        )
        assert results[0].warnings == ()

    def test_validate_off_attaches_nothing(self, monkeypatch):
        results = self._patched_results(
            monkeypatch, float("nan"), validate=False
        )
        assert results[0].warnings == ()

    def test_clean_sweep_has_no_warnings(self):
        results = sweep_check(
            _tiny_chain, [{"p": 0.2}], FORMULA, executor="serial"
        )
        assert results[0].ok and results[0].warnings == ()


class TestAnalyzerValidation:
    def test_guarantee_carries_validation_verdict(self):
        from repro.core.analyzer import PerformanceAnalyzer

        analyzer = PerformanceAnalyzer(_tiny_chain({"p": 0.3}), name="tiny")
        guarantee = analyzer.check(FORMULA)
        assert guarantee.is_valid
        assert guarantee.warnings == ()

    def test_flagged_guarantee_str_shows_warnings(self):
        flagged = Guarantee(
            metric="ber", property_string="P=? [ F flag ]", value=1.5,
            model_states=1, model_transitions=1, check_seconds=0.0,
            warnings=validate_guarantee(1.5, kind="probability"),
        )
        assert not flagged.is_valid
        assert "!!" in str(flagged) and "[range]" in str(flagged)


# ----------------------------------------------------------------------
# Post-mortems: report counts, traceback abbreviation, attempts
# ----------------------------------------------------------------------

class TestSweepReport:
    def test_counts_and_describe(self):
        results = [
            SweepResult(point=1, value=1.0, seconds=0.1),
            SweepResult(point=2, value=2.0, seconds=0.2, cached=True),
            SweepResult(point=3, value=3.0, seconds=0.3, attempts=3),
            SweepResult(
                point=4, value=None, seconds=0.4,
                error="DeadlineExceeded: too slow", attempts=2,
            ),
            SweepResult(
                point=5, value=None, seconds=0.5,
                error="BrokenProcessPool: worker died",
            ),
            SweepResult(
                point=6, value=6.0, seconds=0.6,
                warnings=(ValidationWarning(code="nan", message="NaN"),),
            ),
        ]
        report = SweepReport.from_results(results)
        assert report.total == 6
        assert report.ok == 4
        assert report.cached == 1
        assert report.recomputed == 5
        assert report.retried == 2
        assert report.quarantined == 2
        assert report.timed_out == 1
        assert report.crashed == 1
        assert report.warnings == 1
        assert report.errors == {
            "DeadlineExceeded": 1, "BrokenProcessPool": 1,
        }
        assert not report.healthy
        text = report.describe()
        assert "recomputed=5" in text
        assert "quarantined=2" in text
        assert "DeadlineExceeded x1" in text

    def test_healthy_clean_run(self):
        report = SweepReport.from_results(
            [SweepResult(point=1, value=1.0, seconds=0.1)]
        )
        assert report.healthy
        assert report.quarantined == 0 and report.warnings == 0


class TestPostMortemFields:
    def test_attempts_defaults_to_one(self):
        result = SweepResult(point=1, value=1.0, seconds=0.0)
        assert result.attempts == 1
        assert result.traceback is None
        assert result.warnings == ()
        assert not result.timed_out

    def test_traceback_abbreviated_to_last_frames(self):
        results = sweep(_deep_raise, [{"x": 0}], executor="serial")
        failed = results[0]
        assert failed.error == "ValueError: boom at the bottom"
        assert failed.traceback.endswith("ValueError: boom at the bottom")
        assert "frames elided" in failed.traceback
        # Abbreviation keeps the tail: the raising frame is present.
        assert "_deep_raise" in failed.traceback

    def test_abbreviate_traceback_short_stacks_untouched(self):
        try:
            raise KeyError("shallow")
        except KeyError as exc:
            text = _abbreviate_traceback(exc)
        assert "frames elided" not in text
        assert text.endswith("KeyError: 'shallow'")
