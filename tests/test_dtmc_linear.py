"""Tests for the iterative linear solvers (repro.dtmc.linear)."""

import numpy as np
import pytest
from hypothesis import given, settings
from scipy import sparse
from scipy.sparse import linalg as sparse_linalg

from repro.dtmc import (
    SolverError,
    gauss_seidel_solve,
    jacobi_solve,
    power_solve,
)

from helpers import gamblers_ruin, knuth_yao_die, random_dtmcs

SOLVERS = [power_solve, jacobi_solve, gauss_seidel_solve]


def until_system(chain, target_label):
    """Extract the x = Ax + b system of an unbounded reachability.

    Mirrors the checker's precomputation: prob-0 states (those that
    cannot reach the target) are eliminated first — leaving them in
    would make the fixpoint system singular, which Jacobi/Gauss-Seidel
    rightly refuse.
    """
    from repro.dtmc import backward_reachable

    target = chain.label_vector(target_label)
    can_reach = backward_reachable(chain, np.nonzero(target)[0].tolist())
    unknown = np.array(
        sorted(set(can_reach) - set(np.nonzero(target)[0].tolist())),
        dtype=np.int64,
    )
    matrix = chain.transition_matrix
    a = matrix[unknown][:, unknown]
    b = np.asarray(matrix[unknown][:, np.nonzero(target)[0]].sum(axis=1)).ravel()
    return a, b, unknown


class TestAgainstDirectSolver:
    @pytest.mark.parametrize("solver", SOLVERS, ids=lambda s: s.__name__)
    def test_reachability_system(self, solver):
        chain = knuth_yao_die()
        a, b, _ = until_system(chain, "done")
        direct = sparse_linalg.spsolve(
            (sparse.identity(a.shape[0]) - a).tocsc(), b
        )
        iterative = solver(a, b, tolerance=1e-14)
        assert np.allclose(iterative, direct, atol=1e-10)

    @pytest.mark.parametrize("solver", SOLVERS, ids=lambda s: s.__name__)
    def test_gamblers_ruin_values(self, solver):
        chain = gamblers_ruin(n=4, p=0.5)
        a, b, unknown = until_system(chain, "win")
        x = solver(a, b, tolerance=1e-14)
        values = {chain.states[s]: v for s, v in zip(unknown, x)}
        # Known closed form: P(win from i) = i/4 for the fair game.
        for i in (1, 2, 3):
            assert values[i] == pytest.approx(i / 4, abs=1e-9)

    @pytest.mark.parametrize("solver", SOLVERS, ids=lambda s: s.__name__)
    def test_warm_start(self, solver):
        chain = knuth_yao_die()
        a, b, _ = until_system(chain, "done")
        exact = solver(a, b, tolerance=1e-14)
        warm = solver(a, b, tolerance=1e-14, x0=exact.copy())
        assert np.allclose(warm, exact)


class TestFailureModes:
    @pytest.mark.parametrize("solver", SOLVERS, ids=lambda s: s.__name__)
    def test_iteration_budget_respected(self, solver):
        # A system contracting extremely slowly (rho ~= 1 - 1e-9) with
        # the slowness on the off-diagonal, so diagonal division does
        # not shortcut it.
        a = sparse.csr_matrix(
            np.array([[0.0, 1.0 - 1e-9], [1.0 - 1e-9, 0.0]])
        )
        with pytest.raises(SolverError, match="converge"):
            solver(a, np.array([1e-9, 1e-9]), max_iterations=10)

    @pytest.mark.parametrize(
        "solver", [jacobi_solve, gauss_seidel_solve], ids=lambda s: s.__name__
    )
    def test_singular_diagonal_rejected(self, solver):
        a = sparse.csr_matrix(np.array([[1.0]]))
        with pytest.raises(SolverError, match="singular"):
            solver(a, np.array([0.0]))


@given(random_dtmcs(max_states=5))
@settings(max_examples=25, deadline=None)
def test_solvers_agree_on_random_until_systems(chain):
    """All three engines compute the same reachability probabilities."""
    a, b, _ = until_system(chain, "mark")
    if a.shape[0] == 0:
        return
    results = [solver(a, b, tolerance=1e-13) for solver in SOLVERS]
    for other in results[1:]:
        assert np.allclose(results[0], other, atol=1e-9)
