"""Run the doctests embedded in public docstrings.

The examples in the API documentation are executable; this module keeps
them honest.
"""

import doctest

import pytest

import repro.core.reductions.equivalence
import repro.pctl.checker
import repro.pctl.parser
import repro.symbolic.encode

MODULES = [
    repro.pctl.parser,
    repro.pctl.checker,
    repro.core.reductions.equivalence,
    repro.symbolic.encode,
]


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_module_doctests(module):
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0
    assert results.attempted > 0
