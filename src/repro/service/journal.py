"""Durable job journal: the coordinator's crash-recoverable memory.

The :class:`~repro.service.Coordinator` of PR 8 kept every job, lease
and merged result in RAM — one SIGKILL lost all in-flight sweeps even
though the workers and the :class:`~repro.store.ResultStore` survived.
:class:`JobJournal` closes that gap: a single sqlite file (stdlib
only, WAL + upsert, the store's own concurrency discipline) recording

* every submitted job — its opaque sweep-function envelope, encoded
  point list, retry spec, budgets and metadata, exactly as they
  arrived on the wire;
* every merged result and quarantine record, keyed by ``(job, grid
  index)`` with ``INSERT OR IGNORE`` — first-write-wins at the
  persistence layer, so double delivery (a reassigned lease completing
  twice, a replay racing a late worker) is idempotent by construction;
* terminal job states (done / cancelled), so replay skips them.

On restart the coordinator calls :meth:`replay`: each open job comes
back with its already-merged results, and the missing grid indices are
re-queued as fresh shard leases.  Because every point's value is a
deterministic function of its grid index (seed streams are spawned by
index before anything ships), a recovered sweep merges bit-identical
to an uninterrupted one.

The journal also owns the **boot epoch**: a monotone counter bumped by
:meth:`bump_epoch` at every coordinator start and stamped into worker
registrations.  Results carrying a pre-restart epoch are fenced off by
the coordinator — a worker that slept through a restart cannot write
into the new incarnation's merge under a recycled worker id.

Payloads here are the wire envelopes themselves (JSON-able dicts from
:func:`repro.service.wire.encode`), stored as canonical JSON text —
the journal never unpickles anything, mirroring the coordinator's
forward-only handling of job payloads.
"""

from __future__ import annotations

import json
import os
import sqlite3
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Tuple

__all__ = ["JOURNAL_SCHEMA_VERSION", "JournalError", "JournaledJob", "JobJournal"]

#: Bumped on any journal schema change; a mismatched file refuses to
#: open rather than silently replaying mis-shaped rows.
JOURNAL_SCHEMA_VERSION = 1


class JournalError(Exception):
    """A journal operation failed (schema mismatch, bad payload, ...)."""


@dataclass
class JournaledJob:
    """One open job as recovered by :meth:`JobJournal.replay`."""

    id: str
    fn: Dict[str, Any]
    retry: Dict[str, Any]
    points: List[Dict[str, Any]]
    created: float
    point_budget: Optional[float]
    shard_size: Optional[int]
    meta: Dict[str, Any] = field(default_factory=dict)
    results: Dict[int, Dict[str, Any]] = field(default_factory=dict)
    quarantined: Dict[int, Dict[str, Any]] = field(default_factory=dict)

    @property
    def missing(self) -> List[int]:
        """Grid indices with neither a result nor a quarantine record."""
        have = set(self.results) | set(self.quarantined)
        return [i for i in range(len(self.points)) if i not in have]

    def missing_ranges(self) -> List[Tuple[int, int]]:
        """Contiguous ``[start, stop)`` runs of missing indices — the
        shard ranges a replaying coordinator re-queues."""
        ranges: List[Tuple[int, int]] = []
        for index in self.missing:
            if ranges and ranges[-1][1] == index:
                ranges[-1] = (ranges[-1][0], index + 1)
            else:
                ranges.append((index, index + 1))
        return ranges


_SCHEMA = """
CREATE TABLE IF NOT EXISTS journal_meta (
    key   TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS jobs (
    id           TEXT PRIMARY KEY,
    fn           TEXT NOT NULL,
    retry        TEXT NOT NULL,
    points       TEXT NOT NULL,
    created      REAL NOT NULL,
    point_budget REAL,
    shard_size   INTEGER,
    meta         TEXT NOT NULL DEFAULT '{}',
    done         INTEGER NOT NULL DEFAULT 0,
    cancelled    INTEGER NOT NULL DEFAULT 0
);
CREATE TABLE IF NOT EXISTS results (
    job     TEXT NOT NULL,
    idx     INTEGER NOT NULL,
    payload TEXT NOT NULL,
    created REAL NOT NULL,
    PRIMARY KEY (job, idx)
);
CREATE TABLE IF NOT EXISTS quarantine (
    job     TEXT NOT NULL,
    idx     INTEGER NOT NULL,
    record  TEXT NOT NULL,
    created REAL NOT NULL,
    PRIMARY KEY (job, idx)
);
"""


class JobJournal:
    """Crash-recoverable job/result journal for one coordinator.

    Parameters
    ----------
    path:
        Filesystem path of the sqlite journal (created on first use).
    timeout:
        sqlite busy timeout in seconds, matching the store's default.

    Thread safety mirrors :class:`~repro.store.ResultStore`: one
    connection opened lazily with ``check_same_thread=False``, every
    write serialized behind an internal lock (the coordinator holds
    its own lock across calls anyway; the journal stays safe when
    driven standalone, e.g. from tests or tooling).
    """

    def __init__(
        self,
        path: "os.PathLike[str] | str",
        *,
        timeout: float = 30.0,
    ) -> None:
        self.path = os.fspath(path)
        self.timeout = timeout
        self._lock = threading.Lock()
        self._conn: Optional[sqlite3.Connection] = None

    # -- connection lifecycle ----------------------------------------------

    def _connection(self) -> sqlite3.Connection:
        if self._conn is None:
            conn = sqlite3.connect(
                self.path, timeout=self.timeout, check_same_thread=False
            )
            conn.execute("PRAGMA journal_mode=WAL")
            conn.execute("PRAGMA synchronous=NORMAL")
            conn.executescript(_SCHEMA)
            conn.execute(
                "INSERT OR IGNORE INTO journal_meta (key, value) VALUES (?, ?)",
                ("schema", str(JOURNAL_SCHEMA_VERSION)),
            )
            conn.execute(
                "INSERT OR IGNORE INTO journal_meta (key, value) VALUES (?, ?)",
                ("epoch", "0"),
            )
            conn.commit()
            stored = conn.execute(
                "SELECT value FROM journal_meta WHERE key = 'schema'"
            ).fetchone()[0]
            if int(stored) != JOURNAL_SCHEMA_VERSION:
                conn.close()
                raise JournalError(
                    f"{self.path}: journal schema v{stored} does not match"
                    f" this code's v{JOURNAL_SCHEMA_VERSION}"
                )
            self._conn = conn
        return self._conn

    def close(self) -> None:
        """Close the sqlite connection (reopened lazily on next use)."""
        with self._lock:
            if self._conn is not None:
                self._conn.close()
                self._conn = None

    def __enter__(self) -> "JobJournal":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # -- epoch fencing -----------------------------------------------------

    @property
    def epoch(self) -> int:
        """The current boot epoch (0 before the first bump)."""
        with self._lock:
            row = self._connection().execute(
                "SELECT value FROM journal_meta WHERE key = 'epoch'"
            ).fetchone()
            return int(row[0])

    def bump_epoch(self) -> int:
        """Advance and return the boot epoch (one bump per coordinator
        start); atomic under concurrent bumpers via an immediate
        transaction."""
        with self._lock:
            conn = self._connection()
            with conn:  # one atomic read-modify-write
                conn.execute("BEGIN IMMEDIATE")
                current = int(
                    conn.execute(
                        "SELECT value FROM journal_meta WHERE key = 'epoch'"
                    ).fetchone()[0]
                )
                conn.execute(
                    "UPDATE journal_meta SET value = ? WHERE key = 'epoch'",
                    (str(current + 1),),
                )
            return current + 1

    # -- recording ---------------------------------------------------------

    def record_submit(
        self,
        job_id: str,
        *,
        fn: Dict[str, Any],
        retry: Dict[str, Any],
        points: List[Dict[str, Any]],
        created: float,
        point_budget: Optional[float],
        shard_size: Optional[int],
        meta: Dict[str, Any],
    ) -> None:
        """Persist one submitted job before its id is handed out."""
        with self._lock:
            conn = self._connection()
            with conn:
                conn.execute(
                    "INSERT OR REPLACE INTO jobs (id, fn, retry, points,"
                    " created, point_budget, shard_size, meta)"
                    " VALUES (?, ?, ?, ?, ?, ?, ?, ?)",
                    (
                        job_id,
                        json.dumps(fn, separators=(",", ":")),
                        json.dumps(retry, separators=(",", ":")),
                        json.dumps(points, separators=(",", ":")),
                        created,
                        point_budget,
                        shard_size,
                        json.dumps(meta, separators=(",", ":"), default=repr),
                    ),
                )

    def record_results(
        self, job_id: str, results: Iterable[Tuple[int, Dict[str, Any]]]
    ) -> None:
        """Persist merged results; ``INSERT OR IGNORE`` keyed by
        ``(job, index)`` makes double delivery idempotent — the first
        write wins here exactly as it does in the in-memory merge."""
        rows = [
            (job_id, index, json.dumps(payload, separators=(",", ":")), time.time())
            for index, payload in results
        ]
        if not rows:
            return
        with self._lock:
            conn = self._connection()
            with conn:
                conn.executemany(
                    "INSERT OR IGNORE INTO results (job, idx, payload, created)"
                    " VALUES (?, ?, ?, ?)",
                    rows,
                )

    def record_quarantine(
        self, job_id: str, index: int, record: Dict[str, Any]
    ) -> None:
        """Persist one quarantined point (first write wins)."""
        with self._lock:
            conn = self._connection()
            with conn:
                conn.execute(
                    "INSERT OR IGNORE INTO quarantine (job, idx, record, created)"
                    " VALUES (?, ?, ?, ?)",
                    (
                        job_id,
                        index,
                        json.dumps(record, separators=(",", ":")),
                        time.time(),
                    ),
                )

    def _set_flag(self, job_id: str, column: str) -> None:
        with self._lock:
            conn = self._connection()
            with conn:
                conn.execute(
                    f"UPDATE jobs SET {column} = 1 WHERE id = ?", (job_id,)
                )

    def record_done(self, job_id: str) -> None:
        """Mark a job complete; :meth:`replay` will skip it."""
        self._set_flag(job_id, "done")

    def record_cancelled(self, job_id: str) -> None:
        """Mark a job cancelled; :meth:`replay` will skip it."""
        self._set_flag(job_id, "cancelled")

    # -- recovery ----------------------------------------------------------

    def replay(self) -> List[JournaledJob]:
        """Every open (not done, not cancelled) job with its merged
        results and quarantines, oldest first — the coordinator's
        restart worklist."""
        with self._lock:
            conn = self._connection()
            jobs: List[JournaledJob] = []
            for row in conn.execute(
                "SELECT id, fn, retry, points, created, point_budget,"
                " shard_size, meta FROM jobs"
                " WHERE done = 0 AND cancelled = 0 ORDER BY created, id"
            ):
                jobs.append(
                    JournaledJob(
                        id=row[0],
                        fn=json.loads(row[1]),
                        retry=json.loads(row[2]),
                        points=json.loads(row[3]),
                        created=row[4],
                        point_budget=row[5],
                        shard_size=row[6],
                        meta=json.loads(row[7]),
                    )
                )
            by_id = {job.id: job for job in jobs}
            for job_id, index, payload in conn.execute(
                "SELECT job, idx, payload FROM results"
            ):
                if job_id in by_id:
                    by_id[job_id].results[index] = json.loads(payload)
            for job_id, index, record in conn.execute(
                "SELECT job, idx, record FROM quarantine"
            ):
                if job_id in by_id:
                    by_id[job_id].quarantined[index] = json.loads(record)
            return jobs

    def prune(self) -> int:
        """Drop finished/cancelled jobs and their rows; returns the
        number of jobs removed (replay never sees them anyway — this
        just keeps long-lived journals small)."""
        with self._lock:
            conn = self._connection()
            with conn:
                closed = [
                    row[0]
                    for row in conn.execute(
                        "SELECT id FROM jobs WHERE done = 1 OR cancelled = 1"
                    )
                ]
                for job_id in closed:
                    conn.execute("DELETE FROM results WHERE job = ?", (job_id,))
                    conn.execute(
                        "DELETE FROM quarantine WHERE job = ?", (job_id,)
                    )
                    conn.execute("DELETE FROM jobs WHERE id = ?", (job_id,))
            return len(closed)

    # -- introspection -----------------------------------------------------

    def stats(self) -> Dict[str, Any]:
        """Aggregate journal view (surfaced by ``/healthz``)."""
        with self._lock:
            conn = self._connection()
            total, open_jobs = conn.execute(
                "SELECT COUNT(*), SUM(done = 0 AND cancelled = 0) FROM jobs"
            ).fetchone()
            results = conn.execute("SELECT COUNT(*) FROM results").fetchone()[0]
            epoch = int(
                conn.execute(
                    "SELECT value FROM journal_meta WHERE key = 'epoch'"
                ).fetchone()[0]
            )
            return {
                "path": self.path,
                "epoch": epoch,
                "jobs": total,
                "jobs_open": int(open_jobs or 0),
                "results": results,
            }
