"""The sweep worker: pull leases, compute through the fabric, stream back.

One worker process (``repro-zoo worker --connect HOST:PORT``) runs the
loop: register with the coordinator, poll for a shard lease, decode
the job's sweep function, run every point through the *existing*
fault-tolerant fabric (:func:`repro.engine.sweep._run_point`, so
:class:`~repro.resilience.RetryPolicy` attempts and exception capture
behave exactly as they do in a local sweep), stream the encoded
results back, repeat.  While a shard computes, a daemon heartbeat
thread keeps telling the coordinator "still alive" — the lease reaper
only reassigns work when those heartbeats stop (the worker died) or a
shipped :class:`~repro.resilience.DeadlinePolicy` budget blows (the
worker hung).

Determinism: a worker adds nothing to the computation — the sweep
function already carries its per-point seed streams spawned by grid
index — so the merged sweep is bit-identical to the serial path no
matter which worker ran which lease, or how often leases moved.

The worker *outlives the coordinator*: a connection-refused poll, a
coordinator restart, or a ``reregister`` directive (unknown worker id
or a stale boot epoch after a restart) all feed a jittered
exponential-backoff reconnect/re-register loop driven by a
:class:`~repro.resilience.RetryPolicy` — the worker keeps polling,
re-registers under the new epoch, and resumes pulling leases without
manual intervention.  Only an *application-level* refusal (salt or
protocol mismatch) or an exhausted reconnect budget
(:class:`~repro.service.wire.ServiceUnavailable`) ends the process.

The worker exits cleanly on Ctrl-C / SIGTERM (deregistering first) and
*hard* (``os._exit``) when the coordinator orders it to die — the
over-the-wire chaos kill used by the fault-injection tests.
"""

from __future__ import annotations

import os
import signal
import socket
import threading
import time
from typing import Any, Dict, Optional

from ..resilience.policies import RetryPolicy
from .wire import (
    PROTOCOL_VERSION,
    RemoteError,
    ServiceUnavailable,
    WireError,
    decode,
    encode_result,
    request,
)

__all__ = ["Worker", "run_worker", "DEFAULT_RECONNECT"]

#: Reconnect budget workers (and ``repro-zoo worker``) default to:
#: ~10 attempts with jittered exponential backoff capped at 2 s —
#: generously covers a coordinator restart without hammering it.
DEFAULT_RECONNECT = RetryPolicy(
    max_attempts=10, backoff=0.05, backoff_factor=2.0, max_backoff=2.0,
    jitter=0.25,
)


class Worker:
    """The lease-pulling loop; :func:`run_worker` is the CLI shape.

    Parameters
    ----------
    connect:
        Coordinator address, ``"HOST:PORT"``.
    name:
        Free-form worker name for ``/stats`` (default ``host:pid``).
    poll:
        Idle re-poll interval when the coordinator has no work; the
        coordinator's suggested interval (its heartbeat) wins when
        longer.
    salt:
        Cache-key salt to register under (default: this code's store
        salt) — must match the coordinator's or registration fails.
    reconnect:
        :class:`~repro.resilience.RetryPolicy` (or a bare attempt
        count) for the reconnect/re-register loop; ``None`` disables
        reconnection (one transport failure at registration is fatal —
        the PR 8 behaviour, kept for tests).
    """

    def __init__(
        self,
        connect: str,
        *,
        name: Optional[str] = None,
        poll: float = 0.2,
        salt: Optional[str] = None,
        reconnect: "RetryPolicy | int | None" = DEFAULT_RECONNECT,
    ) -> None:
        from ..store.result_store import _default_salt

        self.connect = connect
        self.name = name or f"{socket.gethostname()}:{os.getpid()}"
        self.poll = poll
        self.salt = salt if salt is not None else _default_salt()
        self.reconnect = RetryPolicy.coerce(reconnect)
        self.worker_id: Optional[str] = None
        self.epoch: Optional[int] = None
        self.heartbeat_interval = 1.0
        self.shards_done = 0
        self.points_done = 0
        self.registrations = 0
        self._stop = threading.Event()

    # -- protocol steps ----------------------------------------------------

    def register(self) -> str:
        reply = request(
            self.connect,
            {
                "type": "register",
                "protocol": PROTOCOL_VERSION,
                "salt": self.salt,
                "name": self.name,
                "pid": os.getpid(),
                "host": socket.gethostname(),
            },
        )
        self.worker_id = reply["worker"]
        self.epoch = reply.get("epoch")
        self.heartbeat_interval = float(reply.get("heartbeat", 1.0))
        self.registrations += 1
        return self.worker_id

    def reregister(self) -> Optional[str]:
        """Register under the reconnect budget's backoff schedule.

        Retries transport failures (connection refused while the
        coordinator restarts, corrupt frames, timeouts) with the
        jittered exponential backoff of ``self.reconnect``; an
        application-level refusal (:class:`RemoteError` — wrong salt,
        wrong protocol) is fatal immediately.  Returns the new worker
        id, or ``None`` when the worker was stopped while waiting;
        raises :class:`ServiceUnavailable` once the budget is spent.
        """
        if self.reconnect is None:
            return self.register()
        last: Optional[BaseException] = None
        for attempt in range(1, self.reconnect.max_attempts + 1):
            if self._stop.is_set():
                return None
            try:
                return self.register()
            except RemoteError:
                raise  # salt/protocol mismatch: retrying cannot help
            except (WireError, OSError) as exc:
                last = exc
                if attempt >= self.reconnect.max_attempts:
                    break
                delay = self.reconnect.delay(self.name, attempt) or self.poll
                if self._stop.wait(delay):
                    return None
        raise ServiceUnavailable(
            f"coordinator at {self.connect} unreachable after"
            f" {self.reconnect.max_attempts} registration attempts:"
            f" {last}"
        ) from last

    def _die(self) -> None:
        # A coordinator-ordered death is intentionally *hard*: the chaos
        # harness uses it to model SIGKILL, so no cleanup may run.
        os._exit(13)

    def _heartbeat_loop(self) -> None:
        while not self._stop.wait(self.heartbeat_interval):
            try:
                reply = request(
                    self.connect,
                    {
                        "type": "heartbeat",
                        "worker": self.worker_id,
                        "epoch": self.epoch,
                    },
                    timeout=self.heartbeat_interval * 4,
                )
            except (WireError, OSError):
                continue  # coordinator briefly unreachable: keep trying
            if reply.get("type") == "die":
                self._die()
            # A "reregister" directive (coordinator restarted under a new
            # epoch) is handled by the main loop's next lease poll; the
            # heartbeat thread just keeps beating.

    def _compute_shard(self, shard: Dict[str, Any]) -> Dict[str, Any]:
        """Run one leased shard through the local fabric."""
        from ..engine.sweep import _run_point
        from ..resilience import RetryPolicy

        fn = decode(shard["fn"])
        retry_spec = shard.get("retry") or None
        retry = decode(retry_spec) if retry_spec else None
        if retry is not None and not isinstance(retry, RetryPolicy):
            retry = RetryPolicy.coerce(retry)
        points = [decode(p) for p in shard["points"]]
        results = [_run_point(fn, point, retry) for point in points]
        self.shards_done += 1
        self.points_done += len(results)
        return {
            "type": "result",
            "worker": self.worker_id,
            "epoch": self.epoch,
            "job": shard["job"],
            "lease": shard["lease"],
            "start": shard["start"],
            "stop": shard["stop"],
            "results": [encode_result(r) for r in results],
        }

    # -- the loop ----------------------------------------------------------

    def run(self, *, max_shards: Optional[int] = None) -> int:
        """Register and serve leases until told to stop.

        ``max_shards`` bounds the number of shards served (tests);
        returns the number served.  Coordinator restarts are ridden
        out: transport failures back off under the reconnect budget,
        and ``reregister`` directives (new boot epoch, forgotten
        worker id) trigger a fresh registration mid-loop.
        """
        if self.reregister() is None:
            return 0
        beat = threading.Thread(
            target=self._heartbeat_loop, daemon=True, name="worker-heartbeat"
        )
        beat.start()
        served = 0
        failures = 0  # consecutive transport failures on the lease poll
        try:
            while not self._stop.is_set():
                if max_shards is not None and served >= max_shards:
                    break
                try:
                    reply = request(
                        self.connect,
                        {
                            "type": "lease",
                            "worker": self.worker_id,
                            "epoch": self.epoch,
                        },
                    )
                except RemoteError:
                    # Application-level rejection of a lease poll: our
                    # registration is somehow invalid — start over.
                    if self.reregister() is None:
                        break
                    continue
                except (WireError, OSError) as exc:
                    failures += 1
                    if (
                        self.reconnect is not None
                        and failures >= self.reconnect.max_attempts
                    ):
                        raise ServiceUnavailable(
                            f"coordinator at {self.connect} unreachable"
                            f" after {failures} consecutive poll failures:"
                            f" {exc}"
                        ) from exc
                    delay = self.poll
                    if self.reconnect is not None:
                        delay = (
                            self.reconnect.delay(self.name, failures)
                            or self.poll
                        )
                    if self._stop.wait(delay):
                        break
                    continue
                failures = 0
                kind = reply.get("type")
                if kind == "die":
                    self._die()
                if kind == "reregister":
                    if self.reregister() is None:
                        break
                    continue
                if kind != "shard":
                    time.sleep(max(self.poll, float(reply.get("poll", 0.0))))
                    continue
                result = self._compute_shard(reply)
                served += 1
                try:
                    ack = request(self.connect, result)
                except (WireError, OSError):
                    # Undeliverable results are simply lost: the lease
                    # expires and the shard re-runs deterministically.
                    continue
                if ack.get("type") == "die":
                    self._die()
                if ack.get("type") == "reregister":
                    # The coordinator restarted between lease and
                    # result: the result is dropped (the new boot will
                    # re-lease the shard, which recomputes bit-
                    # identically) and we rejoin under the new epoch.
                    if self.reregister() is None:
                        break
        finally:
            self._stop.set()
            self._deregister()
        return served

    def stop(self) -> None:
        self._stop.set()

    def _deregister(self) -> None:
        if self.worker_id is None:
            return
        try:
            request(
                self.connect,
                {"type": "deregister", "worker": self.worker_id},
                timeout=2.0,
            )
        except (WireError, OSError):
            pass  # the coordinator may already be gone


def run_worker(
    connect: str,
    *,
    name: Optional[str] = None,
    poll: float = 0.2,
    max_shards: Optional[int] = None,
    reconnect: "RetryPolicy | int | None" = DEFAULT_RECONNECT,
) -> int:
    """``repro-zoo worker`` entry point: run one worker until Ctrl-C.

    Returns a process exit code: 0 on clean shutdown (Ctrl-C, SIGTERM,
    coordinator shutdown), 2 when registration was refused (salt or
    protocol mismatch), 3 when the coordinator stayed unreachable
    through the whole reconnect budget.
    """
    worker = Worker(connect, name=name, poll=poll, reconnect=reconnect)

    def _graceful(signum: int, frame: Any) -> None:
        worker.stop()
        raise KeyboardInterrupt

    try:
        signal.signal(signal.SIGTERM, _graceful)
    except ValueError:  # not the main thread (embedded worker)
        pass
    try:
        worker.run(max_shards=max_shards)
    except KeyboardInterrupt:
        return 0
    except ServiceUnavailable as exc:
        print(f"worker: {exc}", flush=True)
        return 3
    except WireError as exc:
        print(f"worker: {exc}", flush=True)
        return 2
    return 0
