"""The sweep worker: pull leases, compute through the fabric, stream back.

One worker process (``repro-zoo worker --connect HOST:PORT``) runs the
loop: register with the coordinator, poll for a shard lease, decode
the job's sweep function, run every point through the *existing*
fault-tolerant fabric (:func:`repro.engine.sweep._run_point`, so
:class:`~repro.resilience.RetryPolicy` attempts and exception capture
behave exactly as they do in a local sweep), stream the encoded
results back, repeat.  While a shard computes, a daemon heartbeat
thread keeps telling the coordinator "still alive" — the lease reaper
only reassigns work when those heartbeats stop (the worker died) or a
shipped :class:`~repro.resilience.DeadlinePolicy` budget blows (the
worker hung).

Determinism: a worker adds nothing to the computation — the sweep
function already carries its per-point seed streams spawned by grid
index — so the merged sweep is bit-identical to the serial path no
matter which worker ran which lease, or how often leases moved.

The worker exits cleanly on Ctrl-C / SIGTERM (deregistering first) and
*hard* (``os._exit``) when the coordinator orders it to die — the
over-the-wire chaos kill used by the fault-injection tests.
"""

from __future__ import annotations

import os
import signal
import socket
import threading
import time
from typing import Any, Dict, Optional

from .wire import PROTOCOL_VERSION, WireError, decode, encode_result, request

__all__ = ["Worker", "run_worker"]


class Worker:
    """The lease-pulling loop; :func:`run_worker` is the CLI shape.

    Parameters
    ----------
    connect:
        Coordinator address, ``"HOST:PORT"``.
    name:
        Free-form worker name for ``/stats`` (default ``host:pid``).
    poll:
        Idle re-poll interval when the coordinator has no work; the
        coordinator's suggested interval (its heartbeat) wins when
        longer.
    salt:
        Cache-key salt to register under (default: this code's store
        salt) — must match the coordinator's or registration fails.
    """

    def __init__(
        self,
        connect: str,
        *,
        name: Optional[str] = None,
        poll: float = 0.2,
        salt: Optional[str] = None,
    ) -> None:
        from ..store.result_store import _default_salt

        self.connect = connect
        self.name = name or f"{socket.gethostname()}:{os.getpid()}"
        self.poll = poll
        self.salt = salt if salt is not None else _default_salt()
        self.worker_id: Optional[str] = None
        self.heartbeat_interval = 1.0
        self.shards_done = 0
        self.points_done = 0
        self._stop = threading.Event()

    # -- protocol steps ----------------------------------------------------

    def register(self) -> str:
        reply = request(
            self.connect,
            {
                "type": "register",
                "protocol": PROTOCOL_VERSION,
                "salt": self.salt,
                "name": self.name,
                "pid": os.getpid(),
                "host": socket.gethostname(),
            },
        )
        self.worker_id = reply["worker"]
        self.heartbeat_interval = float(reply.get("heartbeat", 1.0))
        return self.worker_id

    def _die(self) -> None:
        # A coordinator-ordered death is intentionally *hard*: the chaos
        # harness uses it to model SIGKILL, so no cleanup may run.
        os._exit(13)

    def _heartbeat_loop(self) -> None:
        while not self._stop.wait(self.heartbeat_interval):
            try:
                reply = request(
                    self.connect,
                    {"type": "heartbeat", "worker": self.worker_id},
                    timeout=self.heartbeat_interval * 4,
                )
            except (WireError, OSError):
                continue  # coordinator briefly unreachable: keep trying
            if reply.get("type") == "die":
                self._die()

    def _compute_shard(self, shard: Dict[str, Any]) -> Dict[str, Any]:
        """Run one leased shard through the local fabric."""
        from ..engine.sweep import _run_point
        from ..resilience import RetryPolicy

        fn = decode(shard["fn"])
        retry_spec = shard.get("retry") or None
        retry = decode(retry_spec) if retry_spec else None
        if retry is not None and not isinstance(retry, RetryPolicy):
            retry = RetryPolicy.coerce(retry)
        points = [decode(p) for p in shard["points"]]
        results = [_run_point(fn, point, retry) for point in points]
        self.shards_done += 1
        self.points_done += len(results)
        return {
            "type": "result",
            "worker": self.worker_id,
            "job": shard["job"],
            "lease": shard["lease"],
            "start": shard["start"],
            "stop": shard["stop"],
            "results": [encode_result(r) for r in results],
        }

    # -- the loop ----------------------------------------------------------

    def run(self, *, max_shards: Optional[int] = None) -> int:
        """Register and serve leases until told to stop.

        ``max_shards`` bounds the number of shards served (tests);
        returns the number served.
        """
        self.register()
        beat = threading.Thread(
            target=self._heartbeat_loop, daemon=True, name="worker-heartbeat"
        )
        beat.start()
        served = 0
        try:
            while not self._stop.is_set():
                if max_shards is not None and served >= max_shards:
                    break
                try:
                    reply = request(
                        self.connect,
                        {"type": "lease", "worker": self.worker_id},
                    )
                except (WireError, OSError):
                    time.sleep(self.poll)
                    continue
                kind = reply.get("type")
                if kind == "die":
                    self._die()
                if kind != "shard":
                    time.sleep(max(self.poll, float(reply.get("poll", 0.0))))
                    continue
                result = self._compute_shard(reply)
                served += 1
                try:
                    ack = request(self.connect, result)
                except (WireError, OSError):
                    # Undeliverable results are simply lost: the lease
                    # expires and the shard re-runs deterministically.
                    continue
                if ack.get("type") == "die":
                    self._die()
        finally:
            self._stop.set()
            self._deregister()
        return served

    def stop(self) -> None:
        self._stop.set()

    def _deregister(self) -> None:
        if self.worker_id is None:
            return
        try:
            request(
                self.connect,
                {"type": "deregister", "worker": self.worker_id},
                timeout=2.0,
            )
        except (WireError, OSError):
            pass  # the coordinator may already be gone


def run_worker(
    connect: str,
    *,
    name: Optional[str] = None,
    poll: float = 0.2,
    max_shards: Optional[int] = None,
) -> int:
    """``repro-zoo worker`` entry point: run one worker until Ctrl-C.

    Returns a process exit code: 0 on clean shutdown (Ctrl-C, SIGTERM,
    coordinator shutdown), 2 when registration was refused (salt or
    protocol mismatch).
    """
    worker = Worker(connect, name=name, poll=poll)

    def _graceful(signum: int, frame: Any) -> None:
        worker.stop()
        raise KeyboardInterrupt

    try:
        signal.signal(signal.SIGTERM, _graceful)
    except ValueError:  # not the main thread (embedded worker)
        pass
    try:
        worker.run(max_shards=max_shards)
    except KeyboardInterrupt:
        return 0
    except WireError as exc:
        print(f"worker: {exc}", flush=True)
        return 2
    return 0
