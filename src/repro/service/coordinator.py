"""The shard coordinator: leases, heartbeats, and crash recovery.

The coordinator is the networked twin of the process executor's wave
loop (:func:`repro.engine.sweep._process_sweep`): a sweep job arrives
as a pickled sweep function plus an encoded point list, is chunked
into contiguous *shard leases*, and workers pull leases, compute them
through the ordinary fabric (`_run_point`, so retry policies apply
in-worker unchanged), and stream results back.  Results merge by
global grid index, so the assembled sweep is bit-identical to the
serial path no matter which worker ran what, how leases were split,
or how many workers died along the way.

Fault model — exactly the process executor's, stretched over TCP:

* a worker that stops heartbeating (SIGKILL, OOM, unplugged host) has
  its leases *reassigned*: the reaper requeues them for the next
  worker, splitting multi-point ranges in half so repeated deaths
  bisect down to a poisoned point;
* a single-point lease that keeps dying is *quarantined* after
  ``quarantine_strikes`` expiries — the client receives a
  :class:`~repro.engine.SweepResult` carrying the failure reason and
  strike count, every other point's value untouched;
* a hung-but-heartbeating worker is caught by the per-point budget of
  a :class:`~repro.resilience.DeadlinePolicy` shipped with the job,
  mirroring the pool-level budget of the process path;
* ordinary exceptions never reach this layer: ``_run_point`` captures
  them into the result inside the worker.

The coordinator itself never unpickles job payloads — it forwards
opaque envelopes between client and workers.  All state lives behind
one lock; requests are short (dict bookkeeping), so a plain
:class:`socketserver.ThreadingTCPServer` front door is plenty even
with dozens of workers polling.

Durability — the coordinator itself may die.  Given a
:class:`~repro.service.journal.JobJournal`, every submitted job,
merged result and quarantine record is persisted as it happens; a
restarted coordinator *replays* the journal, re-queues only the
missing grid ranges, and resumes merging — bit-identical to an
uninterrupted run, because point values are deterministic in their
grid index and both the in-memory merge and the journal are
first-write-wins.  Each boot is stamped with a monotone **epoch**
(journal-backed when available): workers carry their registration
epoch on every message, and anything from a pre-restart epoch is
answered with a ``reregister`` directive instead of being merged — a
worker that slept through a restart can never write stale results
into the new incarnation under a recycled worker id.
"""

from __future__ import annotations

import os
import socket
import socketserver
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple, Union

from .journal import JobJournal
from .wire import (
    PROTOCOL_VERSION,
    WireError,
    recv_message,
    send_message,
)

__all__ = ["Coordinator", "CoordinatorServer", "WorkerInfo", "Job"]


def _service_salt() -> str:
    from ..store.result_store import _default_salt

    return _default_salt()


@dataclass
class WorkerInfo:
    """One registered worker, as the coordinator sees it."""

    id: str
    name: str
    pid: int
    host: str
    registered: float
    last_seen: float
    shards_done: int = 0
    points_done: int = 0
    kill_requested: bool = False
    deregistered: bool = False

    def snapshot(self, liveness: float, now: float) -> Dict[str, Any]:
        return {
            "id": self.id,
            "name": self.name,
            "pid": self.pid,
            "host": self.host,
            "alive": self.alive(liveness, now),
            "last_seen_age": round(now - self.last_seen, 3),
            "shards_done": self.shards_done,
            "points_done": self.points_done,
        }

    def alive(self, liveness: float, now: float) -> bool:
        return not self.deregistered and now - self.last_seen <= liveness


@dataclass
class _Lease:
    id: str
    worker: str
    start: int
    stop: int
    granted: float
    deadline: Optional[float]  # wall-clock cutoff from the job's budget


@dataclass
class Job:
    """One submitted sweep: payloads in, merged encoded results out."""

    id: str
    fn: Dict[str, Any]  # opaque envelope, forwarded to workers
    retry: Dict[str, Any]
    points: List[Dict[str, Any]]  # encoded, sliced into leases
    created: float
    point_budget: Optional[float]  # seconds per point (deadline x attempts)
    shard_size: Optional[int] = None  # as submitted (journal replay re-shards with it)
    meta: Dict[str, Any] = field(default_factory=dict)
    pending: List[Tuple[int, int]] = field(default_factory=list)
    leases: Dict[str, _Lease] = field(default_factory=dict)
    results: Dict[int, Dict[str, Any]] = field(default_factory=dict)
    quarantined: Dict[int, Dict[str, Any]] = field(default_factory=dict)
    strikes: Dict[int, int] = field(default_factory=dict)
    cancelled: bool = False
    on_done: Optional[Callable[["Job"], None]] = None

    @property
    def total(self) -> int:
        return len(self.points)

    @property
    def completed(self) -> int:
        return len(self.results) + len(self.quarantined)

    @property
    def done(self) -> bool:
        return self.completed >= self.total

    @property
    def status(self) -> str:
        if self.cancelled:
            return "cancelled"
        if self.done:
            return "done"
        if self.leases:
            return "running"
        return "queued" if self.pending else "running"


class Coordinator:
    """Lease bookkeeping + fault recovery; serve it via
    :class:`CoordinatorServer` or drive :meth:`handle` directly.

    Parameters
    ----------
    salt:
        Cache-key salt workers must match at registration (default: the
        result store's versioned salt) — a fleet can only merge results
        that would land under the same store keys.
    heartbeat:
        Interval (seconds) workers are told to heartbeat at.
    liveness:
        Silence threshold after which a worker counts as dead and its
        leases are reassigned (default ``3 x heartbeat``).
    lease_grace:
        Extra seconds added to per-point budgets for dispatch overhead.
    quarantine_strikes:
        Expiries of a *single-point* lease before the point is
        quarantined instead of requeued (the bisection endpoint).
    journal:
        Optional :class:`~repro.service.journal.JobJournal` (or a path
        to create one at).  With a journal, jobs/results/quarantines
        persist as they happen, the boot epoch is journal-backed, and
        open jobs are replayed on construction — the coordinator
        survives its own SIGKILL.
    epoch:
        Explicit boot epoch (tests).  Defaults to the journal's
        bumped epoch, or wall-clock seconds without one — monotone
        across realistic restarts either way.
    """

    def __init__(
        self,
        *,
        salt: Optional[str] = None,
        heartbeat: float = 1.0,
        liveness: Optional[float] = None,
        lease_grace: float = 5.0,
        quarantine_strikes: int = 2,
        journal: Optional[Union[JobJournal, "os.PathLike[str]", str]] = None,
        epoch: Optional[int] = None,
    ) -> None:
        self.salt = salt if salt is not None else _service_salt()
        self.heartbeat = heartbeat
        self.liveness = liveness if liveness is not None else 3.0 * heartbeat
        self.lease_grace = lease_grace
        self.quarantine_strikes = quarantine_strikes
        self.workers: Dict[str, WorkerInfo] = {}
        self.jobs: Dict[str, Job] = {}
        self.started = time.time()
        self._lock = threading.Lock()
        self._counter = 0
        self._shutting_down = False
        if journal is not None and not isinstance(journal, JobJournal):
            journal = JobJournal(journal)
        self.journal = journal
        if epoch is not None:
            self.epoch = int(epoch)
        elif journal is not None:
            self.epoch = journal.bump_epoch()
        else:
            self.epoch = int(time.time())
        if journal is not None:
            self._replay(journal)

    def _replay(self, journal: JobJournal) -> None:
        """Rebuild open jobs from the journal: merged results kept,
        missing grid ranges re-queued as fresh shard leases."""
        for record in journal.replay():
            job = Job(
                id=record.id,
                fn=record.fn,
                retry=record.retry,
                points=record.points,
                created=record.created,
                point_budget=record.point_budget,
                shard_size=record.shard_size,
                meta=dict(record.meta, replayed_epoch=self.epoch),
                results=dict(record.results),
                quarantined=dict(record.quarantined),
            )
            job.pending = self._reshard(record.missing_ranges(), job)
            self.jobs[job.id] = job
            if job.done:  # crashed between the last merge and record_done
                journal.record_done(job.id)
            # Keep fresh ids clear of replayed ones ("job-7" and later
            # "w3"/"lease-9" share one counter).
            suffix = job.id.rsplit("-", 1)[-1]
            if suffix.isdigit():
                self._counter = max(self._counter, int(suffix))

    def _reshard(
        self, ranges: List[Tuple[int, int]], job: Job
    ) -> List[Tuple[int, int]]:
        """Chop replayed missing runs back into lease-sized shards
        (the submitted ``shard_size`` when given, else ~quarters), so
        one long untouched run does not become one giant lease."""
        size = job.shard_size
        if size is None or size < 1:
            size = max(1, -(-len(job.points) // 4))
        shards: List[Tuple[int, int]] = []
        for start, stop in ranges:
            shards.extend(
                (lo, min(lo + size, stop)) for lo in range(start, stop, size)
            )
        return shards

    # -- id / shard helpers ------------------------------------------------

    def _next_id(self, prefix: str) -> str:
        self._counter += 1
        return f"{prefix}{self._counter}"

    def _live_workers(self, now: Optional[float] = None) -> int:
        now = now if now is not None else time.time()
        return sum(
            1 for w in self.workers.values() if w.alive(self.liveness, now)
        )

    def _shards(self, count: int, shard_size: Optional[int]) -> List[Tuple[int, int]]:
        """Contiguous index ranges, ~4 shards per live worker by default
        (the process executor's sizing, with the pool size replaced by
        whoever is registered right now)."""
        if shard_size is None:
            workers = max(1, self._live_workers())
            shard_size = max(1, -(-count // (4 * workers)))
        if shard_size < 1:
            raise WireError(f"shard_size must be >= 1, got {shard_size}")
        return [
            (start, min(start + shard_size, count))
            for start in range(0, count, shard_size)
        ]

    # -- submission / collection (client side) -----------------------------

    def submit(
        self,
        fn: Dict[str, Any],
        points: List[Dict[str, Any]],
        *,
        retry: Optional[Dict[str, Any]] = None,
        shard_size: Optional[int] = None,
        point_budget: Optional[float] = None,
        meta: Optional[Dict[str, Any]] = None,
        on_done: Optional[Callable[[Job], None]] = None,
    ) -> str:
        """Enqueue one sweep job; returns its id.

        With a journal the job is persisted *before* the id is handed
        out — a client holding a job id can always :meth:`collect` it,
        even across a coordinator crash and restart.
        """
        with self._lock:
            if self._shutting_down:
                raise WireError("coordinator is shutting down")
            job = Job(
                id=self._next_id("job-"),
                fn=fn,
                retry=retry or {},
                points=list(points),
                created=time.time(),
                point_budget=point_budget,
                shard_size=shard_size,
                meta=dict(meta or {}),
                on_done=on_done,
            )
            job.pending = self._shards(len(points), shard_size)
            self.jobs[job.id] = job
            if self.journal is not None:
                self.journal.record_submit(
                    job.id,
                    fn=job.fn,
                    retry=job.retry,
                    points=job.points,
                    created=job.created,
                    point_budget=job.point_budget,
                    shard_size=job.shard_size,
                    meta=job.meta,
                )
            return job.id

    def collect(self, job_id: str) -> Dict[str, Any]:
        """Snapshot of one job: status plus every encoded result so far."""
        with self._lock:
            job = self.jobs.get(job_id)
            if job is None:
                raise WireError(f"unknown job {job_id!r}")
            return {
                "type": "job",
                "job": job.id,
                "status": job.status,
                "done": job.done,
                "total": job.total,
                "completed": job.completed,
                "meta": dict(job.meta),
                "results": {str(i): r for i, r in job.results.items()},
                "quarantined": {
                    str(i): q for i, q in job.quarantined.items()
                },
            }

    def cancel(self, job_id: str) -> Dict[str, Any]:
        """Cancel a job: pending shards dropped, partials kept."""
        with self._lock:
            job = self.jobs.get(job_id)
            if job is None:
                raise WireError(f"unknown job {job_id!r}")
            job.cancelled = True
            job.pending = []
            job.leases = {}
            if self.journal is not None:
                self.journal.record_cancelled(job_id)
        return self.collect(job_id)

    # -- fault recovery ----------------------------------------------------

    def reap(self, now: Optional[float] = None) -> int:
        """Expire leases of dead workers and blown budgets; returns the
        number of leases reassigned or quarantined.

        Run periodically by :class:`CoordinatorServer`; callable
        directly (with a synthetic ``now``) from tests.
        """
        now = now if now is not None else time.time()
        reaped = 0
        with self._lock:
            for job in self.jobs.values():
                for lease in list(job.leases.values()):
                    worker = self.workers.get(lease.worker)
                    dead = worker is None or not worker.alive(
                        self.liveness, now
                    )
                    overrun = lease.deadline is not None and now > lease.deadline
                    if not (dead or overrun):
                        continue
                    reason = (
                        f"WorkerLost: worker {lease.worker} stopped"
                        f" heartbeating while holding"
                        f" [{lease.start}:{lease.stop})"
                        if dead
                        else f"DeadlineExceeded: lease [{lease.start}:"
                        f"{lease.stop}) still running after its"
                        f" {lease.deadline - lease.granted:.6g}s budget"
                    )
                    del job.leases[lease.id]
                    self._requeue(job, lease.start, lease.stop, reason)
                    reaped += 1
        return reaped

    def _requeue(self, job: Job, start: int, stop: int, reason: str) -> None:
        """The bisection protocol: strike every implicated point, split
        multi-point ranges, quarantine a repeatedly-fatal single point."""
        for index in range(start, stop):
            job.strikes[index] = job.strikes.get(index, 0) + 1
        if stop - start == 1:
            if job.strikes[start] >= self.quarantine_strikes:
                job.quarantined[start] = {
                    "error": reason,
                    "attempts": job.strikes[start],
                }
                if self.journal is not None:
                    self.journal.record_quarantine(
                        job.id, start, job.quarantined[start]
                    )
                self._maybe_finish(job)
            else:  # one more chance on a (hopefully) healthier worker
                job.pending.insert(0, (start, stop))
        else:
            mid = (start + stop) // 2
            job.pending[:0] = [(start, mid), (mid, stop)]

    def _maybe_finish(self, job: Job) -> None:
        # Called with the lock held; the callback runs without it so a
        # store-banking frontend callback cannot deadlock the server.
        if not job.done:
            return
        if self.journal is not None:
            self.journal.record_done(job.id)
        if job.on_done is not None:
            callback, job.on_done = job.on_done, None
            threading.Thread(
                target=callback, args=(job,), daemon=True,
                name=f"job-done-{job.id}",
            ).start()

    # -- message handling (worker + client side) ---------------------------

    def handle(self, message: Dict[str, Any]) -> Dict[str, Any]:
        """Dispatch one wire message to its handler; error replies for
        anything malformed, so a confused peer cannot wedge the server."""
        handlers = {
            "register": self._on_register,
            "heartbeat": self._on_heartbeat,
            "lease": self._on_lease,
            "result": self._on_result,
            "deregister": self._on_deregister,
            "submit": self._on_submit,
            "collect": self._on_collect,
            "cancel": self._on_cancel,
            "stats": self._on_stats,
            "kill": self._on_kill,
            "shutdown": self._on_shutdown,
        }
        handler = handlers.get(message.get("type"))
        if handler is None:
            return {
                "type": "error",
                "error": f"unknown message type {message.get('type')!r}",
            }
        try:
            return handler(message)
        except WireError as exc:
            return {"type": "error", "error": str(exc)}

    def _on_register(self, message: Dict[str, Any]) -> Dict[str, Any]:
        if message.get("protocol") != PROTOCOL_VERSION:
            raise WireError(
                f"protocol mismatch: coordinator speaks v{PROTOCOL_VERSION},"
                f" worker speaks v{message.get('protocol')}"
            )
        if message.get("salt") != self.salt:
            raise WireError(
                f"salt mismatch: coordinator caches under {self.salt!r},"
                f" worker under {message.get('salt')!r} — results would not"
                f" be cache-compatible"
            )
        now = time.time()
        with self._lock:
            worker = WorkerInfo(
                id=self._next_id("w"),
                name=message.get("name") or "",
                pid=int(message.get("pid", 0)),
                host=str(message.get("host", "")),
                registered=now,
                last_seen=now,
            )
            self.workers[worker.id] = worker
        return {
            "type": "welcome",
            "worker": worker.id,
            "heartbeat": self.heartbeat,
            "salt": self.salt,
            "protocol": PROTOCOL_VERSION,
            "epoch": self.epoch,
        }

    def _touch(self, worker_id: str) -> Optional[WorkerInfo]:
        worker = self.workers.get(worker_id)
        if worker is not None:
            worker.last_seen = time.time()
        return worker

    def _fence(self, message: Dict[str, Any]) -> Optional[Dict[str, Any]]:
        """Reject messages from a pre-restart epoch.

        Worker ids are per-boot counters, so after a restart an old
        worker's id may *collide* with a fresh registration's — the
        epoch stamp is what tells a recycled id from a live one.  A
        stale peer is told to re-register (its reconnect loop handles
        that); its message is never merged or trusted.
        """
        stamped = message.get("epoch")
        if stamped is not None and int(stamped) == self.epoch:
            return None
        return {
            "type": "reregister",
            "reason": (
                f"stale epoch {stamped!r} (coordinator is at {self.epoch})"
                " — results from a previous incarnation are fenced off"
            ),
            "epoch": self.epoch,
        }

    def _directive(self, worker: Optional[WorkerInfo]) -> Optional[Dict[str, Any]]:
        """A pending order for this worker, if any."""
        if worker is None:
            # Unknown id (e.g. coordinator restarted): re-register.
            return {
                "type": "reregister",
                "reason": "unknown worker — re-register",
                "epoch": self.epoch,
            }
        if worker.kill_requested or self._shutting_down:
            worker.deregistered = True
            return {"type": "die", "reason": "coordinator ordered shutdown"}
        return None

    def _on_heartbeat(self, message: Dict[str, Any]) -> Dict[str, Any]:
        with self._lock:
            fenced = self._fence(message)
            if fenced is not None:
                return fenced
            worker = self._touch(str(message.get("worker")))
            return self._directive(worker) or {"type": "ok"}

    def _on_deregister(self, message: Dict[str, Any]) -> Dict[str, Any]:
        with self._lock:
            worker = self.workers.get(str(message.get("worker")))
            if worker is not None:
                worker.deregistered = True
        return {"type": "ok"}

    def _on_lease(self, message: Dict[str, Any]) -> Dict[str, Any]:
        with self._lock:
            fenced = self._fence(message)
            if fenced is not None:
                return fenced
            worker = self._touch(str(message.get("worker")))
            directive = self._directive(worker)
            if directive is not None:
                return directive
            now = time.time()
            for job in sorted(self.jobs.values(), key=lambda j: j.created):
                if job.cancelled or not job.pending:
                    continue
                start, stop = job.pending.pop(0)
                deadline = None
                if job.point_budget is not None:
                    deadline = now + job.point_budget * (stop - start) + self.lease_grace
                lease = _Lease(
                    id=self._next_id("lease-"),
                    worker=worker.id,
                    start=start,
                    stop=stop,
                    granted=now,
                    deadline=deadline,
                )
                job.leases[lease.id] = lease
                return {
                    "type": "shard",
                    "job": job.id,
                    "lease": lease.id,
                    "start": start,
                    "stop": stop,
                    "fn": job.fn,
                    "retry": job.retry,
                    "points": job.points[start:stop],
                }
            return {"type": "idle", "poll": self.heartbeat}

    def _on_result(self, message: Dict[str, Any]) -> Dict[str, Any]:
        with self._lock:
            fenced = self._fence(message)
            if fenced is not None:
                return fenced  # stale epoch: nothing of this is merged
            worker = self._touch(str(message.get("worker")))
            job = self.jobs.get(str(message.get("job")))
            if job is None:
                raise WireError(f"unknown job {message.get('job')!r}")
            job.leases.pop(str(message.get("lease")), None)
            start = int(message["start"])
            results = message.get("results", [])
            accepted = []
            for offset, encoded in enumerate(results):
                index = start + offset
                # First write wins: a reassigned lease may complete
                # twice, but point values are deterministic, so either
                # copy is the same answer; quarantined slots stay put.
                if index not in job.results and index not in job.quarantined:
                    job.results[index] = encoded
                    accepted.append((index, encoded))
            if self.journal is not None and accepted:
                self.journal.record_results(job.id, accepted)
            if worker is not None:
                worker.shards_done += 1
                worker.points_done += len(results)
            self._maybe_finish(job)
            directive = self._directive(worker)
            return directive or {"type": "ok"}

    def _on_submit(self, message: Dict[str, Any]) -> Dict[str, Any]:
        job_id = self.submit(
            message["fn"],
            message.get("points", []),
            retry=message.get("retry"),
            shard_size=message.get("shard_size"),
            point_budget=message.get("point_budget"),
            meta=message.get("meta"),
        )
        return {"type": "submitted", "job": job_id}

    def _on_collect(self, message: Dict[str, Any]) -> Dict[str, Any]:
        return self.collect(str(message.get("job")))

    def _on_cancel(self, message: Dict[str, Any]) -> Dict[str, Any]:
        return self.cancel(str(message.get("job")))

    def _on_stats(self, message: Dict[str, Any]) -> Dict[str, Any]:
        return {"type": "stats", **self.stats()}

    def _on_kill(self, message: Dict[str, Any]) -> Dict[str, Any]:
        """Chaos directive: order one worker (or any) to die on its next
        poll — the over-the-wire half of the fault injector."""
        target = message.get("worker") or "any"
        now = time.time()
        with self._lock:
            victims = [
                w
                for w in self.workers.values()
                if w.alive(self.liveness, now) and not w.kill_requested
            ]
            if target != "any":
                victims = [w for w in victims if w.id == target]
            if not victims:
                raise WireError(f"no live worker matches {target!r}")
            victim = victims[0]
            victim.kill_requested = True
        return {"type": "ok", "worker": victim.id}

    def _on_shutdown(self, message: Dict[str, Any]) -> Dict[str, Any]:
        with self._lock:
            self._shutting_down = True
        return {"type": "ok"}

    # -- introspection -----------------------------------------------------

    def stats(self) -> Dict[str, Any]:
        """Aggregate worker/job view (the ``/stats`` payload core)."""
        now = time.time()
        with self._lock:
            workers = [
                w.snapshot(self.liveness, now)
                for w in self.workers.values()
                if not w.deregistered
            ]
            jobs: Dict[str, int] = {}
            for job in self.jobs.values():
                jobs[job.status] = jobs.get(job.status, 0) + 1
            return {
                "uptime": round(now - self.started, 3),
                "salt": self.salt,
                "epoch": self.epoch,
                "journal": (
                    self.journal.stats() if self.journal is not None else None
                ),
                "workers": workers,
                "workers_alive": sum(1 for w in workers if w["alive"]),
                "jobs": jobs,
                "jobs_total": len(self.jobs),
            }


class _Handler(socketserver.BaseRequestHandler):
    def handle(self) -> None:  # one framed request, one framed reply
        try:
            message = recv_message(self.request)
            reply = self.server.coordinator.handle(message)  # type: ignore[attr-defined]
            send_message(self.request, reply)
        except (WireError, OSError):
            pass  # a peer that vanished mid-frame is the reaper's problem


class _TCPServer(socketserver.ThreadingTCPServer):
    allow_reuse_address = True
    daemon_threads = True


class CoordinatorServer:
    """A :class:`Coordinator` behind a threaded TCP front door.

    >>> server = CoordinatorServer(port=0)   # ephemeral port
    >>> server.start()
    >>> server.address  # doctest: +ELLIPSIS
    '127.0.0.1:...'
    >>> server.stop()
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        coordinator: Optional[Coordinator] = None,
        reap_interval: Optional[float] = None,
        **coordinator_kwargs: Any,
    ) -> None:
        self.coordinator = coordinator or Coordinator(**coordinator_kwargs)
        self._server = _TCPServer((host, port), _Handler)
        self._server.coordinator = self.coordinator  # type: ignore[attr-defined]
        self.host, self.port = self._server.server_address[:2]
        self.reap_interval = (
            reap_interval
            if reap_interval is not None
            else max(0.05, self.coordinator.heartbeat / 2.0)
        )
        self._threads: List[threading.Thread] = []
        self._stop = threading.Event()

    @property
    def address(self) -> str:
        return f"{self.host}:{self.port}"

    def start(self) -> "CoordinatorServer":
        serve = threading.Thread(
            target=self._server.serve_forever,
            kwargs={"poll_interval": 0.05},
            daemon=True,
            name="coordinator-server",
        )
        reap = threading.Thread(
            target=self._reap_loop, daemon=True, name="coordinator-reaper"
        )
        self._threads = [serve, reap]
        for thread in self._threads:
            thread.start()
        return self

    def _reap_loop(self) -> None:
        while not self._stop.wait(self.reap_interval):
            self.coordinator.reap()

    def stop(self, *, shutdown_workers: bool = True) -> None:
        """Stop serving; by default live workers are told to exit on
        their next heartbeat (no orphaned worker processes)."""
        if shutdown_workers:
            self.coordinator._on_shutdown({})
        self._stop.set()
        self._server.shutdown()
        self._server.server_close()

    def __enter__(self) -> "CoordinatorServer":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()


def free_port(host: str = "127.0.0.1") -> int:
    """An OS-assigned free TCP port (for tests and ``--port 0``)."""
    with socket.socket() as sock:
        sock.bind((host, 0))
        return sock.getsockname()[1]
