"""Async HTTP front-end: guarantees served straight from the store.

``repro-zoo serve`` runs this: a stdlib-only :mod:`asyncio` HTTP
server (hand-rolled GET parsing — no new dependencies) in front of the
:class:`~repro.service.Coordinator` and an optional
:class:`~repro.store.ResultStore`.  Four endpoints:

``GET /guarantee?family=...&formula=...&<param>=<value>``
    The serving path.  The query names a zoo scenario exactly as
    ``zoo.sweep`` would (family + parameter overrides + checking
    backend); the store is consulted under *the same* versioned cache
    key a local sweep uses.  A hit answers ``200`` immediately —
    without touching the engine.  A miss is enqueued as a single-point
    sweep job on the worker fleet and answered ``202`` with a
    ``/jobs/<id>`` polling URL; when the job lands, the result is
    banked, so the next query for that guarantee is a warm hit.
``GET /jobs/<id>``
    Job status and (decoded) results.
``GET /healthz``
    Liveness: ``ok`` when every registered worker heartbeats,
    ``degraded`` when some died, with the per-worker verdicts.
``GET /stats``
    Store stats + coordinator worker/job stats in one payload.
``GET /history?family=...&<param>=<value>``
    Survey history: the banked trajectory of one guarantee across
    code versions (store salts), straight from the store — the JSON
    twin of the dashboard (see :mod:`repro.history`).
``GET /dashboard``
    Self-contained HTML dashboard (inline SVG sparklines, no JS):
    per-family guarantee trends plus the ``/stats`` + ``/healthz``
    snapshot.

The computed value of a ``/guarantee`` miss is bit-identical to a
serial ``zoo.sweep`` of the same single-point grid: the job's seed
stream is spawned by grid index exactly as ``sweep_check`` spawns it,
and the sweep function is the same module-level ``_check_point``.

Graceful degradation: every coordinator submit goes through a
:class:`~repro.resilience.CircuitBreaker`.  When the coordinator is
down (or shutting down) the breaker opens — warm store hits keep
answering ``200``, but misses answer ``503`` with a ``Retry-After``
hint instead of stacking failures on a dead dependency.  A bounded
in-flight job table (``max_inflight``) sheds excess misses with
``429``; ``/healthz`` reports the breaker state, the coordinator's
boot epoch, and its journal, so a probe can watch a restarted
coordinator go degraded -> ok.
"""

from __future__ import annotations

import asyncio
import functools
import json
import threading
import time
from dataclasses import asdict, is_dataclass
from typing import Any, Dict, List, Optional, Tuple
from urllib.parse import parse_qsl, urlsplit

import numpy as np

from ..engine.config import SmcConfig
from ..engine.sweep import CHECK_BACKENDS, _check_point
from ..resilience.policies import CircuitBreaker
from .coordinator import Coordinator, Job
from .wire import decode_result

__all__ = ["Frontend", "FrontendServer", "ROUTES"]

_STATUS_TEXT = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    429: "Too Many Requests",
    503: "Service Unavailable",
}

#: ``/guarantee`` query keys that are service knobs, not family params.
_RESERVED = (
    "family", "formula", "backend", "theta",
    "epsilon", "delta", "seed", "reduce", "tolerance",
)

#: Machine-readable route reference — the single source of truth the
#: generated section of ``docs/http-api.md`` is rendered from
#: (``scripts/gen_cli_docs.py``); keep in sync with :meth:`Frontend.route`.
ROUTES = [
    {
        "path": "/guarantee",
        "query": "family (required), formula, backend, theta, epsilon,"
                 " delta, seed, reduce, plus any family parameter",
        "statuses": {
            200: "warm store hit, value served without touching the engine",
            202: "miss enqueued as a single-point job; poll /jobs/<id>",
            400: "unknown family/backend, or sprt without theta",
            429: "in-flight job table full; retry after Retry-After",
            503: "circuit breaker open (coordinator down); warm hits"
                 " still answer 200, retry after Retry-After",
        },
        "summary": "Serve one guarantee from the store, or compute it"
                   " on the worker fleet and bank it.",
    },
    {
        "path": "/jobs/<id>",
        "query": "none",
        "statuses": {
            200: "job snapshot: status, per-point results, quarantines",
            404: "unknown job id",
        },
        "summary": "Poll a /guarantee miss (or any coordinator job).",
    },
    {
        "path": "/healthz",
        "query": "none",
        "statuses": {
            200: "status 'ok' or 'degraded' (dead workers, open circuit"
                 " breaker, or unfinished jobs with no live worker), with"
                 " per-worker verdicts, breaker state, coordinator boot"
                 " epoch, and journal stats",
        },
        "summary": "Fleet liveness probe.",
    },
    {
        "path": "/stats",
        "query": "none",
        "statuses": {
            200: "store stats + coordinator worker/job stats + hit/miss"
                 " counters",
        },
        "summary": "One aggregate service snapshot.",
    },
    {
        "path": "/history",
        "query": "family (required), formula, backend, reduce, plus any"
                 " family parameter",
        "statuses": {
            200: "the guarantee's banked trajectory across salts, in"
                 " insertion order",
            400: "unknown family/backend",
            503: "front-end running without a result store",
        },
        "summary": "Survey history of one guarantee across code"
                   " versions (store salts), as JSON.",
    },
    {
        "path": "/dashboard",
        "query": "tolerance (relative drift tolerance, default 1e-6)",
        "statuses": {
            200: "self-contained HTML dashboard (inline SVG sparklines)",
            400: "tolerance is not a float",
        },
        "summary": "Per-family guarantee trend dashboard plus the"
                   " /stats and /healthz snapshot.",
    },
]


def _literal(text: str) -> Any:
    """Parse a query value exactly as the zoo CLI parses ``-p``."""
    import ast

    try:
        return ast.literal_eval(text)
    except (ValueError, SyntaxError):
        return text


def _public_value(value: Any) -> Any:
    """A JSON-shaped rendering of one check value for HTTP bodies."""
    if is_dataclass(value) and not isinstance(value, type):
        return json.loads(json.dumps(asdict(value), default=repr))
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    return repr(value)


class _BadRequest(ValueError):
    """Routed straight to a 400 response."""


class _Degraded(RuntimeError):
    """Coordinator unavailable (breaker open): 503 + Retry-After."""

    def __init__(self, message: str, retry_after: float) -> None:
        super().__init__(message)
        self.retry_after = retry_after


class _Overloaded(RuntimeError):
    """In-flight job table full: 429 + Retry-After."""

    def __init__(self, message: str, retry_after: float) -> None:
        super().__init__(message)
        self.retry_after = retry_after


class Frontend:
    """Route handling, separated from the socket plumbing for tests.

    Parameters
    ----------
    coordinator:
        The lease coordinator misses are enqueued on.
    store:
        Optional :class:`~repro.store.ResultStore`; without one every
        ``/guarantee`` is a miss and nothing is banked.
    breaker:
        The :class:`~repro.resilience.CircuitBreaker` around
        coordinator submits; open means misses answer ``503`` (warm
        hits still serve) until the cooldown's half-open probe
        succeeds.
    max_inflight:
        Bound on distinct in-flight ``/guarantee`` jobs; excess misses
        are shed with ``429`` instead of flooding the fleet.
    """

    def __init__(
        self,
        coordinator: Coordinator,
        store: Any = None,
        *,
        breaker: Optional[CircuitBreaker] = None,
        max_inflight: int = 64,
    ) -> None:
        if max_inflight < 1:
            raise ValueError(f"max_inflight must be >= 1, got {max_inflight}")
        self.coordinator = coordinator
        self.store = store
        self.breaker = breaker if breaker is not None else CircuitBreaker()
        self.max_inflight = max_inflight
        self.started = time.time()
        self.hits = 0
        self.misses = 0
        self.shed = 0  # misses answered 429/503 instead of enqueued
        # In-flight /guarantee jobs by store key, so identical queries
        # racing each other share one job instead of one each.
        self._inflight: Dict[str, str] = {}
        self._lock = threading.Lock()

    # -- /guarantee --------------------------------------------------------

    def _parse_guarantee(
        self, params: Dict[str, str], *, require_theta: bool = True
    ) -> Dict[str, Any]:
        from ..zoo.registry import ZooError, get_model

        family = params.get("family")
        if not family:
            raise _BadRequest("missing required query parameter 'family'")
        try:
            fam = get_model(family)
        except ZooError as exc:
            raise _BadRequest(str(exc)) from None
        backend = params.get("backend", "exact")
        if backend not in CHECK_BACKENDS:
            raise _BadRequest(
                f"unknown backend {backend!r};"
                f" choose from {', '.join(CHECK_BACKENDS)}"
            )
        theta = float(params["theta"]) if "theta" in params else None
        if backend == "sprt" and theta is None and require_theta:
            raise _BadRequest("backend=sprt requires theta=<threshold>")
        point = {
            key: _literal(value)
            for key, value in params.items()
            if key not in _RESERVED
        }
        return {
            "family": family,
            "formula": params.get("formula") or fam.default_property,
            "backend": backend,
            "theta": theta,
            "reduce": _literal(params.get("reduce", "True")) not in (False, 0, "false"),
            "smc": SmcConfig(
                epsilon=float(params.get("epsilon", 0.01)),
                delta=float(params.get("delta", 0.05)),
                seed=int(params.get("seed", 0)),
            ),
            "point": point,
        }

    def _identity(self, query: Dict[str, Any]) -> Tuple[Any, Any]:
        """(scenario id, config fingerprint) — the store-key pieces of
        one parsed query, exactly as ``zoo.sweep`` would compute them."""
        from ..store import check_fingerprint
        from ..zoo.sweep import _point_store_key

        scenario_id = _point_store_key(
            query["point"],
            family=query["family"],
            base_params=None,
            reduce=query["reduce"],
        )
        fingerprint = check_fingerprint(
            query["backend"], smc=query["smc"], solver=None,
            theta=query["theta"],
        )
        return scenario_id, fingerprint

    def _store_lookup(self, query: Dict[str, Any]) -> Tuple[Any, Any, Any]:
        """(scenario id, config fingerprint, hit-or-None) for one query."""
        scenario_id, fingerprint = self._identity(query)
        if self.store is None:
            return scenario_id, fingerprint, None
        hit = self.store.get(
            scenario_id, query["formula"], query["backend"], fingerprint
        )
        return scenario_id, fingerprint, hit

    def _enqueue_guarantee(
        self, query: Dict[str, Any], scenario_id: Any, fingerprint: Any
    ) -> str:
        """Submit the miss as a single-point sweep job; returns job id.

        The job is exactly the single-point grid ``sweep_check`` would
        run: same module-level sweep function, same index-spawned seed
        stream — so the result is bit-identical and cache-compatible.

        Degradation surface: a query already in flight shares its job
        unconditionally; a *new* job first has to pass the circuit
        breaker (:class:`_Degraded` -> 503 when open) and the
        ``max_inflight`` bound (:class:`_Overloaded` -> 429), and a
        submit failure (coordinator shutting down / gone) records a
        breaker failure before surfacing as :class:`_Degraded`.
        """
        from ..zoo.sweep import _build_point
        from .wire import encode

        run = functools.partial(
            _check_point,
            build=functools.partial(
                _build_point,
                family=query["family"],
                base_params=None,
                reduce=query["reduce"],
            ),
            formula=query["formula"],
            backend=query["backend"],
            theta=query["theta"],
            config=query["smc"],
            solver=None,
            seeds=np.random.SeedSequence(query["smc"].seed).spawn(1),
        )
        key = json.dumps(
            [scenario_id, query["formula"], query["backend"], fingerprint],
            sort_keys=True, default=repr,
        )
        with self._lock:
            inflight = self._inflight.get(key)
            if inflight is not None:
                job = self.coordinator.jobs.get(inflight)
                if job is not None and not job.done and not job.cancelled:
                    return inflight
            if not self.breaker.allow():
                snapshot = self.breaker.snapshot()
                remaining = snapshot.get("cooldown_remaining")
                raise _Degraded(
                    "coordinator unavailable (circuit breaker"
                    f" {snapshot['state']}); warm hits still serve",
                    retry_after=float(remaining or self.breaker.cooldown),
                )
            if len(self._inflight) >= self.max_inflight:
                raise _Overloaded(
                    f"{len(self._inflight)} guarantee jobs already in"
                    f" flight (max_inflight={self.max_inflight})",
                    retry_after=1.0,
                )
            try:
                job_id = self.coordinator.submit(
                    encode(run),
                    [encode((0, query["point"]))],
                    meta={
                        "kind": "guarantee",
                        "family": query["family"],
                        "formula": query["formula"],
                        "backend": query["backend"],
                    },
                    on_done=functools.partial(
                        self._bank, query=query, scenario_id=scenario_id,
                        fingerprint=fingerprint, key=key,
                    ),
                )
            except Exception as exc:  # noqa: BLE001 - any submit failure
                self.breaker.record_failure()
                raise _Degraded(
                    f"coordinator rejected the job: {exc}",
                    retry_after=self.breaker.cooldown,
                ) from exc
            self.breaker.record_success()
            self._inflight[key] = job_id
            return job_id

    def _bank(
        self, job: Job, *, query: Dict[str, Any], scenario_id: Any,
        fingerprint: Any, key: str,
    ) -> None:
        """Job-done callback: write the value under the sweep's key."""
        with self._lock:
            self._inflight.pop(key, None)
        if self.store is None or not job.results:
            return
        result = decode_result(job.results[0])
        if result.ok:
            self.store.put(
                scenario_id,
                query["formula"],
                result.value,
                backend=query["backend"],
                config=fingerprint,
                seconds=result.seconds,
                extra={"family": query["family"]},
            )

    def guarantee(self, params: Dict[str, str]) -> Tuple[int, Dict[str, Any]]:
        query = self._parse_guarantee(params)
        scenario_id, fingerprint, hit = self._store_lookup(query)
        body = {
            "family": query["family"],
            "formula": query["formula"],
            "backend": query["backend"],
            "point": query["point"],
        }
        if hit is not None:
            self.hits += 1
            body.update(
                value=_public_value(hit.value),
                cached=True,
                seconds=hit.seconds,
                samples=hit.samples,
            )
            return 200, body
        self.misses += 1
        try:
            job_id = self._enqueue_guarantee(query, scenario_id, fingerprint)
        except _Degraded as exc:
            self.shed += 1
            body.update(
                cached=False,
                error=str(exc),
                retry_after=round(exc.retry_after, 3),
            )
            return 503, body
        except _Overloaded as exc:
            self.shed += 1
            body.update(
                cached=False,
                error=str(exc),
                retry_after=round(exc.retry_after, 3),
            )
            return 429, body
        body.update(cached=False, job=job_id, poll=f"/jobs/{job_id}")
        return 202, body

    # -- /history & /dashboard ---------------------------------------------

    def history(self, params: Dict[str, str]) -> Tuple[int, Dict[str, Any]]:
        """Survey history of one guarantee across salts, as JSON.

        The query names a scenario exactly as ``/guarantee`` does; the
        response is every banked value of that ``(scenario, formula,
        backend)`` identity across *all* salts (code versions) in
        insertion order, each point carrying its salt, config
        fingerprint, provenance and validation warnings.  Purely a
        store read — never touches the engine or the fleet.
        """
        if self.store is None:
            return 503, {
                "error": "no result store configured"
                " (run `repro-zoo serve --store PATH`)"
            }
        query = self._parse_guarantee(params, require_theta=False)
        scenario_id, _fingerprint = self._identity(query)
        points = self.store.history(
            scenario_id, query["formula"], query["backend"]
        )
        return 200, {
            "family": query["family"],
            "formula": query["formula"],
            "backend": query["backend"],
            "point": query["point"],
            "count": len(points),
            "salts": list(dict.fromkeys(p.salt for p in points)),
            "points": [
                {
                    "salt": p.salt,
                    "value": _public_value(p.value),
                    "metric": p.metric,
                    "seconds": p.seconds,
                    "samples": p.samples,
                    "created": p.created,
                    "config": p.config,
                    "warnings": [_public_value(w) for w in p.warnings],
                }
                for p in points
            ],
        }

    def dashboard(self, params: Dict[str, str]) -> Tuple[int, str]:
        """The self-contained HTML trend dashboard (see :mod:`repro.history`)."""
        from ..history import render_dashboard, trend_reports
        from ..store.history import DRIFT_TOLERANCE

        try:
            tolerance = float(params.get("tolerance", DRIFT_TOLERANCE))
        except ValueError:
            raise _BadRequest("tolerance must be a float") from None
        reports = (
            trend_reports(self.store, tolerance=tolerance)
            if self.store is not None
            else []
        )
        _, stats = self.stats_payload()
        _, health = self.healthz()
        return 200, render_dashboard(reports, stats=stats, health=health)

    # -- /jobs/<id> --------------------------------------------------------

    def job(self, job_id: str) -> Tuple[int, Dict[str, Any]]:
        from .wire import WireError

        try:
            snapshot = self.coordinator.collect(job_id)
        except WireError:
            return 404, {"error": f"unknown job {job_id!r}"}
        results = []
        for text in sorted(snapshot["results"], key=int):
            result = decode_result(snapshot["results"][text])
            results.append(
                {
                    "index": int(text),
                    "ok": result.ok,
                    "error": result.error,
                    "value": _public_value(result.value),
                    "seconds": result.seconds,
                    "attempts": result.attempts,
                }
            )
        for text in sorted(snapshot["quarantined"], key=int):
            record = snapshot["quarantined"][text]
            results.append(
                {
                    "index": int(text),
                    "ok": False,
                    "error": record.get("error"),
                    "value": None,
                    "attempts": record.get("attempts", 1),
                }
            )
        return 200, {
            "job": snapshot["job"],
            "status": snapshot["status"],
            "done": snapshot["done"],
            "total": snapshot["total"],
            "completed": snapshot["completed"],
            "meta": snapshot["meta"],
            "results": sorted(results, key=lambda r: r["index"]),
        }

    # -- /healthz & /stats -------------------------------------------------

    def healthz(self) -> Tuple[int, Dict[str, Any]]:
        stats = self.coordinator.stats()
        workers = stats["workers"]
        dead = [w for w in workers if not w["alive"]]
        breaker = self.breaker.snapshot()
        jobs = stats["jobs"]
        unfinished = jobs.get("queued", 0) + jobs.get("running", 0)
        # Degraded when anything needs attention: a worker stopped
        # heartbeating, the breaker is not closed (coordinator down or
        # still probing), or jobs wait with nobody to run them.
        degraded = bool(
            dead
            or breaker["state"] != CircuitBreaker.CLOSED
            or (unfinished and stats["workers_alive"] == 0)
        )
        return 200, {
            "status": "degraded" if degraded else "ok",
            "workers": len(workers),
            "workers_alive": stats["workers_alive"],
            "dead": dead,
            "jobs_unfinished": unfinished,
            "breaker": breaker,
            "epoch": stats["epoch"],
            "journal": stats["journal"],
        }

    def stats_payload(self) -> Tuple[int, Dict[str, Any]]:
        store_stats = None
        if self.store is not None:
            stats = self.store.stats()
            store_stats = {
                "path": stats.path,
                "salt": stats.salt,
                "entries": stats.entries,
                "families": stats.families,
                "backends": stats.backends,
                "compute_seconds": stats.compute_seconds,
                "total_hits": stats.total_hits,
                "db_bytes": stats.db_bytes,
            }
        return 200, {
            "uptime": round(time.time() - self.started, 3),
            "guarantee_hits": self.hits,
            "guarantee_misses": self.misses,
            "guarantee_shed": self.shed,
            "breaker": self.breaker.snapshot(),
            "store": store_stats,
            "coordinator": self.coordinator.stats(),
        }

    # -- routing -----------------------------------------------------------

    def route(self, method: str, target: str) -> Tuple[int, Any]:
        """Dispatch one request line; pure function of frontend state.

        Returns ``(status, payload)`` where the payload is a dict
        (serialized as JSON) for every route except ``/dashboard``,
        which returns the rendered HTML page as a string.
        """
        if method != "GET":
            return 400, {"error": f"only GET is served, not {method}"}
        parts = urlsplit(target)
        path = parts.path.rstrip("/") or "/"
        params = dict(parse_qsl(parts.query, keep_blank_values=True))
        try:
            if path == "/healthz":
                return self.healthz()
            if path == "/stats":
                return self.stats_payload()
            if path == "/guarantee":
                return self.guarantee(params)
            if path == "/history":
                return self.history(params)
            if path == "/dashboard":
                return self.dashboard(params)
            if path.startswith("/jobs/"):
                return self.job(path[len("/jobs/"):])
        except _BadRequest as exc:
            return 400, {"error": str(exc)}
        return 404, {"error": f"no route for {path!r}"}


class FrontendServer:
    """The asyncio HTTP server around a :class:`Frontend`.

    Handlers run the (fast, lock-guarded) route logic in the default
    thread-pool executor, so sqlite reads never stall the event loop.
    ``serve_forever`` blocks the calling thread (the CLI);
    ``start_background`` runs the loop in a daemon thread and returns
    once the socket is listening (tests, embedded serving).
    """

    def __init__(
        self,
        frontend: Frontend,
        host: str = "127.0.0.1",
        port: int = 8080,
    ) -> None:
        self.frontend = frontend
        self.host = host
        self.port = port
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._ready = threading.Event()
        self._stopping = threading.Event()

    @property
    def address(self) -> str:
        return f"{self.host}:{self.port}"

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            request_line = await asyncio.wait_for(reader.readline(), 10.0)
            if not request_line:
                return
            try:
                method, target, _ = request_line.decode("latin-1").split(None, 2)
            except ValueError:
                method, target = "", "/"
            while True:  # drain headers; GET bodies are ignored
                line = await asyncio.wait_for(reader.readline(), 10.0)
                if line in (b"\r\n", b"\n", b""):
                    break
            loop = asyncio.get_running_loop()
            status, payload = await loop.run_in_executor(
                None, self.frontend.route, method, target
            )
            # Routes answer dict payloads (JSON) or ready-rendered
            # text payloads (the HTML dashboard).
            if isinstance(payload, str):
                body = payload.encode("utf-8")
                content_type = "text/html; charset=utf-8"
            else:
                body = json.dumps(payload, indent=2, default=repr).encode("utf-8")
                content_type = "application/json"
            extra = ""
            if (
                status in (429, 503)
                and isinstance(payload, dict)
                and payload.get("retry_after") is not None
            ):
                seconds = max(1, int(-(-float(payload["retry_after"]) // 1)))
                extra = f"Retry-After: {seconds}\r\n"
            head = (
                f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'OK')}\r\n"
                f"Content-Type: {content_type}\r\n"
                f"Content-Length: {len(body)}\r\n"
                f"{extra}"
                f"Connection: close\r\n\r\n"
            ).encode("latin-1")
            writer.write(head + body)
            await writer.drain()
        except (asyncio.TimeoutError, ConnectionError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except ConnectionError:
                pass

    async def _serve(self) -> None:
        server = await asyncio.start_server(self._handle, self.host, self.port)
        self.port = server.sockets[0].getsockname()[1]
        self._ready.set()
        async with server:
            while not self._stopping.is_set():
                await asyncio.sleep(0.05)

    def serve_forever(self) -> None:
        """Run the server on this thread until interrupted."""
        try:
            asyncio.run(self._serve())
        except KeyboardInterrupt:
            pass

    def start_background(self) -> "FrontendServer":
        def _run() -> None:
            self._loop = asyncio.new_event_loop()
            asyncio.set_event_loop(self._loop)
            try:
                self._loop.run_until_complete(self._serve())
            finally:
                self._loop.close()

        self._thread = threading.Thread(
            target=_run, daemon=True, name="frontend-http"
        )
        self._thread.start()
        if not self._ready.wait(10.0):
            raise RuntimeError("frontend failed to start listening")
        return self

    def stop(self) -> None:
        self._stopping.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)

    def __enter__(self) -> "FrontendServer":
        return self.start_background()

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()
