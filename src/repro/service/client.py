"""Client side of ``executor="remote"``: submit, poll, merge.

:func:`remote_sweep` is what :func:`repro.engine.sweep` calls when a
sweep names the remote executor: the sweep function and point list are
shipped to a coordinator, workers chew through shard leases, and the
client polls until every global index is accounted for — as a decoded
:class:`~repro.engine.SweepResult` streamed back by a worker, or as a
quarantine record for a point that kept killing its workers.  The
merge is by grid index, so the returned list is bit-identical to the
serial path (per-point seed streams are already spawned by index; no
part of a point's computation depends on where it ran).

Ctrl-C cancels the job on the coordinator (workers finish their
current shard and go idle; nothing is orphaned) and raises
:class:`~repro.engine.SweepInterrupted` carrying every already-merged
result, so :func:`repro.engine.sweep_check` can bank the partials
before the interrupt propagates.

Every coordinator round trip goes through a
:class:`~repro.resilience.RetryPolicy`-driven retry loop
(:data:`DEFAULT_CLIENT_RETRY`): transient transport failures — a
refused connection while the coordinator restarts, a corrupt frame, a
reset — back off and retry, and only an exhausted budget surfaces as
the typed :class:`~repro.service.wire.ServiceUnavailable`.  An
application-level :class:`~repro.service.wire.RemoteError` (unknown
job, salt mismatch) is *never* retried.  The budget is sized to ride
through a coordinator crash + journal replay, so an in-flight
``executor="remote"`` sweep keeps polling straight across the restart.
"""

from __future__ import annotations

import time
from typing import Any, Dict, List, Optional, Sequence

from ..engine.sweep import SweepInterrupted, SweepResult
from ..resilience.policies import DeadlinePolicy, RetryPolicy
from .wire import (
    RemoteError,
    ServiceUnavailable,
    WireError,
    decode_result,
    encode,
    request,
)

__all__ = [
    "remote_sweep",
    "service_stats",
    "kill_worker",
    "call_with_retry",
    "DEFAULT_CLIENT_RETRY",
]

#: Retry budget for one coordinator round trip: ~18 s of jittered
#: exponential backoff, comfortably spanning a coordinator SIGKILL +
#: restart + journal replay.
DEFAULT_CLIENT_RETRY = RetryPolicy(
    max_attempts=10, backoff=0.1, backoff_factor=2.0, max_backoff=3.0,
    jitter=0.25,
)


def call_with_retry(
    connect: str,
    message: Dict[str, Any],
    *,
    retry: "RetryPolicy | int | None" = DEFAULT_CLIENT_RETRY,
    timeout: Optional[float] = 30.0,
) -> Dict[str, Any]:
    """One coordinator round trip under a retry budget.

    Transport failures (``ConnectionRefusedError``, resets, timeouts,
    corrupt frames) are retried with deterministic jittered backoff;
    :class:`RemoteError` propagates immediately (the coordinator *did*
    answer — retrying an application rejection cannot help).  When the
    budget is spent, the chain of failures collapses into one typed
    :class:`ServiceUnavailable`.
    """
    policy = RetryPolicy.coerce(retry)
    if policy is None:
        return request(connect, message, timeout=timeout)
    key = str(message.get("type", "request"))
    last: Optional[BaseException] = None
    for attempt in range(1, policy.max_attempts + 1):
        try:
            return request(connect, message, timeout=timeout)
        except RemoteError:
            raise
        except (WireError, OSError) as exc:
            last = exc
            if attempt >= policy.max_attempts:
                break
            time.sleep(policy.delay(key, attempt))
    raise ServiceUnavailable(
        f"coordinator at {connect} unreachable after"
        f" {policy.max_attempts} attempts ({key!r}): {last}"
    ) from last


def _merge(
    points: Sequence[Any], snapshot: Dict[str, Any]
) -> Dict[int, SweepResult]:
    """Decode one job snapshot into ``{index: SweepResult}``."""
    merged: Dict[int, SweepResult] = {}
    for text, encoded in snapshot.get("results", {}).items():
        merged[int(text)] = decode_result(encoded)
    for text, record in snapshot.get("quarantined", {}).items():
        index = int(text)
        merged[index] = SweepResult(
            point=points[index],
            value=None,
            seconds=0.0,
            error=record.get("error", "WorkerLost: lease expired"),
            attempts=int(record.get("attempts", 1)),
        )
    return merged


def remote_sweep(
    fn: Any,
    points: Sequence[Any],
    *,
    connect: str,
    shard_size: Optional[int] = None,
    retry: Optional[RetryPolicy] = None,
    deadline: Optional[DeadlinePolicy] = None,
    poll: float = 0.05,
    timeout: Optional[float] = None,
    meta: Optional[Dict[str, Any]] = None,
    connect_retry: "RetryPolicy | int | None" = DEFAULT_CLIENT_RETRY,
) -> List[SweepResult]:
    """Run one sweep on a worker fleet; blocks until merged.

    ``retry`` ships to the workers (in-worker attempts, exactly the
    process executor's contract); ``deadline`` becomes the per-point
    lease budget that catches hung-but-heartbeating workers.
    ``timeout`` bounds the whole sweep — on expiry the job is cancelled
    and a ``TimeoutError`` raised.  ``connect_retry`` is the *transport*
    budget for each coordinator round trip: polls ride through a
    coordinator restart, and only an exhausted budget raises
    :class:`ServiceUnavailable`.
    """
    points = list(points)
    if not points:
        return []
    attempts = retry.max_attempts if retry is not None else 1
    point_budget = (
        deadline.timeout * attempts + deadline.grace
        if deadline is not None
        else None
    )
    submitted = call_with_retry(
        connect,
        {
            "type": "submit",
            "fn": encode(fn),
            "retry": encode(retry) if retry is not None else None,
            "points": [encode(point) for point in points],
            "shard_size": shard_size,
            "point_budget": point_budget,
            "meta": meta or {},
        },
        retry=connect_retry,
    )
    job = submitted["job"]
    started = time.monotonic()
    snapshot: Dict[str, Any] = {}
    try:
        while True:
            snapshot = call_with_retry(
                connect, {"type": "collect", "job": job}, retry=connect_retry
            )
            if snapshot.get("done"):
                break
            if timeout is not None and time.monotonic() - started > timeout:
                call_with_retry(
                    connect,
                    {"type": "cancel", "job": job},
                    retry=connect_retry,
                )
                raise TimeoutError(
                    f"remote sweep {job} incomplete after {timeout:.6g}s"
                    f" ({snapshot.get('completed', 0)}/{len(points)} points)"
                )
            time.sleep(poll)
    except KeyboardInterrupt:
        try:
            snapshot = request(connect, {"type": "cancel", "job": job})
        except Exception:  # noqa: BLE001 - best effort on the way out
            pass
        partial = _merge(points, snapshot)
        raise SweepInterrupted(
            [partial[index] for index in sorted(partial)]
        ) from None
    merged = _merge(points, snapshot)
    return [merged[index] for index in range(len(points))]


def service_stats(
    connect: str,
    *,
    retry: "RetryPolicy | int | None" = DEFAULT_CLIENT_RETRY,
) -> Dict[str, Any]:
    """The coordinator's worker/job stats (the ``/stats`` core)."""
    return call_with_retry(connect, {"type": "stats"}, retry=retry)


def kill_worker(connect: str, worker: Optional[str] = None) -> str:
    """Order one worker (by id, or any) to die on its next poll.

    The over-the-wire chaos primitive used by
    :meth:`repro.resilience.FaultInjector.kill_remote`; returns the
    condemned worker's id.  Deliberately *not* retried: chaos tooling
    should see the coordinator's true availability.
    """
    reply = request(
        connect, {"type": "kill", "worker": worker or "any"}
    )
    return reply["worker"]
