"""Client side of ``executor="remote"``: submit, poll, merge.

:func:`remote_sweep` is what :func:`repro.engine.sweep` calls when a
sweep names the remote executor: the sweep function and point list are
shipped to a coordinator, workers chew through shard leases, and the
client polls until every global index is accounted for — as a decoded
:class:`~repro.engine.SweepResult` streamed back by a worker, or as a
quarantine record for a point that kept killing its workers.  The
merge is by grid index, so the returned list is bit-identical to the
serial path (per-point seed streams are already spawned by index; no
part of a point's computation depends on where it ran).

Ctrl-C cancels the job on the coordinator (workers finish their
current shard and go idle; nothing is orphaned) and raises
:class:`~repro.engine.SweepInterrupted` carrying every already-merged
result, so :func:`repro.engine.sweep_check` can bank the partials
before the interrupt propagates.
"""

from __future__ import annotations

import time
from typing import Any, Dict, List, Optional, Sequence

from ..engine.sweep import SweepInterrupted, SweepResult
from ..resilience.policies import DeadlinePolicy, RetryPolicy
from .wire import decode_result, encode, request

__all__ = ["remote_sweep", "service_stats", "kill_worker"]


def _merge(
    points: Sequence[Any], snapshot: Dict[str, Any]
) -> Dict[int, SweepResult]:
    """Decode one job snapshot into ``{index: SweepResult}``."""
    merged: Dict[int, SweepResult] = {}
    for text, encoded in snapshot.get("results", {}).items():
        merged[int(text)] = decode_result(encoded)
    for text, record in snapshot.get("quarantined", {}).items():
        index = int(text)
        merged[index] = SweepResult(
            point=points[index],
            value=None,
            seconds=0.0,
            error=record.get("error", "WorkerLost: lease expired"),
            attempts=int(record.get("attempts", 1)),
        )
    return merged


def remote_sweep(
    fn: Any,
    points: Sequence[Any],
    *,
    connect: str,
    shard_size: Optional[int] = None,
    retry: Optional[RetryPolicy] = None,
    deadline: Optional[DeadlinePolicy] = None,
    poll: float = 0.05,
    timeout: Optional[float] = None,
    meta: Optional[Dict[str, Any]] = None,
) -> List[SweepResult]:
    """Run one sweep on a worker fleet; blocks until merged.

    ``retry`` ships to the workers (in-worker attempts, exactly the
    process executor's contract); ``deadline`` becomes the per-point
    lease budget that catches hung-but-heartbeating workers.
    ``timeout`` bounds the whole sweep — on expiry the job is cancelled
    and a ``TimeoutError`` raised.
    """
    points = list(points)
    if not points:
        return []
    attempts = retry.max_attempts if retry is not None else 1
    point_budget = (
        deadline.timeout * attempts + deadline.grace
        if deadline is not None
        else None
    )
    submitted = request(
        connect,
        {
            "type": "submit",
            "fn": encode(fn),
            "retry": encode(retry) if retry is not None else None,
            "points": [encode(point) for point in points],
            "shard_size": shard_size,
            "point_budget": point_budget,
            "meta": meta or {},
        },
    )
    job = submitted["job"]
    started = time.monotonic()
    snapshot: Dict[str, Any] = {}
    try:
        while True:
            snapshot = request(connect, {"type": "collect", "job": job})
            if snapshot.get("done"):
                break
            if timeout is not None and time.monotonic() - started > timeout:
                request(connect, {"type": "cancel", "job": job})
                raise TimeoutError(
                    f"remote sweep {job} incomplete after {timeout:.6g}s"
                    f" ({snapshot.get('completed', 0)}/{len(points)} points)"
                )
            time.sleep(poll)
    except KeyboardInterrupt:
        try:
            snapshot = request(connect, {"type": "cancel", "job": job})
        except Exception:  # noqa: BLE001 - best effort on the way out
            pass
        partial = _merge(points, snapshot)
        raise SweepInterrupted(
            [partial[index] for index in sorted(partial)]
        ) from None
    merged = _merge(points, snapshot)
    return [merged[index] for index in range(len(points))]


def service_stats(connect: str) -> Dict[str, Any]:
    """The coordinator's worker/job stats (the ``/stats`` core)."""
    return request(connect, {"type": "stats"})


def kill_worker(connect: str, worker: Optional[str] = None) -> str:
    """Order one worker (by id, or any) to die on its next poll.

    The over-the-wire chaos primitive used by
    :meth:`repro.resilience.FaultInjector.kill_remote`; returns the
    condemned worker's id.
    """
    reply = request(
        connect, {"type": "kill", "worker": worker or "any"}
    )
    return reply["worker"]
