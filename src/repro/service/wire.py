"""Wire protocol of the guarantee service: framed JSON over sockets.

Every conversation in the service fabric — worker registration, shard
leases, streamed results, chaos directives, the ``executor="remote"``
client — is one request message answered by one reply message over a
fresh TCP connection.  Messages are JSON objects framed by an 8-byte
header (4-byte big-endian length + 4-byte CRC32 of the payload);
connection-per-request keeps the protocol stateless, so a SIGKILLed
worker leaves nothing half-open on the coordinator side (its silence
is what the lease reaper detects).

The framing is hardened against a byte-flipping or hostile peer: a
length prefix above :data:`MAX_FRAME` raises the typed
:class:`FrameTooLarge` *before* any allocation, and a payload whose
CRC32 does not match its header raises :class:`FrameCorrupted` — a
typed, retryable transport error — instead of handing
``json.loads`` garbage or hanging on a frame that never completes.

Values that cross the wire use *the store's own codec*
(:func:`repro.store.encode_value`): a check result computed on a
remote worker is byte-for-byte the payload a local sweep would bank in
a :class:`~repro.store.ResultStore`, so remote results are
cache-compatible with warm hits — same tagged-JSON encoding, same
versioned salt in the handshake.  Objects the store codec refuses
(sweep callables, ``(index, point)`` tuples, seed sequences) fall back
to base64-pickle, which is fine inside a trusted worker fleet — the
coordinator itself never unpickles anything, it only forwards blobs.

The protocol is versioned (:data:`PROTOCOL_VERSION`) and the handshake
carries the store salt: a worker built from different code, or against
a store with a different cache-key salt, is rejected at registration
instead of silently contributing cache-incompatible results.
"""

from __future__ import annotations

import base64
import json
import pickle
import socket
import struct
import zlib
from dataclasses import asdict
from typing import Any, Dict, Optional, Tuple

from ..engine.sweep import SweepResult
from ..resilience.validate import ValidationWarning
from ..store import StoreError, decode_value, encode_value

__all__ = [
    "PROTOCOL_VERSION",
    "WireError",
    "FrameTooLarge",
    "FrameCorrupted",
    "RemoteError",
    "ServiceUnavailable",
    "parse_address",
    "frame",
    "send_message",
    "recv_message",
    "request",
    "encode",
    "decode",
    "encode_result",
    "decode_result",
]

#: Bumped on any framing or message-shape change; checked at worker
#: registration so mixed-version fleets fail loudly.  v2 added the
#: per-frame CRC32 checksum and epoch-fenced leases.
PROTOCOL_VERSION = 2

#: 4-byte big-endian payload length + 4-byte CRC32 of the payload.
_HEADER = struct.Struct(">II")

#: Hard cap on one frame (64 MiB) — a corrupt length prefix must not
#: convince the receiver to allocate gigabytes.
MAX_FRAME = 64 * 1024 * 1024


class WireError(ConnectionError):
    """A malformed frame, a closed peer, or a protocol violation."""


class FrameTooLarge(WireError):
    """A frame (or a claimed frame length) exceeds :data:`MAX_FRAME`.

    Raised *before* any allocation on the receive side, so a corrupt
    or hostile 4-byte prefix cannot trigger a multi-gigabyte buffer.
    """


class FrameCorrupted(WireError):
    """A frame's payload does not match its CRC32 header.

    A typed, retryable transport error: the connection-per-request
    protocol means the caller can simply reconnect and resend.
    """


class RemoteError(WireError):
    """The peer answered ``{"type": "error"}`` — an application-level
    rejection (unknown job, salt mismatch, ...), *not* a transport
    fault.  Never retried by the client's :class:`RetryPolicy` loop."""


class ServiceUnavailable(ConnectionError):
    """The coordinator stayed unreachable through a whole retry budget.

    The clean, typed surface of repeated ``ConnectionRefusedError`` /
    timeout / corrupt-frame failures — what ``executor="remote"``
    callers and workers see once reconnect attempts are exhausted.
    """


def parse_address(text: "str | Tuple[str, int]") -> Tuple[str, int]:
    """``"HOST:PORT"`` (or an already-split tuple) -> ``(host, port)``."""
    if isinstance(text, tuple):
        host, port = text
        return str(host), int(port)
    host, sep, port = text.rpartition(":")
    if not sep or not port.isdigit():
        raise WireError(
            f"expected a coordinator address like HOST:PORT, got {text!r}"
        )
    return host or "127.0.0.1", int(port)


# ----------------------------------------------------------------------
# Framing: (length, CRC32) header + UTF-8 JSON payload.
# ----------------------------------------------------------------------


def _recv_exact(sock: socket.socket, size: int) -> bytes:
    chunks = []
    remaining = size
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            raise WireError("peer closed the connection mid-frame")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def frame(message: Dict[str, Any]) -> bytes:
    """One message as raw frame bytes (header + payload).

    Exposed so the fault injector can perturb a *valid* frame —
    flipping payload bytes, truncating it — and prove the receive side
    turns each perturbation into the right typed error.
    """
    payload = json.dumps(message, separators=(",", ":")).encode("utf-8")
    if len(payload) > MAX_FRAME:
        raise FrameTooLarge(
            f"message of {len(payload)} bytes exceeds MAX_FRAME"
            f" ({MAX_FRAME} bytes)"
        )
    checksum = zlib.crc32(payload) & 0xFFFFFFFF
    return _HEADER.pack(len(payload), checksum) + payload


def send_message(sock: socket.socket, message: Dict[str, Any]) -> None:
    """Write one framed, checksummed JSON message."""
    sock.sendall(frame(message))


def recv_message(sock: socket.socket) -> Dict[str, Any]:
    """Read one framed JSON message (raises :class:`WireError` on EOF).

    The length cap is checked before any allocation
    (:class:`FrameTooLarge`) and the payload is verified against its
    CRC32 (:class:`FrameCorrupted`), so a byte-flipped or hostile
    frame surfaces as a typed, retryable error — never a giant
    allocation, a JSON parse error, or a hang.
    """
    size, checksum = _HEADER.unpack(_recv_exact(sock, _HEADER.size))
    if size > MAX_FRAME:
        raise FrameTooLarge(
            f"frame of {size} bytes exceeds MAX_FRAME ({MAX_FRAME} bytes)"
        )
    payload = _recv_exact(sock, size)
    if zlib.crc32(payload) & 0xFFFFFFFF != checksum:
        raise FrameCorrupted(
            f"frame of {size} bytes failed its CRC32 check"
            " (corrupted in transit)"
        )
    return json.loads(payload.decode("utf-8"))


def request(
    address: "str | Tuple[str, int]",
    message: Dict[str, Any],
    *,
    timeout: Optional[float] = 30.0,
) -> Dict[str, Any]:
    """One round trip: connect, send ``message``, return the reply.

    Replies of ``{"type": "error"}`` are raised as :class:`RemoteError`
    — the coordinator's way of rejecting a malformed or stale request.
    Transport failures (refused, reset, corrupt frame) raise their own
    :class:`WireError` / ``OSError`` types, which *are* retryable.
    """
    host, port = parse_address(address)
    with socket.create_connection((host, port), timeout=timeout) as sock:
        send_message(sock, message)
        reply = recv_message(sock)
    if reply.get("type") == "error":
        raise RemoteError(
            reply.get("error", "coordinator rejected the request")
        )
    return reply


# ----------------------------------------------------------------------
# Value encoding: the store codec, with a pickle fallback for callables.
# ----------------------------------------------------------------------


def _json_pure(obj: Any) -> bool:
    """Does ``obj`` survive a JSON round trip *unchanged*?

    JSON would silently coerce tuples to lists and non-string dict keys
    to strings — fatal for the bit-identical merge contract — so raw
    containers only take the store codec when they are purely JSON.
    """
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return True
    if isinstance(obj, list):
        return all(_json_pure(item) for item in obj)
    if isinstance(obj, dict):
        return all(
            isinstance(key, str) and _json_pure(value)
            for key, value in obj.items()
        )
    return False


def encode(obj: Any) -> Dict[str, Any]:
    """JSON-able envelope of any python object.

    Store-codec first (tagged JSON, bit-exact floats, cache-compatible
    result dataclasses), base64-pickle for everything else — sweep
    callables, ``(index, point)`` tuples, containers JSON would mangle.
    """
    if not isinstance(obj, (dict, list)) or _json_pure(obj):
        try:
            return {"enc": "store", "data": encode_value(obj)}
        except StoreError:
            pass
    blob = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    return {"enc": "pickle", "data": base64.b64encode(blob).decode("ascii")}


def decode(envelope: Dict[str, Any]) -> Any:
    """Inverse of :func:`encode`."""
    kind = envelope.get("enc")
    if kind == "store":
        return decode_value(envelope["data"])
    if kind == "pickle":
        return pickle.loads(base64.b64decode(envelope["data"]))
    raise WireError(f"unknown wire encoding {kind!r}")


def encode_result(result: SweepResult) -> Dict[str, Any]:
    """One :class:`~repro.engine.SweepResult`, field by field.

    ``value`` and ``point`` go through :func:`encode` (store codec when
    possible); validation warnings flatten to dicts and are rebuilt on
    decode, so a result streamed back from a worker compares equal to
    one computed in-process.
    """
    return {
        "point": encode(result.point),
        "value": encode(result.value),
        "seconds": result.seconds,
        "error": result.error,
        "cached": result.cached,
        "label": result.label,
        "attempts": result.attempts,
        "traceback": result.traceback,
        "warnings": [asdict(w) for w in result.warnings],
    }


def decode_result(payload: Dict[str, Any]) -> SweepResult:
    """Inverse of :func:`encode_result`."""
    return SweepResult(
        point=decode(payload["point"]),
        value=decode(payload["value"]),
        seconds=payload["seconds"],
        error=payload["error"],
        cached=payload["cached"],
        label=payload["label"],
        attempts=payload["attempts"],
        traceback=payload["traceback"],
        warnings=tuple(
            ValidationWarning(**w) for w in payload.get("warnings", ())
        ),
    )
