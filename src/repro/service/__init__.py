"""Networked guarantee service: coordinator, workers, HTTP front-end.

The distributed half of the guarantee pipeline, stdlib networking only
(framed JSON over TCP between coordinator and workers, a hand-rolled
:mod:`asyncio` HTTP front door for clients):

* :mod:`repro.service.wire` — the framed-message protocol and the
  result codec (reusing the store's tagged encoding, so remote results
  are cache-compatible with local ones);
* :mod:`repro.service.coordinator` — shard leases, heartbeats, lease
  reassignment/bisection/quarantine on worker death;
* :mod:`repro.service.worker` — the ``repro-zoo worker`` loop,
  executing leases through the ordinary sweep fabric;
* :mod:`repro.service.client` — :func:`remote_sweep`, the transport
  behind ``executor="remote"`` in :func:`repro.engine.sweep`;
* :mod:`repro.service.frontend` — ``repro-zoo serve``: ``/guarantee``
  answered straight from the :class:`~repro.store.ResultStore` on a
  hit, enqueued on the fleet on a miss;
* :mod:`repro.service.journal` — the sqlite WAL job journal that lets
  a SIGKILLed coordinator replay its open jobs on restart.

The merged output of a remote sweep is bit-identical to the serial
path: per-point seed streams are spawned by grid index before
anything ships, and results merge first-write-wins by that index —
which is also what makes journal replay and lease re-runs idempotent.
"""

from .client import (
    DEFAULT_CLIENT_RETRY,
    call_with_retry,
    kill_worker,
    remote_sweep,
    service_stats,
)
from .coordinator import Coordinator, CoordinatorServer, free_port
from .frontend import Frontend, FrontendServer
from .journal import JobJournal, JournalError
from .wire import (
    PROTOCOL_VERSION,
    FrameCorrupted,
    FrameTooLarge,
    RemoteError,
    ServiceUnavailable,
    WireError,
    parse_address,
    request,
)
from .worker import Worker, run_worker

__all__ = [
    "PROTOCOL_VERSION",
    "WireError",
    "FrameTooLarge",
    "FrameCorrupted",
    "RemoteError",
    "ServiceUnavailable",
    "parse_address",
    "request",
    "Coordinator",
    "CoordinatorServer",
    "free_port",
    "JobJournal",
    "JournalError",
    "Worker",
    "run_worker",
    "remote_sweep",
    "service_stats",
    "kill_worker",
    "call_with_retry",
    "DEFAULT_CLIENT_RETRY",
    "Frontend",
    "FrontendServer",
]
