"""Scenario model zoo: registered chain families behind one pipeline.

The paper's methodology — DTMC + pCTL + property-preserving reductions
— covers *families* of designs, not single models.  This package is
that family layer:

* :mod:`registry` — ``register_model`` / ``get_model`` / ``list_models``:
  named, parameterized, documented chain families.
* :mod:`pipeline` — the shared ``ScenarioSpec -> build -> reduce ->
  Engine registration`` path; every scenario returns a
  :class:`BuiltScenario` carrying provenance (family, params, full vs
  reduced state counts, reduction kind and wall time, optional
  bisimilarity verification).
* :mod:`families` — the built-ins: ``mimo-1xN``, ``mimo-NRx2``,
  ``viterbi-memory-m``, ``viterbi-errcnt``, ``viterbi-convergence``,
  and the synthetic stress families ``birth-death`` and
  ``random-sparse``.
* :mod:`sweep` — zoo-wide sweeps: a family's parameter grid fanned
  through :func:`repro.engine.sweep_check` with exact or statistical
  backends; :func:`survey` checks the whole zoo at defaults.
* :mod:`cli` — ``python -m repro.zoo list|build|sweep|survey`` (also
  installed as the ``repro-zoo`` console script).

>>> from repro import zoo
>>> scenario = zoo.build("mimo-1xN", {"num_rx": 2, "snr_db": 6.0})
>>> scenario.reduced_states < scenario.full_states
True
>>> results = zoo.sweep("mimo-1xN", {"snr_db": [4.0, 8.0]},
...                     "P=? [ F<=10 flag ]", executor="serial")
>>> len(results)
2
"""

from . import families  # noqa: F401  (importing registers the built-ins)
from .families import (
    convergence_family_params,
    mimo_family_params,
    viterbi_family_params,
)
from .pipeline import (
    REDUCTIONS,
    BuiltScenario,
    FamilyBuild,
    ReductionSoundnessError,
    ScenarioSpec,
    build,
)
from .registry import (
    ModelFamily,
    UnknownFamilyError,
    ZooError,
    get_model,
    list_models,
    model_family,
    register_model,
    unregister_model,
)
from .sweep import survey, sweep

__all__ = [
    "REDUCTIONS",
    "BuiltScenario",
    "FamilyBuild",
    "ReductionSoundnessError",
    "ScenarioSpec",
    "build",
    "ModelFamily",
    "UnknownFamilyError",
    "ZooError",
    "get_model",
    "list_models",
    "model_family",
    "register_model",
    "unregister_model",
    "survey",
    "sweep",
    "convergence_family_params",
    "mimo_family_params",
    "viterbi_family_params",
]

BUILTIN_FAMILIES = families.BUILTIN_FAMILIES
