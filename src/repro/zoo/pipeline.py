"""The shared build pipeline: ``ScenarioSpec -> build -> reduce -> engine``.

Every family in the zoo builds through this one function, so every
scenario — MIMO, Viterbi, or synthetic — comes back as a
:class:`BuiltScenario` with the same provenance: which family and
parameters produced it, how large the full and reduced state spaces
are, which reduction produced the checked chain, how long building and
reducing took, and (optionally) a machine-checked bisimilarity verdict.

Reduction strategies, in the order the pipeline tries them:

``"symmetry"`` / ``"abstraction"``
    The family builds its quotient *directly* (on-the-fly symmetry
    canonicalization for the MIMO detectors, the c/w abstraction for
    the Viterbi decoder) — the paper's reductions, where the full model
    never needs to materialize.
``"lumping"``
    No direct quotient is known: the pipeline builds the full chain and
    runs the coarsest strongly-lumpable partition refinement of
    :func:`repro.core.reductions.lump` over the family's ``respect``
    labels — reduction discovered, not designed.
``"none"``
    The model is already as small as its property needs.

With ``verify=True`` the full model is built alongside the quotient and
:func:`repro.core.reductions.are_bisimilar` must return equivalence —
the paper's soundness proof, run mechanically per scenario.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Mapping, Optional, Tuple

from ..core.reductions import are_bisimilar, lump
from ..dtmc.builder import ExplorationResult
from ..dtmc.chain import DTMC
from ..engine import Engine
from .registry import ZooError, get_model

__all__ = [
    "ScenarioSpec",
    "FamilyBuild",
    "BuiltScenario",
    "ReductionSoundnessError",
    "REDUCTIONS",
    "build",
]

#: Reduction strategies a family may declare.
REDUCTIONS = ("symmetry", "abstraction", "lumping", "none")

#: Full models at or below this state count are considered buildable
#: when a family needs one only for counting (families may still refuse
#: to provide ``build_full`` at any size).  Raised from 50k after the
#: sparse-algebra rewrite of the reduction layer: the coarsest-lumping
#: fallback (refine + verify + quotient) now handles 10^5+-state chains
#: in seconds, so half-million-state full models are worth building.
FULL_BUILD_LIMIT = 500_000


class ReductionSoundnessError(ZooError):
    """Raised when ``verify=True`` finds full and reduced not bisimilar."""


@dataclass(frozen=True)
class ScenarioSpec:
    """A fully-resolved scenario: family name + complete parameters."""

    family: str
    params: Mapping[str, Any]

    def key(self) -> Tuple:
        """Hashable identity (for memoization and result stores)."""
        return (self.family, tuple(sorted(self.params.items())))

    def describe(self) -> str:
        inner = ", ".join(f"{k}={v!r}" for k, v in sorted(self.params.items()))
        return f"{self.family}({inner})"


@dataclass
class FamilyBuild:
    """What a family's builder hands the pipeline.

    Attributes
    ----------
    build_reduced:
        Zero-argument callable constructing the directly-reduced chain,
        or ``None`` when the family has no built-in reduction (the
        pipeline falls back to coarsest lumping of the full chain).
    build_full:
        Zero-argument callable constructing the full (unreduced) chain,
        or ``None`` when it is too large to materialize.
    full_state_count:
        Exact state count of the full model when it is *not* built
        (e.g. the 1x4 detector's product support); ignored when
        ``build_full`` runs.
    reduction:
        One of :data:`REDUCTIONS`; ``"lumping"`` may also be reached by
        fallback when ``build_reduced`` is ``None``.
    respect:
        Labels the reduction preserves — the vocabulary bisimilarity is
        judged over and the lumping fallback refines against.
    """

    build_reduced: Optional[Callable[[], ExplorationResult]] = None
    build_full: Optional[Callable[[], ExplorationResult]] = None
    full_state_count: Optional[int] = None
    reduction: str = "none"
    respect: Tuple[str, ...] = ("flag",)

    def __post_init__(self) -> None:
        if self.reduction not in REDUCTIONS:
            raise ZooError(
                f"unknown reduction {self.reduction!r};"
                f" choose from {', '.join(REDUCTIONS)}"
            )
        if self.build_reduced is None and self.build_full is None:
            raise ZooError("family must provide build_reduced or build_full")


@dataclass
class BuiltScenario:
    """One scenario built through the pipeline, with provenance.

    ``chain`` is the chain properties should be checked on (the reduced
    one whenever a reduction ran).  ``full_chain`` is populated when
    the full model was built (``keep_full=True``, ``verify=True``, or
    the lumping fallback).
    """

    spec: ScenarioSpec
    chain: DTMC
    reduction: str
    reduced_states: int
    full_states: Optional[int]
    build_seconds: float
    reduce_seconds: float
    verified: Optional[bool] = None
    full_chain: Optional[DTMC] = None
    respect: Tuple[str, ...] = ("flag",)
    default_property: str = ""
    #: Free-form provenance; the lumping fallback records its partition
    #: refinement here (``refine_strategy``, ``refine_rounds``,
    #: ``refine_splitters``, ``refine_initial_blocks``,
    #: ``refine_final_blocks``).
    extra: Dict[str, Any] = field(default_factory=dict)

    @property
    def family(self) -> str:
        return self.spec.family

    @property
    def params(self) -> Mapping[str, Any]:
        return self.spec.params

    @property
    def reduction_factor(self) -> Optional[float]:
        """``full / reduced`` state count, when the full size is known."""
        if self.full_states is None or self.reduced_states == 0:
            return None
        return self.full_states / self.reduced_states

    def describe(self) -> str:
        """One-line provenance summary (CLI / log format)."""
        factor = self.reduction_factor
        factor_s = f" ({factor:.1f}x)" if factor is not None else ""
        full_s = "?" if self.full_states is None else str(self.full_states)
        verified_s = "" if self.verified is None else f" verified={self.verified}"
        refine_s = ""
        if "refine_rounds" in self.extra:
            refine_s = (
                f" refine({self.extra['refine_strategy']}:"
                f" {self.extra['refine_rounds']} rounds,"
                f" {self.extra['refine_splitters']} splitters)"
            )
        return (
            f"{self.spec.describe()}: {full_s} -> {self.reduced_states}"
            f" states{factor_s} via {self.reduction}"
            f" [build {self.build_seconds:.3f}s,"
            f" reduce {self.reduce_seconds:.3f}s]{verified_s}{refine_s}"
        )


def build(
    family: str,
    params: Optional[Mapping[str, Any]] = None,
    *,
    reduce: bool = True,
    verify: bool = False,
    keep_full: bool = False,
    engine: Optional[Engine] = None,
) -> BuiltScenario:
    """Build one scenario of ``family`` through the shared pipeline.

    Parameters
    ----------
    family:
        A registered family name (see :func:`repro.zoo.list_models`).
    params:
        Overrides merged over the family's defaults; unknown keys
        raise.
    reduce:
        Build/derive the reduced chain (default).  ``reduce=False``
        checks the full model — only possible when the family can
        materialize it.
    verify:
        Also build the full model and require
        :func:`~repro.core.reductions.are_bisimilar` over the family's
        ``respect`` labels; failure raises
        :class:`ReductionSoundnessError`.
    keep_full:
        Keep the full chain on the result even when verification is
        off (e.g. to check both, as Table I does).
    engine:
        When given, the scenario's chain is registered with the engine
        so subsequent property checks share its caches.
    """
    fam = get_model(family)
    merged = fam.merged_params(params)
    spec = ScenarioSpec(family=fam.name, params=merged)
    fb = fam.builder(merged)
    if not isinstance(fb, FamilyBuild):
        raise ZooError(
            f"builder of family {fam.name!r} must return a FamilyBuild,"
            f" got {type(fb).__name__}"
        )

    want_full = (
        not reduce
        or verify
        or keep_full
        or fb.build_reduced is None  # lumping fallback needs the full chain
    )
    if want_full and fb.build_full is None:
        need = "verify/keep_full" if reduce else "reduce=False"
        raise ZooError(
            f"family {fam.name!r} cannot build its full model at"
            f" {spec.describe()} (needed for {need});"
            f" exact full size: {fb.full_state_count}"
        )

    build_start = time.perf_counter()
    full_result: Optional[ExplorationResult] = None
    if want_full:
        full_result = fb.build_full()

    reduction = fb.reduction
    reduced_result: Optional[ExplorationResult] = None
    reduce_seconds = 0.0
    extra: Dict[str, Any] = {}
    if reduce:
        if fb.build_reduced is not None:
            t0 = time.perf_counter()
            reduced_result = fb.build_reduced()
            reduce_seconds = time.perf_counter() - t0
        elif reduction != "none":
            # Fallback: coarsest lumping of the full chain.
            t0 = time.perf_counter()
            quotient = lump(full_result.chain, respect=list(fb.respect))
            reduce_seconds = time.perf_counter() - t0
            reduction = "lumping"
            chain = quotient.chain
            if quotient.refinement is not None:
                stats = quotient.refinement
                extra.update(
                    refine_strategy=stats.strategy,
                    refine_rounds=stats.rounds,
                    refine_splitters=stats.splitters,
                    refine_initial_blocks=stats.initial_blocks,
                    refine_final_blocks=stats.final_blocks,
                )
        else:
            reduce_seconds = 0.0
    build_seconds = time.perf_counter() - build_start - reduce_seconds

    if reduce and reduced_result is not None:
        chain = reduced_result.chain
        reduced_states = reduced_result.num_states
    elif reduce and fb.build_reduced is None and reduction == "lumping":
        reduced_states = chain.num_states
    else:
        # reduce=False, or reduction == "none": check the full chain.
        chain = full_result.chain
        reduced_states = full_result.num_states
        if not reduce:
            reduction = "none"

    full_states = (
        full_result.num_states if full_result is not None else fb.full_state_count
    )

    verified: Optional[bool] = None
    if verify:
        result = are_bisimilar(
            full_result.chain, chain, respect=list(fb.respect)
        )
        if not result.equivalent:
            raise ReductionSoundnessError(
                f"reduced chain of {spec.describe()} is NOT bisimilar to"
                f" the full chain over {fb.respect}: {result.witness}"
            )
        verified = True

    if engine is not None:
        engine.register(chain)
        if full_result is not None and (keep_full or verify):
            engine.register(full_result.chain)

    return BuiltScenario(
        spec=spec,
        chain=chain,
        reduction=reduction if reduce else "none",
        reduced_states=reduced_states,
        full_states=full_states,
        build_seconds=build_seconds,
        reduce_seconds=reduce_seconds,
        verified=verified,
        full_chain=full_result.chain if full_result is not None else None,
        respect=fb.respect,
        default_property=fam.default_property,
        extra=extra,
    )
