"""Command-line interface: ``python -m repro.zoo`` / ``repro-zoo``.

Subcommands::

    repro-zoo list [--tag mimo]
    repro-zoo build mimo-1xN -p num_rx=2 -p snr_db=6.0 --verify
    repro-zoo sweep mimo-1xN -g snr_db=4,6,8 --backend apmc
    repro-zoo sweep mimo-1xN -g snr_db=4,6,8 --store results.sqlite
    repro-zoo sweep mimo-1xN -g snr_db=4,6,8 --retries 2 --point-timeout 60
    repro-zoo sweep mimo-1xN -g snr_db=4,6,8 --store results.sqlite --resume
    repro-zoo survey --backend exact [--store results.sqlite]
    repro-zoo store stats --store results.sqlite
    repro-zoo store query --store results.sqlite --family mimo-1xN
    repro-zoo store clear --store results.sqlite [--family ...]
    repro-zoo history list --store results.sqlite
    repro-zoo history show mimo-1xN --store results.sqlite
    repro-zoo history diff SALT_A SALT_B --store results.sqlite
    repro-zoo serve --port 8080 --store results.sqlite --workers 2
    repro-zoo serve --port 8080 --journal journal.sqlite --store results.sqlite
    repro-zoo worker --connect HOST:9100 --reconnect-attempts 20
    repro-zoo sweep mimo-1xN -g snr_db=4,6,8 --executor remote --connect HOST:9100

``-p/--param`` sets one scenario parameter (``key=value``, value parsed
as a Python literal when possible); ``-g/--grid`` names one sweep axis
(``key=v1,v2,...``).  ``--store PATH`` read-through caches sweep and
survey results in a persistent sqlite guarantee store — warm repeats
are reported as cache hits; the ``store`` subcommands inspect and
maintain such a file.

``--retries``/``--backoff``/``--point-timeout`` arm the fault-tolerant
fabric (:mod:`repro.resilience`): transient point failures are retried
with exponential backoff and hung points are killed at the deadline,
both quarantined into the result table instead of sinking the sweep.
``--resume`` re-runs an interrupted sweep against its ``--store``
checkpoint, recomputing only the missing points; the sweep report
printed after every run shows the cached/recomputed split.

``history`` reads the survey-history axis of a store (see
:mod:`repro.history`): ``list`` shows every salt (code version) that
ever banked into the file, ``show`` prints a family's guarantee
trajectories across those versions with drift/regression verdicts,
and ``diff`` classifies two salts' rows as unchanged / drifted /
appeared / vanished — exiting non-zero when anything drifted beyond
the tolerance, so CI can gate on it.

``serve`` runs the networked guarantee service (coordinator + HTTP
front-end + optional local workers); ``worker`` joins a running
coordinator from any host; ``--executor remote --connect HOST:PORT``
runs a sweep on that fleet instead of local pools.  A Ctrl-C during
any sweep shuts the executor down cleanly (no orphaned workers), banks
finished points to ``--store``, and exits 130 with a resume hint.

``serve --journal PATH`` makes the coordinator durable: jobs and
merged results persist to a sqlite journal, and a restarted ``serve``
pointed at the same journal replays open jobs and resumes in-flight
sweeps.  Workers ride through the restart (``--reconnect-attempts``
bounds their backoff loop), and the front-end degrades instead of
failing while the coordinator is down: warm ``--store`` hits keep
serving, misses get 503 + ``Retry-After`` once the circuit breaker
(``--breaker-threshold`` / ``--breaker-cooldown``) opens, and the
``--max-inflight`` bound sheds excess misses with 429.
"""

from __future__ import annotations

import argparse
import ast
import dataclasses
import os
import sys
from typing import Any, Dict, Iterable, List, Optional

from ..engine import EXECUTORS, SmcConfig, SweepInterrupted
from ..experiments.report import format_table
from ..resilience import RetryPolicy, SweepReport
from . import pipeline, registry
from .sweep import survey as _survey
from .sweep import sweep as _sweep

__all__ = ["main"]


def _literal(text: str) -> Any:
    """Parse a CLI value: Python literal when possible, else string."""
    try:
        return ast.literal_eval(text)
    except (ValueError, SyntaxError):
        return text


def _parse_params(pairs: Optional[Iterable[str]]) -> Dict[str, Any]:
    params: Dict[str, Any] = {}
    for pair in pairs or ():
        if "=" not in pair:
            raise SystemExit(f"expected key=value, got {pair!r}")
        key, _, value = pair.partition("=")
        params[key.strip()] = _literal(value.strip())
    return params


def _parse_axes(pairs: Optional[Iterable[str]]) -> Dict[str, List[Any]]:
    axes: Dict[str, List[Any]] = {}
    for pair in pairs or ():
        if "=" not in pair:
            raise SystemExit(f"expected key=v1,v2,..., got {pair!r}")
        key, _, values = pair.partition("=")
        axes[key.strip()] = [_literal(v.strip()) for v in values.split(",") if v.strip()]
    return axes


def _render_value(value: Any) -> str:
    """Compact rendering of exact / APMC / SPRT sweep values."""
    if hasattr(value, "estimate"):  # ApmcResult
        return f"{value.estimate:.6g} ±{value.epsilon} ({value.samples} samples)"
    if hasattr(value, "accept"):  # SprtResult
        verdict = ">=" if value.accept else "<"
        return f"P {verdict} {value.theta} ({value.samples} samples)"
    if isinstance(value, float):
        return f"{value:.6g}"
    return str(value)


def _cmd_list(args: argparse.Namespace) -> int:
    families = registry.list_models(tag=args.tag)
    if not families:
        print("no families registered" + (f" with tag {args.tag!r}" if args.tag else ""))
        return 1
    rows = [
        [
            fam.name,
            ",".join(fam.tags),
            fam.default_property,
            " ".join(f"{k}={v}" for k, v in sorted(fam.defaults.items())),
        ]
        for fam in families
    ]
    print(format_table(["family", "tags", "default property", "defaults"], rows))
    print(f"{len(families)} families registered")
    return 0


def _cmd_build(args: argparse.Namespace) -> int:
    scenario = pipeline.build(
        args.family,
        _parse_params(args.param),
        reduce=not args.no_reduce,
        verify=args.verify,
        keep_full=args.keep_full,
    )
    print(scenario.describe())
    if args.check:
        from ..pctl import check

        formula = (
            args.formula
            or scenario.default_property
            or registry.get_model(args.family).default_property
        )
        value = check(scenario.chain, formula).value
        print(f"{formula}  =  {_render_value(float(value))}")
    return 0


def _open_store(args: argparse.Namespace):
    if getattr(args, "store", None) is None:
        return None
    from ..store import ResultStore

    return ResultStore(args.store)


def _parse_policies(args: argparse.Namespace):
    """Build (retry, deadline) policies from the resilience flags."""
    retry = None
    if getattr(args, "retries", 0):
        retry = RetryPolicy(
            max_attempts=args.retries + 1, backoff=args.backoff
        )
    return retry, getattr(args, "point_timeout", None)


def _cmd_sweep(args: argparse.Namespace) -> int:
    if args.backend == "sprt" and args.theta is None:
        print("error: --backend sprt requires --theta", file=sys.stderr)
        return 2
    if args.resume and args.store is None:
        print("error: --resume requires --store PATH", file=sys.stderr)
        return 2
    if args.executor == "remote" and not (
        args.connect or os.environ.get("REPRO_COORDINATOR")
    ):
        print(
            "error: --executor remote requires --connect HOST:PORT"
            " (or $REPRO_COORDINATOR)",
            file=sys.stderr,
        )
        return 2
    axes = _parse_axes(args.grid)
    smc = SmcConfig(
        epsilon=args.epsilon, delta=args.delta, seed=args.seed
    )
    store = _open_store(args)
    retry, deadline = _parse_policies(args)
    results = _sweep(
        args.family,
        axes=axes or None,
        points=[{}] if not axes else None,
        formula=args.formula,
        base_params=_parse_params(args.param),
        backend=args.backend,
        theta=args.theta,
        smc=smc,
        executor=args.executor,
        shard_size=args.shard_size,
        remote=args.connect,
        store=store,
        retry=retry,
        deadline=deadline,
    )
    rows = []
    failures = 0
    hits = 0
    for result in results:
        point = " ".join(f"{k}={v}" for k, v in sorted(result.point.items())) or "<defaults>"
        hits += result.cached
        if result.ok:
            rendered = _render_value(result.value)
            if result.warnings:
                rendered += f"  !! {len(result.warnings)} warning(s)"
            rows.append([point, rendered, f"{result.seconds:.3f}"])
        else:
            failures += 1
            rows.append([point, f"ERROR {result.error}", f"{result.seconds:.3f}"])
    print(format_table(["point", "value", "seconds"], rows))
    store_note = f", {hits} cache hits" if store is not None else ""
    print(
        f"{len(results)} points, {failures} failed{store_note}"
        f" (backend={args.backend}, formula="
        f"{args.formula or registry.get_model(args.family).default_property!r})"
    )
    print(SweepReport.from_results(results).describe())
    return 1 if failures else 0


def _cmd_survey(args: argparse.Namespace) -> int:
    store = _open_store(args)
    retry, deadline = _parse_policies(args)
    results = _survey(
        tag=args.tag, backend=args.backend, executor=args.executor,
        remote=args.connect, store=store, retry=retry, deadline=deadline,
    )
    rows = []
    failures = 0
    hits = 0
    for name, result in sorted(results.items()):
        hits += result.cached
        if result.ok:
            rows.append([name, _render_value(result.value), f"{result.seconds:.3f}"])
        else:
            failures += 1
            rows.append([name, f"ERROR {result.error}", f"{result.seconds:.3f}"])
    print(format_table(["family", "default property value", "seconds"], rows))
    store_note = f", {hits} cache hits" if store is not None else ""
    print(
        f"{len(results)} families, {failures} failed{store_note}"
        f" (backend={args.backend})"
    )
    return 1 if failures else 0


def _cmd_store(args: argparse.Namespace) -> int:
    from ..store import ResultStore

    store = ResultStore(args.store)
    if args.store_command == "stats":
        print(store.stats().describe())
        return 0
    if args.store_command == "query":
        rows = []
        for row in store.query(
            family=args.family, backend=args.backend,
            formula=args.formula, limit=args.limit,
        ):
            rows.append([
                row.family or "-",
                row.formula,
                row.backend,
                _render_value(row.value),
                f"{row.seconds:.3f}",
                str(row.hits),
            ])
        print(format_table(
            ["family", "formula", "backend", "value", "seconds", "hits"], rows
        ))
        print(f"{len(rows)} rows (of {len(store)} stored)")
        return 0
    # clear
    removed = store.invalidate(
        family=args.family, backend=args.backend, formula=args.formula
    )
    print(f"invalidated {removed} cached result(s) in {args.store}")
    return 0


def _cmd_history(args: argparse.Namespace) -> int:
    from ..store import ResultStore

    store = ResultStore(args.store)
    if args.history_command == "list":
        stats = store.stats()
        salts = store.salts()
        if not salts:
            print(f"no banked results in {args.store}")
            return 0
        rows = [[salt or "''", str(stats.salts.get(salt, 0))] for salt in salts]
        print(format_table(["salt (code version)", "rows"], rows))
        print(
            f"{len(salts)} version(s), {len(store)} row(s) total,"
            f" schema v{stats.schema_version}"
        )
        return 0
    if args.history_command == "show":
        from ..history import trend_report

        report = trend_report(
            store, args.family, formula=args.formula,
            backend=args.backend, tolerance=args.tolerance,
        )
        if not report.series:
            print(f"no banked results for family {args.family!r} in {args.store}")
            return 1
        print(report.describe())
        return 0
    # diff
    diff = store.compare(
        args.salt_a, args.salt_b,
        tolerance=args.tolerance, family=args.family,
    )
    print(diff.describe())
    return 1 if diff.has_drift else 0


def _cmd_worker(args: argparse.Namespace) -> int:
    from ..service import run_worker
    from ..service.worker import DEFAULT_RECONNECT

    reconnect = None
    if args.reconnect_attempts > 0:
        reconnect = dataclasses.replace(
            DEFAULT_RECONNECT, max_attempts=args.reconnect_attempts
        )
    print(f"worker joining coordinator at {args.connect}", flush=True)
    return run_worker(
        args.connect,
        name=args.name,
        poll=args.poll,
        max_shards=args.max_shards,
        reconnect=reconnect,
    )


def _spawn_local_workers(address: str, count: int) -> List[Any]:
    """Worker subprocesses for ``serve --workers N`` (same interpreter,
    ``src`` on the path even when the package is not installed)."""
    import subprocess

    env = dict(os.environ)
    src_root = os.path.dirname(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    )
    env["PYTHONPATH"] = src_root + os.pathsep + env.get("PYTHONPATH", "")
    return [
        subprocess.Popen(
            [sys.executable, "-m", "repro.zoo", "worker", "--connect", address],
            env=env,
        )
        for _ in range(count)
    ]


def _cmd_serve(args: argparse.Namespace) -> int:
    import time

    from ..resilience import CircuitBreaker
    from ..service import CoordinatorServer, Frontend, FrontendServer

    store = _open_store(args)
    server = CoordinatorServer(
        host=args.host, port=args.coordinator_port,
        heartbeat=args.heartbeat,
        journal=args.journal,
    ).start()
    workers = _spawn_local_workers(server.address, args.workers)
    front = FrontendServer(
        Frontend(
            server.coordinator,
            store=store,
            breaker=CircuitBreaker(
                failure_threshold=args.breaker_threshold,
                cooldown=args.breaker_cooldown,
            ),
            max_inflight=args.max_inflight,
        ),
        host=args.host, port=args.port,
    ).start_background()
    print(f"coordinator listening on {server.address}", flush=True)
    print(
        f"http front-end on http://{front.address}"
        f"  (GET /guarantee /jobs/<id> /healthz /stats)",
        flush=True,
    )
    if workers:
        print(f"{len(workers)} local worker(s) started", flush=True)
    if store is not None:
        print(f"serving guarantees from store {args.store}", flush=True)
    if args.journal:
        print(
            f"journaling jobs to {args.journal}"
            f" (boot epoch {server.coordinator.epoch})",
            flush=True,
        )
    try:
        while True:
            time.sleep(0.5)
    except KeyboardInterrupt:
        print("shutting down", file=sys.stderr)
    finally:
        front.stop()
        server.stop()  # orders every worker to exit on its next poll
        for proc in workers:
            try:
                proc.wait(timeout=10)
            except Exception:  # noqa: BLE001 - last resort, no orphans
                proc.terminate()
    return 0


def _add_resilience_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--retries", type=int, default=0, metavar="N",
        help="retry each failing point up to N extra times (default 0)",
    )
    parser.add_argument(
        "--backoff", type=float, default=0.0, metavar="SECONDS",
        help="base exponential-backoff delay between retries (default 0)",
    )
    parser.add_argument(
        "--point-timeout", type=float, metavar="SECONDS",
        help="wall-clock deadline per point; overruns are quarantined",
    )


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-zoo",
        description="Scenario model zoo: list, build and sweep chain families.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_list = sub.add_parser("list", help="show the registered families")
    p_list.add_argument("--tag", help="filter by tag (mimo, viterbi, synthetic)")
    p_list.set_defaults(fn=_cmd_list)

    p_build = sub.add_parser("build", help="build one scenario with provenance")
    p_build.add_argument("family")
    p_build.add_argument(
        "-p", "--param", action="append", metavar="KEY=VALUE",
        help="override one family parameter (repeatable)",
    )
    p_build.add_argument(
        "--verify", action="store_true",
        help="build the full model too and verify bisimilarity",
    )
    p_build.add_argument(
        "--keep-full", action="store_true",
        help="also build the full (unreduced) model",
    )
    p_build.add_argument(
        "--no-reduce", action="store_true", help="check the full model"
    )
    p_build.add_argument(
        "--check", action="store_true",
        help="also model-check a property on the built chain",
    )
    p_build.add_argument(
        "--formula", help="property for --check (default: family's)"
    )
    p_build.set_defaults(fn=_cmd_build)

    p_sweep = sub.add_parser("sweep", help="check a property across a grid")
    p_sweep.add_argument("family")
    p_sweep.add_argument(
        "-g", "--grid", action="append", metavar="KEY=V1,V2,...",
        help="one sweep axis (repeatable; Cartesian product)",
    )
    p_sweep.add_argument(
        "-p", "--param", action="append", metavar="KEY=VALUE",
        help="fixed parameter applied to every point (repeatable)",
    )
    p_sweep.add_argument("--formula", help="pCTL property (default: family's)")
    p_sweep.add_argument(
        "--backend", choices=("exact", "apmc", "sprt"), default="exact"
    )
    p_sweep.add_argument(
        "--theta", type=float, help="threshold for backend=sprt"
    )
    p_sweep.add_argument("--epsilon", type=float, default=0.01)
    p_sweep.add_argument("--delta", type=float, default=0.05)
    p_sweep.add_argument("--seed", type=int, default=0)
    p_sweep.add_argument(
        "--executor", choices=EXECUTORS, default="thread"
    )
    p_sweep.add_argument(
        "--shard-size", type=int, metavar="N",
        help="points per shard (executor=process / remote)",
    )
    p_sweep.add_argument(
        "--connect", metavar="HOST:PORT",
        help="coordinator address for --executor remote",
    )
    p_sweep.add_argument(
        "--store", metavar="PATH",
        help="read-through cache sweep results in this sqlite guarantee store",
    )
    p_sweep.add_argument(
        "--resume", action="store_true",
        help="resume an interrupted sweep from --store, recomputing"
             " only the points the checkpoint is missing",
    )
    _add_resilience_flags(p_sweep)
    p_sweep.set_defaults(fn=_cmd_sweep)

    p_survey = sub.add_parser(
        "survey", help="build+check every family at its defaults"
    )
    p_survey.add_argument("--tag", help="filter by tag")
    p_survey.add_argument(
        "--backend", choices=("exact", "apmc", "sprt"), default="exact"
    )
    p_survey.add_argument(
        "--executor", choices=EXECUTORS, default="thread"
    )
    p_survey.add_argument(
        "--connect", metavar="HOST:PORT",
        help="coordinator address for --executor remote",
    )
    p_survey.add_argument(
        "--store", metavar="PATH",
        help="read-through cache survey results in this sqlite guarantee store",
    )
    _add_resilience_flags(p_survey)
    p_survey.set_defaults(fn=_cmd_survey)

    p_worker = sub.add_parser(
        "worker", help="join a guarantee-service coordinator as a sweep worker"
    )
    p_worker.add_argument(
        "--connect", metavar="HOST:PORT", required=True,
        help="coordinator address to register with",
    )
    p_worker.add_argument("--name", help="worker name for /stats (default host:pid)")
    p_worker.add_argument(
        "--poll", type=float, default=0.2, metavar="SECONDS",
        help="idle re-poll interval when the coordinator has no work",
    )
    p_worker.add_argument(
        "--max-shards", type=int, metavar="N",
        help="exit after serving N shards (default: run until stopped)",
    )
    p_worker.add_argument(
        "--reconnect-attempts", type=int, default=10, metavar="N",
        help="reconnect/re-register attempts before giving up on an"
             " unreachable coordinator; 0 disables reconnection"
             " (default 10)",
    )
    p_worker.set_defaults(fn=_cmd_worker)

    p_serve = sub.add_parser(
        "serve", help="run the guarantee service (coordinator + HTTP front-end)"
    )
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument(
        "--port", type=int, default=8080, help="HTTP front-end port (0 = ephemeral)"
    )
    p_serve.add_argument(
        "--coordinator-port", type=int, default=0, metavar="PORT",
        help="worker-facing coordinator port (default: ephemeral)",
    )
    p_serve.add_argument(
        "--workers", type=int, default=0, metavar="N",
        help="also start N local worker processes",
    )
    p_serve.add_argument(
        "--heartbeat", type=float, default=1.0, metavar="SECONDS",
        help="worker heartbeat interval (liveness cutoff is 3x this)",
    )
    p_serve.add_argument(
        "--store", metavar="PATH",
        help="serve /guarantee hits from (and bank misses to) this store",
    )
    p_serve.add_argument(
        "--journal", metavar="PATH",
        help="persist jobs/results to this sqlite journal; a restarted"
             " coordinator replays it and resumes in-flight sweeps",
    )
    p_serve.add_argument(
        "--max-inflight", type=int, default=64, metavar="N",
        help="bound on distinct in-flight /guarantee jobs; excess"
             " misses are shed with 429 (default 64)",
    )
    p_serve.add_argument(
        "--breaker-threshold", type=int, default=5, metavar="N",
        help="consecutive coordinator failures that open the"
             " front-end's circuit breaker (default 5)",
    )
    p_serve.add_argument(
        "--breaker-cooldown", type=float, default=5.0, metavar="SECONDS",
        help="seconds the open breaker waits before probing the"
             " coordinator again (default 5)",
    )
    p_serve.set_defaults(fn=_cmd_serve)

    p_store = sub.add_parser(
        "store", help="inspect / maintain a persistent guarantee store"
    )
    store_sub = p_store.add_subparsers(dest="store_command", required=True)
    for name, help_text in (
        ("stats", "aggregate counters of one store file"),
        ("query", "list cached results, newest first"),
        ("clear", "invalidate cached results (all, or filtered)"),
    ):
        p = store_sub.add_parser(name, help=help_text)
        p.add_argument(
            "--store", metavar="PATH", required=True,
            help="path of the sqlite guarantee store",
        )
        if name != "stats":
            p.add_argument("--family", help="filter by zoo family")
            p.add_argument(
                "--backend", choices=("exact", "apmc", "sprt"),
                help="filter by checking backend",
            )
            p.add_argument("--formula", help="filter by pCTL property")
        if name == "query":
            p.add_argument("--limit", type=int, help="show at most N rows")
        p.set_defaults(fn=_cmd_store)

    p_history = sub.add_parser(
        "history",
        help="guarantee trends across the code versions banked in a store",
    )
    history_sub = p_history.add_subparsers(dest="history_command", required=True)

    h_list = history_sub.add_parser(
        "list", help="show every salt (code version) in a store, with row counts"
    )
    h_show = history_sub.add_parser(
        "show", help="print one family's guarantee trajectories across versions"
    )
    h_show.add_argument("family", help="zoo family to report on")
    h_show.add_argument("--formula", help="narrow to one pCTL property")
    h_show.add_argument(
        "--backend", choices=("exact", "apmc", "sprt"),
        help="narrow to one checking backend",
    )
    h_diff = history_sub.add_parser(
        "diff",
        help="classify two versions' rows as unchanged/drifted/appeared/"
             "vanished; exits 1 on drift beyond tolerance",
    )
    h_diff.add_argument("salt_a", help="baseline salt (see `history list`)")
    h_diff.add_argument("salt_b", help="candidate salt to compare against")
    h_diff.add_argument("--family", help="narrow the diff to one zoo family")
    from ..store import DRIFT_TOLERANCE

    for p in (h_list, h_show, h_diff):
        p.add_argument(
            "--store", metavar="PATH", required=True,
            help="path of the sqlite guarantee store",
        )
        if p is not h_list:
            p.add_argument(
                "--tolerance", type=float, default=DRIFT_TOLERANCE,
                metavar="REL",
                help="relative drift below this is 'unchanged'"
                     f" (default {DRIFT_TOLERANCE:g})",
            )
        p.set_defaults(fn=_cmd_history)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = _build_parser().parse_args(argv)
    try:
        return args.fn(args)
    except registry.ZooError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except SweepInterrupted as interrupt:
        banked = sum(1 for r in interrupt.partial if r.ok)
        hint = (
            " (banked to --store; re-run with --resume to finish)"
            if getattr(args, "store", None)
            else " (pass --store PATH next time to make interrupts resumable)"
        )
        print(
            f"interrupted: {banked} finished point(s) out of the grid"
            f"{hint}",
            file=sys.stderr,
        )
        return 130
    except KeyboardInterrupt:
        print("interrupted", file=sys.stderr)
        return 130


if __name__ == "__main__":
    sys.exit(main())
