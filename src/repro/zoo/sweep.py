"""Zoo-wide sweeps: fan a family's parameter grid through the engine.

:func:`sweep` is the scenario-grid entry point the registry enables:
name a family, name the axes, and the grid fans through
:func:`repro.engine.sweep_check` with any of its checking backends —
``"exact"`` (the cached solver engine), ``"apmc"`` (Hoeffding
estimates) or ``"sprt"`` (threshold decisions).  Every point builds
through the shared reduction pipeline, so large grids automatically
check quotients instead of full models.

:func:`survey` is the zoo-wide smoke sweep: every registered family at
its defaults against its own default property — the "does the whole
zoo still build and check" pass the CI benchmark job tracks.
"""

from __future__ import annotations

import functools
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence

from ..engine import SmcConfig, SweepResult
from ..engine import grid as engine_grid
from ..engine import sweep_check
from .pipeline import build
from .registry import get_model, list_models

__all__ = ["sweep", "survey"]


def _build_point(
    point: Mapping[str, Any],
    *,
    family: str,
    base_params: Optional[Mapping[str, Any]],
    reduce: bool,
):
    """Build one grid point's chain (module-level for picklability)."""
    params = dict(base_params or {})
    params.update(point)
    return build(family, params, reduce=reduce).chain


def sweep(
    family: str,
    axes: Optional[Mapping[str, Iterable[Any]]] = None,
    formula: Optional[str] = None,
    *,
    points: Optional[Sequence[Mapping[str, Any]]] = None,
    base_params: Optional[Mapping[str, Any]] = None,
    reduce: bool = True,
    backend: str = "exact",
    theta: Optional[float] = None,
    smc: Optional[SmcConfig] = None,
    solver=None,
    executor: str = "thread",
    max_workers: Optional[int] = None,
    on_error: str = "capture",
) -> List[SweepResult]:
    """Check ``formula`` across a parameter grid of one family.

    Parameters
    ----------
    family:
        Registered family name.
    axes:
        Named parameter axes, e.g. ``{"snr_db": [4, 6, 8]}``; their
        Cartesian product (via :func:`repro.engine.grid`) is the sweep.
        Alternatively pass explicit ``points`` (a list of parameter
        dicts).
    formula:
        pCTL property; defaults to the family's ``default_property``.
    base_params:
        Overrides applied to *every* point (the grid's fixed plane).
    reduce:
        Build reduced chains (default) or full ones.
    backend / theta / smc / solver:
        Passed through to :func:`repro.engine.sweep_check` — see its
        docs for the exact/apmc/sprt semantics and per-point seeding.
    executor / max_workers / on_error:
        Passed through to the underlying sweep runner.

    Returns the ordered :class:`~repro.engine.SweepResult` list; each
    result's ``point`` is the per-point parameter dict.
    """
    fam = get_model(family)  # fail fast on unknown names
    if (axes is None) == (points is None):
        raise ValueError("pass exactly one of axes= or points=")
    if points is None:
        points = engine_grid(**{k: list(v) for k, v in axes.items()})
    if formula is None:
        formula = fam.default_property
    builder = functools.partial(
        _build_point,
        family=family,
        base_params=dict(base_params) if base_params else None,
        reduce=reduce,
    )
    return sweep_check(
        builder,
        list(points),
        formula,
        backend=backend,
        theta=theta,
        smc=smc,
        solver=solver,
        executor=executor,
        max_workers=max_workers,
        on_error=on_error,
    )


def survey(
    *,
    tag: Optional[str] = None,
    backend: str = "exact",
    smc: Optional[SmcConfig] = None,
    executor: str = "thread",
    max_workers: Optional[int] = None,
) -> Dict[str, SweepResult]:
    """Check every registered family at its defaults.

    One point per family, each against its own ``default_property``
    with the chosen backend.  Returns ``{family name: SweepResult}``;
    failures are captured per family, never raised — a zoo-wide health
    check rather than an experiment.
    """
    results: Dict[str, SweepResult] = {}
    for fam in list_models(tag=tag):
        outcome = sweep(
            fam.name,
            points=[{}],
            formula=fam.default_property,
            backend=backend,
            theta=0.5 if backend == "sprt" else None,
            smc=smc,
            executor=executor,
            max_workers=max_workers,
            on_error="capture",
        )
        result = outcome[0]
        result.point = {"family": fam.name}
        results[fam.name] = result
    return results
