"""Zoo-wide sweeps: fan a family's parameter grid through the engine.

:func:`sweep` is the scenario-grid entry point the registry enables:
name a family, name the axes, and the grid fans through
:func:`repro.engine.sweep_check` with any of its checking backends —
``"exact"`` (the cached solver engine), ``"apmc"`` (Hoeffding
estimates) or ``"sprt"`` (threshold decisions).  Every point builds
through the shared reduction pipeline, so large grids automatically
check quotients instead of full models.

Pass ``store=`` (a :class:`repro.store.ResultStore`) and the sweep is
read-through cached: points are keyed by the *fully merged*
:class:`~repro.zoo.pipeline.ScenarioSpec` identity (family + defaults
+ base params + point + the ``reduce`` flag), so a warm repeat of the
same grid — or any overlapping grid — is served from the store instead
of re-solved.  ``executor="process"`` shards the grid across a
process pool (see :func:`repro.engine.sweep`); the merged results are
bit-identical to the serial path because per-point seed streams are
spawned by grid index.

:func:`survey` is the zoo-wide smoke sweep: every registered family at
its defaults against its own default property — the "does the whole
zoo still build and check" pass the CI benchmark job tracks.  The
families fan through *one* shared executor pass (thread or sharded
process pool), not a sequential per-family loop.
"""

from __future__ import annotations

import functools
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence

from ..engine import EXECUTORS, SmcConfig, SweepResult
from ..engine import grid as engine_grid
from ..engine import sweep as engine_sweep
from ..engine import sweep_check
from .pipeline import ScenarioSpec, build
from .registry import ZooError, get_model, list_models

__all__ = ["sweep", "survey"]


def _validate_executor(executor: str) -> None:
    """Fail fast — a typo'd executor should die here, naming the valid
    choices, not as a deep ``ValueError`` after grids and stores are
    already set up."""
    if executor not in EXECUTORS:
        raise ZooError(
            f"unknown executor {executor!r};"
            f" choose from {', '.join(EXECUTORS)}"
        )


def _build_point(
    point: Mapping[str, Any],
    *,
    family: str,
    base_params: Optional[Mapping[str, Any]],
    reduce: bool,
):
    """Build one grid point's chain (module-level for picklability)."""
    params = dict(base_params or {})
    params.update(point)
    return build(family, params, reduce=reduce).chain


def _point_store_key(
    point: Mapping[str, Any],
    *,
    family: str,
    base_params: Optional[Mapping[str, Any]],
    reduce: bool,
):
    """Scenario identity of one grid point for the result store.

    Built from the *merged* parameters (family defaults overlaid with
    ``base_params`` and the point), so ``points=[{}]`` and the same
    parameters spelled out explicitly address the same cached row.
    The ``reduce`` flag is part of the identity: full-model and
    quotient checks are cached separately.
    """
    params = dict(base_params or {})
    params.update(point)
    merged = get_model(family).merged_params(params)
    spec = ScenarioSpec(family=family, params=merged)
    return ["zoo", spec.key(), ["reduce", bool(reduce)]]


def sweep(
    family: str,
    axes: Optional[Mapping[str, Iterable[Any]]] = None,
    formula: Optional[str] = None,
    *,
    points: Optional[Sequence[Mapping[str, Any]]] = None,
    base_params: Optional[Mapping[str, Any]] = None,
    reduce: bool = True,
    backend: str = "exact",
    theta: Optional[float] = None,
    smc: Optional[SmcConfig] = None,
    solver=None,
    executor: str = "thread",
    max_workers: Optional[int] = None,
    on_error: str = "capture",
    shard_size: Optional[int] = None,
    remote: Optional[str] = None,
    store=None,
    retry=None,
    deadline=None,
    validate: bool = True,
) -> List[SweepResult]:
    """Check ``formula`` across a parameter grid of one family.

    Parameters
    ----------
    family:
        Registered family name.
    axes:
        Named parameter axes, e.g. ``{"snr_db": [4, 6, 8]}``; their
        Cartesian product (via :func:`repro.engine.grid`) is the sweep.
        Alternatively pass explicit ``points`` (a list of parameter
        dicts).
    formula:
        pCTL property; defaults to the family's ``default_property``.
    base_params:
        Overrides applied to *every* point (the grid's fixed plane).
    reduce:
        Build reduced chains (default) or full ones.
    backend / theta / smc / solver:
        Passed through to :func:`repro.engine.sweep_check` — see its
        docs for the exact/apmc/sprt semantics and per-point seeding.
    executor / max_workers / on_error / shard_size:
        Passed through to the underlying sweep runner;
        ``executor="process"`` fans shards of ``shard_size`` points
        across a process pool and ``executor="remote"`` ships them to
        a guarantee-service worker fleet (see :mod:`repro.service`).
    remote:
        Coordinator address (``"HOST:PORT"``) for
        ``executor="remote"``; falls back to ``$REPRO_COORDINATOR``.
    store:
        Optional :class:`repro.store.ResultStore` — hits are served
        from it (``SweepResult.cached``) and misses banked back.
    retry / deadline:
        Fault-tolerance policies (:class:`repro.engine.RetryPolicy` /
        :class:`repro.engine.DeadlinePolicy`, or a bare attempt count /
        timeout in seconds) applied per point; see
        :mod:`repro.resilience`.
    validate:
        Run :func:`repro.resilience.validate_guarantee` on every
        successful value, attaching ``SweepResult.warnings`` (default
        on).

    Returns the ordered :class:`~repro.engine.SweepResult` list; each
    result's ``point`` is the per-point parameter dict.
    """
    fam = get_model(family)  # fail fast on unknown names
    _validate_executor(executor)
    if (axes is None) == (points is None):
        raise ValueError("pass exactly one of axes= or points=")
    if points is None:
        points = engine_grid(**{k: list(v) for k, v in axes.items()})
    if formula is None:
        formula = fam.default_property
    builder = functools.partial(
        _build_point,
        family=family,
        base_params=dict(base_params) if base_params else None,
        reduce=reduce,
    )
    store_key = None
    if store is not None:
        store_key = functools.partial(
            _point_store_key,
            family=family,
            base_params=dict(base_params) if base_params else None,
            reduce=reduce,
        )
    return sweep_check(
        builder,
        list(points),
        formula,
        backend=backend,
        theta=theta,
        smc=smc,
        solver=solver,
        executor=executor,
        max_workers=max_workers,
        on_error=on_error,
        shard_size=shard_size,
        remote=remote,
        store=store,
        store_key=store_key,
        store_extra={"family": family} if store is not None else None,
        retry=retry,
        deadline=deadline,
        validate=validate,
    )


def _survey_family(
    name: str,
    *,
    backend: str,
    smc: Optional[SmcConfig],
    store,
    retry=None,
    deadline=None,
) -> SweepResult:
    """One survey cell: a family checked at its defaults.

    Module-level (and built exclusively from picklable pieces) so the
    survey can fan families across a process pool; each family spawns
    its own seed stream from ``smc.seed`` exactly as a standalone
    one-point :func:`sweep` would, so survey results are independent of
    how the families are scheduled.
    """
    fam = get_model(name)
    return sweep(
        name,
        points=[{}],
        formula=fam.default_property,
        backend=backend,
        theta=0.5 if backend == "sprt" else None,
        smc=smc,
        executor="serial",
        on_error="capture",
        store=store,
        retry=retry,
        deadline=deadline,
    )[0]


def survey(
    *,
    tag: Optional[str] = None,
    backend: str = "exact",
    smc: Optional[SmcConfig] = None,
    executor: str = "thread",
    max_workers: Optional[int] = None,
    remote: Optional[str] = None,
    store=None,
    retry=None,
    deadline=None,
) -> Dict[str, SweepResult]:
    """Check every registered family at its defaults.

    One point per family, each against its own ``default_property``
    with the chosen backend, all fanned through a single shared
    executor pass.  Returns ``{family name: SweepResult}``; each
    result keeps its parameter-dict ``point`` untouched and carries
    the family name in the dedicated ``label`` field.  Failures are
    captured per family, never raised — a zoo-wide health check rather
    than an experiment.  ``store`` read-through caches every cell;
    ``retry``/``deadline`` apply per family exactly as in
    :func:`sweep`.
    """
    _validate_executor(executor)
    families = list_models(tag=tag)
    runner = functools.partial(
        _survey_family, backend=backend, smc=smc, store=store,
        retry=retry, deadline=deadline,
    )
    outcomes = engine_sweep(
        runner,
        [fam.name for fam in families],
        executor=executor,
        max_workers=max_workers,
        on_error="capture",
        remote=remote,
    )
    results: Dict[str, SweepResult] = {}
    for fam, outcome in zip(families, outcomes):
        if outcome.ok:
            result = outcome.value  # the family's own captured SweepResult
        else:  # the worker itself failed (build error, pickling, ...)
            result = SweepResult(
                point={}, value=None, seconds=outcome.seconds,
                error=outcome.error,
            )
        result.label = fam.name
        results[fam.name] = result
    return results
