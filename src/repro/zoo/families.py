"""Built-in chain families: the paper's case studies plus stress chains.

Importing this module (which ``repro.zoo`` does eagerly) registers:

``mimo-1xN``
    The 1xN ML MIMO detector (Section IV-B, Tables II & V) across
    antenna counts, quantizer resolutions and SNR; reduced by the
    paper's on-the-fly block-multiset symmetry quotient.
``mimo-NRx2``
    The N_R x 2 two-transmit detector — the paper's Eq.-14/15 worked
    example — under the same symmetry reduction.
``viterbi-memory-m``
    The RTL Viterbi decoder (Section IV-A) across traceback lengths,
    quantizers and channel memories.  Memory 1 uses the paper's c/w
    abstraction ``M_R``; memory >= 2 has no hand reduction, so the
    pipeline falls back to coarsest lumping of the full model.
``viterbi-errcnt``
    The error-counter extension (the paper's larger P3 model) with the
    same abstraction.
``viterbi-convergence``
    The traceback-convergence model behind property C1 / Figure 2
    (already minimal by construction).
``birth-death``
    Synthetic birth-death chain with reflecting boundaries — a
    solver/sweep stress family whose size is one knob.
``random-sparse``
    Seeded random sparse chains with i.i.d. block structure: states
    fall into ``num_blocks`` groups, transition mass depends only on
    the group and spreads uniformly inside the target group.  Strongly
    lumpable *by construction* (quotient = block graph), so it
    exercises the lumping fallback at any size with a known answer.
"""

from __future__ import annotations

import functools
from typing import Any, Dict, List, Mapping

import numpy as np
from scipy import sparse

from ..dtmc.builder import ExplorationResult
from ..dtmc.chain import DTMC
from ..mimo import (
    MimoSystemConfig,
    build_detector_model,
    build_detector_model_2tx,
    full_state_count,
    full_state_count_2tx,
)
from ..viterbi import (
    ViterbiModelConfig,
    build_convergence_model,
    build_error_count_model,
    build_full_model,
    build_reduced_error_count_model,
    build_reduced_model,
)
from .pipeline import FULL_BUILD_LIMIT, FamilyBuild
from .registry import model_family

__all__ = [
    "BUILTIN_FAMILIES",
    "mimo_family_params",
    "viterbi_family_params",
    "convergence_family_params",
]

#: Names this module registers, in registration order.
BUILTIN_FAMILIES = (
    "mimo-1xN",
    "mimo-NRx2",
    "viterbi-memory-m",
    "viterbi-errcnt",
    "viterbi-convergence",
    "birth-death",
    "random-sparse",
)


# ----------------------------------------------------------------------
# MIMO detector families (symmetry reduction)
# ----------------------------------------------------------------------

def _mimo_config(params: Mapping[str, Any]) -> MimoSystemConfig:
    return MimoSystemConfig(
        num_rx=params["num_rx"],
        snr_db=params["snr_db"],
        num_y_levels=params["num_y_levels"],
        y_range=tuple(params["y_range"]),
        num_h_levels=params["num_h_levels"],
        h_range=tuple(params["h_range"]),
    )


@model_family(
    "mimo-1xN",
    description="1xN ML MIMO detector, block-multiset symmetry quotient",
    defaults={
        "num_rx": 2,
        "snr_db": 8.0,
        "num_y_levels": 3,
        "y_range": (-1.5, 1.5),
        "num_h_levels": 2,
        "h_range": (-1.5, 1.5),
        "branch_cutoff": 0.0,
    },
    default_property="P=? [ F<=10 flag ]",
    tags=("mimo", "paper"),
)
def _build_mimo_1xn(params: Mapping[str, Any]) -> FamilyBuild:
    config = _mimo_config(params)
    cutoff = float(params["branch_cutoff"])
    count = full_state_count(config)
    build_full = None
    if count <= FULL_BUILD_LIMIT:
        build_full = functools.partial(
            build_detector_model, config, reduced=False, branch_cutoff=cutoff
        )
    return FamilyBuild(
        build_reduced=functools.partial(
            build_detector_model, config, reduced=True, branch_cutoff=cutoff
        ),
        build_full=build_full,
        full_state_count=count,
        reduction="symmetry",
        respect=("flag",),
    )


@model_family(
    "mimo-NRx2",
    description="N_R x 2 two-transmit detector (paper Eq. 14/15 example)",
    defaults={
        "num_rx": 2,
        "snr_db": 8.0,
        "num_y_levels": 2,
        "y_range": (-1.5, 1.5),
        "num_h_levels": 2,
        "h_range": (-1.5, 1.5),
        "branch_cutoff": 0.0,
    },
    default_property="P=? [ F<=10 flag ]",
    tags=("mimo", "paper"),
)
def _build_mimo_nrx2(params: Mapping[str, Any]) -> FamilyBuild:
    config = _mimo_config(params)
    cutoff = float(params["branch_cutoff"])
    count = full_state_count_2tx(config)
    build_full = None
    if count <= FULL_BUILD_LIMIT:
        build_full = functools.partial(
            build_detector_model_2tx, config, reduced=False, branch_cutoff=cutoff
        )
    return FamilyBuild(
        build_reduced=functools.partial(
            build_detector_model_2tx, config, reduced=True, branch_cutoff=cutoff
        ),
        build_full=build_full,
        full_state_count=count,
        reduction="symmetry",
        respect=("flag",),
    )


# ----------------------------------------------------------------------
# Viterbi decoder families (abstraction / lumping fallback)
# ----------------------------------------------------------------------

def _viterbi_config(params: Mapping[str, Any]) -> ViterbiModelConfig:
    taps = params.get("taps")
    if taps is None:
        taps = (1.0,) * (int(params.get("memory", 1)) + 1)
    kwargs: Dict[str, Any] = dict(
        snr_db=params["snr_db"],
        traceback_length=params["traceback_length"],
        num_levels=params["num_levels"],
        quantizer_low=params["quantizer_low"],
        quantizer_high=params["quantizer_high"],
        pm_max=params["pm_max"],
        taps=tuple(taps),
    )
    if "error_count_cap" in params:
        kwargs["error_count_cap"] = params["error_count_cap"]
    return ViterbiModelConfig(**kwargs)


def mimo_family_params(
    config: MimoSystemConfig, branch_cutoff: float = 0.0
) -> Dict[str, Any]:
    """Translate a :class:`MimoSystemConfig` into ``mimo-1xN`` /
    ``mimo-NRx2`` family parameters (the experiment drivers' bridge
    from their historical config objects to the registry)."""
    return {
        "num_rx": config.num_rx,
        "snr_db": config.snr_db,
        "num_y_levels": config.num_y_levels,
        "y_range": tuple(config.y_range),
        "num_h_levels": config.num_h_levels,
        "h_range": tuple(config.h_range),
        "branch_cutoff": branch_cutoff,
    }


def viterbi_family_params(
    config: ViterbiModelConfig, error_count: bool = False
) -> Dict[str, Any]:
    """Translate a :class:`ViterbiModelConfig` into ``viterbi-memory-m``
    (or, with ``error_count=True``, ``viterbi-errcnt``) parameters."""
    params: Dict[str, Any] = {
        "memory": config.memory,
        "taps": tuple(config.taps),
        "snr_db": config.snr_db,
        "traceback_length": config.traceback_length,
        "num_levels": config.num_levels,
        "quantizer_low": config.quantizer_low,
        "quantizer_high": config.quantizer_high,
        "pm_max": config.pm_max,
    }
    if error_count:
        params["error_count_cap"] = config.error_count_cap
    return params


def convergence_family_params(config: ViterbiModelConfig) -> Dict[str, Any]:
    """Translate a :class:`ViterbiModelConfig` into
    ``viterbi-convergence`` parameters."""
    params = viterbi_family_params(config)
    del params["memory"]
    return params


@model_family(
    "viterbi-memory-m",
    description="RTL Viterbi decoder across traceback length and memory m",
    defaults={
        "memory": 1,
        "taps": None,  # overrides memory when given, e.g. (1.0, 0.5, 0.5)
        "snr_db": 5.0,
        "traceback_length": 3,
        "num_levels": 3,
        "quantizer_low": -3.0,
        "quantizer_high": 3.0,
        "pm_max": 6,
    },
    default_property="P=? [ F<=50 flag ]",
    tags=("viterbi", "paper"),
)
def _build_viterbi(params: Mapping[str, Any]) -> FamilyBuild:
    config = _viterbi_config(params)
    build_reduced = None
    reduction = "lumping"
    if config.memory == 1:
        build_reduced = functools.partial(build_reduced_model, config)
        reduction = "abstraction"
    return FamilyBuild(
        build_reduced=build_reduced,
        build_full=functools.partial(build_full_model, config),
        reduction=reduction,
        respect=("flag",),
    )


@model_family(
    "viterbi-errcnt",
    description="Viterbi decoder with saturating error counter (P3 model)",
    defaults={
        "memory": 1,
        "taps": None,
        "snr_db": 5.0,
        "traceback_length": 3,
        "num_levels": 3,
        "quantizer_low": -3.0,
        "quantizer_high": 3.0,
        "pm_max": 6,
        "error_count_cap": 2,
    },
    default_property="P=? [ F<=300 overflow ]",
    tags=("viterbi", "paper"),
)
def _build_viterbi_errcnt(params: Mapping[str, Any]) -> FamilyBuild:
    config = _viterbi_config(params)
    build_reduced = None
    reduction = "lumping"
    if config.memory == 1:
        build_reduced = functools.partial(
            build_reduced_error_count_model, config
        )
        reduction = "abstraction"
    return FamilyBuild(
        build_reduced=build_reduced,
        build_full=functools.partial(build_error_count_model, config),
        reduction=reduction,
        respect=("flag", "overflow"),
    )


@model_family(
    "viterbi-convergence",
    description="Traceback-convergence model for C1 (Figure 2)",
    defaults={
        "taps": None,
        "snr_db": 8.0,
        "traceback_length": 4,
        "num_levels": 5,
        "quantizer_low": -3.0,
        "quantizer_high": 3.0,
        "pm_max": 6,
    },
    default_property="P=? [ F<=50 nonconv ]",
    tags=("viterbi", "paper"),
)
def _build_viterbi_convergence(params: Mapping[str, Any]) -> FamilyBuild:
    config = _viterbi_config(params)
    return FamilyBuild(
        build_full=functools.partial(build_convergence_model, config),
        reduction="none",
        respect=("nonconv",),
    )


# ----------------------------------------------------------------------
# Synthetic stress families
# ----------------------------------------------------------------------

def _wrap_chain(chain: DTMC) -> ExplorationResult:
    """Adapt a directly-constructed DTMC to the builder's result type."""
    states = list(chain.states) if chain.states is not None else []
    return ExplorationResult(
        chain=chain,
        states=states,
        index={s: i for i, s in enumerate(states)},
        bfs_levels=0,
    )


@model_family(
    "birth-death",
    description="Birth-death chain with reflecting boundaries (stress)",
    defaults={"n": 16, "p_up": 0.3, "p_down": 0.2},
    default_property="P=? [ F<=100 goal ]",
    tags=("synthetic", "stress"),
)
def _build_birth_death(params: Mapping[str, Any]) -> FamilyBuild:
    n = int(params["n"])
    p_up = float(params["p_up"])
    p_down = float(params["p_down"])
    if n < 2:
        raise ValueError("birth-death needs n >= 2 states")
    if p_up <= 0 or p_down <= 0 or p_up + p_down > 1.0:
        raise ValueError("need p_up, p_down > 0 with p_up + p_down <= 1")

    def build() -> ExplorationResult:
        # Tridiagonal structure assembled as three diagonals at once —
        # O(n) numpy, so 10^5+-state stress chains build in milliseconds.
        up = np.full(n, p_up)
        up[-1] = 0.0
        down = np.full(n, p_down)
        down[0] = 0.0
        stay = 1.0 - up - down
        matrix = sparse.diags(
            [down[1:], stay, up[:-1]], offsets=[-1, 0, 1], format="csr"
        )
        matrix.eliminate_zeros()
        init = np.zeros(n)
        init[0] = 1.0
        level = np.arange(n, dtype=np.float64)
        chain = DTMC(
            matrix,
            init,
            labels={
                "goal": level == n - 1,
                "empty": level == 0,
            },
            rewards={"level": level},
            states=list(range(n)),
        )
        return _wrap_chain(chain)

    return FamilyBuild(
        build_full=build,
        reduction="lumping",
        respect=("goal",),
    )


@model_family(
    "random-sparse",
    description="Seeded random sparse chain with i.i.d. block structure",
    defaults={"n": 64, "num_blocks": 8, "degree": 3, "seed": 0},
    default_property="P=? [ F<=30 goal ]",
    tags=("synthetic", "stress"),
)
def _build_random_sparse(params: Mapping[str, Any]) -> FamilyBuild:
    n = int(params["n"])
    b = int(params["num_blocks"])
    degree = int(params["degree"])
    seed = int(params["seed"])
    if not (1 <= b <= n):
        raise ValueError("need 1 <= num_blocks <= n")
    if not (1 <= degree <= b):
        raise ValueError("need 1 <= degree <= num_blocks")

    def build() -> ExplorationResult:
        rng = np.random.default_rng(seed)
        block_of = np.arange(n) * b // n  # contiguous, non-empty blocks
        sizes = np.bincount(block_of, minlength=b)
        starts = np.concatenate([[0], np.cumsum(sizes)])
        # Block-level transition structure: each block jumps to `degree`
        # blocks with random (renormalized) weights.  The RNG stream is
        # identical to the historical per-state builder, so a given seed
        # still produces the same chain.
        pattern_cols: List[np.ndarray] = []
        pattern_vals: List[np.ndarray] = []
        for blk in range(b):
            targets = rng.choice(b, size=degree, replace=False)
            weights = rng.random(degree) + 0.1
            weights /= weights.sum()
            pattern_cols.append(
                np.concatenate(
                    [np.arange(starts[t], starts[t + 1]) for t in targets]
                )
            )
            pattern_vals.append(
                np.concatenate(
                    [np.full(sizes[t], w / sizes[t])
                     for t, w in zip(targets, weights)]
                )
            )
        # Every state of a block shares its block's row pattern; blocks
        # are contiguous, so the CSR arrays are tiled patterns — O(nnz)
        # numpy instead of a per-transition Python loop, making
        # 10^5+-state instances (the lumping-fallback stress scale)
        # build in well under a second.
        row_nnz = np.array([cols.size for cols in pattern_cols], dtype=np.int64)
        indices = np.concatenate(
            [np.tile(pattern_cols[blk], sizes[blk]) for blk in range(b)]
        )
        data = np.concatenate(
            [np.tile(pattern_vals[blk], sizes[blk]) for blk in range(b)]
        )
        indptr = np.concatenate([[0], np.cumsum(np.repeat(row_nnz, sizes))])
        matrix = sparse.csr_matrix((data, indices, indptr), shape=(n, n))
        matrix.sort_indices()
        init = np.zeros(n)
        init[: sizes[0]] = 1.0 / sizes[0]
        chain = DTMC(
            matrix,
            init,
            labels={"goal": block_of == b - 1},
            rewards={"block": block_of.astype(np.float64)},
            states=list(range(n)),
        )
        return _wrap_chain(chain)

    return FamilyBuild(
        build_full=build,
        reduction="lumping",
        respect=("goal",),
    )
