"""The scenario registry: named, parameterized chain families.

A *family* is a recipe for a whole space of DTMCs — the 1xN MIMO
detector across antenna counts and quantizer resolutions, the Viterbi
decoder across traceback lengths and channel memories, synthetic
stress chains across sizes.  Registering a family gives it a stable
name, documented defaults, and a uniform build path: every entry goes
through the shared :func:`repro.zoo.pipeline.build` pipeline
(``ScenarioSpec -> build -> reduce -> Engine registration``), so the
provenance a scenario carries — full vs reduced state counts,
reduction kind, wall times — is comparable across families.

The registry is the plug-in point every scaling layer builds on: the
sweep runner enumerates it, the CLI renders it, and new workloads join
the zoo with one :func:`register_model` call (or the
:func:`model_family` decorator).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Tuple

__all__ = [
    "ModelFamily",
    "ZooError",
    "UnknownFamilyError",
    "register_model",
    "model_family",
    "get_model",
    "list_models",
    "unregister_model",
]


class ZooError(ValueError):
    """Base class for scenario-zoo errors."""


class UnknownFamilyError(ZooError, KeyError):
    """Raised when a family name is not registered."""


@dataclass(frozen=True)
class ModelFamily:
    """One registered chain family.

    Attributes
    ----------
    name:
        Registry key (``"mimo-1xN"``, ``"viterbi-memory-m"``, ...).
    builder:
        Maps a *complete* parameter dict (defaults merged with
        overrides) to a :class:`repro.zoo.pipeline.FamilyBuild`
        describing how to build the full and/or reduced chain.
    description:
        One-line summary shown by ``python -m repro.zoo list``.
    defaults:
        The family's complete default parameterization.  Defaults are
        laptop-scale: every family must build in well under a second at
        its defaults, because tests and the CLI build them eagerly.
    default_property:
        A *bounded* pCTL property usable by every checking backend
        (exact, APMC and SPRT) — the formula zoo-wide surveys check.
    tags:
        Free-form labels (``"mimo"``, ``"synthetic"``, ...) for
        filtering.
    """

    name: str
    builder: Callable[[Mapping[str, Any]], Any]
    description: str = ""
    defaults: Mapping[str, Any] = field(default_factory=dict)
    default_property: str = "P=? [ F<=50 flag ]"
    tags: Tuple[str, ...] = ()

    def merged_params(self, params: Optional[Mapping[str, Any]]) -> Dict[str, Any]:
        """Defaults overlaid with ``params``; unknown keys are errors."""
        merged = dict(self.defaults)
        if params:
            unknown = sorted(set(params) - set(merged))
            if unknown:
                raise ZooError(
                    f"unknown parameter(s) {', '.join(unknown)} for family"
                    f" {self.name!r}; valid: {', '.join(sorted(merged))}"
                )
            merged.update(params)
        return merged


_REGISTRY: Dict[str, ModelFamily] = {}


def register_model(family: ModelFamily, replace: bool = False) -> ModelFamily:
    """Add ``family`` to the registry.

    Re-registering an existing name raises unless ``replace=True`` —
    silent shadowing is how two experiments end up sweeping different
    models under one name.
    """
    if not family.name:
        raise ZooError("family name must be non-empty")
    if family.name in _REGISTRY and not replace:
        raise ZooError(
            f"family {family.name!r} is already registered;"
            " pass replace=True to overwrite"
        )
    _REGISTRY[family.name] = family
    return family


def model_family(
    name: str,
    *,
    description: str = "",
    defaults: Optional[Mapping[str, Any]] = None,
    default_property: str = "P=? [ F<=50 flag ]",
    tags: Tuple[str, ...] = (),
    replace: bool = False,
) -> Callable:
    """Decorator form of :func:`register_model` for builder functions.

    >>> @model_family("two-state", defaults={"p": 0.5})
    ... def _build(params):
    ...     ...
    """

    def decorate(builder: Callable) -> Callable:
        doc = (builder.__doc__ or "").strip().splitlines()
        register_model(
            ModelFamily(
                name=name,
                builder=builder,
                description=description or (doc[0] if doc else ""),
                defaults=dict(defaults or {}),
                default_property=default_property,
                tags=tuple(tags),
            ),
            replace=replace,
        )
        return builder

    return decorate


def get_model(name: str) -> ModelFamily:
    """Look up a family; raises :class:`UnknownFamilyError` with the
    registered names on a miss."""
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY)) or "<registry is empty>"
        raise UnknownFamilyError(
            f"no family named {name!r}; registered: {known}"
        ) from None


def list_models(tag: Optional[str] = None) -> List[ModelFamily]:
    """Registered families in name order, optionally filtered by tag."""
    families = sorted(_REGISTRY.values(), key=lambda f: f.name)
    if tag is not None:
        families = [f for f in families if tag in f.tags]
    return families


def unregister_model(name: str) -> None:
    """Remove a family (primarily for tests); missing names are fine."""
    _REGISTRY.pop(name, None)
