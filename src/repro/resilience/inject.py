"""Deterministic fault injection for the chaos test suite.

Proving the fabric survives faults needs faults on demand:
:class:`FaultInjector` wraps any sweep function and injects a chosen
:class:`Fault` — raise an exception, hang, kill the worker process, or
corrupt the returned value — at chosen points, a chosen number of
times.  Everything is deterministic:

* *which* points fault is fixed by the injection plan (explicit
  points, or a seed-driven pseudo-random sample via :meth:`sample`);
* *how often* is tracked in a filesystem scoreboard (one ``O_EXCL``
  file per attempt), so "fail twice, then succeed" behaves identically
  whether attempts land in one process, many pool workers, or a
  re-run after a crash — exactly the cross-process bookkeeping a
  killed worker needs, since its memory dies with it.

The injector and its wrapped functions are picklable, so chaos tests
drive the real ``executor="process"`` path, not a simulation of it.

The networked fabric adds a second fault surface — the wire — so the
injector also speaks :class:`WireFault`: corrupt a frame's payload
bytes, truncate it, disconnect mid-frame, or delay it, each under the
same cross-process ``times`` scoreboard.  :meth:`FaultInjector
.send_through` perturbs an otherwise-valid frame built by
:func:`repro.service.wire.frame`, which is how the chaos tests prove
the hardened receive side turns every perturbation into a typed,
retryable error instead of a hang or a garbage parse.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterable, Mapping, Optional, Tuple

__all__ = ["Fault", "FaultInjector", "InjectedFault", "WireFault"]

_KINDS = ("raise", "hang", "kill", "corrupt")
_WIRE_KINDS = ("corrupt", "truncate", "disconnect", "delay")


class InjectedFault(RuntimeError):
    """The exception ``kind="raise"`` faults throw by default."""


@dataclass(frozen=True)
class Fault:
    """One fault specification.

    Parameters
    ----------
    kind:
        ``"raise"`` (throw ``exception(message)``), ``"hang"`` (sleep
        ``hang_seconds`` — the deadline watchdog's prey), ``"kill"``
        (``os._exit`` the worker process, bypassing all cleanup — the
        ``BrokenProcessPool`` trigger), or ``"corrupt"`` (compute
        nothing and return ``corrupt_value`` — the validation layer's
        prey).
    times:
        Inject on the first ``times`` attempts only, then behave
        normally (``None`` = always).  ``times=2`` with a 3-attempt
        retry policy models a transient failure that recovery should
        absorb.
    """

    kind: str = "raise"
    times: Optional[int] = None
    message: str = "injected fault"
    exception: type = InjectedFault
    hang_seconds: float = 3600.0
    corrupt_value: Any = float("nan")

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r};"
                f" choose from {', '.join(_KINDS)}"
            )
        if self.times is not None and self.times < 1:
            raise ValueError(f"times must be >= 1 or None, got {self.times}")


@dataclass(frozen=True)
class WireFault:
    """One wire-level fault specification.

    Parameters
    ----------
    kind:
        ``"corrupt"`` (flip one payload byte — the CRC32 check's
        prey), ``"truncate"`` (send only the first half of the frame
        and close — the mid-frame-EOF path), ``"disconnect"`` (close
        the socket before sending anything — a connection reset), or
        ``"delay"`` (sleep ``delay_seconds`` before sending the intact
        frame — injected latency for timeout paths).
    times:
        Inject on the first ``times`` sends only, then pass frames
        through untouched (``None`` = always).  Counted on the same
        cross-process ``O_EXCL`` scoreboard as compute faults, keyed
        by the fault's ``key``.
    key:
        Scoreboard identity; two wire faults with the same key share
        an attempt counter.
    delay_seconds:
        Latency for ``kind="delay"``.
    """

    kind: str = "corrupt"
    times: Optional[int] = None
    key: str = "wire"
    delay_seconds: float = 0.5

    def __post_init__(self) -> None:
        if self.kind not in _WIRE_KINDS:
            raise ValueError(
                f"unknown wire fault kind {self.kind!r};"
                f" choose from {', '.join(_WIRE_KINDS)}"
            )
        if self.times is not None and self.times < 1:
            raise ValueError(f"times must be >= 1 or None, got {self.times}")
        if self.delay_seconds < 0:
            raise ValueError(
                f"delay_seconds must be >= 0, got {self.delay_seconds}"
            )


def _canonical(point: Any) -> str:
    """Canonical text identity of a point (mirrors the sweep runner's)."""
    return json.dumps(point, sort_keys=True, default=repr)


def _digest(text: str) -> str:
    return hashlib.sha256(text.encode("utf-8")).hexdigest()[:24]


class FaultInjector:
    """Seed-driven fault plan + cross-process attempt scoreboard.

    Parameters
    ----------
    plan:
        ``{point: Fault}`` — which points fault.  Points are matched
        by canonical identity (the same JSON canonicalization the
        sweep runner deduplicates with), and the ``(index, point)``
        tuples :func:`repro.engine.sweep_check` threads internally are
        unwrapped automatically, so one plan drives both ``sweep`` and
        ``sweep_check``.
    state_dir:
        Directory for the attempt scoreboard.  Every injection check
        claims the next ``<digest>.<n>`` file with ``O_CREAT|O_EXCL``,
        which is atomic across processes — the count survives worker
        kills and process-pool rebuilds.
    """

    def __init__(
        self,
        plan: Mapping[Any, Fault] | Iterable[Tuple[Any, Fault]],
        state_dir: "os.PathLike[str] | str",
    ) -> None:
        items = plan.items() if isinstance(plan, Mapping) else plan
        self.plan: Dict[str, Fault] = {
            _canonical(point): fault for point, fault in items
        }
        self.state_dir = os.fspath(state_dir)
        os.makedirs(self.state_dir, exist_ok=True)

    @classmethod
    def sample(
        cls,
        points: Iterable[Any],
        fault: Fault,
        state_dir: "os.PathLike[str] | str",
        *,
        rate: float = 0.1,
        seed: int = 0,
    ) -> "FaultInjector":
        """Plan ``fault`` at a deterministic pseudo-random subset.

        Each point is selected iff the SHA-256 of ``seed:identity``
        maps below ``rate`` — a pure function of ``(seed, point)``, so
        the same chaos run reproduces across machines and executors.
        """
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"rate must be in [0, 1], got {rate}")
        chosen = []
        for point in points:
            key = _canonical(point)
            digest = hashlib.sha256(f"{seed}:{key}".encode("utf-8")).digest()
            if int.from_bytes(digest[:8], "big") / 2**64 < rate:
                chosen.append((point, fault))
        return cls(chosen, state_dir)

    # -- matching / accounting --------------------------------------------

    def _match(self, point: Any) -> Optional[Tuple[str, Fault]]:
        key = _canonical(point)
        fault = self.plan.get(key)
        if fault is not None:
            return key, fault
        # sweep_check wraps points as (grid index, point); match inner.
        if isinstance(point, tuple) and len(point) == 2:
            key = _canonical(point[1])
            fault = self.plan.get(key)
            if fault is not None:
                return key, fault
        return None

    def _claim_attempt(self, key: str) -> int:
        """Atomically claim and return this point's next attempt number."""
        digest = _digest(key)
        attempt = 1
        while True:
            path = os.path.join(self.state_dir, f"{digest}.{attempt}")
            try:
                os.close(os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY))
                return attempt
            except FileExistsError:
                attempt += 1

    def attempts(self, point: Any) -> int:
        """How many injection checks this point has been through."""
        digest = _digest(_canonical(point))
        count = 0
        while os.path.exists(
            os.path.join(self.state_dir, f"{digest}.{count + 1}")
        ):
            count += 1
        return count

    def reset(self) -> None:
        """Clear the scoreboard (a fresh chaos round)."""
        for name in os.listdir(self.state_dir):
            os.unlink(os.path.join(self.state_dir, name))

    # -- wrapping ----------------------------------------------------------

    def wrap(self, fn: Callable[[Any], Any]) -> "_InjectedFunction":
        """A picklable callable: ``fn`` with this injection plan."""
        return _InjectedFunction(fn, self)

    def fire(self, point: Any) -> Optional[Any]:
        """Apply the plan for one call at ``point``.

        Returns ``None`` when the call should proceed normally, or a
        one-element tuple ``(value,)`` when a ``corrupt`` fault wants
        that value returned instead.  ``raise``/``hang``/``kill``
        faults act directly.
        """
        match = self._match(point)
        if match is None:
            return None
        key, fault = match
        attempt = self._claim_attempt(key)
        if fault.times is not None and attempt > fault.times:
            return None
        if fault.kind == "raise":
            raise fault.exception(f"{fault.message} (attempt {attempt})")
        if fault.kind == "hang":
            time.sleep(fault.hang_seconds)
            return None
        if fault.kind == "kill":
            os._exit(13)
        return (fault.corrupt_value,)

    def send_through(
        self,
        sock: Any,
        message: Dict[str, Any],
        fault: WireFault,
    ) -> bool:
        """Send ``message`` over ``sock``, perturbed per ``fault``.

        The faulty twin of :func:`repro.service.wire.send_message`:
        builds the *valid* frame first, then applies the planned
        perturbation — flip a deterministic payload byte
        (``corrupt``), send half the frame and close (``truncate``),
        close without sending (``disconnect``), or sleep then send
        intact (``delay``).  The fault's ``times`` budget is claimed
        on the shared scoreboard, so "corrupt the first two sends,
        then behave" works across processes.  Returns ``True`` when
        the frame was perturbed, ``False`` when it passed through
        intact.  ``truncate`` and ``disconnect`` close ``sock``.
        """
        from ..service.wire import _HEADER, frame

        data = frame(message)
        attempt = self._claim_attempt(f"wire:{fault.key}")
        if fault.times is not None and attempt > fault.times:
            sock.sendall(data)
            return False
        if fault.kind == "corrupt":
            payload_len = len(data) - _HEADER.size
            digest = hashlib.sha256(
                f"{fault.key}:{attempt}".encode("utf-8")
            ).digest()
            offset = _HEADER.size + int.from_bytes(digest[:8], "big") % max(
                payload_len, 1
            )
            corrupted = bytearray(data)
            corrupted[offset] ^= 0xFF
            sock.sendall(bytes(corrupted))
            return True
        if fault.kind == "truncate":
            sock.sendall(data[: max(_HEADER.size, len(data) // 2)])
            sock.close()
            return True
        if fault.kind == "disconnect":
            sock.close()
            return True
        time.sleep(fault.delay_seconds)  # kind == "delay"
        sock.sendall(data)
        return True

    def with_fault(self, point: Any, fault: Fault) -> "FaultInjector":
        """Copy of this injector with one more planned fault."""
        clone = FaultInjector({}, self.state_dir)
        clone.plan = dict(self.plan)
        clone.plan[_canonical(point)] = fault
        return clone

    @staticmethod
    def kill_remote(connect: str, worker: Optional[str] = None) -> str:
        """Kill one networked sweep worker over the wire.

        The distributed twin of ``Fault(kind="kill")``: asks the
        coordinator at ``connect`` to order ``worker`` (an id from
        ``/stats``, or any live worker when ``None``) to ``os._exit``
        on its next poll — no cleanup, exactly a SIGKILL's footprint.
        The coordinator's reaper then reassigns the victim's leases,
        which is the recovery path chaos tests exist to exercise.
        Returns the condemned worker's id.
        """
        from ..service.client import kill_worker

        return kill_worker(connect, worker)


class _InjectedFunction:
    """Module-level wrapper so injected sweep functions pickle."""

    def __init__(self, fn: Callable[[Any], Any], injector: FaultInjector):
        self.fn = fn
        self.injector = injector

    def __call__(self, point: Any) -> Any:
        fired = self.injector.fire(point)
        if fired is not None:  # corrupt fault: replace the value
            return fired[0]
        return self.fn(point)
