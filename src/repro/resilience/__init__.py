"""Fault tolerance for the sweep fabric.

The guarantee service certifies reliability figures — so the fabric
computing them has to be reliable itself.  This package is the
fault-tolerance layer threaded through :mod:`repro.engine.sweep`,
:mod:`repro.zoo` and the ``repro-zoo`` CLI:

* :class:`RetryPolicy` / :class:`DeadlinePolicy` — per-point retry
  budgets (exponential backoff, deterministic jitter) and wall-clock
  deadlines (watchdog threads on serial/thread executors, pool-level
  ``concurrent.futures`` timeouts on the process executor).
* Crash recovery — the process executor survives worker death
  (``BrokenProcessPool``): the pool is rebuilt, lost shards are
  resubmitted, and a repeatedly-fatal shard is bisected down to the
  single poisoned point, which is quarantined into its
  :class:`~repro.engine.SweepResult` instead of sinking the sweep.
* Checkpoint/resume — sweeps against a
  :class:`~repro.store.ResultStore` persist every *successful* point;
  an interrupted run re-executed with the same store recomputes only
  what is missing.  :class:`SweepReport` summarizes the triage.
* :func:`validate_guarantee` — NaN/Inf/range/monotonicity/
  cross-backend checks on every value the fabric emits, downgraded to
  structured :class:`ValidationWarning` records on the result.
* :class:`FaultInjector` — the deterministic chaos harness
  (raise / hang / kill-worker / corrupt-value) the test suite uses to
  prove all of the above.

This module imports only the standard library at import time, so the
engine can depend on it without cycles.
"""

from .inject import Fault, FaultInjector, InjectedFault, WireFault
from .policies import (
    CircuitBreaker,
    DeadlineExceeded,
    DeadlinePolicy,
    RetryPolicy,
)
from .report import SweepReport
from .validate import (
    ValidationWarning,
    formula_kind,
    numeric_value,
    validate_guarantee,
    validate_monotone,
)

__all__ = [
    "RetryPolicy",
    "DeadlinePolicy",
    "DeadlineExceeded",
    "SweepReport",
    "ValidationWarning",
    "validate_guarantee",
    "validate_monotone",
    "formula_kind",
    "numeric_value",
    "CircuitBreaker",
    "Fault",
    "FaultInjector",
    "InjectedFault",
    "WireFault",
]
