"""Guarantee validation: no silently-wrong number leaves the fabric.

The ROADMAP's serving story is "a million automated checks" — at that
volume a NaN from a degenerate solve, a probability of 1.0000000002
from accumulated round-off, or an estimate that disagrees wildly with
a cross-backend sanity check must be *flagged*, not silently cached
and served.  :func:`validate_guarantee` is that gate: it inspects any
value the fabric emits (floats, :class:`~repro.smc.ApmcResult`,
:class:`~repro.smc.SprtResult`, :class:`~repro.core.Guarantee`) and
returns structured :class:`ValidationWarning` records.  Violations are
deliberately *warnings on the result*, never exceptions: a suspicious
number quarantines attention, not the sweep.

Checks
------
* **NaN / Inf** — always an anomaly for a checked metric.
* **Probability range** — ``P=?`` / ``S=?`` values must lie in
  ``[0, 1]`` up to a round-off tolerance; the warning carries the
  clipped value so callers can decide to clamp.
* **Monotonicity hints** — :func:`validate_monotone` checks an
  ordered series of sweep values against a declared trend (e.g. BER
  falls as SNR rises) and flags inversions beyond tolerance.
* **Cross-backend plausibility** — given the model, an exact value of
  a bounded path property is re-estimated with a cheap APMC run and
  flagged when the two disagree beyond the estimate's guarantee.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "ValidationWarning",
    "validate_guarantee",
    "validate_monotone",
    "numeric_value",
    "formula_kind",
]

#: Round-off slack for the probability-range check: linear solves land
#: a few ulps outside [0, 1] without anything being wrong.
RANGE_TOLERANCE = 1e-9


@dataclass(frozen=True)
class ValidationWarning:
    """One structured validation violation.

    ``code`` is machine-matchable (``"nan"``, ``"inf"``, ``"range"``,
    ``"monotonicity"``, ``"cross-backend"``); ``message`` is the human
    diagnostic; ``value`` the offending number and ``clipped`` the
    nearest plausible value when one exists (range violations only).
    """

    code: str
    message: str
    value: Optional[float] = None
    clipped: Optional[float] = None

    def __str__(self) -> str:
        return f"[{self.code}] {self.message}"


def numeric_value(value: Any) -> Optional[float]:
    """The checkable number inside a fabric value, or ``None``.

    Unwraps :class:`~repro.core.Guarantee` (``.value``) and
    :class:`~repro.smc.ApmcResult` (``.estimate``) duck-typed; SPRT
    decisions carry a boolean verdict, which is validated only for
    being a clean 0/1.
    """
    if isinstance(value, bool):
        return float(value)
    if isinstance(value, (int, float)):
        return float(value)
    for attribute in ("estimate", "value"):
        inner = getattr(value, attribute, None)
        if isinstance(inner, (int, float)) and not isinstance(inner, bool):
            return float(inner)
    accept = getattr(value, "accept", None)
    if isinstance(accept, (bool,)):
        return float(accept)
    return None


def formula_kind(formula: Optional[str]) -> Optional[str]:
    """``"probability"`` / ``"reward"`` / ``None`` for a pCTL string.

    ``P=?`` and ``S=?`` queries are probability-valued (range-checked
    against ``[0, 1]``); ``R=?`` queries are rewards (range-checked
    against ``>= 0`` only).  Unparseable input returns ``None`` — the
    numeric checks still run, the range check is skipped.
    """
    if not formula:
        return None
    try:  # deferred: keep this module import-light (no package cycles)
        from ..pctl import parse_formula
        from ..pctl.ast import ProbQuery, RewardQuery, SteadyQuery

        tree = parse_formula(formula)
    except Exception:
        return None
    if isinstance(tree, (ProbQuery, SteadyQuery)):
        return "probability"
    if isinstance(tree, RewardQuery):
        return "reward"
    return None


def _numeric_warnings(
    number: float, kind: Optional[str], tolerance: float
) -> List[ValidationWarning]:
    if math.isnan(number):
        return [
            ValidationWarning(
                code="nan",
                message="checked value is NaN",
                value=number,
            )
        ]
    if math.isinf(number):
        # R=? [F target] is legitimately +inf for states that miss the
        # target; rewards therefore only flag *negative* infinity.
        if kind == "reward" and number > 0:
            return []
        return [
            ValidationWarning(
                code="inf",
                message="checked value is infinite",
                value=number,
            )
        ]
    if kind == "probability" and not (
        -tolerance <= number <= 1.0 + tolerance
    ):
        clipped = min(1.0, max(0.0, number))
        return [
            ValidationWarning(
                code="range",
                message=(
                    f"probability {number!r} outside [0, 1]"
                    f" (clipped: {clipped!r})"
                ),
                value=number,
                clipped=clipped,
            )
        ]
    if kind == "reward" and number < -tolerance:
        return [
            ValidationWarning(
                code="range",
                message=f"reward {number!r} is negative (clipped: 0.0)",
                value=number,
                clipped=0.0,
            )
        ]
    return []


def validate_guarantee(
    value: Any,
    *,
    formula: Optional[str] = None,
    kind: Optional[str] = None,
    tolerance: float = RANGE_TOLERANCE,
    cross_check_chain: Any = None,
    cross_check_epsilon: float = 0.05,
    cross_check_seed: int = 0,
) -> Tuple[ValidationWarning, ...]:
    """Validate one fabric-emitted value; returns warning records.

    Parameters
    ----------
    value:
        A checked number, :class:`~repro.core.Guarantee`,
        :class:`~repro.smc.ApmcResult` or :class:`~repro.smc.SprtResult`.
    formula:
        The pCTL property the value answers; drives the range check
        (probabilities vs rewards).  ``kind`` may be passed directly
        (``"probability"`` / ``"reward"``) when the caller has already
        classified the formula — sweeps classify once per grid, not
        once per point.
    tolerance:
        Round-off slack of the range check.
    cross_check_chain:
        Optional model.  When given (and the formula is a bounded path
        property the statistical engine supports), the value is
        re-estimated with a cheap seeded APMC run at
        ``cross_check_epsilon`` accuracy; disagreement beyond
        ``2*epsilon`` past the estimate's own guarantee raises a
        ``"cross-backend"`` warning.  Off by default — it costs a
        sampling run.

    An empty tuple means the value passed every applicable check.
    """
    warnings: List[ValidationWarning] = []
    if kind is None:
        kind = formula_kind(formula)
    number = numeric_value(value)
    if number is None:
        return tuple(warnings)
    warnings.extend(_numeric_warnings(number, kind, tolerance))
    if (
        cross_check_chain is not None
        and formula
        and not warnings
        and kind == "probability"
    ):
        cross = _cross_check(
            number,
            formula,
            cross_check_chain,
            cross_check_epsilon,
            cross_check_seed,
        )
        if cross is not None:
            warnings.append(cross)
    return tuple(warnings)


def _cross_check(
    number: float,
    formula: str,
    chain: Any,
    epsilon: float,
    seed: int,
) -> Optional[ValidationWarning]:
    """Cheap APMC plausibility probe of an exact probability."""
    try:  # deferred import; unsupported formulas simply skip the probe
        from ..smc import smc_estimate

        probe = smc_estimate(
            chain, formula, epsilon=epsilon, delta=0.05, seed=seed
        )
    except Exception:
        return None
    gap = abs(number - probe.estimate)
    allowance = probe.epsilon + 2.0 * epsilon
    if gap <= allowance:
        return None
    return ValidationWarning(
        code="cross-backend",
        message=(
            f"exact value {number:.6g} disagrees with APMC estimate"
            f" {probe.estimate:.6g} (+-{probe.epsilon}) by {gap:.6g}"
            f" — beyond the {allowance:.6g} plausibility allowance"
        ),
        value=number,
    )


def validate_monotone(
    values: Sequence[Any],
    *,
    decreasing: bool = True,
    tolerance: float = 1e-9,
    labels: Optional[Iterable[Any]] = None,
) -> Tuple[ValidationWarning, ...]:
    """Monotonicity hint over an ordered series of sweep values.

    The paper's sweeps have known physics: BER falls as SNR rises,
    convergence probability rises with traceback depth.  Passing the
    ordered value series (and the expected direction) flags every
    adjacent inversion beyond ``tolerance`` — a cheap tripwire for
    solver instability across a grid.  Non-numeric entries (failed
    points) are skipped.
    """
    series = [numeric_value(v) for v in values]
    names = list(labels) if labels is not None else list(range(len(series)))
    warnings: List[ValidationWarning] = []
    previous: Optional[Tuple[Any, float]] = None
    for name, number in zip(names, series):
        if number is None or math.isnan(number):
            continue
        if previous is not None:
            prev_name, prev_number = previous
            delta = number - prev_number
            violated = delta > tolerance if decreasing else delta < -tolerance
            if violated:
                direction = "decrease" if decreasing else "increase"
                warnings.append(
                    ValidationWarning(
                        code="monotonicity",
                        message=(
                            f"expected values to {direction}:"
                            f" {prev_name!r}={prev_number:.6g} ->"
                            f" {name!r}={number:.6g}"
                        ),
                        value=number,
                    )
                )
        previous = (name, number)
    return tuple(warnings)
