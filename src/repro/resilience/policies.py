"""Fault-tolerance policies for the sweep fabric.

A sweep over a million scenario points is only as reliable as its
worst point: one transient solver hiccup, one hung factorization, or
one crashed worker must degrade to a *quarantined point*, never to a
lost grid.  The two policies here are the knobs the fabric accepts:

:class:`RetryPolicy`
    How many times a failing point is re-attempted, how long to wait
    between attempts (exponential backoff), and which exception types
    are considered transient.  Backoff jitter is *deterministic*,
    derived from the point's canonical key and the attempt number, so
    a retried sweep is reproducible wave-for-wave — there is no
    ambient randomness anywhere in the fabric.

:class:`DeadlinePolicy`
    The per-point wall-clock budget.  Serial and thread executors
    enforce it with a watchdog (the point runs in a helper thread that
    is abandoned when the deadline passes); the process executor
    enforces it with :mod:`concurrent.futures` timeouts at the pool
    level, escalating hung shards into the crash-recovery protocol of
    :func:`repro.engine.sweep`.

Both are frozen dataclasses with ``coerce`` constructors so call
sites can pass bare numbers (``retry=3``, ``deadline=0.5``), and both
are picklable, so the process executor can ship them into workers.

:class:`CircuitBreaker`
    The third policy, added for the service front-end: a thread-safe
    closed/open/half-open breaker that stops hammering a dependency
    (the coordinator) once it has failed ``failure_threshold`` times
    in a row, letting exactly one probe through after ``cooldown``
    seconds.  The clock is injectable so tests never sleep.
"""

from __future__ import annotations

import hashlib
import threading
import time as _time
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple, Type, Union

__all__ = [
    "DeadlineExceeded",
    "RetryPolicy",
    "DeadlinePolicy",
    "CircuitBreaker",
]


class DeadlineExceeded(TimeoutError):
    """A sweep point exceeded its :class:`DeadlinePolicy` budget."""


@dataclass(frozen=True)
class RetryPolicy:
    """Retry budget and backoff schedule for one sweep point.

    Parameters
    ----------
    max_attempts:
        Total tries per point (first attempt included); ``1`` disables
        retries.
    backoff:
        Base delay in seconds before the second attempt; ``0`` retries
        immediately.
    backoff_factor:
        Exponential growth of the delay between successive attempts.
    max_backoff:
        Upper clamp of any single delay.
    jitter:
        Relative spread (``0.1`` = +-10%) applied to each delay.  The
        jitter is *deterministic*: it is derived from the point's
        canonical key and the attempt number via SHA-256, so identical
        sweeps sleep identically and sharded re-runs stay reproducible.
    retry_on:
        Exception types considered transient; anything not matching is
        failed immediately.  :class:`DeadlineExceeded` is an ordinary
        ``TimeoutError`` subclass, so the default ``(Exception,)``
        retries deadline kills too (on the watchdog executors — the
        process pool quarantines hard hangs without retry).
    """

    max_attempts: int = 3
    backoff: float = 0.0
    backoff_factor: float = 2.0
    max_backoff: float = 30.0
    jitter: float = 0.1
    retry_on: Tuple[Type[BaseException], ...] = (Exception,)

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.backoff < 0:
            raise ValueError(f"backoff must be >= 0, got {self.backoff}")
        if self.backoff_factor < 1.0:
            raise ValueError(
                f"backoff_factor must be >= 1, got {self.backoff_factor}"
            )
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError(f"jitter must be in [0, 1), got {self.jitter}")
        if isinstance(self.retry_on, type):  # a bare exception class
            object.__setattr__(self, "retry_on", (self.retry_on,))

    def should_retry(self, exc: BaseException, attempt: int) -> bool:
        """Is another attempt allowed after ``exc`` on try ``attempt``?"""
        return attempt < self.max_attempts and isinstance(
            exc, tuple(self.retry_on)
        )

    def delay(self, key: str, attempt: int) -> float:
        """Deterministic backoff before attempt ``attempt + 1``.

        ``key`` is the point's canonical identity (any stable string);
        the jitter fraction is the SHA-256 of ``key:attempt`` mapped
        into ``[-jitter, +jitter]``, so every (point, attempt) pair
        sleeps the same duration on every run and no two points
        synchronize their retry storms.
        """
        if self.backoff <= 0:
            return 0.0
        base = min(
            self.backoff * self.backoff_factor ** (attempt - 1),
            self.max_backoff,
        )
        if self.jitter <= 0:
            return base
        digest = hashlib.sha256(f"{key}:{attempt}".encode("utf-8")).digest()
        unit = int.from_bytes(digest[:8], "big") / 2**64  # [0, 1)
        return base * (1.0 + self.jitter * (2.0 * unit - 1.0))

    @classmethod
    def coerce(
        cls, value: Union["RetryPolicy", int, None]
    ) -> Optional["RetryPolicy"]:
        """Accept a policy, a bare attempt count, or ``None`` (off)."""
        if value is None or isinstance(value, cls):
            return value
        if isinstance(value, bool):  # bool is an int; reject explicitly
            raise TypeError("retry must be a RetryPolicy, int, or None")
        if isinstance(value, int):
            return cls(max_attempts=value)
        raise TypeError(
            f"retry must be a RetryPolicy, int, or None,"
            f" got {type(value).__name__}"
        )


@dataclass(frozen=True)
class DeadlinePolicy:
    """Per-point wall-clock budget for one sweep.

    Parameters
    ----------
    timeout:
        Seconds one point may run before it is killed.  Serial/thread
        executors abandon the point's watchdog thread and raise
        :class:`DeadlineExceeded` (retryable under a
        :class:`RetryPolicy` whose ``retry_on`` matches); the process
        executor waits on shard futures with a budget derived from
        this and escalates overruns into pool teardown + shard
        bisection, quarantining the hung point.
    grace:
        Extra allowance (seconds) added to pool-level waits for worker
        startup and dispatch; irrelevant to the watchdog executors.
    """

    timeout: float
    grace: float = 5.0

    def __post_init__(self) -> None:
        if not self.timeout > 0:
            raise ValueError(f"timeout must be positive, got {self.timeout}")
        if self.grace < 0:
            raise ValueError(f"grace must be >= 0, got {self.grace}")

    @classmethod
    def coerce(
        cls, value: Union["DeadlinePolicy", float, int, None]
    ) -> Optional["DeadlinePolicy"]:
        """Accept a policy, a bare timeout in seconds, or ``None``."""
        if value is None or isinstance(value, cls):
            return value
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            return cls(timeout=float(value))
        raise TypeError(
            f"deadline must be a DeadlinePolicy, a number of seconds,"
            f" or None, got {type(value).__name__}"
        )


class CircuitBreaker:
    """A thread-safe closed / open / half-open circuit breaker.

    The front-end wraps every coordinator round trip in one of these:
    after ``failure_threshold`` *consecutive* failures the breaker
    opens and :meth:`allow` answers ``False`` — callers degrade (serve
    warm cache hits, answer 503 with ``Retry-After``) instead of
    stacking connection timeouts on a dead dependency.  Once
    ``cooldown`` seconds pass, the next :meth:`allow` claims the
    single half-open probe slot; its success closes the breaker, its
    failure re-opens it for another full cooldown.

    Parameters
    ----------
    failure_threshold:
        Consecutive failures that trip the breaker open.
    cooldown:
        Seconds the breaker stays open before admitting one probe.
    clock:
        Monotonic time source (injectable so tests never sleep).
    """

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"

    def __init__(
        self,
        *,
        failure_threshold: int = 5,
        cooldown: float = 5.0,
        clock: Callable[[], float] = _time.monotonic,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError(
                f"failure_threshold must be >= 1, got {failure_threshold}"
            )
        if cooldown < 0:
            raise ValueError(f"cooldown must be >= 0, got {cooldown}")
        self.failure_threshold = failure_threshold
        self.cooldown = cooldown
        self._clock = clock
        self._lock = threading.Lock()
        self._state = self.CLOSED
        self._failures = 0  # consecutive failures while closed
        self._opened_at: Optional[float] = None
        self._trips = 0  # lifetime count of closed -> open transitions

    @property
    def state(self) -> str:
        """Current state, advancing open -> half-open when due."""
        with self._lock:
            return self._state_locked()

    def _state_locked(self) -> str:
        if (
            self._state == self.OPEN
            and self._opened_at is not None
            and self._clock() - self._opened_at >= self.cooldown
        ):
            self._state = self.HALF_OPEN
        return self._state

    def allow(self) -> bool:
        """May a call proceed right now?

        ``True`` while closed.  While open, ``False`` until the
        cooldown elapses — then exactly one caller wins the half-open
        probe slot (subsequent callers are refused until the probe
        reports back via :meth:`record_success` /
        :meth:`record_failure`).
        """
        with self._lock:
            state = self._state_locked()
            if state == self.CLOSED:
                return True
            if state == self.HALF_OPEN and self._opened_at is not None:
                self._opened_at = None  # claim the single probe slot
                return True
            return False

    def record_success(self) -> None:
        """A wrapped call succeeded: close the breaker, reset counts."""
        with self._lock:
            self._state = self.CLOSED
            self._failures = 0
            self._opened_at = None

    def record_failure(self) -> None:
        """A wrapped call failed: count it; trip open at the threshold.

        A half-open probe failure re-opens immediately for another
        full cooldown.
        """
        with self._lock:
            state = self._state_locked()
            if state == self.HALF_OPEN:
                self._state = self.OPEN
                self._opened_at = self._clock()
                self._trips += 1
                return
            if state == self.OPEN:
                return  # already open and cooling down
            self._failures += 1
            if self._failures >= self.failure_threshold:
                self._state = self.OPEN
                self._opened_at = self._clock()
                self._trips += 1

    def snapshot(self) -> Dict[str, Union[str, int, float, None]]:
        """State for ``/healthz``: state, failure count, trip count."""
        with self._lock:
            state = self._state_locked()
            remaining: Optional[float] = None
            if state == self.OPEN and self._opened_at is not None:
                remaining = max(
                    0.0, self.cooldown - (self._clock() - self._opened_at)
                )
            return {
                "state": state,
                "failures": self._failures,
                "trips": self._trips,
                "cooldown_remaining": remaining,
            }
