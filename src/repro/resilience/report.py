"""Sweep health reports: one summary object per fabric run.

A fault-tolerant sweep never throws away a grid — it degrades points
into quarantined, retried, or timed-out results.  :class:`SweepReport`
is the roll-up of that triage: built from any list of
:class:`~repro.engine.SweepResult`, it counts what succeeded, what was
served from the store, what needed retries, what was quarantined (and
why), and how many validation warnings the surviving values carry.
The ``repro-zoo`` CLI prints it after every sweep; ``--resume`` runs
read it to show exactly how much work the store saved.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Sequence

__all__ = ["SweepReport"]


@dataclass
class SweepReport:
    """Aggregate outcome of one sweep.

    ``quarantined`` counts failed points (they stay in the result list
    with their error and attempt count instead of sinking the sweep);
    ``timed_out`` is the subset killed by a
    :class:`~repro.resilience.DeadlinePolicy`; ``crashed`` the subset
    lost to worker death (``BrokenProcessPool``).  ``retried`` counts
    points that needed more than one attempt, whether or not they
    eventually succeeded.  ``recomputed`` is ``total - cached`` — on a
    ``--resume`` run, the points the store could not serve.
    """

    total: int = 0
    ok: int = 0
    cached: int = 0
    retried: int = 0
    quarantined: int = 0
    timed_out: int = 0
    crashed: int = 0
    warnings: int = 0
    attempts: int = 0
    seconds: float = 0.0
    errors: Dict[str, int] = field(default_factory=dict)

    @property
    def recomputed(self) -> int:
        """Points actually solved this run (not served from the store)."""
        return self.total - self.cached

    @classmethod
    def from_results(cls, results: Sequence[Any]) -> "SweepReport":
        """Summarize a list of :class:`~repro.engine.SweepResult`."""
        report = cls(total=len(results))
        for result in results:
            report.attempts += getattr(result, "attempts", 1) or 1
            report.seconds += getattr(result, "seconds", 0.0) or 0.0
            if getattr(result, "cached", False):
                report.cached += 1
            if (getattr(result, "attempts", 1) or 1) > 1:
                report.retried += 1
            report.warnings += len(getattr(result, "warnings", ()) or ())
            error = getattr(result, "error", None)
            if error is None:
                report.ok += 1
                continue
            report.quarantined += 1
            exc_name = str(error).split(":", 1)[0].strip()
            report.errors[exc_name] = report.errors.get(exc_name, 0) + 1
            if exc_name == "DeadlineExceeded":
                report.timed_out += 1
            elif exc_name == "BrokenProcessPool":
                report.crashed += 1
        return report

    @property
    def healthy(self) -> bool:
        """Every point succeeded and no value raised a warning?"""
        return self.quarantined == 0 and self.warnings == 0

    def describe(self) -> str:
        """One-line-per-fact summary for CLI output and logs."""
        lines: List[str] = [
            f"sweep report: {self.total} points,"
            f" ok={self.ok} cached={self.cached}"
            f" recomputed={self.recomputed} retried={self.retried}"
            f" quarantined={self.quarantined}"
            f" (timed_out={self.timed_out}, crashed={self.crashed})"
            f" warnings={self.warnings}"
        ]
        if self.errors:
            kinds = ", ".join(
                f"{name} x{count}" for name, count in sorted(self.errors.items())
            )
            lines.append(f"quarantine causes: {kinds}")
        lines.append(
            f"attempts={self.attempts} compute_seconds={self.seconds:.3f}"
        )
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.describe()
