"""Steady-state (long-run) analysis of DTMCs.

The paper interprets BER as the steady-state expectation of the
``flag`` reward ("in steady state, BER can be interpreted as the
probability of a bit error occurring at any time step").  This module
computes:

* the stationary distribution of an irreducible chain (direct sparse
  linear solve, with a power-iteration fallback);
* the general long-run distribution of an arbitrary finite chain via
  BSCC decomposition + absorption probabilities;
* long-run average rewards (used to cross-check ``R=?[I=T]`` at large
  ``T``).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np
from scipy import sparse
from scipy.sparse import linalg as sparse_linalg

from .chain import DTMC
from .graph import bottom_sccs, is_aperiodic, is_irreducible

__all__ = [
    "stationary_distribution",
    "long_run_distribution",
    "long_run_reward",
    "absorption_probabilities",
    "power_iteration",
    "assert_ergodic",
]


def power_iteration(
    chain: DTMC,
    tolerance: float = 1e-12,
    max_iterations: int = 200_000,
    initial: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Iterate ``pi <- pi P`` until the L1 change drops below ``tolerance``.

    Converges for aperiodic chains; used both as a solver fallback and
    to mimic PRISM's iterative steady-state computation.
    """
    pi = np.array(
        chain.initial_distribution if initial is None else initial, dtype=np.float64
    )
    matrix = chain.transition_matrix
    for _ in range(max_iterations):
        nxt = pi @ matrix
        if np.abs(nxt - pi).sum() < tolerance:
            return nxt
        pi = nxt
    raise RuntimeError(
        f"power iteration did not converge within {max_iterations} iterations"
    )


def stationary_distribution(chain: DTMC) -> np.ndarray:
    """Unique stationary distribution of an irreducible chain.

    Solves ``pi (P - I) = 0`` with the normalization ``sum(pi) = 1`` by
    replacing one column of the system with the all-ones constraint;
    this is the standard direct method and is exact up to the sparse
    solver's accuracy.
    """
    if not is_irreducible(chain):
        raise ValueError(
            "chain is not irreducible; use long_run_distribution() instead"
        )
    n = chain.num_states
    if n == 1:
        return np.ones(1)
    # Transpose system: (P^T - I) pi^T = 0, replace last equation by 1^T pi = 1.
    a = (chain.transition_matrix.T - sparse.identity(n, format="csr")).tolil()
    a[n - 1, :] = np.ones(n)
    b = np.zeros(n)
    b[n - 1] = 1.0
    try:
        pi = sparse_linalg.spsolve(a.tocsr(), b)
    except RuntimeError:  # pragma: no cover - singular corner cases
        return power_iteration(chain)
    pi = np.asarray(pi, dtype=np.float64)
    # Clean tiny negative round-off and renormalize.
    pi[pi < 0] = 0.0
    total = pi.sum()
    if not np.isfinite(total) or total <= 0:
        return power_iteration(chain)
    return pi / total


def absorption_probabilities(chain: DTMC, targets: List[List[int]]) -> np.ndarray:
    """Probability, per target class, of eventually being absorbed there.

    ``targets`` is a list of disjoint absorbing classes (e.g. BSCCs).
    Returns an array of shape ``(len(targets),)`` with the probability
    of absorption into each class *from the initial distribution*.

    Uses the fundamental-matrix formulation restricted to transient
    states: ``(I - Q) x = R 1_class``.
    """
    n = chain.num_states
    in_class = np.full(n, -1, dtype=np.int64)
    for class_id, members in enumerate(targets):
        for s in members:
            in_class[s] = class_id
    transient = np.where(in_class < 0)[0]
    result = np.zeros(len(targets))
    init = chain.initial_distribution

    # Mass already starting inside a class.
    for class_id, members in enumerate(targets):
        result[class_id] += float(init[members].sum())

    if transient.size == 0:
        return result

    matrix = chain.transition_matrix
    sub = matrix[transient][:, transient]
    identity = sparse.identity(transient.size, format="csr")
    lhs = (identity - sub).tocsc()
    lu = sparse_linalg.splu(lhs)
    for class_id, members in enumerate(targets):
        rhs = np.asarray(matrix[transient][:, members].sum(axis=1)).ravel()
        if not rhs.any():
            continue
        absorbed = lu.solve(rhs)
        result[class_id] += float(init[transient] @ absorbed)
    return result


def long_run_distribution(chain: DTMC) -> np.ndarray:
    """Limiting average distribution of an arbitrary finite chain.

    Decomposes into BSCCs, weighs each BSCC's stationary distribution
    by the probability of absorption into it.  For aperiodic chains
    this is also the limit of ``pi P^t``; for periodic ones it is the
    Cesàro (time-average) limit, which is what long-run rewards need.
    """
    classes = bottom_sccs(chain)
    weights = absorption_probabilities(chain, classes)
    result = np.zeros(chain.num_states)
    for members, weight in zip(classes, weights):
        if weight <= 0.0:
            continue
        sub = chain.restricted_to(members)
        # The appended sink is unreachable for a bottom class; drop it.
        sub_matrix = sub.transition_matrix[: len(members), : len(members)]
        sub_chain = DTMC(
            sub_matrix,
            np.full(len(members), 1.0 / len(members)),
            validate=False,
        )
        pi = stationary_distribution(sub_chain)
        for local, global_index in enumerate(members):
            result[global_index] = weight * pi[local]
    return result


def long_run_reward(chain: DTMC, reward: str | np.ndarray) -> float:
    """Long-run average reward ``R=? [ S ]`` (steady-state reward).

    With the paper's 0/1 error flag this is exactly the BER.
    """
    vec = chain.reward_vector(reward) if isinstance(reward, str) else np.asarray(reward)
    pi = long_run_distribution(chain)
    return float(pi @ vec)


def assert_ergodic(chain: DTMC) -> Tuple[bool, bool]:
    """Return ``(irreducible, aperiodic)`` — the paper's steady-state
    precondition check (Section III)."""
    return is_irreducible(chain), is_aperiodic(chain)
