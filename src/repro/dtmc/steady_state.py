"""Steady-state (long-run) analysis of DTMCs.

The paper interprets BER as the steady-state expectation of the
``flag`` reward ("in steady state, BER can be interpreted as the
probability of a bit error occurring at any time step").  This module
computes:

* the stationary distribution of an irreducible chain (direct sparse
  linear solve, with a power-iteration fallback);
* the general long-run distribution of an arbitrary finite chain via
  BSCC decomposition + absorption probabilities;
* long-run average rewards (used to cross-check ``R=?[I=T]`` at large
  ``T``).

Every entry point accepts an optional :class:`repro.engine.Engine`;
with one, results are memoized per chain, the inner linear solves run
on the engine's configured backend, and factorizations are shared with
any other property checked through the same engine.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np
from scipy import sparse
from scipy.sparse import linalg as sparse_linalg

from .chain import DTMC
from .graph import bottom_sccs, is_aperiodic, is_irreducible
from .linear import ITERATIVE_METHODS as _ITERATIVE_METHODS
from .linear import SolverError

__all__ = [
    "ReducibleChainError",
    "stationary_distribution",
    "long_run_distribution",
    "long_run_reward",
    "absorption_probabilities",
    "power_iteration",
    "assert_ergodic",
]

class ReducibleChainError(ValueError):
    """A unique stationary distribution was requested of a chain that is
    not irreducible."""


def power_iteration(
    chain: DTMC,
    tolerance: float = 1e-12,
    max_iterations: int = 200_000,
    initial: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Iterate ``pi <- pi P`` until the L1 change drops below ``tolerance``.

    Converges for aperiodic chains; used both as a solver fallback and
    to mimic PRISM's iterative steady-state computation.  Raises
    :class:`repro.dtmc.SolverError` (a ``RuntimeError``) when the
    iteration cap is exceeded.
    """
    pi = np.array(
        chain.initial_distribution if initial is None else initial, dtype=np.float64
    )
    matrix = chain.transition_matrix
    for _ in range(max_iterations):
        nxt = pi @ matrix
        if np.abs(nxt - pi).sum() < tolerance:
            return nxt
        pi = nxt
    raise SolverError(
        f"power iteration did not converge within {max_iterations} iterations"
    )


def _stationary_fallback(chain: DTMC, cause: Optional[BaseException]) -> np.ndarray:
    """Power-iteration rescue for a failed direct solve.

    Only legitimate on an *irreducible* chain: on a reducible one the
    direct system is genuinely singular, power iteration from the
    initial distribution converges (if at all) to something that
    depends on the start state, and silently returning it would be a
    wrong answer dressed up as a stationary distribution.
    """
    if not is_irreducible(chain):
        raise ReducibleChainError(
            "direct stationary solve failed because the chain is not"
            " irreducible: it has no unique stationary distribution."
            " Use long_run_distribution() for the initial-state-dependent"
            " long-run behaviour."
        ) from cause
    return power_iteration(chain)


def _stationary_impl(
    chain: DTMC,
    *,
    assume_irreducible: bool = False,
    method: str = "direct",
    tolerance: float = 1e-12,
    max_iterations: int = 200_000,
) -> np.ndarray:
    """Shared stationary-distribution kernel (direct or iterative).

    ``assume_irreducible`` skips the upfront Tarjan pass; callers that
    know the chain is strongly connected (BSCC sub-chains) use it to
    avoid re-deriving the SCC structure.  Failures of the direct solve
    still re-verify irreducibility before falling back, so a reducible
    chain raises :class:`ReducibleChainError` instead of quietly
    returning a start-state-dependent power-iteration result.
    """
    if not assume_irreducible and not is_irreducible(chain):
        raise ReducibleChainError(
            "chain is not irreducible; use long_run_distribution() instead"
        )
    n = chain.num_states
    if n == 1:
        return np.ones(1)
    if method in _ITERATIVE_METHODS:
        # Damped (lazy-chain) fixpoint: pi <- pi (I + P)/2 has the same
        # stationary distribution but is aperiodic for every chain, so
        # it converges even on periodic irreducible chains where plain
        # power iteration oscillates forever.  A uniform start keeps
        # the limit independent of the chain's initial distribution.
        matrix = chain.transition_matrix
        pi = np.full(n, 1.0 / n)
        for _ in range(max_iterations):
            nxt = 0.5 * (pi + pi @ matrix)
            if np.abs(nxt - pi).sum() < tolerance:
                return nxt
            pi = nxt
        raise SolverError(
            f"damped power iteration did not converge within"
            f" {max_iterations} iterations"
        )
    # Transpose system: (P^T - I) pi^T = 0, replace last equation by 1^T pi = 1.
    a = (chain.transition_matrix.T - sparse.identity(n, format="csr")).tolil()
    a[n - 1, :] = np.ones(n)
    b = np.zeros(n)
    b[n - 1] = 1.0
    try:
        pi = sparse_linalg.spsolve(a.tocsr(), b)
    except RuntimeError as exc:  # pragma: no cover - singular corner cases
        return _stationary_fallback(chain, exc)
    pi = np.asarray(pi, dtype=np.float64)
    # Clean tiny negative round-off and renormalize.
    pi[pi < 0] = 0.0
    total = pi.sum()
    if not np.isfinite(total) or total <= 0:
        return _stationary_fallback(chain, None)
    return pi / total


def stationary_distribution(
    chain: DTMC,
    *,
    engine=None,
    assume_irreducible: bool = False,
) -> np.ndarray:
    """Unique stationary distribution of an irreducible chain.

    Solves ``pi (P - I) = 0`` with the normalization ``sum(pi) = 1`` by
    replacing one column of the system with the all-ones constraint;
    this is the standard direct method and is exact up to the sparse
    solver's accuracy.  With an ``engine``, the result is memoized per
    chain and the engine's configured method is used (iterative
    backends compute it by uniform-start power iteration).
    """
    if engine is not None:
        return engine.stationary_distribution(
            chain, assume_irreducible=assume_irreducible
        )
    return _stationary_impl(chain, assume_irreducible=assume_irreducible)


def absorption_probabilities(
    chain: DTMC, targets: List[List[int]], *, engine=None
) -> np.ndarray:
    """Probability, per target class, of eventually being absorbed there.

    ``targets`` is a list of disjoint absorbing classes (e.g. BSCCs).
    Returns an array of shape ``(len(targets),)`` with the probability
    of absorption into each class *from the initial distribution*.

    Uses the fundamental-matrix formulation restricted to transient
    states: ``(I - Q) x = R 1_class``.  The factorization of
    ``(I - Q)`` is shared across classes — and, with an ``engine``,
    with every other solve against the same transient subsystem.
    """
    n = chain.num_states
    in_class = np.full(n, -1, dtype=np.int64)
    for class_id, members in enumerate(targets):
        for s in members:
            in_class[s] = class_id
    transient = np.where(in_class < 0)[0]
    result = np.zeros(len(targets))
    init = chain.initial_distribution

    # Mass already starting inside a class.
    for class_id, members in enumerate(targets):
        result[class_id] += float(init[members].sum())

    if transient.size == 0:
        return result

    matrix = chain.transition_matrix
    if engine is None:
        sub = matrix[transient][:, transient]
        identity = sparse.identity(transient.size, format="csr")
        lu = sparse_linalg.splu((identity - sub).tocsc())
        solve = lu.solve
    else:
        solve = lambda rhs: engine.solve_subsystem(chain, transient, rhs)  # noqa: E731
    for class_id, members in enumerate(targets):
        rhs = np.asarray(matrix[transient][:, members].sum(axis=1)).ravel()
        if not rhs.any():
            continue
        absorbed = solve(rhs)
        result[class_id] += float(init[transient] @ absorbed)
    return result


def _long_run_impl(chain: DTMC, engine=None) -> np.ndarray:
    """BSCC-weighted long-run distribution (the actual computation)."""
    if engine is not None:
        classes = engine.bottom_sccs(chain)
        method = engine.config.method
        tolerance = engine.config.tolerance
        max_iterations = engine.config.max_iterations
    else:
        classes = bottom_sccs(chain)
        method, tolerance, max_iterations = "direct", 1e-12, 200_000
    weights = absorption_probabilities(chain, classes, engine=engine)
    result = np.zeros(chain.num_states)
    for members, weight in zip(classes, weights):
        if weight <= 0.0:
            continue
        sub = chain.restricted_to(members)
        # The appended sink is unreachable for a bottom class; drop it.
        sub_matrix = sub.transition_matrix[: len(members), : len(members)]
        sub_chain = DTMC(
            sub_matrix,
            np.full(len(members), 1.0 / len(members)),
            validate=False,
        )
        # A BSCC is strongly connected by construction, so skip the
        # per-class Tarjan pass the public entry point would run.
        pi = _stationary_impl(
            sub_chain,
            assume_irreducible=True,
            method=method,
            tolerance=tolerance,
            max_iterations=max_iterations,
        )
        for local, global_index in enumerate(members):
            result[global_index] = weight * pi[local]
    return result


def long_run_distribution(chain: DTMC, *, engine=None) -> np.ndarray:
    """Limiting average distribution of an arbitrary finite chain.

    Decomposes into BSCCs, weighs each BSCC's stationary distribution
    by the probability of absorption into it.  For aperiodic chains
    this is also the limit of ``pi P^t``; for periodic ones it is the
    Cesàro (time-average) limit, which is what long-run rewards need.
    With an ``engine``, the decomposition and the result are memoized
    per chain.
    """
    if engine is not None:
        return engine.long_run_distribution(chain)
    return _long_run_impl(chain)


def long_run_reward(
    chain: DTMC, reward: str | np.ndarray, *, engine=None
) -> float:
    """Long-run average reward ``R=? [ S ]`` (steady-state reward).

    With the paper's 0/1 error flag this is exactly the BER.
    """
    vec = chain.reward_vector(reward) if isinstance(reward, str) else np.asarray(reward)
    pi = long_run_distribution(chain, engine=engine)
    return float(pi @ vec)


def assert_ergodic(chain: DTMC) -> Tuple[bool, bool]:
    """Return ``(irreducible, aperiodic)`` — the paper's steady-state
    precondition check (Section III)."""
    return is_irreducible(chain), is_aperiodic(chain)
