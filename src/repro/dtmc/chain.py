"""Explicit-state Discrete-Time Markov Chain (DTMC) representation.

A DTMC is the semantic object the whole library revolves around: MIMO
RTL designs are compiled into a :class:`DTMC` (one clock cycle = one
transition), pCTL properties are checked against it, and reductions
produce smaller, behaviourally equivalent :class:`DTMC` instances.

The representation is explicit-state and sparse: the transition
relation is a ``scipy.sparse.csr_matrix`` whose row ``i`` holds the
probability distribution over successors of state ``i``.  Atomic
propositions are stored as named boolean vectors (*labels*) and reward
structures as named float vectors, following the PRISM convention the
paper relies on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

import numpy as np
from scipy import sparse

from .sparse_utils import DTMCValidationError, as_csr

__all__ = ["DTMC", "DTMCValidationError", "dtmc_from_dict"]

#: Tolerance used when validating that transition rows are stochastic.
ROW_SUM_TOLERANCE = 1e-9


@dataclass
class DTMC:
    """A finite discrete-time Markov chain with labels and rewards.

    Parameters
    ----------
    transition_matrix:
        Square row-stochastic matrix; entry ``(i, j)`` is the
        probability of moving from state ``i`` to state ``j`` in one
        time step (one RTL clock cycle in the paper's modeling).
    initial_distribution:
        Probability vector over states at time 0.  A single initial
        state may be given as an integer index.
    labels:
        Mapping from atomic-proposition name to a boolean vector, e.g.
        ``{"flag": np.array([...])}``.
    rewards:
        Mapping from reward-structure name to a per-state float vector.
        The paper's reward model assigns ``reward(s) = flag(s)``.
    states:
        Optional list of the underlying state objects (tuples or
        mappings of state-variable assignments).  Kept so that pCTL
        atomic expressions over state variables can be evaluated and so
        reductions can report witness states.
    """

    transition_matrix: sparse.csr_matrix
    initial_distribution: np.ndarray
    labels: Dict[str, np.ndarray] = field(default_factory=dict)
    rewards: Dict[str, np.ndarray] = field(default_factory=dict)
    states: Optional[List[Any]] = None
    validate: bool = True

    def __post_init__(self) -> None:
        self.transition_matrix = as_csr(self.transition_matrix, require_square=True)
        n = self.transition_matrix.shape[0]
        if np.isscalar(self.initial_distribution):
            init = np.zeros(n)
            init[int(self.initial_distribution)] = 1.0
            self.initial_distribution = init
        else:
            self.initial_distribution = np.asarray(
                self.initial_distribution, dtype=np.float64
            )
        self.labels = {
            name: np.asarray(vec, dtype=bool) for name, vec in self.labels.items()
        }
        self.rewards = {
            name: np.asarray(vec, dtype=np.float64)
            for name, vec in self.rewards.items()
        }
        if self.validate:
            self._validate()

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def _validate(self) -> None:
        n = self.num_states
        if self.initial_distribution.shape != (n,):
            raise DTMCValidationError(
                f"initial distribution has shape {self.initial_distribution.shape},"
                f" expected ({n},)"
            )
        if np.any(self.initial_distribution < -ROW_SUM_TOLERANCE):
            raise DTMCValidationError("initial distribution has negative entries")
        # A 0-state chain (e.g. the quotient of an empty chain) carries
        # no probability mass at all; otherwise the mass must be 1.
        expected = 0.0 if n == 0 else 1.0
        total = float(self.initial_distribution.sum())
        if abs(total - expected) > ROW_SUM_TOLERANCE:
            raise DTMCValidationError(
                f"initial distribution sums to {total}, expected {expected}"
            )
        if self.transition_matrix.nnz:
            data = self.transition_matrix.data
            if not np.isfinite(data).all():
                raise DTMCValidationError(
                    "transition matrix has NaN/inf entries"
                )
            if data.min() < 0:
                raise DTMCValidationError(
                    "transition matrix has negative entries"
                )
        if not np.isfinite(self.initial_distribution).all():
            raise DTMCValidationError("initial distribution has NaN/inf entries")
        row_sums = np.asarray(self.transition_matrix.sum(axis=1)).ravel()
        bad = np.where(~(np.abs(row_sums - 1.0) <= ROW_SUM_TOLERANCE))[0]
        if bad.size:
            raise DTMCValidationError(
                f"rows {bad[:5].tolist()} are not stochastic "
                f"(sums {row_sums[bad[:5]].tolist()})"
            )
        for name, vec in self.labels.items():
            if vec.shape != (n,):
                raise DTMCValidationError(
                    f"label {name!r} has shape {vec.shape}, expected ({n},)"
                )
        for name, vec in self.rewards.items():
            if vec.shape != (n,):
                raise DTMCValidationError(
                    f"reward {name!r} has shape {vec.shape}, expected ({n},)"
                )
        if self.states is not None and len(self.states) != n:
            raise DTMCValidationError(
                f"{len(self.states)} state objects for {n} states"
            )

    # ------------------------------------------------------------------
    # Basic queries
    # ------------------------------------------------------------------
    @property
    def num_states(self) -> int:
        """Number of states in the chain."""
        return self.transition_matrix.shape[0]

    @property
    def num_transitions(self) -> int:
        """Number of non-zero transition probabilities."""
        return self.transition_matrix.nnz

    def successors(self, state: int) -> List[Tuple[int, float]]:
        """Return ``(successor, probability)`` pairs of ``state``."""
        row = self.transition_matrix.getrow(state)
        return list(zip(row.indices.tolist(), row.data.tolist()))

    def transition_probability(self, source: int, target: int) -> float:
        """One-step probability of moving from ``source`` to ``target``."""
        return float(self.transition_matrix[source, target])

    def initial_states(self) -> List[int]:
        """Indices with non-zero initial probability."""
        return np.nonzero(self.initial_distribution)[0].tolist()

    def label_vector(self, name: str) -> np.ndarray:
        """Boolean satisfaction vector of atomic proposition ``name``."""
        try:
            return self.labels[name]
        except KeyError:
            raise KeyError(
                f"unknown label {name!r}; available: {sorted(self.labels)}"
            ) from None

    def reward_vector(self, name: str) -> np.ndarray:
        """Per-state reward vector of reward structure ``name``."""
        try:
            return self.rewards[name]
        except KeyError:
            raise KeyError(
                f"unknown reward {name!r}; available: {sorted(self.rewards)}"
            ) from None

    def states_satisfying(self, name: str) -> List[int]:
        """Indices of states where label ``name`` holds."""
        return np.nonzero(self.label_vector(name))[0].tolist()

    # ------------------------------------------------------------------
    # Derived labels / rewards
    # ------------------------------------------------------------------
    def add_label(self, name: str, satisfied: Iterable[int]) -> None:
        """Define label ``name`` to hold exactly on the given indices."""
        vec = np.zeros(self.num_states, dtype=bool)
        vec[list(satisfied)] = True
        self.labels[name] = vec

    def add_label_from_predicate(
        self, name: str, predicate: Callable[[Any], bool]
    ) -> None:
        """Define label ``name`` by evaluating ``predicate`` on each state object."""
        if self.states is None:
            raise ValueError("chain has no state objects to evaluate predicate on")
        self.labels[name] = np.fromiter(
            (bool(predicate(s)) for s in self.states), dtype=bool, count=self.num_states
        )

    def add_reward_from_function(
        self, name: str, fn: Callable[[Any], float]
    ) -> None:
        """Define reward ``name`` by evaluating ``fn`` on each state object."""
        if self.states is None:
            raise ValueError("chain has no state objects to evaluate reward on")
        self.rewards[name] = np.fromiter(
            (float(fn(s)) for s in self.states), dtype=np.float64, count=self.num_states
        )

    # ------------------------------------------------------------------
    # Structural operations
    # ------------------------------------------------------------------
    def restricted_to(self, keep: Sequence[int]) -> "DTMC":
        """Sub-chain induced by ``keep``; outgoing mass to dropped states is
        redirected to a fresh absorbing *sink* state appended at the end.

        The sink carries no labels and zero reward, so bounded
        reachability / reward values over the kept states are preserved
        exactly (the sink only absorbs probability that has left the
        retained region).
        """
        keep = list(keep)
        index_of = {old: new for new, old in enumerate(keep)}
        n_new = len(keep) + 1
        sink = n_new - 1
        rows: List[int] = []
        cols: List[int] = []
        vals: List[float] = []
        for new_i, old_i in enumerate(keep):
            row = self.transition_matrix.getrow(old_i)
            sink_mass = 0.0
            for old_j, p in zip(row.indices.tolist(), row.data.tolist()):
                if old_j in index_of:
                    rows.append(new_i)
                    cols.append(index_of[old_j])
                    vals.append(p)
                else:
                    sink_mass += p
            if sink_mass > 0.0:
                rows.append(new_i)
                cols.append(sink)
                vals.append(sink_mass)
        rows.append(sink)
        cols.append(sink)
        vals.append(1.0)
        matrix = sparse.csr_matrix((vals, (rows, cols)), shape=(n_new, n_new))
        init = np.zeros(n_new)
        kept_mass = 0.0
        for new_i, old_i in enumerate(keep):
            init[new_i] = self.initial_distribution[old_i]
            kept_mass += init[new_i]
        init[sink] = 1.0 - kept_mass
        labels = {
            name: np.append(vec[keep], False) for name, vec in self.labels.items()
        }
        rewards = {
            name: np.append(vec[keep], 0.0) for name, vec in self.rewards.items()
        }
        states = None
        if self.states is not None:
            states = [self.states[i] for i in keep] + ["<sink>"]
        return DTMC(matrix, init, labels=labels, rewards=rewards, states=states)

    def with_absorbing(self, absorbing: Iterable[int]) -> "DTMC":
        """Copy of the chain where the given states are made absorbing.

        Used by bounded-reachability model checking: once a target state
        is entered, the future does not matter, so its row is replaced
        by a self-loop.
        """
        absorbing = set(absorbing)
        lil = self.transition_matrix.tolil(copy=True)
        for i in absorbing:
            lil.rows[i] = [i]
            lil.data[i] = [1.0]
        return DTMC(
            lil.tocsr(),
            self.initial_distribution.copy(),
            labels={k: v.copy() for k, v in self.labels.items()},
            rewards={k: v.copy() for k, v in self.rewards.items()},
            states=self.states,
        )

    # ------------------------------------------------------------------
    # Misc
    # ------------------------------------------------------------------
    def state_values(self, index: int) -> Any:
        """The underlying state object for ``index`` (if kept)."""
        if self.states is None:
            raise ValueError("chain was built without state objects")
        return self.states[index]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DTMC(states={self.num_states}, transitions={self.num_transitions},"
            f" labels={sorted(self.labels)}, rewards={sorted(self.rewards)})"
        )


def dtmc_from_dict(
    transitions: Mapping[Any, Mapping[Any, float]],
    initial: Any,
    labels: Optional[Mapping[str, Iterable[Any]]] = None,
    rewards: Optional[Mapping[str, Mapping[Any, float]]] = None,
) -> DTMC:
    """Build a :class:`DTMC` from a nested-dict description.

    Convenient for tests and small examples::

        chain = dtmc_from_dict(
            {"s0": {"s0": 0.5, "s1": 0.5}, "s1": {"s1": 1.0}},
            initial="s0",
            labels={"done": ["s1"]},
        )

    States may be arbitrary hashable objects; they are kept on the
    resulting chain (``chain.states``) in insertion order.
    """
    order: List[Any] = []
    index: Dict[Any, int] = {}

    def intern(state: Any) -> int:
        if state not in index:
            index[state] = len(order)
            order.append(state)
        return index[state]

    for src in transitions:
        intern(src)
    for src, row in transitions.items():
        for dst in row:
            intern(dst)

    n = len(order)
    rows: List[int] = []
    cols: List[int] = []
    vals: List[float] = []
    for src, row in transitions.items():
        i = index[src]
        for dst, p in row.items():
            rows.append(i)
            cols.append(index[dst])
            vals.append(float(p))
    # States that never appear as sources become absorbing.
    sources = {index[src] for src in transitions}
    for i in range(n):
        if i not in sources:
            rows.append(i)
            cols.append(i)
            vals.append(1.0)
    matrix = sparse.csr_matrix((vals, (rows, cols)), shape=(n, n))

    if initial not in index:
        raise DTMCValidationError(f"initial state {initial!r} not in transitions")
    init = np.zeros(n)
    init[index[initial]] = 1.0

    label_vectors: Dict[str, np.ndarray] = {}
    for name, members in (labels or {}).items():
        vec = np.zeros(n, dtype=bool)
        for member in members:
            vec[index[member]] = True
        label_vectors[name] = vec

    reward_vectors: Dict[str, np.ndarray] = {}
    for name, mapping in (rewards or {}).items():
        vec = np.zeros(n)
        for state, value in mapping.items():
            vec[index[state]] = float(value)
        reward_vectors[name] = vec

    return DTMC(matrix, init, labels=label_vectors, rewards=reward_vectors, states=order)
