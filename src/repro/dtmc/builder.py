"""State-space exploration: compile a probabilistic next-state function
into an explicit :class:`~repro.dtmc.chain.DTMC`.

This is the bridge between RTL-style models (the Viterbi decoder and
MIMO detector modules, or guarded-command programs from
:mod:`repro.prog`) and the model-checking engine.  A model is any
function mapping a hashable state to a finite distribution over
successor states; the builder performs a breadth-first exploration from
the initial states, interning states as it discovers them.

Two scalability features mirror the paper's tooling:

* ``canonicalize`` — a hook mapping each discovered state to a
  canonical representative *before* interning.  Supplying the orbit
  representative of a symmetry group performs **on-the-fly symmetry
  reduction** (Section IV-B / Table II): the quotient chain is built
  directly and the full model never materializes.
* ``branch_cutoff`` — branches with probability below the cutoff are
  discarded and the remaining branch probabilities renormalized, which
  is how PRISM's 1e-15 pruning kept the paper's 1x4 detector model
  tractable (Table II).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Hashable, List, Mapping, Optional, Sequence, Tuple

import numpy as np
from scipy import sparse

from .chain import DTMC, DTMCValidationError

__all__ = [
    "ExplorationLimitError",
    "ExplorationResult",
    "build_dtmc",
    "build_iid_dtmc",
]

State = Hashable
Branch = Tuple[float, State]
TransitionFn = Callable[[State], Sequence[Branch]]

#: Probability mass lost to merging/cutoff must stay within this bound
#: of a renormalizable row.
PROBABILITY_TOLERANCE = 1e-9


class ExplorationLimitError(RuntimeError):
    """Raised when exploration exceeds ``max_states``."""


@dataclass
class ExplorationResult:
    """Outcome of :func:`build_dtmc`.

    Attributes
    ----------
    chain:
        The constructed DTMC (row-stochastic, validated).
    states:
        State objects in index order (also stored on ``chain.states``).
    index:
        Mapping from state object to its index.
    bfs_levels:
        Number of BFS levels needed to exhaust the reachable set; this
        equals the paper's *reachability iterations* (RI) figure.
    discarded_branches:
        Count of probability branches dropped by ``branch_cutoff``.
    """

    chain: DTMC
    states: List[State]
    index: Dict[State, int]
    bfs_levels: int
    discarded_branches: int = 0

    @property
    def num_states(self) -> int:
        return len(self.states)


def _normalize_branches(
    branches: Sequence[Branch],
    canonicalize: Optional[Callable[[State], State]],
    branch_cutoff: float,
) -> Tuple[List[Branch], int]:
    """Canonicalize successors, merge duplicates, apply the cutoff,
    and renormalize to a stochastic row."""
    merged: Dict[State, float] = {}
    for probability, successor in branches:
        probability = float(probability)
        if probability < 0:
            raise DTMCValidationError(
                f"negative branch probability {probability}"
            )
        if probability == 0.0:
            continue
        if canonicalize is not None:
            successor = canonicalize(successor)
        merged[successor] = merged.get(successor, 0.0) + probability

    discarded = 0
    if branch_cutoff > 0.0:
        kept = {s: p for s, p in merged.items() if p >= branch_cutoff}
        discarded = len(merged) - len(kept)
        merged = kept

    total = sum(merged.values())
    if not merged or total <= 0.0:
        raise DTMCValidationError(
            "state has no outgoing probability mass after cutoff; "
            "lower branch_cutoff or fix the model"
        )
    if abs(total - 1.0) > PROBABILITY_TOLERANCE and branch_cutoff == 0.0:
        raise DTMCValidationError(
            f"branch probabilities sum to {total}, expected 1.0"
        )
    return [(p / total, s) for s, p in merged.items()], discarded


def build_dtmc(
    transition_fn: TransitionFn,
    initial: State | Sequence[Branch],
    labels: Optional[Mapping[str, Callable[[State], bool]]] = None,
    rewards: Optional[Mapping[str, Callable[[State], float]]] = None,
    canonicalize: Optional[Callable[[State], State]] = None,
    branch_cutoff: float = 0.0,
    max_states: Optional[int] = None,
    keep_states: bool = True,
) -> ExplorationResult:
    """Explore the reachable state space of a probabilistic model.

    Parameters
    ----------
    transition_fn:
        Maps a state to its successor distribution as ``(probability,
        next_state)`` pairs.  Probabilities of one state's branches
        must sum to 1 (up to merging of equal successors); with a
        positive ``branch_cutoff`` the row is renormalized instead.
    initial:
        Either a single initial state or a distribution given as
        ``(probability, state)`` pairs.
    labels / rewards:
        Predicates / real-valued functions evaluated on every reachable
        state to produce the chain's atomic propositions and reward
        structures (the paper's ``flag`` label-and-reward, e.g.).
    canonicalize:
        Orbit-representative function for on-the-fly symmetry
        reduction.  Must satisfy ``canonicalize(canonicalize(s)) ==
        canonicalize(s)`` and be compatible with the dynamics (the
        model's distribution must be invariant across an orbit); the
        soundness checkers in :mod:`repro.core.reductions` can verify
        this on the built chain.
    branch_cutoff:
        Discard branches below this probability and renormalize
        (PRISM-style pruning).
    max_states:
        Abort with :class:`ExplorationLimitError` when exceeded —
        protects against accidentally exploring an unreduced model.
    keep_states:
        Keep state objects on the chain (needed for pCTL expressions
        over state variables and for reduction diagnostics).
    """
    # A plain list of (probability, state) pairs is an initial
    # distribution; anything else (including tuple-like state objects
    # such as namedtuples) is a single initial state.
    if (
        isinstance(initial, list)
        and initial
        and all(
            isinstance(item, tuple)
            and len(item) == 2
            and isinstance(item[0], (int, float))
            for item in initial
        )
    ):
        initial_branches: Sequence[Branch] = initial  # type: ignore[assignment]
    else:
        initial_branches = [(1.0, initial)]

    index: Dict[State, int] = {}
    states: List[State] = []

    def intern(state: State) -> int:
        slot = index.get(state)
        if slot is None:
            slot = len(states)
            index[state] = slot
            states.append(state)
            if max_states is not None and slot >= max_states:
                raise ExplorationLimitError(
                    f"exploration exceeded max_states={max_states}"
                )
        return slot

    initial_norm, _ = _normalize_branches(
        list(initial_branches), canonicalize, branch_cutoff=0.0
    )
    initial_pairs = [(p, intern(s)) for p, s in initial_norm]

    rows: List[int] = []
    cols: List[int] = []
    vals: List[float] = []
    discarded_total = 0

    frontier: List[int] = [i for _, i in initial_pairs]
    seen_frontier = set(frontier)
    bfs_levels = 0
    explored_upto = 0

    while frontier:
        next_frontier: List[int] = []
        for state_id in frontier:
            state = states[state_id]
            branches, discarded = _normalize_branches(
                list(transition_fn(state)), canonicalize, branch_cutoff
            )
            discarded_total += discarded
            for probability, successor in branches:
                succ_known = successor in index
                succ_id = intern(successor)
                rows.append(state_id)
                cols.append(succ_id)
                vals.append(probability)
                if not succ_known and succ_id not in seen_frontier:
                    next_frontier.append(succ_id)
                    seen_frontier.add(succ_id)
        if not next_frontier:
            break
        bfs_levels += 1
        frontier = next_frontier
        seen_frontier = set(frontier)

    n = len(states)
    matrix = sparse.csr_matrix((vals, (rows, cols)), shape=(n, n))
    matrix.sum_duplicates()

    init_vec = np.zeros(n)
    for probability, state_id in initial_pairs:
        init_vec[state_id] += probability

    label_vectors: Dict[str, np.ndarray] = {}
    for name, predicate in (labels or {}).items():
        label_vectors[name] = np.fromiter(
            (bool(predicate(s)) for s in states), dtype=bool, count=n
        )
    reward_vectors: Dict[str, np.ndarray] = {}
    for name, fn in (rewards or {}).items():
        reward_vectors[name] = np.fromiter(
            (float(fn(s)) for s in states), dtype=np.float64, count=n
        )

    chain = DTMC(
        matrix,
        init_vec,
        labels=label_vectors,
        rewards=reward_vectors,
        states=states if keep_states else None,
    )
    return ExplorationResult(
        chain=chain,
        states=states,
        index=index,
        bfs_levels=bfs_levels,
        discarded_branches=discarded_total,
    )


def build_iid_dtmc(
    step_distribution: Sequence[Branch],
    initial: State,
    labels: Optional[Mapping[str, Callable[[State], bool]]] = None,
    rewards: Optional[Mapping[str, Callable[[State], float]]] = None,
    branch_cutoff: float = 0.0,
) -> ExplorationResult:
    """Build the chain of an i.i.d. per-step system (memoryless redraw).

    Some RTL blocks — the paper's MIMO detector among them — redraw all
    their probabilistic inputs every clock cycle, so *every* state has
    the same successor distribution.  Exploring such a chain with
    :func:`build_dtmc` would materialize ``n`` identical dense rows one
    Python branch at a time; this constructor instead tiles the single
    row, which is orders of magnitude faster and is the explicit-state
    analogue of the factored (MTBDD) representation PRISM exploits.

    ``step_distribution`` is the common one-step outcome distribution;
    ``initial`` is the cold-start state (prepended if it is not in the
    support).  Labels/rewards are evaluated on every state as usual.
    """
    merged: Dict[State, float] = {}
    for probability, state in step_distribution:
        probability = float(probability)
        if probability < 0:
            raise DTMCValidationError(f"negative probability {probability}")
        if probability > 0:
            merged[state] = merged.get(state, 0.0) + probability
    discarded = 0
    if branch_cutoff > 0.0:
        kept = {s: p for s, p in merged.items() if p >= branch_cutoff}
        discarded = len(merged) - len(kept)
        merged = kept
    total = sum(merged.values())
    if not merged:
        raise DTMCValidationError("step distribution is empty after cutoff")
    if branch_cutoff == 0.0 and abs(total - 1.0) > PROBABILITY_TOLERANCE:
        raise DTMCValidationError(
            f"step distribution sums to {total}, expected 1.0"
        )

    support = sorted(merged)
    states: List[State] = ([initial] if initial not in merged else []) + support
    index = {state: i for i, state in enumerate(states)}
    n = len(states)
    k = len(support)

    columns = np.fromiter(
        (index[state] for state in support), dtype=np.int64, count=k
    )
    row_data = np.fromiter(
        (merged[state] / total for state in support), dtype=np.float64, count=k
    )
    indptr = np.arange(0, (n + 1) * k, k, dtype=np.int64)
    matrix = sparse.csr_matrix(
        (np.tile(row_data, n), np.tile(columns, n), indptr), shape=(n, n)
    )

    init_vec = np.zeros(n)
    init_vec[index[initial]] = 1.0

    label_vectors: Dict[str, np.ndarray] = {}
    for name, predicate in (labels or {}).items():
        label_vectors[name] = np.fromiter(
            (bool(predicate(s)) for s in states), dtype=bool, count=n
        )
    reward_vectors: Dict[str, np.ndarray] = {}
    for name, fn in (rewards or {}).items():
        reward_vectors[name] = np.fromiter(
            (float(fn(s)) for s in states), dtype=np.float64, count=n
        )

    chain = DTMC(
        matrix,
        init_vec,
        labels=label_vectors,
        rewards=reward_vectors,
        states=states,
    )
    return ExplorationResult(
        chain=chain,
        states=states,
        index=index,
        bfs_levels=1 if initial not in merged else 0,
        discarded_branches=discarded,
    )
