"""Discrete-Time Markov Chain substrate.

Explicit-state DTMC representation plus the analyses probabilistic
model checking needs: reachability, SCC/BSCC structure, transient
distributions, steady state, and a state-space builder with symmetry
and cutoff hooks.
"""

from .chain import DTMC, DTMCValidationError, dtmc_from_dict
from .builder import (
    ExplorationLimitError,
    ExplorationResult,
    build_dtmc,
    build_iid_dtmc,
)
from .graph import (
    backward_reachable,
    bottom_sccs,
    constrained_backward_reachable,
    is_aperiodic,
    is_irreducible,
    period,
    reachability_iterations,
    reachable_states,
    strongly_connected_components,
)
from .linear import SolverError, gauss_seidel_solve, jacobi_solve, power_solve
from .rewards import RewardStructure, attach_reward
from .simulate import PathSampler, sample_path
from .sparse_utils import as_csr
from .steady_state import (
    ReducibleChainError,
    absorption_probabilities,
    assert_ergodic,
    long_run_distribution,
    long_run_reward,
    power_iteration,
    stationary_distribution,
)
from .transient import (
    bounded_invariance,
    bounded_reachability,
    cumulative_reward,
    distribution_at,
    distribution_trajectory,
    expected_visits,
    instantaneous_reward,
)

__all__ = [
    "DTMC",
    "DTMCValidationError",
    "dtmc_from_dict",
    "ExplorationLimitError",
    "ExplorationResult",
    "build_dtmc",
    "build_iid_dtmc",
    "backward_reachable",
    "bottom_sccs",
    "constrained_backward_reachable",
    "is_aperiodic",
    "is_irreducible",
    "period",
    "reachability_iterations",
    "reachable_states",
    "strongly_connected_components",
    "SolverError",
    "gauss_seidel_solve",
    "jacobi_solve",
    "power_solve",
    "RewardStructure",
    "attach_reward",
    "PathSampler",
    "sample_path",
    "as_csr",
    "ReducibleChainError",
    "absorption_probabilities",
    "assert_ergodic",
    "long_run_distribution",
    "long_run_reward",
    "power_iteration",
    "stationary_distribution",
    "bounded_invariance",
    "bounded_reachability",
    "cumulative_reward",
    "distribution_at",
    "distribution_trajectory",
    "expected_visits",
    "instantaneous_reward",
]
