"""Path sampling from DTMCs.

Monte-Carlo simulation *of the chain itself* — the bridge between the
exact engine and statistical model checking: sampled prefixes are fed
to the bounded-property evaluators in :mod:`repro.smc.bridge`, and the
sampler doubles as a general-purpose trace generator for debugging
models.

Sampling uses inverse-CDF lookups on precomputed cumulative rows, so
drawing many paths from one chain is cheap.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from .chain import DTMC

__all__ = ["PathSampler", "sample_path"]


class PathSampler:
    """Draws state-index paths from a chain.

    Precomputes per-row cumulative distributions once; each step of
    each path is then a binary search.
    """

    def __init__(self, chain: DTMC, rng: Optional[np.random.Generator] = None) -> None:
        self.chain = chain
        self.rng = rng if rng is not None else np.random.default_rng()
        matrix = chain.transition_matrix
        self._indptr = matrix.indptr
        self._indices = matrix.indices
        self._cumulative = np.copy(matrix.data)
        for state in range(chain.num_states):
            start, end = self._indptr[state], self._indptr[state + 1]
            self._cumulative[start:end] = np.cumsum(self._cumulative[start:end])
        init = chain.initial_distribution
        self._init_states = np.nonzero(init)[0]
        self._init_cumulative = np.cumsum(init[self._init_states])

    def sample_initial(self) -> int:
        """Draw a start state from the initial distribution."""
        u = self.rng.random() * self._init_cumulative[-1]
        k = int(np.searchsorted(self._init_cumulative, u, side="right"))
        k = min(k, len(self._init_states) - 1)
        return int(self._init_states[k])

    def step(self, state: int) -> int:
        """Draw one successor of ``state``."""
        start, end = self._indptr[state], self._indptr[state + 1]
        if start == end:
            raise ValueError(f"state {state} has no outgoing transitions")
        u = self.rng.random() * self._cumulative[end - 1]
        k = int(np.searchsorted(self._cumulative[start:end], u, side="right"))
        k = min(k, end - start - 1)
        return int(self._indices[start + k])

    def path(self, length: int, start: Optional[int] = None) -> np.ndarray:
        """A path of ``length`` transitions: ``length + 1`` state indices."""
        state = self.sample_initial() if start is None else int(start)
        out = np.empty(length + 1, dtype=np.int64)
        out[0] = state
        for t in range(1, length + 1):
            state = self.step(state)
            out[t] = state
        return out

    def paths(self, count: int, length: int) -> np.ndarray:
        """``count`` independent paths, shape ``(count, length + 1)``."""
        out = np.empty((count, length + 1), dtype=np.int64)
        for i in range(count):
            out[i] = self.path(length)
        return out


def sample_path(
    chain: DTMC,
    length: int,
    rng: Optional[np.random.Generator] = None,
    start: Optional[int] = None,
) -> np.ndarray:
    """One-shot convenience wrapper around :class:`PathSampler`."""
    return PathSampler(chain, rng).path(length, start=start)
