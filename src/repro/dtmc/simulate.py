"""Path sampling from DTMCs.

Monte-Carlo simulation *of the chain itself* — the bridge between the
exact engine and statistical model checking: sampled prefixes are fed
to the bounded-property evaluators in :mod:`repro.smc.bridge`, and the
sampler doubles as a general-purpose trace generator for debugging
models.

Sampling uses Walker's alias method: one table per transition-matrix
row, built once per chain, turns every step of every walker into O(1)
work from a single uniform draw.  :meth:`PathSampler.advance` steps an
arbitrary batch of walkers with one fancy-indexed numpy operation, and
:meth:`PathSampler.paths` draws whole path matrices without a Python
loop over time steps per path.

The batched methods are *stream-compatible* with the scalar ones: each
walker consumes a fixed number of uniforms (one per transition, plus
one for the initial state), drawn row-major, so ``paths(n, k)`` yields
exactly the ``n`` paths that ``n`` sequential :meth:`PathSampler.path`
calls on the same generator would.  The SMC layer relies on this to
keep chunked runs bit-identical to scalar ones.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from .chain import DTMC

__all__ = ["PathSampler", "sample_path", "build_alias_table"]

#: Sampling backends: ``"alias"`` (Walker tables, supports the batched
#: API) and ``"search"`` (the historical per-step binary search on
#: cumulative rows, kept as a scalar baseline for cross-checks and
#: benchmarks).
SAMPLER_METHODS = ("alias", "search")


def build_alias_table(probs: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Walker/Vose alias table for one discrete distribution.

    Returns ``(prob, alias)`` arrays of ``len(probs)``: outcome ``j``
    is drawn from a uniform ``u`` in ``[0, 1)`` as ``j = floor(u * n)``
    kept with probability ``prob[j]`` (using the fractional part of
    ``u * n`` as the second uniform) and replaced by ``alias[j]``
    otherwise.
    """
    p = np.asarray(probs, dtype=np.float64)
    n = p.size
    if n == 0 or not np.all(p >= 0.0) or p.sum() <= 0.0:
        raise ValueError("alias table needs a nonempty nonnegative distribution")
    scaled = p * (n / p.sum())
    prob = np.ones(n, dtype=np.float64)
    alias = np.arange(n, dtype=np.int64)
    small = [i for i in range(n) if scaled[i] < 1.0]
    large = [i for i in range(n) if scaled[i] >= 1.0]
    while small and large:
        s = small.pop()
        g = large.pop()
        prob[s] = scaled[s]
        alias[s] = g
        scaled[g] -= 1.0 - scaled[s]
        (small if scaled[g] < 1.0 else large).append(g)
    # Leftovers (numerical stragglers) keep prob = 1: always themselves.
    return prob, alias


def _alias_pick(
    prob: np.ndarray, alias: np.ndarray, u: np.ndarray, offset=0, size=None
) -> np.ndarray:
    """Vectorized alias draw with per-element table windows.

    ``offset``/``size`` select each element's table slice inside the
    flattened per-row arrays (scalars broadcast, so a single shared
    table works too).
    """
    n = size if size is not None else prob.shape[0]
    x = u * n
    j = x.astype(np.int64)
    np.minimum(j, n - 1, out=j)  # guard the u*n == n rounding edge
    frac = x - j
    k = offset + j
    return np.where(frac < prob[k], j, alias[k])


def _alias_pick_scalar(
    prob: np.ndarray, alias: np.ndarray, u: float, offset: int, size: int
) -> int:
    """Scalar twin of :func:`_alias_pick` — identical arithmetic (same
    IEEE operations in the same order), no array round-trips."""
    x = u * size
    j = int(x)
    if j > size - 1:
        j = size - 1
    if x - j < prob[offset + j]:
        return j
    return int(alias[offset + j])


class PathSampler:
    """Draws state-index paths from a chain.

    Precomputes a Walker alias table per transition-matrix row (and one
    for the initial distribution); each step of each walker is then one
    uniform draw and one table lookup, with :meth:`advance` doing a
    whole batch of walkers per numpy call.

    Parameters
    ----------
    chain:
        The DTMC to sample.
    rng:
        Default generator for the convenience methods; every sampling
        method also accepts an explicit ``rng`` so one sampler can be
        shared across threads without mutable-state races.
    method:
        ``"alias"`` (default) or ``"search"`` — see
        :data:`SAMPLER_METHODS`.  Only ``"alias"`` supports the batched
        :meth:`advance`/:meth:`paths` fast path.
    """

    def __init__(
        self,
        chain: DTMC,
        rng: Optional[np.random.Generator] = None,
        method: str = "alias",
    ) -> None:
        if method not in SAMPLER_METHODS:
            raise ValueError(
                f"unknown sampling method {method!r};"
                f" choose from {', '.join(SAMPLER_METHODS)}"
            )
        self.chain = chain
        self.method = method
        self.rng = rng if rng is not None else np.random.default_rng()
        matrix = chain.transition_matrix
        self._indptr = matrix.indptr.astype(np.int64)
        self._indices = matrix.indices.astype(np.int64)
        self._row_size = np.diff(self._indptr)
        if np.any(self._row_size == 0):
            empty = int(np.argmax(self._row_size == 0))
            raise ValueError(f"state {empty} has no outgoing transitions")
        # Only the selected method's structure is built: flattened
        # per-row alias tables (indexed like the CSR data), or the
        # cumulative rows of the binary-search baseline.
        data = matrix.data
        init = chain.initial_distribution
        self._init_states = np.nonzero(init)[0]
        if method == "alias":
            self._alias_prob = np.empty_like(data)
            self._alias_idx = np.empty(data.shape[0], dtype=np.int64)
            for state in range(chain.num_states):
                start, end = self._indptr[state], self._indptr[state + 1]
                prob, alias = build_alias_table(data[start:end])
                self._alias_prob[start:end] = prob
                self._alias_idx[start:end] = alias
            self._init_prob, self._init_alias = build_alias_table(
                init[self._init_states]
            )
        else:
            self._cumulative = np.copy(data)
            for state in range(chain.num_states):
                start, end = self._indptr[state], self._indptr[state + 1]
                self._cumulative[start:end] = np.cumsum(
                    self._cumulative[start:end]
                )
            self._init_cumulative = np.cumsum(init[self._init_states])

    def _rng(self, rng: Optional[np.random.Generator]) -> np.random.Generator:
        return self.rng if rng is None else rng

    # ------------------------------------------------------------------
    # Scalar API (kept stream-compatible with the batched one)
    # ------------------------------------------------------------------
    def sample_initial(self, rng: Optional[np.random.Generator] = None) -> int:
        """Draw a start state from the initial distribution."""
        u = self._rng(rng).random()
        if self.method == "search":
            u *= self._init_cumulative[-1]
            k = int(np.searchsorted(self._init_cumulative, u, side="right"))
            k = min(k, len(self._init_states) - 1)
            return int(self._init_states[k])
        pick = _alias_pick_scalar(
            self._init_prob, self._init_alias, u, 0, self._init_prob.shape[0]
        )
        return int(self._init_states[pick])

    def step(self, state: int, rng: Optional[np.random.Generator] = None) -> int:
        """Draw one successor of ``state`` (one uniform consumed)."""
        u = self._rng(rng).random()
        start = int(self._indptr[state])
        if self.method == "search":
            end = int(self._indptr[state + 1])
            u *= self._cumulative[end - 1]
            k = int(np.searchsorted(self._cumulative[start:end], u, side="right"))
            k = min(k, end - start - 1)
            return int(self._indices[start + k])
        local = _alias_pick_scalar(
            self._alias_prob, self._alias_idx, u, start, int(self._row_size[state])
        )
        return int(self._indices[start + local])

    def path(
        self,
        length: int,
        start: Optional[int] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> np.ndarray:
        """A path of ``length`` transitions: ``length + 1`` state indices."""
        rng = self._rng(rng)
        state = self.sample_initial(rng) if start is None else int(start)
        out = np.empty(length + 1, dtype=np.int64)
        out[0] = state
        for t in range(1, length + 1):
            state = self.step(state, rng)
            out[t] = state
        return out

    # ------------------------------------------------------------------
    # Batched API
    # ------------------------------------------------------------------
    def sample_initials_from(self, u: np.ndarray) -> np.ndarray:
        """Map pre-drawn uniforms to initial states via the alias table."""
        picks = _alias_pick(self._init_prob, self._init_alias, np.asarray(u))
        return self._init_states[picks]

    def sample_initials(
        self, count: int, rng: Optional[np.random.Generator] = None
    ) -> np.ndarray:
        """``count`` initial states in one vectorized draw."""
        return self.sample_initials_from(self._rng(rng).random(count))

    def advance(self, states: np.ndarray, u: np.ndarray) -> np.ndarray:
        """Step every walker once: ``states[i] -> successor`` using the
        pre-drawn uniform ``u[i]``.

        One fancy-indexed numpy operation for the whole batch — the
        kernel the fused SMC trials and :meth:`paths` are built on.
        """
        if self.method != "alias":
            raise ValueError(
                "batched advance needs the alias sampler; this one uses"
                f" method={self.method!r}"
            )
        states = np.asarray(states, dtype=np.int64)
        start = self._indptr[states]
        local = _alias_pick(
            self._alias_prob,
            self._alias_idx,
            np.asarray(u),
            offset=start,
            size=self._row_size[states],
        )
        return self._indices[start + local]

    def steps(
        self, states: np.ndarray, rng: Optional[np.random.Generator] = None
    ) -> np.ndarray:
        """:meth:`advance` with freshly drawn uniforms."""
        states = np.asarray(states, dtype=np.int64)
        return self.advance(states, self._rng(rng).random(states.shape[0]))

    def paths(
        self,
        count: int,
        length: int,
        rng: Optional[np.random.Generator] = None,
        starts: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """``count`` independent paths, shape ``(count, length + 1)``.

        Walks all paths together, one :meth:`advance` per time step.
        Uniforms are drawn as a row-major ``(count, draws)`` block, so
        row ``i`` reproduces the ``i``-th sequential :meth:`path` call
        on the same generator.
        """
        rng = self._rng(rng)
        out = np.empty((count, length + 1), dtype=np.int64)
        if self.method == "search":
            for i in range(count):
                start = None if starts is None else int(starts[i])
                out[i] = self.path(length, start=start, rng=rng)
            return out
        draws = length if starts is not None else length + 1
        uniforms = rng.random((count, draws))
        if starts is None:
            states = self.sample_initials_from(uniforms[:, 0])
            column = 1
        else:
            states = np.asarray(starts, dtype=np.int64)
            column = 0
        out[:, 0] = states
        for t in range(1, length + 1):
            states = self.advance(states, uniforms[:, column])
            out[:, t] = states
            column += 1
        return out


def sample_path(
    chain: DTMC,
    length: int,
    rng: Optional[np.random.Generator] = None,
    start: Optional[int] = None,
) -> np.ndarray:
    """One-shot convenience wrapper around :class:`PathSampler`."""
    return PathSampler(chain, rng).path(length, start=start)
