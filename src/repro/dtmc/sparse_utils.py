"""Shared sparse-matrix coercion used across the DTMC and engine layers.

Historically :mod:`repro.dtmc.chain` and :mod:`repro.dtmc.linear` each
carried a private ``_as_csr`` copy; this module is the single home for
that coercion (and for the validation error it raises), so the chain,
the iterative solvers, and :mod:`repro.engine` all agree on one code
path.
"""

from __future__ import annotations

from typing import Any, Optional

import numpy as np
from scipy import sparse

__all__ = ["DTMCValidationError", "as_csr"]


class DTMCValidationError(ValueError):
    """Raised when a transition structure is not a valid DTMC."""


def as_csr(
    matrix: Any, n: Optional[int] = None, *, require_square: bool = False
) -> sparse.csr_matrix:
    """Coerce ``matrix`` into a float64 CSR matrix.

    With ``require_square`` (what transition matrices need) the matrix
    must be square, and when ``n`` is given, of size ``n x n``.
    """
    csr = sparse.csr_matrix(matrix, dtype=np.float64)
    if require_square:
        rows, cols = csr.shape
        if rows != cols:
            raise DTMCValidationError(
                f"transition matrix must be square, got {rows}x{cols}"
            )
        if n is not None and rows != n:
            raise DTMCValidationError(
                f"transition matrix has {rows} states, expected {n}"
            )
    return csr
