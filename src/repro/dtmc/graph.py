"""Graph-theoretic analysis of DTMCs.

Provides the structural facts the paper's methodology relies on:

* reachability from the initial states (PRISM's "reachability
  iterations" fixpoint, reported as *RI* in Tables III-V);
* strongly connected components and *bottom* SCCs (BSCCs), which carry
  all long-run probability mass;
* irreducibility and aperiodicity checks — the paper's steady-state
  argument ("all finite, irreducible, aperiodic DTMC models are
  guaranteed to reach a steady state") is implemented as an explicit
  check here.

The SCC computation is an iterative Tarjan so it does not hit Python's
recursion limit on million-state chains.
"""

from __future__ import annotations

from math import gcd
from typing import List, Sequence, Set, Tuple

import numpy as np
from scipy import sparse

from .chain import DTMC

__all__ = [
    "reachable_states",
    "reachability_iterations",
    "strongly_connected_components",
    "bottom_sccs",
    "is_irreducible",
    "period",
    "is_aperiodic",
    "backward_reachable",
    "constrained_backward_reachable",
]


def _indptr_indices(matrix: sparse.csr_matrix) -> Tuple[np.ndarray, np.ndarray]:
    return matrix.indptr, matrix.indices


def reachable_states(chain: DTMC, sources: Sequence[int] | None = None) -> Set[int]:
    """States reachable (in any number of steps) from ``sources``.

    ``sources`` defaults to the chain's initial states.
    """
    indptr, indices = _indptr_indices(chain.transition_matrix)
    if sources is None:
        sources = chain.initial_states()
    seen: Set[int] = set(int(s) for s in sources)
    frontier = list(seen)
    while frontier:
        next_frontier: List[int] = []
        for u in frontier:
            for v in indices[indptr[u] : indptr[u + 1]]:
                v = int(v)
                if v not in seen:
                    seen.add(v)
                    next_frontier.append(v)
        frontier = next_frontier
    return seen


def reachability_iterations(chain: DTMC, sources: Sequence[int] | None = None) -> int:
    """Number of BFS levels until the reachable set stops growing.

    This is the *RI* fixpoint the paper reports: after ``RI``
    iterations of forward exploration no new states are discovered, and
    transient quantities computed at horizons well beyond RI are near
    their steady-state values.
    """
    indptr, indices = _indptr_indices(chain.transition_matrix)
    if sources is None:
        sources = chain.initial_states()
    seen: Set[int] = set(int(s) for s in sources)
    frontier = list(seen)
    iterations = 0
    while frontier:
        next_frontier: List[int] = []
        for u in frontier:
            for v in indices[indptr[u] : indptr[u + 1]]:
                v = int(v)
                if v not in seen:
                    seen.add(v)
                    next_frontier.append(v)
        if not next_frontier:
            break
        iterations += 1
        frontier = next_frontier
    return iterations


def backward_reachable(chain: DTMC, targets: Sequence[int]) -> Set[int]:
    """States from which some state in ``targets`` is reachable."""
    transpose = chain.transition_matrix.tocsc()
    indptr, indices = transpose.indptr, transpose.indices
    seen: Set[int] = set(int(t) for t in targets)
    frontier = list(seen)
    while frontier:
        next_frontier: List[int] = []
        for u in frontier:
            for v in indices[indptr[u] : indptr[u + 1]]:
                v = int(v)
                if v not in seen:
                    seen.add(v)
                    next_frontier.append(v)
        frontier = next_frontier
    return seen


def constrained_backward_reachable(
    chain: DTMC, targets: Sequence[int], through: np.ndarray
) -> Set[int]:
    """States that can reach ``targets`` moving only through ``through``
    states (the targets themselves need not satisfy ``through``).

    This is the graph kernel of the Prob0/Prob1 precomputations of
    pCTL model checking (Baier & Katoen, Algorithm 46).
    """
    transpose = chain.transition_matrix.tocsc()
    indptr, indices = transpose.indptr, transpose.indices
    seen: Set[int] = set(int(t) for t in targets)
    frontier = list(seen)
    while frontier:
        next_frontier: List[int] = []
        for u in frontier:
            for v in indices[indptr[u] : indptr[u + 1]]:
                v = int(v)
                if v not in seen and through[v]:
                    seen.add(v)
                    next_frontier.append(v)
        frontier = next_frontier
    return seen


def strongly_connected_components(chain: DTMC) -> List[List[int]]:
    """Tarjan's algorithm (iterative) over the transition graph.

    Returns components in reverse topological order (Tarjan's natural
    output order): every edge between distinct components points from a
    later component in the list to an earlier one.
    """
    n = chain.num_states
    indptr, indices = _indptr_indices(chain.transition_matrix)

    index_counter = 0
    stack: List[int] = []
    on_stack = np.zeros(n, dtype=bool)
    index = np.full(n, -1, dtype=np.int64)
    lowlink = np.zeros(n, dtype=np.int64)
    components: List[List[int]] = []

    for root in range(n):
        if index[root] != -1:
            continue
        # Each work item is (node, next-edge-offset).
        work: List[List[int]] = [[root, indptr[root]]]
        while work:
            node, edge_ptr = work[-1]
            if index[node] == -1:
                index[node] = index_counter
                lowlink[node] = index_counter
                index_counter += 1
                stack.append(node)
                on_stack[node] = True
            advanced = False
            while edge_ptr < indptr[node + 1]:
                succ = int(indices[edge_ptr])
                edge_ptr += 1
                if index[succ] == -1:
                    work[-1][1] = edge_ptr
                    work.append([succ, indptr[succ]])
                    advanced = True
                    break
                if on_stack[succ]:
                    lowlink[node] = min(lowlink[node], index[succ])
            if advanced:
                continue
            work.pop()
            if lowlink[node] == index[node]:
                component: List[int] = []
                while True:
                    w = stack.pop()
                    on_stack[w] = False
                    component.append(w)
                    if w == node:
                        break
                components.append(component)
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
    return components


def bottom_sccs(chain: DTMC) -> List[List[int]]:
    """SCCs with no outgoing edges (the chain's recurrent classes)."""
    components = strongly_connected_components(chain)
    component_of = np.empty(chain.num_states, dtype=np.int64)
    for comp_id, members in enumerate(components):
        for state in members:
            component_of[state] = comp_id
    indptr, indices = _indptr_indices(chain.transition_matrix)
    bottoms: List[List[int]] = []
    for comp_id, members in enumerate(components):
        is_bottom = True
        for u in members:
            for v in indices[indptr[u] : indptr[u + 1]]:
                if component_of[int(v)] != comp_id:
                    is_bottom = False
                    break
            if not is_bottom:
                break
        if is_bottom:
            bottoms.append(sorted(members))
    return bottoms


def is_irreducible(chain: DTMC) -> bool:
    """True iff the whole state space is one strongly connected class."""
    components = strongly_connected_components(chain)
    return len(components) == 1


def period(chain: DTMC, state: int = 0) -> int:
    """Period of ``state``: gcd of the lengths of all cycles through its class.

    Computed with the standard BFS-level trick: within the SCC of
    ``state``, the gcd of ``level(u) + 1 - level(v)`` over all edges
    ``u -> v`` inside the class equals the period.
    """
    components = strongly_connected_components(chain)
    home = None
    for members in components:
        if state in members:
            home = set(members)
            break
    assert home is not None
    indptr, indices = _indptr_indices(chain.transition_matrix)
    level = {state: 0}
    frontier = [state]
    g = 0
    while frontier:
        next_frontier: List[int] = []
        for u in frontier:
            for v in indices[indptr[u] : indptr[u + 1]]:
                v = int(v)
                if v not in home:
                    continue
                if v in level:
                    g = gcd(g, level[u] + 1 - level[v])
                else:
                    level[v] = level[u] + 1
                    next_frontier.append(v)
        frontier = next_frontier
    return abs(g) if g else 0


def is_aperiodic(chain: DTMC) -> bool:
    """True iff every recurrent class of the chain has period 1."""
    for members in bottom_sccs(chain):
        if period(chain, members[0]) != 1:
            return False
    return True
