"""Reward structures over DTMCs.

The paper uses the simplest possible reward model — each state earns a
reward equal to its ``flag`` bit — so ``R=? [I=T]`` is directly the
error probability at step ``T``.  This module generalizes that to the
standard PRISM reward structure with both *state* rewards (earned per
time step spent in a state) and *transition* rewards (earned when an
edge is taken), which the cumulative-reward operator needs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np
from scipy import sparse

from .chain import DTMC

__all__ = ["RewardStructure", "attach_reward"]


@dataclass
class RewardStructure:
    """State and (optional) transition rewards for a chain.

    Attributes
    ----------
    state_rewards:
        Vector ``rho`` with ``rho[s]`` earned at every step spent in
        ``s``.
    transition_rewards:
        Optional sparse matrix ``iota`` with ``iota[s, s']`` earned
        when the edge ``s -> s'`` is taken.  Must have the same
        sparsity support as the chain's transition matrix (rewards on
        impossible edges are meaningless).
    """

    state_rewards: np.ndarray
    transition_rewards: Optional[sparse.csr_matrix] = None

    def __post_init__(self) -> None:
        self.state_rewards = np.asarray(self.state_rewards, dtype=np.float64)
        if self.transition_rewards is not None:
            self.transition_rewards = sparse.csr_matrix(
                self.transition_rewards, dtype=np.float64
            )

    @property
    def num_states(self) -> int:
        return self.state_rewards.shape[0]

    def expected_step_reward(self, chain: DTMC) -> np.ndarray:
        """Per-state expected one-step reward: ``rho[s] + sum_s' P[s,s'] iota[s,s']``.

        This folds transition rewards into an equivalent state-reward
        vector, which is how the transient/steady solvers consume
        rewards.
        """
        expected = self.state_rewards.copy()
        if self.transition_rewards is not None:
            weighted = chain.transition_matrix.multiply(self.transition_rewards)
            expected = expected + np.asarray(weighted.sum(axis=1)).ravel()
        return expected

    def instantaneous(self, chain: DTMC, t: int) -> float:
        """``R=? [ I=t ]`` under this structure (state rewards only, by
        the standard semantics of the instantaneous operator)."""
        from .transient import instantaneous_reward

        return instantaneous_reward(chain, self.state_rewards, t)

    def cumulative(self, chain: DTMC, t: int) -> float:
        """``R=? [ C<=t ]`` including transition rewards."""
        from .transient import cumulative_reward

        return cumulative_reward(chain, self.expected_step_reward(chain), t)

    def long_run(self, chain: DTMC) -> float:
        """``R=? [ S ]`` (long-run average reward) including transition rewards."""
        from .steady_state import long_run_distribution

        pi = long_run_distribution(chain)
        return float(pi @ self.expected_step_reward(chain))


def attach_reward(chain: DTMC, name: str, structure: RewardStructure) -> None:
    """Register ``structure`` on ``chain`` under ``name``.

    The chain stores the folded expected one-step reward vector, which
    every solver in :mod:`repro.dtmc` and :mod:`repro.pctl` understands.
    """
    if structure.num_states != chain.num_states:
        raise ValueError(
            f"reward structure has {structure.num_states} states,"
            f" chain has {chain.num_states}"
        )
    chain.rewards[name] = structure.expected_step_reward(chain)
