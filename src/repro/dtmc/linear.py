"""Iterative linear solvers for probabilistic model checking.

PRISM solves its until/reward equation systems with iterative methods
(Power, Jacobi, Gauss-Seidel) rather than direct factorization; this
module provides the same three, solving systems of the fixpoint form

    x = A x + b        (A substochastic, spectral radius < 1)

which is exactly the shape of unbounded-until probabilities and
reachability rewards.  The sparse direct solver remains the default in
:mod:`repro.pctl.checker`; these exist as drop-in engines for large
systems and as independent cross-checks in the test suite.
"""

from __future__ import annotations

from typing import Optional

import numpy as np
from scipy import sparse

from .sparse_utils import as_csr as _as_csr

__all__ = [
    "power_solve",
    "jacobi_solve",
    "gauss_seidel_solve",
    "SolverError",
    "ITERATIVE_METHODS",
]

DEFAULT_TOLERANCE = 1e-12
DEFAULT_MAX_ITERATIONS = 1_000_000

#: Canonical names of the fixpoint-iteration solver family provided by
#: this module; shared by the steady-state layer and
#: :mod:`repro.engine.config` so the sets cannot drift apart.
ITERATIVE_METHODS = ("power", "jacobi", "gauss-seidel")


class SolverError(RuntimeError):
    """Raised when an iterative solver fails to converge."""


def power_solve(
    matrix,
    b: np.ndarray,
    tolerance: float = DEFAULT_TOLERANCE,
    max_iterations: int = DEFAULT_MAX_ITERATIONS,
    x0: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Fixpoint (power) iteration: ``x <- A x + b``.

    The textbook value-iteration scheme; linear convergence at rate
    equal to the spectral radius of ``A``.
    """
    a = _as_csr(matrix)
    x = np.zeros(a.shape[0]) if x0 is None else np.asarray(x0, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    for _ in range(max_iterations):
        nxt = a @ x + b
        if np.abs(nxt - x).max() < tolerance:
            return nxt
        x = nxt
    raise SolverError(
        f"power iteration did not converge in {max_iterations} iterations"
    )


def jacobi_solve(
    matrix,
    b: np.ndarray,
    tolerance: float = DEFAULT_TOLERANCE,
    max_iterations: int = DEFAULT_MAX_ITERATIONS,
    x0: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Jacobi iteration for ``x = A x + b``.

    Rewrites the system as ``(I - A) x = b`` and iterates
    ``x_i <- (b_i + sum_{j != i} A_ij x_j) / (1 - A_ii)`` — dividing
    out the diagonal accelerates states with strong self-loops.
    """
    a = _as_csr(matrix)
    n = a.shape[0]
    diagonal = a.diagonal()
    if np.any(diagonal >= 1.0):
        raise SolverError("diagonal entry >= 1: system is singular")
    off = a - sparse.diags(diagonal)
    scale = 1.0 / (1.0 - diagonal)
    x = np.zeros(n) if x0 is None else np.asarray(x0, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    for _ in range(max_iterations):
        nxt = scale * (off @ x + b)
        if np.abs(nxt - x).max() < tolerance:
            return nxt
        x = nxt
    raise SolverError(
        f"Jacobi iteration did not converge in {max_iterations} iterations"
    )


def gauss_seidel_solve(
    matrix,
    b: np.ndarray,
    tolerance: float = DEFAULT_TOLERANCE,
    max_iterations: int = DEFAULT_MAX_ITERATIONS,
    x0: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Gauss-Seidel iteration for ``x = A x + b``.

    In-place sweeps using already-updated components; typically
    converges in roughly half the iterations Jacobi needs, at the cost
    of a Python-level row loop (PRISM's favourite engine for DTMCs).
    """
    a = _as_csr(matrix)
    n = a.shape[0]
    indptr, indices, data = a.indptr, a.indices, a.data
    diagonal = a.diagonal()
    if np.any(diagonal >= 1.0):
        raise SolverError("diagonal entry >= 1: system is singular")
    x = np.zeros(n) if x0 is None else np.array(x0, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    for _ in range(max_iterations):
        delta = 0.0
        for i in range(n):
            total = b[i]
            dia = 0.0
            for k in range(indptr[i], indptr[i + 1]):
                j = indices[k]
                if j == i:
                    dia = data[k]
                else:
                    total += data[k] * x[j]
            new_value = total / (1.0 - dia)
            delta = max(delta, abs(new_value - x[i]))
            x[i] = new_value
        if delta < tolerance:
            return x
    raise SolverError(
        f"Gauss-Seidel did not converge in {max_iterations} iterations"
    )
