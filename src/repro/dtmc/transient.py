"""Transient (finite-horizon) analysis of DTMCs.

Everything the bounded pCTL operators need: the state distribution
after exactly ``t`` steps, expected instantaneous rewards (the paper's
P2 / C1 metrics, ``R=? [I=T]``), cumulative rewards, and bounded
reachability probabilities.

All routines work with a *distribution row vector* ``pi`` and iterate
``pi <- pi @ P`` with the sparse transition matrix; cost is
``O(T * nnz(P))`` and no matrix powers are ever formed.  An optional
:class:`repro.engine.Engine` can be passed; transient iteration has no
factorizations to share, so the engine's role here is provenance — it
accounts the matrix-vector products performed on its behalf.
"""

from __future__ import annotations

from typing import Iterator, Optional

import numpy as np

from .chain import DTMC

__all__ = [
    "distribution_at",
    "distribution_trajectory",
    "instantaneous_reward",
    "cumulative_reward",
    "bounded_reachability",
    "bounded_invariance",
    "expected_visits",
]


def _account(engine, steps: int) -> None:
    """Report ``steps`` sparse matvecs to the engine's work counters."""
    if engine is not None and steps > 0:
        engine.count_matvecs(steps)


def distribution_at(
    chain: DTMC,
    t: int,
    initial: Optional[np.ndarray] = None,
    *,
    engine=None,
) -> np.ndarray:
    """State distribution after exactly ``t`` transitions.

    ``initial`` defaults to the chain's initial distribution.
    """
    if t < 0:
        raise ValueError(f"time bound must be non-negative, got {t}")
    pi = np.array(
        chain.initial_distribution if initial is None else initial, dtype=np.float64
    )
    matrix = chain.transition_matrix
    for _ in range(t):
        pi = pi @ matrix
    _account(engine, t)
    return pi


def distribution_trajectory(
    chain: DTMC,
    horizon: int,
    initial: Optional[np.ndarray] = None,
    *,
    engine=None,
) -> Iterator[np.ndarray]:
    """Yield the distribution at steps ``0, 1, ..., horizon`` lazily."""
    pi = np.array(
        chain.initial_distribution if initial is None else initial, dtype=np.float64
    )
    matrix = chain.transition_matrix
    yield pi.copy()
    for _ in range(horizon):
        pi = pi @ matrix
        _account(engine, 1)
        yield pi.copy()


def instantaneous_reward(
    chain: DTMC, reward: str | np.ndarray, t: int, *, engine=None
) -> float:
    """Expected reward earned *at* step ``t``: ``R=? [ I=t ]``.

    This is the paper's average-case metric P2 (and C1 for the
    convergence model): with the 0/1 ``flag`` reward it is the
    probability that the bit decoded at step ``t`` is in error, which
    converges to the BER as ``t`` grows past the reachability fixpoint.
    """
    vec = chain.reward_vector(reward) if isinstance(reward, str) else np.asarray(reward)
    pi = distribution_at(chain, t, engine=engine)
    return float(pi @ vec)


def cumulative_reward(
    chain: DTMC, reward: str | np.ndarray, t: int, *, engine=None
) -> float:
    """Expected total reward accumulated over steps ``0 .. t-1``: ``R=? [ C<=t ]``."""
    vec = chain.reward_vector(reward) if isinstance(reward, str) else np.asarray(reward)
    total = 0.0
    pi = np.array(chain.initial_distribution, dtype=np.float64)
    matrix = chain.transition_matrix
    for _ in range(t):
        total += float(pi @ vec)
        pi = pi @ matrix
    _account(engine, t)
    return total


def expected_visits(chain: DTMC, t: int, *, engine=None) -> np.ndarray:
    """Expected number of visits to each state during steps ``0 .. t``."""
    visits = np.zeros(chain.num_states)
    for pi in distribution_trajectory(chain, t, engine=engine):
        visits += pi
    return visits


def bounded_reachability(
    chain: DTMC,
    target: np.ndarray,
    t: int,
    avoid: Optional[np.ndarray] = None,
    *,
    engine=None,
) -> np.ndarray:
    """Per-state probability of reaching ``target`` within ``t`` steps.

    Implements the bounded-until recurrence used by ``P=? [ F<=t phi ]``
    and ``P=? [ psi U<=t phi ]``:

    ``x_0 = [target]``;
    ``x_{k+1} = [target] + [psi & !target] * (P @ x_k)``

    ``avoid`` gives the complement of ``psi`` (states that must *not*
    be passed through); by default every state may be traversed.
    Returns the full solution vector; dot with an initial distribution
    for the from-initial value.
    """
    target = np.asarray(target, dtype=bool)
    n = chain.num_states
    if avoid is None:
        may_pass = ~target
    else:
        may_pass = ~target & ~np.asarray(avoid, dtype=bool)
    x = target.astype(np.float64)
    matrix = chain.transition_matrix
    for _ in range(t):
        x = np.where(target, 1.0, np.where(may_pass, matrix @ x, 0.0))
    _account(engine, t)
    return x


def bounded_invariance(
    chain: DTMC, safe: np.ndarray, t: int, *, engine=None
) -> np.ndarray:
    """Per-state probability that ``safe`` holds at *every* step ``0 .. t``.

    This is ``P=? [ G<=t phi ]`` — the paper's best-case metric P1 with
    ``phi = !flag``.  Uses the duality ``G<=t phi == !(F<=t !phi)``.
    """
    safe = np.asarray(safe, dtype=bool)
    violating = ~safe
    reach_bad = bounded_reachability(chain, violating, t, engine=engine)
    return 1.0 - reach_bad
