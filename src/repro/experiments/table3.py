"""Table III — P2 for the Viterbi decoder as a function of T.

Paper (RI = 263): P2 = 0.2373 / 0.2394 / 0.2397 / 0.2398 at
T = 100 / 300 / 600 / 1000 — the value stabilizes once T passes the
reachability fixpoint, and the stable value is the BER.

This driver reproduces the *convergence* claim: the same horizons on
our reduced model, the chain's measured RI, and the steady-state value
(``S=? [flag]``) that the sequence converges to.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..dtmc import reachability_iterations
from ..pctl import ModelChecker
from ..viterbi import ViterbiModelConfig
from ..zoo import build as zoo_build
from ..zoo import viterbi_family_params
from .report import banner, format_table

__all__ = ["Table3Result", "run", "main", "PAPER_REFERENCE"]

PAPER_REFERENCE = {
    "RI": 263,
    100: 0.2373,
    300: 0.2394,
    600: 0.2397,
    1000: 0.2398,
}


@dataclass
class Table3Result:
    horizons: List[int]
    values: List[float]
    reachability_iterations: int
    steady_state: float
    seconds: float

    @property
    def is_converged(self) -> bool:
        """Last two horizons agree to 4 significant digits (the paper's
        "computed values do not change significantly")."""
        a, b = self.values[-2], self.values[-1]
        return abs(a - b) <= 1e-4 * max(abs(b), 1e-12)


def run(
    config: Optional[ViterbiModelConfig] = None,
    horizons: Sequence[int] = (100, 300, 600, 1000),
) -> Table3Result:
    config = config or ViterbiModelConfig()
    start = time.perf_counter()
    scenario = zoo_build("viterbi-memory-m", viterbi_family_params(config))
    chain = scenario.chain
    # All horizons plus the steady-state reference run as one batch
    # against a single engine, sharing the chain's cached structure.
    checker = ModelChecker(chain)
    results = checker.check_many(
        [f"R=? [ I={t} ]" for t in horizons] + ["S=? [ flag ]"]
    )
    values = [float(r.value) for r in results[:-1]]
    steady = float(results[-1].value)
    elapsed = time.perf_counter() - start
    return Table3Result(
        horizons=list(horizons),
        values=values,
        reachability_iterations=reachability_iterations(chain),
        steady_state=steady,
        seconds=elapsed,
    )


def main(
    config: Optional[ViterbiModelConfig] = None,
    horizons: Sequence[int] = (100, 300, 600, 1000),
) -> str:
    result = run(config, horizons)
    lines = [banner("Table III - P2 for the Viterbi decoder vs T")]
    table_rows = [
        ["P2 (ours)"] + result.values,
        ["P2 (paper)"] + [PAPER_REFERENCE.get(t, "-") for t in result.horizons],
    ]
    lines.append(
        format_table(
            ["Viterbi"] + [f"T={t}" for t in result.horizons], table_rows
        )
    )
    lines.append(
        f"RI = {result.reachability_iterations} (paper {PAPER_REFERENCE['RI']});"
        f" steady state S=?[flag] = {result.steady_state:.6g};"
        f" converged: {result.is_converged}"
    )
    report = "\n".join(lines)
    print(report)
    return report


if __name__ == "__main__":
    main()
