"""Experiment drivers: one module per table/figure of the paper.

Each module exposes ``run(...)`` returning structured results and
``main(...)`` printing a paper-style report with the reference values
alongside.  ``python -m repro.experiments`` runs everything.
"""

from . import figure2, table1, table2, table3, table4, table5

__all__ = ["figure2", "table1", "table2", "table3", "table4", "table5"]
