"""Table IV — Convergence property C1 of the Viterbi decoder vs T.

Paper setting: L = 8, SNR = 8 dB, reduced convergence DTMC (~61,000
states in PRISM's encoding), RI = 77; C1 ~= 1.03-1.04e-3 at
T = 100 / 400 / 1000, checkable within 120 seconds.

The driver builds the convergence model (pm, x0, count), checks
``R=? [I=T]`` over the non-convergence reward at the paper's horizons,
and reports the measured RI and the steady value the sequence settles
at.  Shape claims: values are stable across horizons >> RI and the
model is orders smaller than the error models.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..dtmc import reachability_iterations
from ..pctl import ModelChecker
from ..viterbi import ViterbiModelConfig
from ..zoo import build as zoo_build
from ..zoo import convergence_family_params
from .report import banner, format_table

__all__ = ["Table4Result", "run", "main", "PAPER_REFERENCE"]

PAPER_REFERENCE = {
    "RI": 77,
    "states": 61_000,
    100: 1.034e-3,
    400: 1.036e-3,
    1000: 1.044e-3,
}


@dataclass
class Table4Result:
    horizons: List[int]
    values: List[float]
    states: int
    reachability_iterations: int
    steady_state: float
    seconds: float

    @property
    def is_converged(self) -> bool:
        a, b = self.values[-2], self.values[-1]
        return abs(a - b) <= 1e-3 * max(abs(b), 1e-12)


def default_config() -> ViterbiModelConfig:
    """The paper's Table-IV setting (L=8 at 8 dB)."""
    return ViterbiModelConfig(snr_db=8.0, traceback_length=8)


def run(
    config: Optional[ViterbiModelConfig] = None,
    horizons: Sequence[int] = (100, 400, 1000),
) -> Table4Result:
    config = config or default_config()
    start = time.perf_counter()
    scenario = zoo_build(
        "viterbi-convergence", convergence_family_params(config)
    )
    chain = scenario.chain
    # Batched: horizons + steady state share one engine's caches.
    checker = ModelChecker(chain)
    results = checker.check_many(
        [f"R=? [ I={t} ]" for t in horizons] + ["S=? [ nonconv ]"]
    )
    values = [float(r.value) for r in results[:-1]]
    steady = float(results[-1].value)
    elapsed = time.perf_counter() - start
    return Table4Result(
        horizons=list(horizons),
        values=values,
        states=scenario.reduced_states,
        reachability_iterations=reachability_iterations(chain),
        steady_state=steady,
        seconds=elapsed,
    )


def main(
    config: Optional[ViterbiModelConfig] = None,
    horizons: Sequence[int] = (100, 400, 1000),
) -> str:
    result = run(config, horizons)
    lines = [banner("Table IV - Convergence of the Viterbi decoder vs T")]
    table_rows = [
        ["C1 (ours)"] + result.values,
        ["C1 (paper)"] + [PAPER_REFERENCE.get(t, "-") for t in result.horizons],
    ]
    lines.append(
        format_table(
            ["Viterbi"] + [f"T={t}" for t in result.horizons], table_rows
        )
    )
    lines.append(
        f"model: {result.states} states (paper ~{PAPER_REFERENCE['states']});"
        f" RI = {result.reachability_iterations} (paper {PAPER_REFERENCE['RI']});"
        f" steady C1 = {result.steady_state:.4e}; total {result.seconds:.1f}s"
    )
    report = "\n".join(lines)
    print(report)
    return report


if __name__ == "__main__":
    main()
