"""Table II — Symmetry reduction of the MIMO detector.

Paper setting: 1x2 detector at SNR 8 dB and 1x4 at 12 dB; PRISM prunes
sub-1e-15 branches on the 1x4 model.  Reported:

    1x2: 569,480 -> 32,088 states (factor 18)
    1x4: 524,288 ->  1,320 states (factor 400)

At our quantizer scale the full 1x2 model is explicitly built (so the
factor is *measured*, and the quotient's soundness is verifiable
against it); the 1x4 full model's size is exact by counting its product
support (every quantizer cell has positive probability), while its
quotient is built directly via on-the-fly symmetry reduction.  The
shape claim: the reduction factor grows steeply with the number of
symmetric blocks — 1x4's factor is orders beyond 1x2's.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from functools import partial
from typing import List, Optional, Tuple

from ..engine import sweep_values
from ..mimo import MimoSystemConfig, full_state_count
from ..zoo import build as zoo_build
from ..zoo import mimo_family_params
from .report import banner, format_table

__all__ = ["Table2Row", "run", "main", "PAPER_REFERENCE"]

PAPER_REFERENCE = {
    "1x2": (569_480, 32_088, 18),
    "1x4": (524_288, 1_320, 400),
}


@dataclass
class Table2Row:
    system: str
    states_full: int
    states_reduced: int
    seconds: float
    full_was_built: bool

    @property
    def reduction_factor(self) -> float:
        return self.states_full / self.states_reduced


def _build_system(
    item: Tuple[str, MimoSystemConfig], branch_cutoff: float
) -> Table2Row:
    """One sweep point: build one detector system (module-level so
    ``executor="process"`` can pickle it)."""
    name, config = item
    start = time.perf_counter()
    params = mimo_family_params(config, branch_cutoff=branch_cutoff)
    # Build the full model explicitly only when it is small enough to
    # hold its (dense-row) matrix; otherwise the pipeline counts it
    # exactly.  The threshold is decided up front so the quotient is
    # built exactly once either way.
    built = full_state_count(config) <= 5_000
    scenario = zoo_build("mimo-1xN", params, keep_full=built)
    return Table2Row(
        system=name,
        states_full=scenario.full_states,
        states_reduced=scenario.reduced_states,
        seconds=time.perf_counter() - start,
        full_was_built=built,
    )


def run(
    configs: Optional[List[Tuple[str, MimoSystemConfig]]] = None,
    branch_cutoff: float = 1e-15,
    executor: str = "serial",
) -> List[Table2Row]:
    """Build the detectors (reduced always; full where tractable).

    The per-system builds are independent and fan across
    :func:`repro.engine.sweep` workers; the default is ``"serial"``
    because this table *reports* per-system build seconds, and timing
    inside concurrent workers would inflate each row with contention
    from the others.  Pass ``executor="process"`` for parallel builds
    with honest per-row timing, or ``"thread"`` when timing is not the
    point.
    """
    if configs is None:
        configs = [
            ("1x2", MimoSystemConfig(num_rx=2, snr_db=8.0)),
            ("1x4", MimoSystemConfig(num_rx=4, snr_db=12.0)),
        ]
    return sweep_values(
        partial(_build_system, branch_cutoff=branch_cutoff),
        list(configs),
        executor=executor,
    )


def main(
    configs: Optional[List[Tuple[str, MimoSystemConfig]]] = None,
) -> str:
    rows = run(configs)
    lines = [banner("Table II - Symmetry reduction of MIMO detector")]
    table_rows = []
    for row in rows:
        paper = PAPER_REFERENCE.get(row.system, ("-", "-", "-"))
        table_rows.append(
            [
                row.system,
                f"{row.states_full}{'' if row.full_was_built else ' (counted)'}",
                row.states_reduced,
                f"{row.reduction_factor:.0f}",
                paper[0],
                paper[1],
                paper[2],
            ]
        )
    lines.append(
        format_table(
            [
                "MIMO",
                "States (M)",
                "States (M_R)",
                "Factor",
                "Paper M",
                "Paper M_R",
                "Paper factor",
            ],
            table_rows,
        )
    )
    if len(rows) >= 2:
        lines.append(
            "shape check: factor grows with antennas:"
            f" {rows[0].reduction_factor:.0f}x -> {rows[-1].reduction_factor:.0f}x"
        )
    report = "\n".join(lines)
    print(report)
    return report


if __name__ == "__main__":
    main()
