"""Table V — BER for the MIMO detectors vs T, plus the simulation duel.

Paper (RI = 3): 1x2 at 8 dB gives 0.277 / 0.291 / 0.296 at
T = 5 / 10 / 20; 1x4 at 12 dB gives 1.08e-5 at every horizon.  The
accompanying text is the paper's headline argument: simulating 1e7
steps estimates 1.07e-5 for the 1x4 system — matching the
model-checked value — while 1e5 steps see *zero* errors, i.e.
simulation at realistic budgets cannot resolve low BERs that model
checking computes exactly.

The driver model-checks ``R=? [I=T]`` for both detectors, then runs the
Monte-Carlo baseline twice (a short run expected to see no errors at
high diversity, and a long run expected to agree with the model).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from functools import partial
from typing import List, Optional, Sequence, Tuple

from ..engine import sweep_values
from ..mimo import MimoSystemConfig
from ..pctl import ModelChecker
from ..sim import BerEstimate, rule_of_three_upper_bound, simulate_detector_ber
from ..zoo import build as zoo_build
from ..zoo import mimo_family_params
from .report import banner, format_table

__all__ = ["Table5Row", "Table5Result", "run", "main", "PAPER_REFERENCE"]

PAPER_REFERENCE = {
    ("1x2", 5): 0.277,
    ("1x2", 10): 0.291,
    ("1x2", 20): 0.296,
    ("1x4", 5): 1.08e-5,
    ("1x4", 10): 1.08e-5,
    ("1x4", 20): 1.08e-5,
    "sim_long": 1.07e-5,
    "RI": 3,
}


@dataclass
class Table5Row:
    system: str
    horizons: List[int]
    values: List[float]
    states: int


@dataclass
class Table5Result:
    rows: List[Table5Row]
    short_sim: Optional[BerEstimate]
    long_sim: Optional[BerEstimate]
    model_ber_high_diversity: float
    seconds: float


def _check_system(
    item: Tuple[str, MimoSystemConfig], horizons: Sequence[int]
) -> Table5Row:
    """One sweep point per antenna configuration: build the reduced
    detector, then batch all horizons through one checker/engine.
    Module-level so ``executor="process"`` can pickle it."""
    name, config = item
    scenario = zoo_build("mimo-1xN", mimo_family_params(config))
    checker = ModelChecker(scenario.chain)
    results = checker.check_many([f"R=? [ I={t} ]" for t in horizons])
    return Table5Row(
        system=name,
        horizons=list(horizons),
        values=[float(r.value) for r in results],
        states=scenario.reduced_states,
    )


def run(
    configs: Optional[List[Tuple[str, MimoSystemConfig]]] = None,
    horizons: Sequence[int] = (5, 10, 20),
    short_sim_steps: int = 100_000,
    long_sim_steps: int = 2_000_000,
    with_simulation: bool = True,
    executor: str = "thread",
) -> Table5Result:
    if configs is None:
        configs = [
            ("1x2", MimoSystemConfig(num_rx=2, snr_db=8.0)),
            ("1x4", MimoSystemConfig(num_rx=4, snr_db=12.0)),
        ]
    start = time.perf_counter()
    rows: List[Table5Row] = sweep_values(
        partial(_check_system, horizons=tuple(horizons)),
        list(configs),
        executor=executor,
    )

    short_sim = long_sim = None
    model_ber = rows[-1].values[-1]
    if with_simulation:
        # The paper's duel, both halves at our scale: the short run on
        # the highest-diversity system sees zero errors (simulation
        # cannot resolve the BER), while a long run on the lower-
        # diversity system — whose BER a few million steps *can*
        # resolve — agrees with the model-checked value.
        short_sim = simulate_detector_ber(
            configs[-1][1], num_steps=short_sim_steps, seed=0
        )
        long_sim = simulate_detector_ber(
            configs[0][1], num_steps=long_sim_steps, seed=1
        )
    elapsed = time.perf_counter() - start
    return Table5Result(
        rows=rows,
        short_sim=short_sim,
        long_sim=long_sim,
        model_ber_high_diversity=model_ber,
        seconds=elapsed,
    )


def main(
    configs: Optional[List[Tuple[str, MimoSystemConfig]]] = None,
    horizons: Sequence[int] = (5, 10, 20),
    with_simulation: bool = True,
) -> str:
    result = run(configs, horizons, with_simulation=with_simulation)
    lines = [banner("Table V - BER for MIMO detectors vs T")]
    table_rows = []
    for row in result.rows:
        table_rows.append(
            [row.system + " (ours)"] + row.values + [row.states]
        )
        table_rows.append(
            [row.system + " (paper)"]
            + [PAPER_REFERENCE.get((row.system, t), "-") for t in row.horizons]
            + ["-"]
        )
    lines.append(
        format_table(
            ["MIMO"] + [f"T={t}" for t in result.rows[0].horizons] + ["states"],
            table_rows,
        )
    )
    if result.short_sim is not None:
        bound = rule_of_three_upper_bound(result.short_sim.trials)
        lines.append(
            f"simulation duel: on {result.rows[-1].system}, model BER ="
            f" {result.model_ber_high_diversity:.3e} but a"
            f" {result.short_sim.trials}-step simulation sees"
            f" {result.short_sim.errors} errors"
            f" (can only conclude BER < {bound:.1e});"
            f" on {result.rows[0].system}, a {result.long_sim.trials}-step"
            f" simulation gives {result.long_sim}"
            f" vs model {result.rows[0].values[-1]:.3e}"
        )
    ber_1x2 = result.rows[0].values[-1]
    ber_high = result.rows[-1].values[-1]
    lines.append(
        f"shape check: diversity gap {ber_1x2:.3e} >> {ber_high:.3e}"
        f" ({ber_1x2 / max(ber_high, 1e-300):.1e}x)"
    )
    report = "\n".join(lines)
    print(report)
    return report


if __name__ == "__main__":
    main()
