"""Figure 2 — C1 as a function of the traceback length L.

The paper plots the probability of non-converging traceback paths
against L at a fixed SNR, observing that it decreases with L and
"stabilizes past L = 5m" — the empirical rule of thumb for choosing
traceback depth.  The driver fans the L sweep across
:func:`repro.engine.sweep` workers (each point builds and checks its
own convergence model), prints the series with the relative change per
step (the quantitative version of "stabilizes"), and renders a small
ASCII log-scale plot.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from functools import partial
from typing import List, Optional, Sequence, Tuple

from ..engine import sweep
from ..pctl import ModelChecker
from ..zoo import build as zoo_build
from .report import banner, format_table

__all__ = ["Figure2Result", "run", "main"]


@dataclass
class Figure2Result:
    lengths: List[int]
    values: List[float]
    states: List[int]
    snr_db: float
    seconds: float

    @property
    def is_decreasing(self) -> bool:
        return all(a > b for a, b in zip(self.values, self.values[1:]))

    def marginal_changes(self) -> List[float]:
        """Absolute change |C1(L+1) - C1(L)| per unit L.

        The paper's "stabilizes past L = 5m" is a linear-scale reading:
        C1 decays roughly geometrically, so the *absolute* step change
        collapses after a few multiples of the channel memory.
        """
        return [abs(b - a) for a, b in zip(self.values, self.values[1:])]


def _check_point(
    length: int, snr_db: float, horizon: Optional[int]
) -> Tuple[float, int]:
    """One sweep point: build the convergence model at ``length``, check C1.

    Module-level (not a closure) so ``executor="process"`` can pickle it.
    """
    scenario = zoo_build(
        "viterbi-convergence",
        {"snr_db": snr_db, "traceback_length": length},
    )
    checker = ModelChecker(scenario.chain)
    prop = "S=? [ nonconv ]" if horizon is None else f"R=? [ I={horizon} ]"
    return float(checker.check(prop).value), scenario.reduced_states


def run(
    lengths: Sequence[int] = (2, 3, 4, 5, 6, 7, 8, 9, 10),
    snr_db: float = 8.0,
    horizon: Optional[int] = None,
    executor: str = "thread",
    max_workers: Optional[int] = None,
) -> Figure2Result:
    """Sweep the traceback length; C1 via steady state (or ``R=?[I=h]``
    when ``horizon`` is given, as in the paper).

    Each sweep point is independent (own model, own checker), so the
    points fan across ``executor`` workers ("thread", "process", or
    "serial" for a deterministic in-process run).
    """
    start = time.perf_counter()
    results = sweep(
        partial(_check_point, snr_db=snr_db, horizon=horizon),
        list(lengths),
        executor=executor,
        max_workers=max_workers,
        on_error="raise",
    )
    elapsed = time.perf_counter() - start
    return Figure2Result(
        lengths=list(lengths),
        values=[r.value[0] for r in results],
        states=[r.value[1] for r in results],
        snr_db=snr_db,
        seconds=elapsed,
    )


def _ascii_plot(lengths: Sequence[int], values: Sequence[float],
                width: int = 48) -> str:
    """Log-scale scatter of C1 vs L."""
    logs = [math.log10(max(v, 1e-300)) for v in values]
    low, high = min(logs), max(logs)
    span = max(high - low, 1e-9)
    lines = []
    for length, value, lv in zip(lengths, values, logs):
        position = int((lv - low) / span * (width - 1))
        lines.append(
            f"L={length:<3d} |" + " " * position + "*" +
            " " * (width - position - 1) + f"| {value:.3e}"
        )
    return "\n".join(lines)


def main(
    lengths: Sequence[int] = (2, 3, 4, 5, 6, 7, 8, 9, 10),
    snr_db: float = 8.0,
) -> str:
    result = run(lengths, snr_db)
    lines = [banner("Figure 2 - C1 as a function of L")]
    lines.append(
        format_table(
            ["L"] + [str(length) for length in result.lengths],
            [
                ["C1"] + result.values,
                ["states"] + result.states,
            ],
        )
    )
    lines.append(_ascii_plot(result.lengths, result.values))
    changes = result.marginal_changes()
    lines.append(
        f"shape checks: strictly decreasing: {result.is_decreasing};"
        f" absolute change per step falls from {changes[0]:.2e} to"
        f" {changes[-1]:.2e} (stabilization past L ~= 5m on a linear"
        " scale, as in the paper's plot)"
    )
    report = "\n".join(lines)
    print(report)
    return report


if __name__ == "__main__":
    main()
