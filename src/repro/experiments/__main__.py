"""Run every experiment: ``python -m repro.experiments [--quick]``.

``--quick`` shrinks the Viterbi models (shorter traceback) so the whole
evaluation finishes in well under a minute; the default runs the
paper-shaped configurations documented in DESIGN.md.
"""

from __future__ import annotations

import argparse

from ..viterbi import ViterbiModelConfig
from . import figure2, table1, table2, table3, table4, table5


def main() -> None:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Reproduce every table and figure of the paper.",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="shrink the Viterbi models for a fast smoke run",
    )
    parser.add_argument(
        "--no-simulation",
        action="store_true",
        help="skip the Monte-Carlo cross-checks in Table V",
    )
    args = parser.parse_args()

    if args.quick:
        table1_config = ViterbiModelConfig(traceback_length=4, num_levels=5)
        figure_lengths = (2, 3, 4, 5, 6)
    else:
        table1_config = ViterbiModelConfig(traceback_length=6, num_levels=5)
        figure_lengths = (2, 3, 4, 5, 6, 7, 8, 9, 10)

    table1.main(table1_config)
    print()
    table2.main()
    print()
    table3.main()
    print()
    table4.main()
    print()
    table5.main(with_simulation=not args.no_simulation)
    print()
    figure2.main(lengths=figure_lengths)


if __name__ == "__main__":
    main()
