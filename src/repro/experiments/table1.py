"""Table I — Error properties for a Viterbi decoder.

Paper setting: SNR = 5 dB, traceback L = 6, T = 300; properties P1
(best case), P2 (average case), P3 (worst case) checked on the full
model ``M`` and the reduced model ``M_R``; the paper reports

    P1: 53,558,744 -> 8,505,363 states,  90.80 s, result 3e-15
    P2: 53,558,744 -> 8,505,363 states, 184.13 s, result 0.2394
    P3: 107,504,890 -> 16,435,490 states, 365.68 s, result ~= 1

This driver rebuilds both models at a laptop-scale quantizer (see
DESIGN.md section 5), checks the same three properties on each, and
reports states/time/value.  The shape claims are: the reduced model is
several times smaller, values agree exactly between ``M`` and ``M_R``,
and P1 ~ 0 << P2 << P3 ~ 1 at this SNR.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Optional

from ..core.metrics import average_case_error, best_case_error, worst_case_error
from ..pctl import ModelChecker
from ..viterbi import ViterbiModelConfig
from ..zoo import build as zoo_build
from ..zoo import viterbi_family_params
from .report import banner, format_table

__all__ = ["Table1Row", "run", "main", "PAPER_REFERENCE"]

#: The paper's reported numbers, for side-by-side display.
PAPER_REFERENCE = {
    "P1": (53_558_744, 8_505_363, 90.80, 3e-15),
    "P2": (53_558_744, 8_505_363, 184.13, 0.2394),
    "P3": (107_504_890, 16_435_490, 365.68, 1.0),
}


@dataclass
class Table1Row:
    """One property's measurement (our scale)."""

    name: str
    property_string: str
    states_full: int
    states_reduced: int
    seconds: float
    value_full: float
    value_reduced: float

    @property
    def values_agree(self) -> bool:
        return abs(self.value_full - self.value_reduced) < 1e-9


def run(
    config: Optional[ViterbiModelConfig] = None, horizon: int = 300
) -> List[Table1Row]:
    """Check P1/P2/P3 on M and M_R; returns one row per property."""
    config = config or ViterbiModelConfig(traceback_length=6, num_levels=5)
    rows: List[Table1Row] = []

    # Both chains come from the scenario zoo (keep_full=True gives the
    # full model M alongside the abstraction quotient M_R).
    start = time.perf_counter()
    scenario = zoo_build(
        "viterbi-memory-m", viterbi_family_params(config), keep_full=True
    )
    build_seconds = time.perf_counter() - start

    # One checker (and so one engine, one cache set) per chain: P1 and
    # P2 against M and M_R share whatever per-chain work they need.
    checker_full = ModelChecker(scenario.full_chain)
    checker_reduced = ModelChecker(scenario.chain)
    for spec in (best_case_error(horizon), average_case_error(horizon)):
        t0 = time.perf_counter()
        value_full = checker_full.check(spec.property_string).value
        value_reduced = checker_reduced.check(spec.property_string).value
        elapsed = time.perf_counter() - t0 + build_seconds
        rows.append(
            Table1Row(
                name=spec.name,
                property_string=spec.property_string,
                states_full=scenario.full_states,
                states_reduced=scenario.reduced_states,
                seconds=elapsed,
                value_full=float(value_full),
                value_reduced=float(value_reduced),
            )
        )

    # P3 uses the error-counter extension of both models (the paper's
    # larger Table-I state counts for P3).
    spec = worst_case_error(horizon, threshold=1)
    t0 = time.perf_counter()
    p3 = zoo_build(
        "viterbi-errcnt",
        viterbi_family_params(config, error_count=True),
        keep_full=True,
    )
    value_full = ModelChecker(p3.full_chain).check(spec.property_string).value
    value_reduced = ModelChecker(p3.chain).check(spec.property_string).value
    elapsed = time.perf_counter() - t0
    rows.append(
        Table1Row(
            name=spec.name,
            property_string=spec.property_string,
            states_full=p3.full_states,
            states_reduced=p3.reduced_states,
            seconds=elapsed,
            value_full=float(value_full),
            value_reduced=float(value_reduced),
        )
    )
    return rows


def main(config: Optional[ViterbiModelConfig] = None, horizon: int = 300) -> str:
    """Run and render the experiment; returns the printed report."""
    rows = run(config, horizon)
    lines = [banner("Table I - Error properties for a Viterbi decoder")]
    table_rows = []
    for row in rows:
        paper = PAPER_REFERENCE[row.name]
        table_rows.append(
            [
                row.name,
                row.states_full,
                row.states_reduced,
                f"{row.seconds:.2f}",
                row.value_reduced,
                paper[0],
                paper[1],
                paper[3],
            ]
        )
    lines.append(
        format_table(
            [
                "Prop",
                "States (M)",
                "States (M_R)",
                "Time s",
                "Result",
                "Paper M",
                "Paper M_R",
                "Paper result",
            ],
            table_rows,
        )
    )
    lines.append(
        "shape checks: reduction factor"
        f" {rows[0].states_full / rows[0].states_reduced:.1f}x;"
        f" M vs M_R agree: {all(r.values_agree for r in rows)};"
        f" P1={rows[0].value_reduced:.2e} << P2={rows[1].value_reduced:.4f}"
        f" << P3={rows[2].value_reduced:.4f}"
    )
    report = "\n".join(lines)
    print(report)
    return report


if __name__ == "__main__":
    main()
