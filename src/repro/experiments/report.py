"""Small reporting helpers shared by the experiment drivers.

Each experiment prints a table shaped like the one in the paper, plus
the paper's reference values alongside the measured ones so the
comparison EXPERIMENTS.md records is visible at the terminal too.
"""

from __future__ import annotations

from typing import Any, Sequence

__all__ = ["format_table", "format_value", "banner"]


def format_value(value: Any) -> str:
    """Render numbers compactly: scientific for extremes, plain otherwise."""
    if isinstance(value, float):
        if value == 0.0:
            return "0"
        if abs(value) < 1e-3 or abs(value) >= 1e5:
            return f"{value:.3e}"
        return f"{value:.4g}"
    return str(value)


def format_table(headers: Sequence[str], rows: Sequence[Sequence[Any]]) -> str:
    """ASCII table with per-column alignment."""
    rendered = [[format_value(cell) for cell in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in rendered)) if rendered
        else len(headers[i])
        for i in range(len(headers))
    ]
    lines = []
    header = " | ".join(h.ljust(w) for h, w in zip(headers, widths))
    lines.append(header)
    lines.append("-+-".join("-" * w for w in widths))
    for row in rendered:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def banner(title: str) -> str:
    """Section banner used by every experiment driver."""
    rule = "=" * len(title)
    return f"{rule}\n{title}\n{rule}"
