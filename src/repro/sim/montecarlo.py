"""Monte-Carlo simulation of the two case-study systems.

The baseline the paper argues against: estimate BER-like metrics by
driving the bit-true devices with random inputs over many cycles.
These simulators share the *exact* datapaths of the DTMC models (same
trellis/ACS, same quantized detector), so a model-checked value and a
simulation estimate must agree within the statistical interval — the
cross-validation reported in the paper's Table V discussion and
re-checked in this repository's tests and experiments.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from ..mimo.detector import ml_detect_batch
from ..mimo.system import MimoSystemConfig
from ..viterbi.decoder import RTLViterbiDecoder
from ..viterbi.dtmc_model import ViterbiModelConfig
from .estimators import BerEstimate

__all__ = [
    "simulate_viterbi_ber",
    "simulate_detector_ber",
    "simulate_detector_ber_true_channel",
    "simulate_viterbi_convergence",
]


def simulate_viterbi_ber(
    config: Optional[ViterbiModelConfig] = None,
    num_steps: int = 100_000,
    seed: Optional[int] = 0,
    confidence: float = 0.95,
) -> BerEstimate:
    """Drive the RTL Viterbi decoder for ``num_steps`` cycles.

    Random i.i.d. data bits pass through the duobinary ISI channel and
    AWGN at the configured SNR, are quantized, and decoded; errors are
    counted against the (latency-aligned) transmitted bits — the
    paper's P2/BER measured by brute force.
    """
    config = config or ViterbiModelConfig()
    rng = np.random.default_rng(seed)
    trellis = config.make_trellis()
    quantizer = config.make_quantizer()
    transmitter = config.make_transmitter()
    decoder = RTLViterbiDecoder(trellis, config.traceback_length)

    bits = rng.integers(0, 2, num_steps)
    clean = transmitter.transmit_sequence(bits, initial=0)
    noisy = clean + rng.normal(0.0, config.sigma, num_steps)
    q_indices = quantizer.quantize_index(noisy)
    decoded = decoder.decode_sequence(q_indices)
    reference = bits[: decoded.size]
    errors = int(np.count_nonzero(decoded != reference))
    return BerEstimate(errors, int(decoded.size), confidence)


def simulate_viterbi_convergence(
    config: Optional[ViterbiModelConfig] = None,
    num_steps: int = 100_000,
    seed: Optional[int] = 0,
    confidence: float = 0.95,
) -> BerEstimate:
    """Estimate C1: the fraction of cycles whose last ``L`` trellis
    stages were all non-convergent (matching the convergence DTMC)."""
    config = config or ViterbiModelConfig()
    rng = np.random.default_rng(seed)
    trellis = config.make_trellis()
    quantizer = config.make_quantizer()
    transmitter = config.make_transmitter()
    length = config.traceback_length

    bits = rng.integers(0, 2, num_steps)
    clean = transmitter.transmit_sequence(bits, initial=0)
    noisy = clean + rng.normal(0.0, config.sigma, num_steps)
    q_indices = quantizer.quantize_index(noisy)

    # The ACS step is a pure function of (normalized path metrics,
    # received index), and both live in small finite domains — at most
    # (pm_max + 1)^num_states x num_levels distinct inputs.  Memoizing
    # it (on top of the trellis's precomputed branch-metric table)
    # turns the per-cycle work of this 100k-iteration loop into one
    # dict lookup after the first few cycles.
    acs_cache = {}
    metrics = trellis.initial_metrics()
    count = 0
    hits = 0
    for q in q_indices.tolist():
        key = (metrics, q)
        step = acs_cache.get(key)
        if step is None:
            acs = trellis.acs(metrics, q)
            step = (acs.path_metrics, acs.is_convergent())
            acs_cache[key] = step
        metrics, convergent = step
        count = 0 if convergent else min(count + 1, length)
        hits += count >= length
    return BerEstimate(int(hits), num_steps, confidence)


def simulate_detector_ber(
    config: Optional[MimoSystemConfig] = None,
    num_steps: int = 100_000,
    seed: Optional[int] = 0,
    confidence: float = 0.95,
) -> BerEstimate:
    """Simulate the *quantized* detector datapath (the DTMC's system).

    Per cycle: draw the fading dimensions, quantize them, synthesize
    the received dimensions around the quantized channel (the model's
    semantics — the detector knows H only through its quantizer),
    quantize, and run the Eq.-15 ML decision.  Fully vectorized.
    """
    config = config or MimoSystemConfig()
    rng = np.random.default_rng(seed)
    h_quantizer = config.make_h_quantizer()
    y_quantizer = config.make_y_quantizer()

    bits = rng.integers(0, 2, num_steps)
    symbols = 2.0 * bits - 1.0
    h = rng.normal(0.0, math.sqrt(0.5), (num_steps, config.num_blocks))
    h_val = h_quantizer.quantize(h)
    noise = rng.normal(0.0, config.sigma, (num_steps, config.num_blocks))
    y_val = y_quantizer.quantize(h_val * symbols[:, None] + noise)

    metric_minus = np.abs(y_val + h_val).sum(axis=1)
    metric_plus = np.abs(y_val - h_val).sum(axis=1)
    detected = (metric_minus > metric_plus).astype(np.int64)  # ties -> bit 0
    errors = int(np.count_nonzero(detected != bits))
    return BerEstimate(errors, num_steps, confidence)


def simulate_detector_ber_true_channel(
    config: Optional[MimoSystemConfig] = None,
    num_steps: int = 100_000,
    seed: Optional[int] = 0,
    confidence: float = 0.95,
) -> BerEstimate:
    """Simulate the *unquantized* ML detector (continuous y, H).

    The physical-layer reference: quantifies how much of the DTMC
    model's BER is quantization artifact versus channel behaviour.
    """
    config = config or MimoSystemConfig()
    rng = np.random.default_rng(seed)
    channel = config.make_channel(rng)

    bits = rng.integers(0, 2, num_steps)
    x = (2.0 * bits - 1.0).reshape(-1, 1).astype(complex)
    y, h = channel.transmit_block(x)
    detected = ml_detect_batch(y, h)[:, 0]
    errors = int(np.count_nonzero(detected != bits))
    return BerEstimate(errors, num_steps, confidence)
