"""Monte-Carlo simulation baseline (the methodology the paper replaces)."""

from .estimators import (
    BerEstimate,
    clopper_pearson_interval,
    required_trials,
    rule_of_three_upper_bound,
    wilson_interval,
)
from .montecarlo import (
    simulate_detector_ber,
    simulate_detector_ber_true_channel,
    simulate_viterbi_ber,
    simulate_viterbi_convergence,
)

__all__ = [
    "BerEstimate",
    "clopper_pearson_interval",
    "required_trials",
    "rule_of_three_upper_bound",
    "wilson_interval",
    "simulate_detector_ber",
    "simulate_detector_ber_true_channel",
    "simulate_viterbi_ber",
    "simulate_viterbi_convergence",
]
