"""Statistical estimators for simulation-based BER measurement.

The paper's competing methodology is Monte-Carlo simulation (Jeruchim's
classic BER-estimation setting, the paper's reference [2]).  Everything
needed to treat simulation results honestly lives here: point
estimates, binomial confidence intervals, and sample-size planning —
including the "zero observed errors" case the paper weaponizes against
simulation ("we observe zero bit errors in 1e5 time steps").
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Tuple

from scipy import stats

__all__ = [
    "BerEstimate",
    "wilson_interval",
    "clopper_pearson_interval",
    "rule_of_three_upper_bound",
    "required_trials",
]


def wilson_interval(errors: int, trials: int, confidence: float = 0.95
                    ) -> Tuple[float, float]:
    """Wilson score interval for a binomial proportion.

    Well-behaved even for very small error counts, unlike the normal
    approximation.
    """
    if trials <= 0:
        raise ValueError("need at least one trial")
    if not 0 <= errors <= trials:
        raise ValueError("errors must be within [0, trials]")
    z = stats.norm.ppf(0.5 + confidence / 2.0)
    p = errors / trials
    denominator = 1.0 + z * z / trials
    center = (p + z * z / (2 * trials)) / denominator
    margin = (
        z
        * math.sqrt(p * (1 - p) / trials + z * z / (4 * trials * trials))
        / denominator
    )
    return max(0.0, center - margin), min(1.0, center + margin)


def clopper_pearson_interval(
    errors: int, trials: int, confidence: float = 0.95
) -> Tuple[float, float]:
    """Exact (conservative) Clopper-Pearson binomial interval."""
    if trials <= 0:
        raise ValueError("need at least one trial")
    alpha = 1.0 - confidence
    lower = 0.0 if errors == 0 else stats.beta.ppf(
        alpha / 2, errors, trials - errors + 1
    )
    upper = 1.0 if errors == trials else stats.beta.ppf(
        1 - alpha / 2, errors + 1, trials - errors
    )
    return float(lower), float(upper)


def rule_of_three_upper_bound(trials: int, confidence: float = 0.95) -> float:
    """Upper bound on p when *zero* errors were observed.

    ``p <= -ln(1-confidence)/n`` (~ 3/n at 95%): the best simulation
    can say after ``n`` clean trials — the quantitative version of the
    paper's "zero bit errors in 1e5 time steps" observation.
    """
    if trials <= 0:
        raise ValueError("need at least one trial")
    return -math.log(1.0 - confidence) / trials


def required_trials(p: float, relative_error: float = 0.1,
                    confidence: float = 0.95) -> int:
    """Trials needed to estimate ``p`` within ``relative_error`` (CLT).

    For BER 1e-7 at 10% relative error this is ~4e9 trials — the
    economics that motivate the paper's exhaustive alternative.
    """
    if not 0 < p < 1:
        raise ValueError("p must be in (0, 1)")
    z = stats.norm.ppf(0.5 + confidence / 2.0)
    return math.ceil((z / relative_error) ** 2 * (1 - p) / p)


@dataclass(frozen=True)
class BerEstimate:
    """A simulation-based BER estimate with its uncertainty."""

    errors: int
    trials: int
    confidence: float = 0.95

    @property
    def point(self) -> float:
        """Maximum-likelihood point estimate."""
        return self.errors / self.trials

    @property
    def interval(self) -> Tuple[float, float]:
        """Wilson confidence interval."""
        return wilson_interval(self.errors, self.trials, self.confidence)

    @property
    def standard_error(self) -> float:
        p = self.point
        return math.sqrt(max(p * (1 - p), 1e-300) / self.trials)

    def contains(self, value: float) -> bool:
        """Whether ``value`` lies inside the confidence interval."""
        low, high = self.interval
        return low <= value <= high

    def __str__(self) -> str:
        low, high = self.interval
        return (
            f"{self.point:.3e} ({self.errors}/{self.trials} errors,"
            f" {self.confidence:.0%} CI [{low:.3e}, {high:.3e}])"
        )
