"""Full DTMC model ``M`` of the RTL Viterbi decoder (Section IV-A).

State variables follow the paper exactly:

* ``pm`` — the normalized, saturated path metrics (pm0, pm1);
* ``prev`` — survivor pointers of the last ``L`` trellis stages,
  newest first (the paper's ``prev0_i`` / ``prev1_i``);
* ``x``    — the actual data bits of the last ``L`` steps, newest first
  (the paper's ``x_i``);
* ``flag`` — 1 iff the bit decoded this cycle (for the cycle ``L-1``
  steps ago) is wrong.  ``flag`` is a deterministic function of the
  other variables, so carrying it costs no extra states.

One DTMC transition = one clock cycle:  the data bit ``x_0'`` is drawn
uniformly, the received quantization level ``q`` is drawn from the
exact Gaussian cell probabilities given the noiseless ISI output of
``(x_0', x_0)`` (the paper's probabilistic function ``Gamma_p``,
Eq. 2), and the remaining variables follow deterministically
(Eqs. 3-5).

An extended model with a saturating error counter supports the paper's
worst-case property P3 (``P=? [ F<=T errcnt>1 ]``), matching the larger
state count reported for P3 in Table I.
"""

from __future__ import annotations

from collections import namedtuple
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from ..comm.channel import PartialResponseTransmitter
from ..comm.quantizer import UniformQuantizer
from ..comm.snr import noise_sigma
from ..dtmc.builder import ExplorationResult, build_dtmc
from .trellis import Trellis

__all__ = [
    "ViterbiModelConfig",
    "ViterbiFullState",
    "ViterbiKernel",
    "traceback_flag",
    "full_transition",
    "build_full_model",
    "build_error_count_model",
]

ViterbiFullState = namedtuple("ViterbiFullState", ["pm", "prev", "x", "flag"])
ViterbiErrcntState = namedtuple(
    "ViterbiErrcntState", ["pm", "prev", "x", "flag", "errcnt"]
)


@dataclass(frozen=True)
class ViterbiModelConfig:
    """Parameters of the Viterbi case study.

    Defaults are the laptop-scale settings documented in DESIGN.md
    (the paper runs L=6 with a finer quantizer on a 53M-state model);
    every experiment exposes these as knobs.

    Attributes
    ----------
    snr_db:
        Es/N0 in dB (per-bit symbol energy 1); the paper's Table I uses
        5 dB.
    traceback_length:
        The paper's ``L`` (number of stored trellis stages).
    num_levels:
        Receiver quantizer levels.
    quantizer_low / quantizer_high:
        Quantizer range; must cover the ISI alphabet {-2, 0, +2}.
    pm_max:
        Path-metric saturation bound.
    error_count_cap:
        Saturation bound of the P3 error counter.
    """

    snr_db: float = 5.0
    traceback_length: int = 4
    num_levels: int = 5
    quantizer_low: float = -3.0
    quantizer_high: float = 3.0
    pm_max: int = 6
    error_count_cap: int = 2
    taps: Tuple[float, ...] = (1.0, 1.0)

    def __post_init__(self) -> None:
        if self.traceback_length < 2:
            raise ValueError("traceback_length must be >= 2")
        if self.error_count_cap < 1:
            raise ValueError("error_count_cap must be >= 1")
        if len(self.taps) < 2:
            raise ValueError("need taps for the current bit and >=1 past bit")
        if self.traceback_length <= self.memory:
            raise ValueError("traceback_length must exceed the channel memory")

    @property
    def memory(self) -> int:
        """Channel memory ``m`` (the paper's case studies use m = 1)."""
        return len(self.taps) - 1

    def make_quantizer(self) -> UniformQuantizer:
        return UniformQuantizer(
            self.num_levels, self.quantizer_low, self.quantizer_high
        )

    def make_transmitter(self) -> PartialResponseTransmitter:
        return PartialResponseTransmitter(self.taps)

    def make_trellis(self) -> Trellis:
        return Trellis(
            self.make_transmitter(), self.make_quantizer(), pm_max=self.pm_max
        )

    @property
    def sigma(self) -> float:
        return noise_sigma(self.snr_db, symbol_energy=1.0)


class ViterbiKernel:
    """The probabilistic function ``Gamma_p`` shared by ``M`` and ``M_R``.

    Maps ``(pm, previous bit)`` to the distribution over
    ``(new pm, new survivors, new bit, q index)``.  Both the full and
    the reduced model draw from this same kernel — which is why the
    reduction preserves probabilistic behaviour (the paper's Part B).
    All Gaussian cell probabilities and ACS results are cached; the
    per-state work during exploration is a table walk.
    """

    def __init__(self, config: ViterbiModelConfig) -> None:
        self.config = config
        self.trellis = config.make_trellis()
        self.quantizer = config.make_quantizer()
        self.transmitter = config.make_transmitter()
        sigma = config.sigma
        memory = config.memory
        # q-level distribution for each (new bit, past bits...) tuple
        # (newest past bit first — the paper's m=1 case keys on
        # (x[n], x[n-1])).
        import itertools as _itertools

        self._q_dist: Dict[Tuple[int, ...], List[Tuple[float, int]]] = {}
        for bits in _itertools.product((0, 1), repeat=memory + 1):
            mean = self.transmitter.output(list(bits))
            probabilities = self.quantizer.cell_probabilities(mean, sigma)
            self._q_dist[bits] = [
                (float(p), int(i))
                for i, p in enumerate(probabilities)
                if p > 0.0
            ]
        self._acs_cache: Dict[Tuple[Tuple[int, ...], int], Tuple[Tuple[int, ...], Tuple[int, ...]]] = {}

    def acs(self, pm: Tuple[int, ...], q_index: int) -> Tuple[Tuple[int, ...], Tuple[int, ...]]:
        """Cached add-compare-select: ``(new pm, survivors)``."""
        key = (pm, q_index)
        cached = self._acs_cache.get(key)
        if cached is None:
            result = self.trellis.acs(pm, q_index)
            cached = (result.path_metrics, result.survivors)
            self._acs_cache[key] = cached
        return cached

    def branches(
        self, pm: Tuple[int, ...], x_prev
    ) -> List[Tuple[float, Tuple[Tuple[int, ...], Tuple[int, ...], int, int]]]:
        """All probabilistic outcomes of one cycle.

        Returns ``(probability, (new_pm, survivors, x_new, q_index))``
        with the data bit uniform over {0, 1} and ``q`` from the exact
        quantized-Gaussian distribution.  ``x_prev`` is the previous
        data bit (memory 1) or the tuple of the last ``m`` bits, newest
        first.
        """
        past = (x_prev,) if isinstance(x_prev, int) else tuple(x_prev)
        out = []
        for x_new in (0, 1):
            for p_q, q_index in self._q_dist[(x_new,) + past]:
                new_pm, survivors = self.acs(pm, q_index)
                out.append((0.5 * p_q, (new_pm, survivors, x_new, q_index)))
        return out

    def initial_pm(self) -> Tuple[int, ...]:
        return self.trellis.initial_metrics()


def traceback_flag(
    pm: Tuple[int, ...], prev: Tuple[Tuple[int, ...], ...], x: Tuple[int, ...]
) -> int:
    """The paper's ``F_E`` (Eq. 5): traceback through all stored stages
    and compare the decoded bit with the actual bit ``x_{L-1}``."""
    state = min(range(len(pm)), key=lambda s: (pm[s], s))
    for stage in prev[:-1]:
        state = stage[state]
    return int((state & 1) != x[-1])


def full_transition(kernel: ViterbiKernel) -> Callable:
    """Transition function of the full model ``M`` (Eqs. 2-5)."""

    memory = kernel.config.memory

    def transition(state: ViterbiFullState):
        branches = []
        for probability, (new_pm, survivors, x_new, _q) in kernel.branches(
            state.pm, state.x[:memory]
        ):
            new_prev = (survivors,) + state.prev[:-1]
            new_x = (x_new,) + state.x[:-1]
            flag = traceback_flag(new_pm, new_prev, new_x)
            branches.append(
                (probability, ViterbiFullState(new_pm, new_prev, new_x, flag))
            )
        return branches

    return transition


def _initial_full_state(kernel: ViterbiKernel) -> ViterbiFullState:
    length = kernel.config.traceback_length
    pm = kernel.initial_pm()
    prev = (tuple([0] * kernel.trellis.num_states),) * length
    x = (0,) * length
    return ViterbiFullState(pm, prev, x, traceback_flag(pm, prev, x))


def build_full_model(
    config: Optional[ViterbiModelConfig] = None, **builder_kwargs
) -> ExplorationResult:
    """Explore the full Viterbi DTMC ``M``.

    The chain carries the label ``flag`` and a matching reward
    structure (the paper's reward model), so P1/P2/P3-style properties
    check directly.
    """
    config = config or ViterbiModelConfig()
    kernel = ViterbiKernel(config)
    return build_dtmc(
        full_transition(kernel),
        initial=_initial_full_state(kernel),
        labels={"flag": lambda s: bool(s.flag)},
        rewards={"flag": lambda s: float(s.flag)},
        **builder_kwargs,
    )


def build_error_count_model(
    config: Optional[ViterbiModelConfig] = None, **builder_kwargs
) -> ExplorationResult:
    """Full model extended with a saturating error counter for P3.

    ``errcnt`` accumulates decoded-bit errors up to
    ``config.error_count_cap``; the paper's worst-case property is
    ``P=? [ F<=T errcnt>1 ]``.  This is the larger "P3" model of
    Table I.
    """
    config = config or ViterbiModelConfig()
    kernel = ViterbiKernel(config)
    base = full_transition(kernel)
    cap = config.error_count_cap

    def transition(state: ViterbiErrcntState):
        inner = ViterbiFullState(state.pm, state.prev, state.x, state.flag)
        return [
            (
                probability,
                ViterbiErrcntState(
                    nxt.pm,
                    nxt.prev,
                    nxt.x,
                    nxt.flag,
                    min(state.errcnt + nxt.flag, cap),
                ),
            )
            for probability, nxt in base(inner)
        ]

    start = _initial_full_state(kernel)
    initial = ViterbiErrcntState(start.pm, start.prev, start.x, start.flag, 0)
    return build_dtmc(
        transition,
        initial=initial,
        labels={
            "flag": lambda s: bool(s.flag),
            "overflow": lambda s: s.errcnt > 1,
        },
        rewards={"flag": lambda s: float(s.flag)},
        **builder_kwargs,
    )
