"""Viterbi decoder case study: RTL implementation and DTMC models.

* :mod:`trellis`, :mod:`decoder` — the bit-true device (trellis
  geometry, ACS, truncated traceback).
* :mod:`dtmc_model` — the paper's full model ``M`` (+ P3 error-counter
  variant).
* :mod:`reduced_model` — the property-preserving reduction ``M_R`` with
  the explicit abstraction function ``F_abs``.
* :mod:`convergence` — the traceback-convergence model for property C1.
"""

from .convergence import (
    ViterbiConvergenceState,
    build_convergence_model,
    convergence_transition,
)
from .decoder import BlockMLSequenceDetector, RTLViterbiDecoder
from .dtmc_model import (
    ViterbiFullState,
    ViterbiKernel,
    ViterbiModelConfig,
    build_error_count_model,
    build_full_model,
    full_transition,
    traceback_flag,
)
from .reduced_model import (
    ViterbiReducedErrcntState,
    ViterbiReducedState,
    abstraction_function,
    build_reduced_error_count_model,
    build_reduced_model,
    reduced_flag,
    reduced_transition,
)
from .trellis import ACSResult, Trellis

__all__ = [
    "ViterbiConvergenceState",
    "build_convergence_model",
    "convergence_transition",
    "BlockMLSequenceDetector",
    "RTLViterbiDecoder",
    "ViterbiFullState",
    "ViterbiKernel",
    "ViterbiModelConfig",
    "build_error_count_model",
    "build_full_model",
    "full_transition",
    "traceback_flag",
    "ViterbiReducedErrcntState",
    "ViterbiReducedState",
    "abstraction_function",
    "build_reduced_error_count_model",
    "build_reduced_model",
    "reduced_flag",
    "reduced_transition",
    "ACSResult",
    "Trellis",
]
