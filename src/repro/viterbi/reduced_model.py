"""Reduced DTMC model ``M_R`` of the Viterbi decoder (Section IV-A.3).

The error properties P1-P3 only need to know whether the decoded bit
is *wrong*, never what it *is*.  The reduction therefore replaces the
survivor pointers and stored data bits of each trellis stage with two
booleans per stage (the paper's ``c_i`` and ``w_i``):

* ``c_i`` — the survivor pointer *from the correct state* of stage ``i``
  points at the correct previous state (``prev[x_i]_i == x_{i+1}``);
* ``w_i`` — the survivor pointer *from the wrong state* points at the
  correct previous state (``prev[1-x_i]_i == x_{i+1}``).

A traceback is then simulated on correctness bits alone: starting from
``correct_0 = (argmin pm == x_0)``, the recurrence
``correct_{i+1} = c_i if correct_i else w_i`` reaches stage ``L-1``,
and ``flag = !correct_{L-1}``.  The probabilistic kernel (path metrics
+ current bit) is retained untouched, which is exactly why the quotient
is a probabilistic bisimulation (the paper's Part B / Strong Lumping
argument); :func:`abstraction_function` is the paper's ``F_abs`` and is
used by the test suite to verify soundness mechanically.
"""

from __future__ import annotations

from collections import namedtuple
from typing import Callable, Optional, Tuple

from ..dtmc.builder import ExplorationResult, build_dtmc
from .dtmc_model import (
    ViterbiFullState,
    ViterbiKernel,
    ViterbiModelConfig,
)

__all__ = [
    "ViterbiReducedState",
    "ViterbiReducedErrcntState",
    "reduced_flag",
    "reduced_transition",
    "build_reduced_model",
    "build_reduced_error_count_model",
    "abstraction_function",
]

ViterbiReducedState = namedtuple(
    "ViterbiReducedState", ["pm", "x0", "c", "w", "flag"]
)
ViterbiReducedErrcntState = namedtuple(
    "ViterbiReducedErrcntState", ["pm", "x0", "c", "w", "flag", "errcnt"]
)


def reduced_flag(
    pm: Tuple[int, ...], x0: int, c: Tuple[int, ...], w: Tuple[int, ...]
) -> int:
    """The paper's modified error function ``F_E^R`` (Eq. 9).

    Folds the correctness recurrence over the stored ``c``/``w`` bits
    instead of tracing actual survivor pointers.
    """
    best = min(range(len(pm)), key=lambda s: (pm[s], s))
    correct = best == x0
    for c_i, w_i in zip(c, w):
        correct = bool(c_i) if correct else bool(w_i)
    return int(not correct)


def _cw_bits(
    survivors: Tuple[int, ...], x_stage: int, x_next: int
) -> Tuple[int, int]:
    """The paper's ``F_cw`` (Eq. 7): correctness of the two survivor
    pointers of a fresh stage with actual bits (x_stage, x_next)."""
    c = int(survivors[x_stage] == x_next)
    w = int(survivors[1 - x_stage] == x_next)
    return c, w


def reduced_transition(kernel: ViterbiKernel) -> Callable:
    """Transition function of ``M_R`` (Eqs. 7-9).

    Note the shared :class:`~repro.viterbi.dtmc_model.ViterbiKernel`:
    the probabilistic step is *identical* to the full model's.

    The c/w abstraction is the paper's two-internal-state construction;
    memory-m channels (2^m trellis states) are supported by the full
    model only.
    """
    if kernel.config.memory != 1:
        raise ValueError(
            "the c/w reduction is defined for the paper's memory-1"
            f" channel; got memory {kernel.config.memory}"
        )

    def transition(state: ViterbiReducedState):
        branches = []
        for probability, (new_pm, survivors, x_new, _q) in kernel.branches(
            state.pm, state.x0
        ):
            c0, w0 = _cw_bits(survivors, x_new, state.x0)
            new_c = (c0,) + state.c[:-1]
            new_w = (w0,) + state.w[:-1]
            flag = reduced_flag(new_pm, x_new, new_c, new_w)
            branches.append(
                (
                    probability,
                    ViterbiReducedState(new_pm, x_new, new_c, new_w, flag),
                )
            )
        return branches

    return transition


def _initial_reduced_state(kernel: ViterbiKernel) -> ViterbiReducedState:
    length = kernel.config.traceback_length
    pm = kernel.initial_pm()
    # Cold start: all-zero bits and survivor pointers, hence every
    # stored pointer is "correct" (c_i = w_i = ... consistent with the
    # full model's all-zero initial state, where prev[i][s] == 0 == x).
    c = (1,) * (length - 1)
    w = (1,) * (length - 1)
    x0 = 0
    return ViterbiReducedState(pm, x0, c, w, reduced_flag(pm, x0, c, w))


def build_reduced_model(
    config: Optional[ViterbiModelConfig] = None, **builder_kwargs
) -> ExplorationResult:
    """Explore the reduced Viterbi DTMC ``M_R``.

    Carries the same ``flag`` label/reward as the full model, so every
    error property checks verbatim on either chain — and must return
    the same value, which the integration tests assert via
    :func:`repro.core.reductions.are_bisimilar`.
    """
    config = config or ViterbiModelConfig()
    kernel = ViterbiKernel(config)
    return build_dtmc(
        reduced_transition(kernel),
        initial=_initial_reduced_state(kernel),
        labels={"flag": lambda s: bool(s.flag)},
        rewards={"flag": lambda s: float(s.flag)},
        **builder_kwargs,
    )


def build_reduced_error_count_model(
    config: Optional[ViterbiModelConfig] = None, **builder_kwargs
) -> ExplorationResult:
    """Reduced model extended with the saturating P3 error counter.

    The counter accumulates the (reduction-preserved) ``flag``, so this
    is the quotient of the paper's larger P3 model: the worst-case
    property ``P=? [ F<=T errcnt>1 ]`` checks identically here and on
    :func:`repro.viterbi.dtmc_model.build_error_count_model`.
    """
    config = config or ViterbiModelConfig()
    kernel = ViterbiKernel(config)
    base = reduced_transition(kernel)
    cap = config.error_count_cap

    def transition(state: ViterbiReducedErrcntState):
        inner = ViterbiReducedState(state.pm, state.x0, state.c, state.w, state.flag)
        return [
            (
                probability,
                ViterbiReducedErrcntState(
                    nxt.pm,
                    nxt.x0,
                    nxt.c,
                    nxt.w,
                    nxt.flag,
                    min(state.errcnt + nxt.flag, cap),
                ),
            )
            for probability, nxt in base(inner)
        ]

    start = _initial_reduced_state(kernel)
    initial = ViterbiReducedErrcntState(
        start.pm, start.x0, start.c, start.w, start.flag, 0
    )
    return build_dtmc(
        transition,
        initial=initial,
        labels={
            "flag": lambda s: bool(s.flag),
            "overflow": lambda s: s.errcnt > 1,
        },
        rewards={"flag": lambda s: float(s.flag)},
        **builder_kwargs,
    )


def abstraction_function(full_state: ViterbiFullState) -> ViterbiReducedState:
    """The paper's ``F_abs`` (Eq. 6): map a state of ``M`` to ``M_R``.

    Used to *verify* the reduction: quotienting the explicit full model
    by this function must produce a strongly-lumpable partition whose
    quotient is exactly (bisimilar to) the directly-built ``M_R``.
    """
    pm, prev, x = full_state.pm, full_state.prev, full_state.x
    c = tuple(
        int(prev[i][x[i]] == x[i + 1]) for i in range(len(x) - 1)
    )
    w = tuple(
        int(prev[i][1 - x[i]] == x[i + 1]) for i in range(len(x) - 1)
    )
    return ViterbiReducedState(pm, x[0], c, w, reduced_flag(pm, x[0], c, w))
