"""Traceback-convergence DTMC model of the Viterbi decoder (Section IV-C).

A trellis stage is *convergent* when all survivor pointers select the
same predecessor; any traceback passing such a stage is funneled
through one state, so all traceback paths agree on the decoded bit.  If
``L`` consecutive stages are non-convergent, a depth-``L`` traceback's
decision depends on which state it starts from — the event the paper's
property C1 measures.

The model keeps only ``(pm0, pm1, x0, count)``: the probabilistic
kernel needs ``pm`` and ``x0``; ``count`` is the current run length of
non-convergent stages (saturating at ``L``).  The reward/label
``nonconv`` marks states with ``count >= L``; C1 is
``R=? [ I=T ]`` over that reward, exactly like P2.

Convention note: the paper sets its flag when "count exceeds L"; with
saturating arithmetic we saturate at ``L`` and flag ``count >= L``
(L consecutive non-convergent stages = a depth-L traceback with no
funnel stage).  The C1-vs-L trend of Figure 2 is insensitive to this
one-stage convention choice.

Soundness: discarding the per-stage variables is justified by the
refinement argument of Section IV-C (the kernel is untouched and the
property only mentions ``count``); the test suite additionally checks
this model against a stage-tracking variant on small instances.
"""

from __future__ import annotations

from collections import namedtuple
from typing import Callable, Optional

from ..dtmc.builder import ExplorationResult, build_dtmc
from .dtmc_model import ViterbiKernel, ViterbiModelConfig

__all__ = [
    "ViterbiConvergenceState",
    "convergence_transition",
    "build_convergence_model",
]

ViterbiConvergenceState = namedtuple(
    "ViterbiConvergenceState", ["pm", "x0", "count"]
)


def convergence_transition(kernel: ViterbiKernel) -> Callable:
    """Transition function of the convergence model.

    ``count' = 0`` on a convergent stage, else ``min(count+1, L)``.
    """
    if kernel.config.memory != 1:
        raise ValueError(
            "the convergence model tracks a single previous bit; memory-m"
            " channels are supported by the full error model only"
        )
    length = kernel.config.traceback_length

    def transition(state: ViterbiConvergenceState):
        branches = []
        for probability, (new_pm, survivors, x_new, _q) in kernel.branches(
            state.pm, state.x0
        ):
            convergent = len(set(survivors)) == 1
            count = 0 if convergent else min(state.count + 1, length)
            branches.append(
                (probability, ViterbiConvergenceState(new_pm, x_new, count))
            )
        return branches

    return transition


def build_convergence_model(
    config: Optional[ViterbiModelConfig] = None, **builder_kwargs
) -> ExplorationResult:
    """Explore the convergence DTMC.

    The chain carries the ``nonconv`` label and matching 0/1 reward;
    C1 is ``R=? [ I=T ]`` (the chain's only reward), or equivalently
    ``S=? [ nonconv ]`` in steady state.
    """
    config = config or ViterbiModelConfig()
    kernel = ViterbiKernel(config)
    length = config.traceback_length
    initial = ViterbiConvergenceState(kernel.initial_pm(), 0, 0)
    return build_dtmc(
        convergence_transition(kernel),
        initial=initial,
        labels={"nonconv": lambda s: s.count >= length},
        rewards={"nonconv": lambda s: float(s.count >= length)},
        **builder_kwargs,
    )
