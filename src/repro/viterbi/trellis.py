"""Trellis structure for maximum-likelihood sequence estimation.

The Viterbi decoder of the paper tracks ``2^m`` internal states — the
possible values of the last ``m`` data bits of a memory-``m``
partial-response channel (``m = 1`` and states {0, 1} in the case
study).  This module provides the trellis geometry (states, branches,
expected noiseless outputs) and the add-compare-select (ACS) step with
the two RTL realities the DTMC models must respect:

* **integer branch metrics** — the branch metric between a received
  quantization *index* and a branch's expected output is the absolute
  index distance, an integer in ``0 .. num_levels-1`` (fixed-point RTL
  arithmetic, and the reason the DTMC state space is finite);
* **normalized, saturating path metrics** — after every ACS step the
  minimum path metric is subtracted from all of them and the result is
  clamped to ``pm_max`` (bounded path-metric registers).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from ..comm.channel import PartialResponseTransmitter
from ..comm.quantizer import UniformQuantizer

__all__ = ["Trellis", "ACSResult"]


@dataclass(frozen=True)
class ACSResult:
    """Result of one add-compare-select step.

    ``path_metrics[s]`` is the new (normalized, saturated) metric of
    internal state ``s``; ``survivors[s]`` is the predecessor state
    chosen for ``s`` (the paper's ``prev0`` / ``prev1`` variables for
    the two-state case).
    """

    path_metrics: Tuple[int, ...]
    survivors: Tuple[int, ...]

    @property
    def best_state(self) -> int:
        """State with the least path metric (ties -> lowest index, the
        fixed RTL convention)."""
        metrics = self.path_metrics
        return min(range(len(metrics)), key=lambda s: (metrics[s], s))

    def is_convergent(self) -> bool:
        """A trellis stage is convergent when every state's survivor
        pointer selects the same predecessor (Section IV-C)."""
        return len(set(self.survivors)) == 1


class Trellis:
    """Trellis of a memory-``m`` partial-response channel with a quantized
    front end.

    Parameters
    ----------
    transmitter:
        The ISI transmitter; its memory fixes the number of states.
    quantizer:
        Receiver quantizer; branch metrics live in its index space.
    pm_max:
        Saturation bound for normalized path metrics.
    """

    def __init__(
        self,
        transmitter: PartialResponseTransmitter,
        quantizer: UniformQuantizer,
        pm_max: int = 6,
    ) -> None:
        if pm_max < 1:
            raise ValueError(f"pm_max must be >= 1, got {pm_max}")
        self.transmitter = transmitter
        self.quantizer = quantizer
        self.pm_max = int(pm_max)
        self.memory = transmitter.memory
        if self.memory < 1:
            raise ValueError("trellis needs a channel with memory >= 1")
        self.num_states = 1 << self.memory
        # Expected *quantizer index* of the noiseless output of every
        # branch (state s, input bit b): integer branch metrics are
        # index distances to this.
        self._expected_index = np.empty((self.num_states, 2), dtype=np.int64)
        self._next_state = np.empty((self.num_states, 2), dtype=np.int64)
        mask = self.num_states - 1
        for state in range(self.num_states):
            past_bits = [(state >> k) & 1 for k in range(self.memory)]
            for bit in (0, 1):
                value = transmitter.output([bit] + past_bits)
                self._expected_index[state, bit] = int(
                    quantizer.quantize_index([value])[0]
                )
                self._next_state[state, bit] = ((state << 1) | bit) & mask
        # Hoisted per-step work: predecessor lists (ascending, the ACS
        # tie-break order) and the full branch-metric table — one row
        # per received quantizer index — so neither is recomputed
        # inside the per-cycle ACS loop.
        self._predecessors = [
            [
                s
                for s in range(self.num_states)
                if int(self._next_state[s, target & 1]) == target
            ]
            for target in range(self.num_states)
        ]
        levels = np.arange(quantizer.num_levels, dtype=np.int64)
        self._branch_table = np.abs(
            levels[:, None, None] - self._expected_index[None, :, :]
        )

    # ------------------------------------------------------------------
    # Geometry
    # ------------------------------------------------------------------
    def next_state(self, state: int, bit: int) -> int:
        """Successor state when input ``bit`` arrives in ``state``."""
        return int(self._next_state[state, bit])

    def predecessors(self, state: int) -> List[int]:
        """The two states with a branch into ``state``."""
        return list(self._predecessors[state])

    def expected_output(self, state: int, bit: int) -> float:
        """Noiseless channel output of the branch ``state --bit-->``."""
        past_bits = [(state >> k) & 1 for k in range(self.memory)]
        return self.transmitter.output([bit] + past_bits)

    def branch_metric(self, q_index: int, state: int, bit: int) -> int:
        """Integer branch metric: index distance between the received
        level and the branch's expected level."""
        q = int(q_index)
        if 0 <= q < self._branch_table.shape[0]:
            return int(self._branch_table[q, state, bit])
        return abs(q - int(self._expected_index[state, bit]))

    def branch_metric_table(self) -> np.ndarray:
        """Precomputed metrics, shape ``(num_levels, num_states, 2)``:
        entry ``[q, s, b]`` is :meth:`branch_metric` of branch
        ``s --b-->`` for received index ``q``.  Computed once at
        construction — callers stepping the trellis many times (the
        Monte-Carlo simulators, the DTMC builders) should index this
        instead of recomputing distances per cycle."""
        return self._branch_table

    # ------------------------------------------------------------------
    # Add-compare-select
    # ------------------------------------------------------------------
    def acs(self, path_metrics: Sequence[int], q_index: int) -> ACSResult:
        """One trellis step: extend all paths with the branch metrics of
        the received level ``q_index``, select survivors, normalize and
        saturate.

        Tie-breaking (equal extended metrics) picks the predecessor
        with the lowest index — a fixed convention, as in RTL.
        """
        new_metrics = [0] * self.num_states
        survivors = [0] * self.num_states
        q = int(q_index)
        if 0 <= q < self._branch_table.shape[0]:
            branch = self._branch_table[q]
        else:  # off-table indices fall back to the direct distance
            branch = np.abs(q - self._expected_index)
        for target in range(self.num_states):
            bit = target & 1
            best_metric = None
            best_pred = 0
            for pred in self._predecessors[target]:
                metric = int(path_metrics[pred]) + int(branch[pred, bit])
                if best_metric is None or metric < best_metric:
                    best_metric = metric
                    best_pred = pred
            new_metrics[target] = best_metric
            survivors[target] = best_pred
        floor = min(new_metrics)
        normalized = tuple(
            min(m - floor, self.pm_max) for m in new_metrics
        )
        return ACSResult(path_metrics=normalized, survivors=tuple(survivors))

    def initial_metrics(self) -> Tuple[int, ...]:
        """All-zero initial path metrics (unbiased cold start)."""
        return tuple([0] * self.num_states)
