"""Bit-true Viterbi decoders.

:class:`RTLViterbiDecoder` is the cycle-accurate model of the paper's
design: finite traceback depth ``L``, per-cycle ACS, survivor-pointer
trellis stages, and a decoding latency of ``L-1`` cycles.  Its state
variables are exactly the paper's (``pm``, ``prev`` per stage, plus the
received history) so the DTMC models in :mod:`repro.viterbi.dtmc_model`
are direct transcriptions of its ``step`` method.

:class:`BlockMLSequenceDetector` is the non-causal reference: full
Viterbi over a whole block with unbounded traceback — the textbook MLSE
used to sanity-check the RTL decoder in tests.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional, Sequence, Tuple

import numpy as np

from .trellis import ACSResult, Trellis

__all__ = ["RTLViterbiDecoder", "BlockMLSequenceDetector"]


class RTLViterbiDecoder:
    """Cycle-accurate truncated-traceback Viterbi decoder.

    Parameters
    ----------
    trellis:
        Channel trellis (carries the quantizer and metric rules).
    traceback_length:
        The paper's ``L``: number of trellis stages stored; decoding
        latency is ``L - 1`` cycles.  The heuristic rule of thumb the
        paper quotes is ``L >= 5m``.
    """

    def __init__(self, trellis: Trellis, traceback_length: int) -> None:
        if traceback_length < 2:
            raise ValueError("traceback length must be >= 2")
        self.trellis = trellis
        self.traceback_length = int(traceback_length)
        self.reset()

    def reset(self) -> None:
        """Return all registers to the power-on state."""
        self.path_metrics: Tuple[int, ...] = self.trellis.initial_metrics()
        # stages[0] is the newest trellis stage (survivor pointers).
        self.stages: Deque[Tuple[int, ...]] = deque(maxlen=self.traceback_length)
        self.cycles = 0

    # ------------------------------------------------------------------
    def step(self, q_index: int) -> Optional[int]:
        """Process one received quantization level (one clock cycle).

        Returns the decoded bit for the cycle ``L-1`` steps ago, or
        ``None`` while the pipeline is still filling.
        """
        acs = self.trellis.acs(self.path_metrics, q_index)
        self.path_metrics = acs.path_metrics
        self.stages.appendleft(acs.survivors)
        self.cycles += 1
        if len(self.stages) < self.traceback_length:
            return None
        return self._traceback() & 1

    def _traceback(self) -> int:
        """Walk survivor pointers from the best current state back
        through all stored stages; return the state reached at the
        oldest stage (its LSB is the decoded bit for that cycle)."""
        state = ACSResult(self.path_metrics, self.stages[0]).best_state
        for stage in list(self.stages)[:-1]:
            state = stage[state]
        return state

    def decode_sequence(self, q_indices: Sequence[int]) -> np.ndarray:
        """Decode a whole received sequence; output length is
        ``len(q_indices) - (L-1)`` because of the decoding latency."""
        out: List[int] = []
        for q in q_indices:
            bit = self.step(int(q))
            if bit is not None:
                out.append(bit)
        return np.asarray(out, dtype=np.int64)


class BlockMLSequenceDetector:
    """Reference MLSE: Viterbi over an entire block, full traceback.

    Uses the same integer index-distance metric as the RTL decoder, so
    on blocks where truncation never matters the two agree exactly —
    the cross-check exercised in the test suite.
    """

    def __init__(self, trellis: Trellis) -> None:
        self.trellis = trellis

    def decode(self, q_indices: Sequence[int]) -> np.ndarray:
        trellis = self.trellis
        n = len(q_indices)
        num_states = trellis.num_states
        metrics = list(trellis.initial_metrics())
        # survivors[t][s] = predecessor of state s at step t.
        survivors: List[Tuple[int, ...]] = []
        for q in q_indices:
            acs = trellis.acs(metrics, int(q))
            metrics = list(acs.path_metrics)
            survivors.append(acs.survivors)
        # Full traceback from the final best state.
        state = min(range(num_states), key=lambda s: (metrics[s], s))
        states_reversed = [state]
        for stage in reversed(survivors[1:]):
            state = stage[state]
            states_reversed.append(state)
        states = list(reversed(states_reversed))
        # The newest bit of the state at step t is the decoded x[t].
        return np.asarray([s & 1 for s in states], dtype=np.int64)
