"""DTMC model of the N_R x 2 ML MIMO detector (the paper's Eq. 14).

The paper's detection example is the 2x2 system: metrics
``M_{i,p}(s) = | y_{i,p} - h_{i1,p} s_1 - h_{i2,p} s_2 |`` summed over
receive antennas ``i`` and parts ``p in {R, I}`` (Eq. 15), minimized
over the four BPSK candidate vectors.  Its evaluation tables use the
1xN special case (:mod:`repro.mimo.dtmc_model`); this module covers the
two-transmit-antenna shape as the paper's worked example and as an
extension experiment.

A *block* is one real dimension of one receive branch and now carries
three quantized values ``(h1, h2, y)``; blocks remain i.i.d. and the
Eq.-15 metric is still a sum over them, so the same multiset symmetry
reduction applies, with block alphabet ``B = Kh^2 * Ky``.

State: ``(x, blocks)`` with ``x in 0..3`` encoding the bit pair
(MSB = antenna 1).  Rewards: ``flag`` marks a vector error (any bit
wrong, the paper's definition) and ``biterr`` counts the average
per-bit error, giving the BER.
"""

from __future__ import annotations

import itertools
import math
from collections import namedtuple
from typing import Dict, List, Optional, Tuple

from ..dtmc.builder import ExplorationResult, build_iid_dtmc
from .dtmc_model import _multiset_probability
from .system import FADING_SIGMA, MimoSystemConfig

__all__ = [
    "Mimo2x2State",
    "detect_pair_from_blocks",
    "block_alphabet_2tx",
    "step_distribution_2tx",
    "full_state_count_2tx",
    "reduced_state_count_2tx",
    "build_detector_model_2tx",
]

Mimo2x2State = namedtuple("Mimo2x2State", ["x", "blocks"])

#: Candidate bit pairs in tie-break order (lowest pattern wins).
_CANDIDATES = [(0, 0), (0, 1), (1, 0), (1, 1)]


def detect_pair_from_blocks(
    blocks: List[Tuple[float, float, float]]
) -> Tuple[int, int]:
    """ML decision for the bit pair from ``(h1, h2, y)`` block values.

    Ties resolve to the lowest bit pattern, matching
    :func:`repro.mimo.detector.ml_detect`.
    """
    best_bits = (0, 0)
    best_metric = None
    for bits in _CANDIDATES:
        s1 = 2.0 * bits[0] - 1.0
        s2 = 2.0 * bits[1] - 1.0
        metric = sum(abs(y - h1 * s1 - h2 * s2) for h1, h2, y in blocks)
        if best_metric is None or metric < best_metric:
            best_metric = metric
            best_bits = bits
    return best_bits


def block_alphabet_2tx(config: MimoSystemConfig) -> List[Tuple[int, int, int]]:
    """All ``(h1_index, h2_index, y_index)`` block values."""
    return list(
        itertools.product(
            range(config.num_h_levels),
            range(config.num_h_levels),
            range(config.num_y_levels),
        )
    )


def _block_distribution_2tx(
    config: MimoSystemConfig, bits: Tuple[int, int]
) -> Dict[Tuple[int, int, int], float]:
    """Distribution of one block given the transmitted bit pair."""
    s1 = 2.0 * bits[0] - 1.0
    s2 = 2.0 * bits[1] - 1.0
    h_quantizer = config.make_h_quantizer()
    y_quantizer = config.make_y_quantizer()
    h_probs = h_quantizer.cell_probabilities(0.0, FADING_SIGMA)
    out: Dict[Tuple[int, int, int], float] = {}
    for i1, p1 in enumerate(h_probs):
        for i2, p2 in enumerate(h_probs):
            mean = h_quantizer.levels[i1] * s1 + h_quantizer.levels[i2] * s2
            y_probs = y_quantizer.cell_probabilities(mean, config.sigma)
            for iy, py in enumerate(y_probs):
                probability = float(p1 * p2 * py)
                if probability > 0.0:
                    out[(i1, i2, iy)] = probability
    return out


def _block_values_2tx(
    config: MimoSystemConfig, blocks
) -> List[Tuple[float, float, float]]:
    h_levels = config.make_h_quantizer().levels
    y_levels = config.make_y_quantizer().levels
    return [
        (float(h_levels[i1]), float(h_levels[i2]), float(y_levels[iy]))
        for i1, i2, iy in blocks
    ]


def step_distribution_2tx(
    config: MimoSystemConfig, reduced: bool = True
) -> List[Tuple[float, Mimo2x2State]]:
    """One-step outcome distribution (multisets when ``reduced``)."""
    n = config.num_blocks
    outcomes: List[Tuple[float, Mimo2x2State]] = []
    for x, bits in enumerate(_CANDIDATES):
        dist = _block_distribution_2tx(config, bits)
        if reduced:
            for multiset in itertools.combinations_with_replacement(
                sorted(dist), n
            ):
                probability = 0.25 * _multiset_probability(multiset, dist)
                outcomes.append((probability, Mimo2x2State(x, multiset)))
        else:
            items = list(dist.items())
            for combo in itertools.product(items, repeat=n):
                probability = 0.25
                blocks = []
                for value, p in combo:
                    probability *= p
                    blocks.append(value)
                outcomes.append(
                    (probability, Mimo2x2State(x, tuple(blocks)))
                )
    return outcomes


def full_state_count_2tx(config: MimoSystemConfig) -> int:
    """Exact unreduced state count: ``4 B^(2 N_R)``."""
    b = config.num_h_levels**2 * config.num_y_levels
    return 4 * b**config.num_blocks


def reduced_state_count_2tx(config: MimoSystemConfig) -> int:
    """Exact symmetry-quotient state count."""
    b = config.num_h_levels**2 * config.num_y_levels
    return 4 * math.comb(b + config.num_blocks - 1, config.num_blocks)


def _errors(config: MimoSystemConfig, state: Mimo2x2State) -> Tuple[bool, int]:
    sent = _CANDIDATES[state.x]
    detected = detect_pair_from_blocks(_block_values_2tx(config, state.blocks))
    wrong = sum(int(a != b) for a, b in zip(sent, detected))
    return wrong > 0, wrong


def build_detector_model_2tx(
    config: Optional[MimoSystemConfig] = None,
    reduced: bool = True,
    branch_cutoff: float = 0.0,
) -> ExplorationResult:
    """Build the N_R x 2 detector DTMC.

    Carries three measures: label/reward ``flag`` (vector error — the
    paper's definition) and reward ``biterr`` (average errored bits per
    transmitted bit, i.e. the BER).
    """
    config = config or MimoSystemConfig(num_rx=2, snr_db=8.0, num_y_levels=2)
    distribution = step_distribution_2tx(config, reduced=reduced)
    cold_blocks = tuple(
        [(0, 0, config.num_y_levels // 2)] * config.num_blocks
    )
    initial = Mimo2x2State(0, cold_blocks)
    return build_iid_dtmc(
        distribution,
        initial=initial,
        labels={"flag": lambda s: _errors(config, s)[0]},
        rewards={
            "flag": lambda s: float(_errors(config, s)[0]),
            "biterr": lambda s: _errors(config, s)[1] / 2.0,
        },
        branch_cutoff=branch_cutoff,
    )
