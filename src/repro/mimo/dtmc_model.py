"""DTMC model of the 1xN ML MIMO detector (Section IV-B, Tables II & V).

State variables are the paper's: the transmitted bit ``x`` and the
quantized real/imaginary parts of ``y`` and ``H``, grouped into the
``2 * N_R`` metric *blocks* ``(h_level_index, y_level_index)``; the
error flag is the deterministic ML comparison.

Every clock cycle redraws ``x``, ``H`` and the noise — the detector is
combinational — so the chain is i.i.d. per step and is constructed with
:func:`repro.dtmc.builder.build_iid_dtmc`.  Two variants:

* **full model** — states are ``(x, ordered block tuple)``: the
  explicit model ``M`` of Table II (only buildable at small quantizer
  sizes; its size grows as ``2 B^(2 N_R)`` with ``B`` the per-block
  alphabet).
* **reduced model** — states are ``(x, sorted block multiset)``: the
  symmetry quotient ``M_R``, built directly by canonicalizing blocks
  (the paper's symmetry reduction); its size grows only as the number
  of multisets ``2 C(B + 2 N_R - 1, 2 N_R)``.

Block exchangeability holds because (a) the blocks' probabilistic
inputs are i.i.d. (Rayleigh fading and noise are drawn per dimension)
and (b) the Eq.-15 metric is a *sum* over blocks, so the flag is
permutation-invariant — the paper's interchange argument, which the
test suite re-verifies mechanically with
:func:`repro.core.reductions.symmetry.verify_permutation_invariance`.
"""

from __future__ import annotations

import itertools
import math
from collections import namedtuple
from typing import Dict, List, Optional, Sequence, Tuple

from ..dtmc.builder import ExplorationResult, build_iid_dtmc
from .detector import QuantizedMLDetector
from .system import MimoSystemConfig

__all__ = [
    "MimoState",
    "block_alphabet",
    "full_state_count",
    "reduced_state_count",
    "step_distribution_full",
    "step_distribution_reduced",
    "build_detector_model",
    "block_values",
]

MimoState = namedtuple("MimoState", ["x", "blocks"])


def block_alphabet(config: MimoSystemConfig) -> List[Tuple[int, int]]:
    """All ``(h_index, y_index)`` block values."""
    return list(
        itertools.product(
            range(config.num_h_levels), range(config.num_y_levels)
        )
    )


def _block_distribution(
    config: MimoSystemConfig, bit: int
) -> Dict[Tuple[int, int], float]:
    """Distribution of one block given the transmitted bit.

    ``P(h_i, y_i | x) = P(h_i) * P(y in cell_i | mean = h_level * s)``
    with ``s = ±1`` the BPSK symbol of ``x``.
    """
    symbol = 2.0 * bit - 1.0
    h_quantizer = config.make_h_quantizer()
    y_quantizer = config.make_y_quantizer()
    out: Dict[Tuple[int, int], float] = {}
    h_probs = h_quantizer.cell_probabilities(0.0, math.sqrt(0.5))
    for ih, p_h in enumerate(h_probs):
        if p_h <= 0.0:
            continue
        mean = h_quantizer.levels[ih] * symbol
        y_probs = y_quantizer.cell_probabilities(mean, config.sigma)
        for iy, p_y in enumerate(y_probs):
            if p_y <= 0.0:
                continue
            out[(ih, iy)] = float(p_h * p_y)
    return out


def block_values(
    config: MimoSystemConfig, blocks: Sequence[Tuple[int, int]]
) -> List[Tuple[float, float]]:
    """Map block *indices* to ``(h_level, y_level)`` values."""
    h_levels = config.make_h_quantizer().levels
    y_levels = config.make_y_quantizer().levels
    return [(float(h_levels[ih]), float(y_levels[iy])) for ih, iy in blocks]


def _flag(config: MimoSystemConfig, state: MimoState) -> bool:
    detector = QuantizedMLDetector()
    return detector.is_error(state.x, block_values(config, state.blocks))


def step_distribution_full(config: MimoSystemConfig) -> List[Tuple[float, MimoState]]:
    """One-step outcome distribution over *ordered* block tuples.

    Size ``2 B^(2 N_R)`` — only call at small quantizer settings.
    """
    outcomes: List[Tuple[float, MimoState]] = []
    for bit in (0, 1):
        dist = _block_distribution(config, bit)
        items = list(dist.items())
        for combo in itertools.product(items, repeat=config.num_blocks):
            probability = 0.5
            blocks = []
            for value, p in combo:
                probability *= p
                blocks.append(value)
            outcomes.append((probability, MimoState(bit, tuple(blocks))))
    return outcomes


def step_distribution_reduced(
    config: MimoSystemConfig,
) -> List[Tuple[float, MimoState]]:
    """One-step outcome distribution over block *multisets*.

    The probability of a sorted tuple is its multinomial coefficient
    times the product of per-block probabilities — enumerating
    ``C(B + 2 N_R - 1, 2 N_R)`` multisets directly instead of ``B^(2
    N_R)`` ordered tuples.  This *is* the on-the-fly symmetry
    reduction: the full model never materializes.
    """
    n = config.num_blocks
    outcomes: List[Tuple[float, MimoState]] = []
    for bit in (0, 1):
        dist = _block_distribution(config, bit)
        values = sorted(dist)
        for multiset in itertools.combinations_with_replacement(values, n):
            probability = 0.5 * _multiset_probability(multiset, dist)
            outcomes.append((probability, MimoState(bit, multiset)))
    return outcomes


def _multiset_probability(
    multiset: Tuple[Tuple[int, int], ...], dist: Dict[Tuple[int, int], float]
) -> float:
    """Multinomial probability of drawing exactly this multiset i.i.d."""
    n = len(multiset)
    coefficient = math.factorial(n)
    probability = 1.0
    for value, count in _counts(multiset).items():
        coefficient //= math.factorial(count)
        probability *= dist[value] ** count
    return coefficient * probability


def _counts(multiset: Sequence) -> Dict:
    counts: Dict = {}
    for value in multiset:
        counts[value] = counts.get(value, 0) + 1
    return counts


def full_state_count(config: MimoSystemConfig) -> int:
    """Exact state count of the unreduced model ``M``.

    Every quantizer cell has positive Gaussian probability, so the
    reachable support is the full product ``2 B^(2 N_R)`` (the cold
    start lies inside it).  Matches
    ``build_detector_model(reduced=False)`` where that is small enough
    to build.
    """
    b = config.num_h_levels * config.num_y_levels
    return 2 * b**config.num_blocks


def reduced_state_count(config: MimoSystemConfig) -> int:
    """Exact state count of the symmetry quotient ``M_R``."""
    b = config.num_h_levels * config.num_y_levels
    return 2 * math.comb(b + config.num_blocks - 1, config.num_blocks)


def build_detector_model(
    config: Optional[MimoSystemConfig] = None,
    reduced: bool = True,
    branch_cutoff: float = 0.0,
) -> ExplorationResult:
    """Build the detector DTMC (reduced by default).

    The chain carries the ``flag`` label and matching 0/1 reward; the
    paper's Table V checks ``R=? [ I=T ]`` on it, and ``S=? [ flag ]``
    gives the BER directly.

    ``branch_cutoff`` reproduces PRISM's pruning of sub-1e-15 branches
    (the paper applies it to the 1x4 detector).
    """
    config = config or MimoSystemConfig()
    if reduced:
        distribution = step_distribution_reduced(config)
    else:
        distribution = step_distribution_full(config)
    cold_blocks = tuple(
        [(0, config.num_y_levels // 2)] * config.num_blocks
    )
    initial = MimoState(0, cold_blocks)
    return build_iid_dtmc(
        distribution,
        initial=initial,
        labels={"flag": lambda s: _flag(config, s)},
        rewards={"flag": lambda s: float(_flag(config, s))},
        branch_cutoff=branch_cutoff,
    )
