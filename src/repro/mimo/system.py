"""MIMO system model ``y = Hx + n`` (the paper's Eq. 1).

Bundles the physical-layer parameters of the detector case study —
antenna counts, SNR, and the receiver's quantizers for the received
samples and the channel estimates — and provides both continuous
sampling (Monte-Carlo baseline) and the quantized finite alphabets the
DTMC model is built from.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from ..comm.channel import RayleighFadingChannel
from ..comm.quantizer import UniformQuantizer
from ..comm.snr import noise_sigma

__all__ = ["MimoSystemConfig", "FADING_SIGMA"]

#: Std-dev of each real dimension of a normalized CN(0,1) fading entry.
FADING_SIGMA = math.sqrt(0.5)


@dataclass(frozen=True)
class MimoSystemConfig:
    """Parameters of a 1xN (receive-diversity) MIMO detector study.

    Defaults follow DESIGN.md's laptop-scale setting: a 3-level
    received-sample quantizer and a 2-level fading quantizer keep the
    *full* (unreduced) 1x2 model explicitly buildable so the symmetry
    reduction can be verified against it; the paper's Table II is the
    same experiment at PRISM scale.

    Attributes
    ----------
    num_rx:
        Receive antennas N_R (the paper's 1x2 and 1x4 detectors).
    snr_db:
        Per-branch average Es/N0 in dB (paper: 8 dB for 1x2, 12 dB for
        1x4).
    num_y_levels / y_range:
        Quantizer for each real dimension of the received vector y.
        The range must straddle the quantized fading amplitudes (the
        ``h`` levels): decision thresholds outside ``±|h_level|`` make
        every metric block a tie and the detector degenerates.
    num_h_levels / h_range:
        Quantizer for each real dimension of the channel estimate H.
    """

    num_rx: int = 2
    snr_db: float = 8.0
    num_y_levels: int = 3
    y_range: Tuple[float, float] = (-1.5, 1.5)
    num_h_levels: int = 2
    h_range: Tuple[float, float] = (-1.5, 1.5)

    def __post_init__(self) -> None:
        if self.num_rx < 1:
            raise ValueError("need at least one receive antenna")

    @property
    def num_blocks(self) -> int:
        """The paper's ``2 x N_R`` symmetric metric blocks (real and
        imaginary part of each receive branch)."""
        return 2 * self.num_rx

    @property
    def sigma(self) -> float:
        """Per-real-dimension noise std-dev at the configured SNR."""
        return noise_sigma(self.snr_db, symbol_energy=1.0)

    def make_y_quantizer(self) -> UniformQuantizer:
        return UniformQuantizer(self.num_y_levels, *self.y_range)

    def make_h_quantizer(self) -> UniformQuantizer:
        return UniformQuantizer(self.num_h_levels, *self.h_range)

    def make_channel(self, rng: Optional[np.random.Generator] = None
                     ) -> RayleighFadingChannel:
        """Continuous channel for the Monte-Carlo baseline (1 TX antenna)."""
        return RayleighFadingChannel(self.num_rx, 1, self.sigma, rng=rng)

    # ------------------------------------------------------------------
    # Finite alphabets for the DTMC model
    # ------------------------------------------------------------------
    def h_level_distribution(self) -> List[Tuple[float, float]]:
        """``(probability, level)`` of a quantized fading dimension."""
        quantizer = self.make_h_quantizer()
        return quantizer.output_distribution(0.0, FADING_SIGMA)

    def y_level_distribution(self, mean: float) -> List[Tuple[float, float]]:
        """``(probability, level)`` of a quantized received dimension
        whose noiseless value is ``mean``."""
        quantizer = self.make_y_quantizer()
        return quantizer.output_distribution(mean, self.sigma)
