"""MIMO detector case study: ML detection, DTMC model, symmetry reduction."""

from .detector import (
    QuantizedMLDetector,
    block_metrics,
    bpsk_candidates,
    ml_detect,
    ml_detect_batch,
)
from .dtmc_model import (
    MimoState,
    block_alphabet,
    block_values,
    build_detector_model,
    full_state_count,
    reduced_state_count,
    step_distribution_full,
    step_distribution_reduced,
)
from .mimo2x2 import (
    Mimo2x2State,
    block_alphabet_2tx,
    build_detector_model_2tx,
    detect_pair_from_blocks,
    full_state_count_2tx,
    reduced_state_count_2tx,
    step_distribution_2tx,
)
from .system import FADING_SIGMA, MimoSystemConfig

__all__ = [
    "QuantizedMLDetector",
    "block_metrics",
    "bpsk_candidates",
    "ml_detect",
    "ml_detect_batch",
    "MimoState",
    "block_alphabet",
    "block_values",
    "build_detector_model",
    "full_state_count",
    "reduced_state_count",
    "step_distribution_full",
    "step_distribution_reduced",
    "FADING_SIGMA",
    "MimoSystemConfig",
    "Mimo2x2State",
    "block_alphabet_2tx",
    "build_detector_model_2tx",
    "detect_pair_from_blocks",
    "full_state_count_2tx",
    "reduced_state_count_2tx",
    "step_distribution_2tx",
]
