"""Maximum-likelihood MIMO detection (the paper's Eqs. 13-15).

The ML rule ``x = argmin_s |y - Hs|`` is implemented, as in the paper's
reference design (Han, Erdogan & Arslan), with the L1 metric split into
real and imaginary *metric blocks*::

    metric(s) = sum over rx antennas i, parts p in {R, I} of
                | y_{i,p} - sum_j h_{ij,p} . s_j |      (Eq. 15)

Each ``(i, p)`` term is one *block*; the sum is invariant under block
permutation, the structural fact behind the paper's symmetry reduction.

Two interfaces:

* :func:`ml_detect_batch` — vectorized over many channel uses for the
  Monte-Carlo baseline (continuous y, H; BPSK per TX antenna).
* :class:`QuantizedMLDetector` — the fixed-point RTL view operating on
  quantized block values, used verbatim by the DTMC model.
"""

from __future__ import annotations

import itertools
from typing import Sequence, Tuple

import numpy as np

__all__ = ["bpsk_candidates", "block_metrics", "ml_detect", "ml_detect_batch",
           "QuantizedMLDetector"]


def bpsk_candidates(num_tx: int) -> np.ndarray:
    """All BPSK candidate vectors ``s`` in bit order, shape (2^Nt, Nt).

    Row ``k`` holds the symbols of the bit pattern of ``k`` (MSB =
    first antenna), with 0 -> -1, 1 -> +1.
    """
    bits = np.array(list(itertools.product((0, 1), repeat=num_tx)))
    return 2.0 * bits - 1.0


def block_metrics(y: np.ndarray, h: np.ndarray, s: np.ndarray) -> np.ndarray:
    """Per-block L1 metrics of candidate ``s``: shape (2 * num_rx,).

    Blocks are ordered ``(rx0, R), (rx0, I), (rx1, R), ...`` — the
    paper's ``M_{1,R}, M_{1,I}, M_{2,R}, M_{2,I}`` for a 2-antenna
    receiver.
    """
    y = np.asarray(y, dtype=np.complex128)
    h = np.atleast_2d(np.asarray(h, dtype=np.complex128))
    residual = y - h @ s
    out = np.empty(2 * y.shape[0])
    out[0::2] = np.abs(residual.real)
    out[1::2] = np.abs(residual.imag)
    return out


def ml_detect(y: np.ndarray, h: np.ndarray) -> np.ndarray:
    """ML detection of one channel use; returns the detected bit vector.

    Ties resolve to the lowest bit pattern (a fixed RTL convention).
    """
    h = np.atleast_2d(np.asarray(h, dtype=np.complex128))
    num_tx = h.shape[1]
    candidates = bpsk_candidates(num_tx)
    best_bits = None
    best_metric = None
    for k, s in enumerate(candidates):
        metric = float(block_metrics(y, h, s).sum())
        if best_metric is None or metric < best_metric:
            best_metric = metric
            best_bits = k
    bits = [(best_bits >> (num_tx - 1 - j)) & 1 for j in range(num_tx)]
    return np.asarray(bits, dtype=np.int64)


def ml_detect_batch(y: np.ndarray, h: np.ndarray) -> np.ndarray:
    """Vectorized ML detection over ``n`` channel uses.

    ``y``: (n, num_rx) complex; ``h``: (n, num_rx, num_tx) complex.
    Returns detected bits, shape (n, num_tx).  The metric is the Eq.-15
    L1 sum over real/imaginary blocks; ties resolve to the lowest bit
    pattern (argmin picks the first minimum).
    """
    y = np.asarray(y, dtype=np.complex128)
    h = np.asarray(h, dtype=np.complex128)
    n, num_rx, num_tx = h.shape
    candidates = bpsk_candidates(num_tx)  # (c, num_tx)
    # residuals: (n, c, num_rx)
    predicted = np.einsum("nij,cj->nci", h, candidates.astype(np.complex128))
    residual = y[:, None, :] - predicted
    metric = np.abs(residual.real).sum(axis=2) + np.abs(residual.imag).sum(axis=2)
    best = np.argmin(metric, axis=1)  # (n,)
    bit_table = ((best[:, None] >> np.arange(num_tx - 1, -1, -1)[None, :]) & 1)
    return bit_table.astype(np.int64)


class QuantizedMLDetector:
    """ML detection on quantized block values (the RTL datapath).

    A *block* is the pair ``(h_level, y_level)`` of one real dimension
    of one receive branch (1 TX antenna).  The decision statistic is::

        metric(s) = sum_blocks | y_level - h_level * s |,   s in {-1, +1}

    Ties resolve to bit 0 (s = -1), the same convention as
    :func:`ml_detect`.
    """

    def detect(self, blocks: Sequence[Tuple[float, float]]) -> int:
        """Return the detected bit given ``(h_level, y_level)`` blocks."""
        metric_minus = sum(abs(y + h) for h, y in blocks)
        metric_plus = sum(abs(y - h) for h, y in blocks)
        return 0 if metric_minus <= metric_plus else 1

    def is_error(self, bit: int, blocks: Sequence[Tuple[float, float]]) -> bool:
        """The paper's ``flag``: detected bit differs from the sent bit."""
        return self.detect(blocks) != bit
