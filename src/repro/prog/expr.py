"""Expression mini-language for guarded-command models.

Expressions are small ASTs over named state variables, built with
overloaded Python operators so models read naturally::

    pm0, pm1 = Var("pm0"), Var("pm1")
    guard = (pm0 <= pm1) & (pm0 > 0)
    update = ite(pm0 < 7, pm0 + 1, Const(7))

They evaluate against an environment mapping variable names to values.
Comparisons yield booleans; ``&``, ``|``, ``~`` are logical (not
bitwise) on boolean operands, mirroring PRISM's expression language.
"""

from __future__ import annotations

import operator
from dataclasses import dataclass
from typing import Any, Callable, Mapping

__all__ = ["Expr", "Var", "Const", "ite", "minimum", "maximum", "as_expr"]

Env = Mapping[str, Any]


class Expr:
    """Base class for expressions; subclasses implement ``evaluate``."""

    def evaluate(self, env: Env) -> Any:
        raise NotImplementedError

    def variables(self) -> frozenset:
        raise NotImplementedError

    # -- arithmetic ----------------------------------------------------
    def __add__(self, other: Any) -> "Expr":
        return BinOp("+", operator.add, self, as_expr(other))

    def __radd__(self, other: Any) -> "Expr":
        return BinOp("+", operator.add, as_expr(other), self)

    def __sub__(self, other: Any) -> "Expr":
        return BinOp("-", operator.sub, self, as_expr(other))

    def __rsub__(self, other: Any) -> "Expr":
        return BinOp("-", operator.sub, as_expr(other), self)

    def __mul__(self, other: Any) -> "Expr":
        return BinOp("*", operator.mul, self, as_expr(other))

    def __rmul__(self, other: Any) -> "Expr":
        return BinOp("*", operator.mul, as_expr(other), self)

    def __mod__(self, other: Any) -> "Expr":
        return BinOp("%", operator.mod, self, as_expr(other))

    def __floordiv__(self, other: Any) -> "Expr":
        return BinOp("//", operator.floordiv, self, as_expr(other))

    def __neg__(self) -> "Expr":
        return BinOp("-", operator.sub, Const(0), self)

    # -- comparisons -----------------------------------------------------
    def __eq__(self, other: Any) -> "Expr":  # type: ignore[override]
        return BinOp("=", operator.eq, self, as_expr(other))

    def __ne__(self, other: Any) -> "Expr":  # type: ignore[override]
        return BinOp("!=", operator.ne, self, as_expr(other))

    def __lt__(self, other: Any) -> "Expr":
        return BinOp("<", operator.lt, self, as_expr(other))

    def __le__(self, other: Any) -> "Expr":
        return BinOp("<=", operator.le, self, as_expr(other))

    def __gt__(self, other: Any) -> "Expr":
        return BinOp(">", operator.gt, self, as_expr(other))

    def __ge__(self, other: Any) -> "Expr":
        return BinOp(">=", operator.ge, self, as_expr(other))

    # -- logic ----------------------------------------------------------
    def __and__(self, other: Any) -> "Expr":
        return BinOp("&", lambda a, b: bool(a) and bool(b), self, as_expr(other))

    def __rand__(self, other: Any) -> "Expr":
        return BinOp("&", lambda a, b: bool(a) and bool(b), as_expr(other), self)

    def __or__(self, other: Any) -> "Expr":
        return BinOp("|", lambda a, b: bool(a) or bool(b), self, as_expr(other))

    def __ror__(self, other: Any) -> "Expr":
        return BinOp("|", lambda a, b: bool(a) or bool(b), as_expr(other), self)

    def __invert__(self) -> "Expr":
        return UnaryOp("!", lambda a: not bool(a), self)

    # Expressions are structural values; hashing by identity keeps them
    # usable as dict keys in assignment mappings.
    def __hash__(self) -> int:  # type: ignore[override]
        return id(self)


@dataclass(frozen=True, eq=False)
class Var(Expr):
    """Reference to a state variable by name."""

    name: str

    def evaluate(self, env: Env) -> Any:
        try:
            return env[self.name]
        except KeyError:
            raise NameError(f"unknown variable {self.name!r}") from None

    def variables(self) -> frozenset:
        return frozenset((self.name,))

    def __repr__(self) -> str:
        return self.name


@dataclass(frozen=True, eq=False)
class Const(Expr):
    """Literal constant."""

    value: Any

    def evaluate(self, env: Env) -> Any:
        return self.value

    def variables(self) -> frozenset:
        return frozenset()

    def __repr__(self) -> str:
        return repr(self.value)


class BinOp(Expr):
    def __init__(self, symbol: str, fn: Callable[[Any, Any], Any], left: Expr, right: Expr):
        self.symbol = symbol
        self.fn = fn
        self.left = left
        self.right = right

    def evaluate(self, env: Env) -> Any:
        return self.fn(self.left.evaluate(env), self.right.evaluate(env))

    def variables(self) -> frozenset:
        return self.left.variables() | self.right.variables()

    def __repr__(self) -> str:
        return f"({self.left!r} {self.symbol} {self.right!r})"


class UnaryOp(Expr):
    def __init__(self, symbol: str, fn: Callable[[Any], Any], operand: Expr):
        self.symbol = symbol
        self.fn = fn
        self.operand = operand

    def evaluate(self, env: Env) -> Any:
        return self.fn(self.operand.evaluate(env))

    def variables(self) -> frozenset:
        return self.operand.variables()

    def __repr__(self) -> str:
        return f"{self.symbol}{self.operand!r}"


class Ite(Expr):
    """If-then-else expression (PRISM's ``cond ? a : b``)."""

    def __init__(self, condition: Expr, then: Expr, otherwise: Expr):
        self.condition = condition
        self.then = then
        self.otherwise = otherwise

    def evaluate(self, env: Env) -> Any:
        if self.condition.evaluate(env):
            return self.then.evaluate(env)
        return self.otherwise.evaluate(env)

    def variables(self) -> frozenset:
        return (
            self.condition.variables()
            | self.then.variables()
            | self.otherwise.variables()
        )

    def __repr__(self) -> str:
        return f"({self.condition!r} ? {self.then!r} : {self.otherwise!r})"


def as_expr(value: Any) -> Expr:
    """Lift a Python value to an expression (identity on expressions)."""
    if isinstance(value, Expr):
        return value
    return Const(value)


def ite(condition: Any, then: Any, otherwise: Any) -> Expr:
    """If-then-else: ``ite(c, a, b)`` evaluates ``a`` if ``c`` holds else ``b``."""
    return Ite(as_expr(condition), as_expr(then), as_expr(otherwise))


def minimum(left: Any, right: Any) -> Expr:
    """Pointwise minimum of two expressions."""
    return BinOp("min", min, as_expr(left), as_expr(right))


def maximum(left: Any, right: Any) -> Expr:
    """Pointwise maximum of two expressions."""
    return BinOp("max", max, as_expr(left), as_expr(right))
