"""Operational semantics of guarded-command modules.

Compiles a :class:`~repro.prog.model.Module` into the transition-function
form consumed by :func:`repro.dtmc.builder.build_dtmc`.  States are
namedtuples over the module's variables, so pCTL properties can refer
to variables directly (``P=? [ F<=10 count>2 ]``).

Semantics enforced here (DTMC, following the paper's modeling style):

* exactly one command guard may be enabled per reachable state;
* branch probabilities must be non-negative and sum to 1;
* assignments must stay inside the declared variable domains.
"""

from __future__ import annotations

from collections import namedtuple
from typing import Any, Callable, List, Mapping, Optional, Tuple

from ..dtmc.builder import ExplorationResult, build_dtmc
from .expr import Expr
from .model import ModelError, Module

__all__ = ["compile_module", "explore_module", "CompiledModule"]


class CompiledModule:
    """A module compiled to an initial state + transition function."""

    def __init__(self, module: Module) -> None:
        self.module = module
        self.state_type = namedtuple(  # type: ignore[misc]
            f"{module.name}_state".replace("-", "_"), module.variable_names
        )
        self.initial_state = self.state_type(**module.initial_values())
        self._domains = {
            name: frozenset(decl.domain) for name, decl in module.variables.items()
        }

    def transition(self, state: Any) -> List[Tuple[float, Any]]:
        """Successor distribution of ``state`` (DTMC semantics)."""
        env = state._asdict()
        enabled = [
            command
            for command in self.module.commands
            if bool(command.guard.evaluate(env))
        ]
        if not enabled:
            raise ModelError(
                f"no command enabled in state {state}; add a guard covering it"
                " or an explicit self-loop"
            )
        if len(enabled) > 1:
            labels = [c.label or "<unlabeled>" for c in enabled]
            raise ModelError(
                f"nondeterminism: commands {labels} simultaneously enabled in"
                f" state {state} (DTMCs require exactly one)"
            )
        command = enabled[0]
        branches: List[Tuple[float, Any]] = []
        for probability_expr, assignment in command.updates:
            probability = float(probability_expr.evaluate(env))
            if probability < 0:
                raise ModelError(
                    f"negative probability {probability} in state {state}"
                )
            if probability == 0.0:
                continue
            new_env = dict(env)
            for name, expr in assignment.items():
                value = expr.evaluate(env)  # simultaneous update: read old env
                if value not in self._domains[name]:
                    raise ModelError(
                        f"assignment {name} := {value!r} leaves domain in"
                        f" state {state}"
                    )
                new_env[name] = value
            branches.append((probability, self.state_type(**new_env)))
        return branches


def compile_module(module: Module) -> CompiledModule:
    """Compile ``module``; validates it has variables and commands."""
    if not module.variables:
        raise ModelError(f"module {module.name!r} declares no variables")
    if not module.commands:
        raise ModelError(f"module {module.name!r} declares no commands")
    return CompiledModule(module)


def explore_module(
    module: Module,
    labels: Optional[Mapping[str, Expr]] = None,
    rewards: Optional[Mapping[str, Expr]] = None,
    **builder_kwargs: Any,
) -> ExplorationResult:
    """Build the reachable DTMC of ``module``.

    ``labels`` / ``rewards`` are expressions over the module variables,
    evaluated on every reachable state::

        explore_module(m, labels={"err": flag}, rewards={"err": ite(flag, 1, 0)})

    Additional keyword arguments (``branch_cutoff``, ``canonicalize``,
    ``max_states``...) are passed through to
    :func:`repro.dtmc.builder.build_dtmc`.
    """
    compiled = compile_module(module)

    def expr_predicate(expr: Expr) -> Callable[[Any], bool]:
        return lambda state: bool(expr.evaluate(state._asdict()))

    def expr_reward(expr: Expr) -> Callable[[Any], float]:
        return lambda state: float(expr.evaluate(state._asdict()))

    label_fns = {
        name: expr_predicate(expr) for name, expr in (labels or {}).items()
    }
    reward_fns = {
        name: expr_reward(expr) for name, expr in (rewards or {}).items()
    }
    return build_dtmc(
        compiled.transition,
        initial=compiled.initial_state,
        labels=label_fns,
        rewards=reward_fns,
        **builder_kwargs,
    )
