"""Guarded-command probabilistic modules (a PRISM-like modeling language).

A :class:`Module` declares finite-domain state variables and guarded
probabilistic commands::

    m = Module("random_walk")
    x = m.int_var("x", 0, 4, init=2)
    m.command(x == 0, [(1.0, {x: x + 1})])
    m.command(x == 4, [(1.0, {x: x - 1})])
    m.command((x > 0) & (x < 4), [(0.5, {x: x - 1}), (0.5, {x: x + 1})])

One clock cycle of the modeled RTL is one command firing.  Exactly one
guard must be enabled in every reachable state (DTMC semantics — no
nondeterminism); :mod:`repro.prog.semantics` enforces this during state
exploration.

Probabilities may be plain floats or expressions over the current
state, which is how SNR-dependent quantizer-level probabilities enter
the paper's models.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from .expr import Expr, Var, as_expr

__all__ = ["Module", "VariableDecl", "Command", "ModelError"]


class ModelError(ValueError):
    """Raised for ill-formed modules (bad domains, duplicate names, ...)."""


@dataclass(frozen=True)
class VariableDecl:
    """A finite-domain state variable.

    ``domain`` is the tuple of admissible values; assignments outside
    the domain are runtime errors during exploration, which catches
    overflow bugs in RTL-style models (e.g. unclamped path metrics).
    """

    name: str
    domain: Tuple[Any, ...]
    init: Any

    def __post_init__(self) -> None:
        if len(self.domain) == 0:
            raise ModelError(f"variable {self.name!r} has an empty domain")
        if len(set(self.domain)) != len(self.domain):
            raise ModelError(f"variable {self.name!r} has duplicate domain values")
        if self.init not in self.domain:
            raise ModelError(
                f"initial value {self.init!r} of {self.name!r} outside domain"
            )


@dataclass
class Command:
    """A guarded probabilistic command ``guard -> p1:update1 + p2:update2 ...``."""

    guard: Expr
    updates: List[Tuple[Expr, Dict[str, Expr]]]
    label: Optional[str] = None


class Module:
    """A self-contained guarded-command probabilistic program."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.variables: Dict[str, VariableDecl] = {}
        self.commands: List[Command] = []

    # ------------------------------------------------------------------
    # Variable declaration
    # ------------------------------------------------------------------
    def _declare(self, decl: VariableDecl) -> Var:
        if decl.name in self.variables:
            raise ModelError(f"variable {decl.name!r} declared twice")
        self.variables[decl.name] = decl
        return Var(decl.name)

    def int_var(self, name: str, low: int, high: int, init: Optional[int] = None) -> Var:
        """Declare an integer variable ranging over ``low..high`` inclusive."""
        if high < low:
            raise ModelError(f"variable {name!r}: high {high} < low {low}")
        init_value = low if init is None else init
        return self._declare(
            VariableDecl(name, tuple(range(low, high + 1)), init_value)
        )

    def bool_var(self, name: str, init: bool = False) -> Var:
        """Declare a boolean variable."""
        return self._declare(VariableDecl(name, (False, True), bool(init)))

    def enum_var(self, name: str, values: Sequence[Any], init: Optional[Any] = None) -> Var:
        """Declare a variable over an explicit finite set of values."""
        values = tuple(values)
        init_value = values[0] if init is None else init
        return self._declare(VariableDecl(name, values, init_value))

    # ------------------------------------------------------------------
    # Commands
    # ------------------------------------------------------------------
    def command(
        self,
        guard: Union[Expr, bool],
        updates: Sequence[Tuple[Union[Expr, float], Mapping[Union[Var, str], Union[Expr, Any]]]],
        label: Optional[str] = None,
    ) -> None:
        """Add a guarded command.

        ``updates`` is a sequence of ``(probability, assignments)``
        pairs; assignments map variables (or their names) to
        expressions.  Unassigned variables keep their value, as in
        PRISM.
        """
        if not updates:
            raise ModelError("a command needs at least one update branch")
        compiled: List[Tuple[Expr, Dict[str, Expr]]] = []
        for probability, assignment in updates:
            compiled_assignment: Dict[str, Expr] = {}
            for variable, value in assignment.items():
                name = variable.name if isinstance(variable, Var) else str(variable)
                if name not in self.variables:
                    raise ModelError(
                        f"assignment to undeclared variable {name!r}"
                    )
                compiled_assignment[name] = as_expr(value)
            compiled.append((as_expr(probability), compiled_assignment))
        self.commands.append(Command(as_expr(guard), compiled, label))

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def variable_names(self) -> Tuple[str, ...]:
        return tuple(self.variables)

    def initial_values(self) -> Dict[str, Any]:
        """Initial valuation of all state variables."""
        return {name: decl.init for name, decl in self.variables.items()}

    def domain_size(self) -> int:
        """Product of all variable domain sizes (an upper bound on states)."""
        size = 1
        for decl in self.variables.values():
            size *= len(decl.domain)
        return size

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Module({self.name!r}, variables={list(self.variables)},"
            f" commands={len(self.commands)})"
        )
