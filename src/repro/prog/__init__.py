"""Guarded-command probabilistic modeling language (PRISM-like).

Declare finite-domain variables and guarded probabilistic commands,
then explore the module into an explicit DTMC.  This is the layer at
which RTL blocks are written down: one clock cycle = one command
firing.
"""

from .expr import Const, Expr, Var, as_expr, ite, maximum, minimum
from .model import Command, ModelError, Module, VariableDecl
from .semantics import CompiledModule, compile_module, explore_module

__all__ = [
    "Const",
    "Expr",
    "Var",
    "as_expr",
    "ite",
    "maximum",
    "minimum",
    "Command",
    "ModelError",
    "Module",
    "VariableDecl",
    "CompiledModule",
    "compile_module",
    "explore_module",
]
