"""High-level analyzer: statistical guarantees for one RTL model.

This is the library's front door — the paper's full methodology behind
one object:

>>> from repro.core.analyzer import PerformanceAnalyzer
>>> analyzer = PerformanceAnalyzer.for_viterbi()      # doctest: +SKIP
>>> analyzer.best_case(300).value                     # doctest: +SKIP
>>> analyzer.ber().value                              # doctest: +SKIP

An analyzer wraps a DTMC, checks metric specs or raw pCTL strings, and
records per-check provenance (property, model size, wall-clock time) in
:class:`Guarantee` records — the "quick, rigorous, high-confidence"
numbers the paper promises, with the evidence attached.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple, Union

from ..dtmc import DTMC, assert_ergodic, reachability_iterations
from ..engine import Engine, SmcConfig, SolverConfig, default_engine
from ..pctl import ModelChecker
from ..resilience.validate import ValidationWarning, validate_guarantee
from .metrics import (
    MetricSpec,
    average_case_error,
    best_case_error,
    convergence_rate,
    steady_state_ber,
    worst_case_error,
)

__all__ = ["Guarantee", "PerformanceAnalyzer"]


@dataclass(frozen=True)
class Guarantee:
    """One verified performance figure with its provenance.

    Exact checks carry no sampling error: the value is exact for the
    model up to linear-algebra round-off, which is what the paper means
    by a statistical *guarantee*.  Statistical checks
    (:meth:`PerformanceAnalyzer.check_statistical`) instead carry an
    explicit ``(epsilon, delta)``-style guarantee; they are marked by a
    nonzero ``samples`` count.

    ``backend`` and ``cache_hits`` record how the number was obtained:
    the engine's solver method (or ``"apmc"``/``"sprt"`` for
    statistical runs), how many cached results (factorizations,
    Prob0/Prob1 sets, alias tables, long-run structure) this check
    reused instead of recomputing, and — for statistical runs — how
    many sampled paths ``samples`` the verdict consumed.

    ``warnings`` holds the :class:`~repro.resilience.ValidationWarning`
    records of the guarantee-validation gate (NaN/Inf, probability
    range): an empty tuple means the value passed every applicable
    check; a non-empty one flags a number that should not be trusted
    blindly.  Violations never raise — a million automated checks must
    degrade to flagged results, not crashed pipelines.
    """

    metric: str
    property_string: str
    value: float
    model_states: int
    model_transitions: int
    check_seconds: float
    backend: str = "lu"
    cache_hits: int = 0
    samples: int = 0
    warnings: Tuple[ValidationWarning, ...] = ()

    @property
    def is_exact(self) -> bool:
        """Exhaustive result (no sampled paths involved)?"""
        return self.samples == 0

    @property
    def is_valid(self) -> bool:
        """Did the value pass the validation gate warning-free?"""
        return not self.warnings

    def __str__(self) -> str:
        sampled = "" if self.is_exact else f", {self.samples} samples"
        flagged = (
            "" if not self.warnings
            else "  !! " + "; ".join(str(w) for w in self.warnings)
        )
        return (
            f"{self.metric} = {self.value:.6g}   "
            f"[{self.property_string}; {self.model_states} states,"
            f" {self.check_seconds:.2f}s; {self.backend}"
            f" engine, {self.cache_hits} cache hits{sampled}]{flagged}"
        )


class PerformanceAnalyzer:
    """Checks the paper's performance metrics against one DTMC.

    Construct directly from a chain, or use the case-study factories
    :meth:`for_viterbi`, :meth:`for_viterbi_worst_case`,
    :meth:`for_viterbi_convergence` and :meth:`for_mimo_detector`,
    which build the (reduced, by default) models of Sections IV-A-C.

    All metric checks run through one :class:`repro.engine.Engine`
    (selectable via ``engine``/``solver``), so a batch of metrics pays
    for its factorizations and graph precomputations once; see
    :meth:`check_many`.
    """

    def __init__(
        self,
        chain: DTMC,
        name: str = "model",
        *,
        engine: Optional[Engine] = None,
        solver: Union[SolverConfig, str, None] = None,
    ) -> None:
        self.chain = chain
        self.name = name
        self.engine = default_engine(solver, engine)
        self.checker = ModelChecker(chain, engine=self.engine)
        self.history: List[Guarantee] = []

    # ------------------------------------------------------------------
    # Factories for the paper's case studies
    # ------------------------------------------------------------------
    @classmethod
    def for_viterbi(
        cls, config=None, reduced: bool = True, *, solver=None
    ) -> "PerformanceAnalyzer":
        """Viterbi error model (Section IV-A); reduced ``M_R`` by default."""
        from ..viterbi import build_full_model, build_reduced_model

        build = build_reduced_model if reduced else build_full_model
        result = build(config)
        kind = "reduced" if reduced else "full"
        return cls(result.chain, name=f"viterbi-{kind}", solver=solver)

    @classmethod
    def for_viterbi_worst_case(cls, config=None, *, solver=None) -> "PerformanceAnalyzer":
        """Viterbi model with the P3 error counter."""
        from ..viterbi import build_error_count_model

        return cls(
            build_error_count_model(config).chain,
            name="viterbi-errcnt",
            solver=solver,
        )

    @classmethod
    def for_viterbi_convergence(cls, config=None, *, solver=None) -> "PerformanceAnalyzer":
        """Traceback-convergence model (Section IV-C)."""
        from ..viterbi import build_convergence_model

        return cls(
            build_convergence_model(config).chain,
            name="viterbi-conv",
            solver=solver,
        )

    @classmethod
    def for_mimo_detector(
        cls,
        config=None,
        reduced: bool = True,
        branch_cutoff: float = 0.0,
        *,
        solver=None,
    ) -> "PerformanceAnalyzer":
        """MIMO ML detector model (Section IV-B); symmetry-reduced by
        default."""
        from ..mimo import build_detector_model

        result = build_detector_model(
            config, reduced=reduced, branch_cutoff=branch_cutoff
        )
        kind = "reduced" if reduced else "full"
        return cls(result.chain, name=f"mimo-{kind}", solver=solver)

    # ------------------------------------------------------------------
    # Checking
    # ------------------------------------------------------------------
    def check(self, metric: Union[MetricSpec, str]) -> Guarantee:
        """Check a metric spec or a raw pCTL property string."""
        if isinstance(metric, MetricSpec):
            name, prop = metric.name, metric.property_string
        else:
            name, prop = "pCTL", str(metric)
        hits_before = self.engine.stats.cache_hits
        start = time.perf_counter()
        result = self.checker.check(prop)
        elapsed = time.perf_counter() - start
        value = float(result.value)
        guarantee = Guarantee(
            metric=name,
            property_string=prop,
            value=value,
            model_states=self.chain.num_states,
            model_transitions=self.chain.num_transitions,
            check_seconds=elapsed,
            backend=self.engine.config.method,
            cache_hits=self.engine.stats.cache_hits - hits_before,
            warnings=validate_guarantee(value, formula=prop),
        )
        self.history.append(guarantee)
        return guarantee

    def check_many(
        self, metrics: Iterable[Union[MetricSpec, str]]
    ) -> List[Guarantee]:
        """Check a batch of metrics with one set of factorizations.

        All metrics run against this analyzer's shared engine, so the
        chain's LU factorization, Prob0/Prob1 precomputations and
        long-run structure are computed at most once per
        ``(chain, target-set)`` and reused — the batched counterpart of
        calling :meth:`check` in a loop with a fresh analyzer each
        time.  Each returned :class:`Guarantee` records the backend and
        how many cached results it reused.
        """
        return [self.check(metric) for metric in metrics]

    def check_statistical(
        self,
        metric: Union[MetricSpec, str],
        *,
        theta: Optional[float] = None,
        smc: Optional[SmcConfig] = None,
    ) -> Guarantee:
        """Check a bounded path metric statistically instead of exactly.

        Routes through the batched SMC layer with this analyzer's
        engine, so the chain's alias tables are built once and shared
        with later statistical checks.  Without ``theta`` the APMC
        estimator runs (``value`` is the estimate, guaranteed within
        ``smc.epsilon`` with confidence ``1 - smc.delta``); with
        ``theta`` the SPRT decides ``P >= theta`` (``value`` is 1.0 on
        accept, 0.0 on reject).  Either way the returned
        :class:`Guarantee` records the backend and the sampled paths
        drawn as provenance.
        """
        from ..smc import smc_decide, smc_estimate

        if isinstance(metric, MetricSpec):
            name, prop = metric.name, metric.property_string
        else:
            name, prop = "pCTL", str(metric)
        config = SmcConfig.coerce(smc)
        hits_before = self.engine.stats.cache_hits
        start = time.perf_counter()
        if theta is None:
            result = smc_estimate(
                self.chain,
                prop,
                epsilon=config.epsilon,
                delta=config.delta,
                seed=config.seed,
                batch=config.batch,
                engine=self.engine,
            )
            backend, value = "apmc", float(result.estimate)
        else:
            result = smc_decide(
                self.chain,
                prop,
                theta=theta,
                half_width=config.half_width,
                alpha=config.alpha,
                beta=config.beta,
                seed=config.seed,
                engine=self.engine,
            )
            backend, value = "sprt", float(result.accept)
        elapsed = time.perf_counter() - start
        guarantee = Guarantee(
            metric=name,
            property_string=prop,
            value=value,
            model_states=self.chain.num_states,
            model_transitions=self.chain.num_transitions,
            check_seconds=elapsed,
            backend=backend,
            cache_hits=self.engine.stats.cache_hits - hits_before,
            samples=result.samples,
            warnings=validate_guarantee(value, formula=prop),
        )
        self.history.append(guarantee)
        return guarantee

    def best_case(self, horizon: int, flag: str = "flag") -> Guarantee:
        """P1 at the given horizon."""
        return self.check(best_case_error(horizon, flag))

    def average_case(self, horizon: int, reward: Optional[str] = None) -> Guarantee:
        """P2 at the given horizon."""
        return self.check(average_case_error(horizon, reward))

    def worst_case(
        self, horizon: int, threshold: int = 1, counter: str = "errcnt"
    ) -> Guarantee:
        """P3 at the given horizon (needs an error-counter model)."""
        return self.check(worst_case_error(horizon, threshold, counter))

    def ber(self, flag: str = "flag") -> Guarantee:
        """Steady-state BER (``S=? [ flag ]``)."""
        return self.check(steady_state_ber(flag))

    def convergence(self, horizon: int, reward: str = "nonconv") -> Guarantee:
        """C1 at the given horizon (needs the convergence model)."""
        return self.check(convergence_rate(horizon, reward))

    # ------------------------------------------------------------------
    # Model diagnostics (the paper's steady-state precondition)
    # ------------------------------------------------------------------
    def reachability_iterations(self) -> int:
        """The paper's RI fixpoint for this chain."""
        return reachability_iterations(self.chain)

    def steady_state_preconditions(self) -> Dict[str, bool]:
        """Check the paper's Section-III conditions for steady state."""
        irreducible, aperiodic = assert_ergodic(self.chain)
        return {"irreducible": irreducible, "aperiodic": aperiodic}

    def summary(self) -> str:
        """Human-readable record of everything checked so far."""
        lines = [f"PerformanceAnalyzer({self.name}): {self.chain!r}"]
        lines.extend(f"  {g}" for g in self.history)
        return "\n".join(lines)
