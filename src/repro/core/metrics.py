"""The paper's BER-like performance metrics (Section IV-A.2).

Each metric is a pCTL property template over a model exposing an error
indicator.  The paper's set:

* **P1, best case** — probability that *no* error occurs within ``T``
  steps: ``P=? [ G<=T !flag ]``.
* **P2, average case** — expected error indicator at step ``T``:
  ``R=? [ I=T ]``; equals the BER once ``T`` exceeds the chain's
  reachability fixpoint (steady state).
* **P3, worst case** — probability that the number of errors within
  ``T`` steps exceeds a threshold: ``P=? [ F<=T errcnt>k ]`` (requires
  a model with a saturating error counter).
* **C1, convergence** — same ``R=? [ I=T ]`` shape over the
  non-convergence reward of the traceback-convergence model.

The module renders the property strings; checking them is the
:class:`repro.core.analyzer.PerformanceAnalyzer`'s job.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

__all__ = [
    "MetricSpec",
    "best_case_error",
    "average_case_error",
    "worst_case_error",
    "steady_state_ber",
    "convergence_rate",
    "PAPER_METRICS",
]


@dataclass(frozen=True)
class MetricSpec:
    """A named performance metric bound to a pCTL property string.

    Attributes
    ----------
    name:
        Paper identifier (P1, P2, P3, C1, BER).
    description:
        One-line human reading of the metric.
    property_string:
        The pCTL property to check (PRISM syntax).
    """

    name: str
    description: str
    property_string: str

    def __str__(self) -> str:
        return f"{self.name}: {self.property_string}  ({self.description})"


def best_case_error(horizon: int, flag: str = "flag") -> MetricSpec:
    """P1 — probability that no error occurs in any of ``horizon`` steps."""
    return MetricSpec(
        name="P1",
        description=f"probability of zero errors over {horizon} steps",
        property_string=f"P=? [ G<={horizon} !{flag} ]",
    )


def average_case_error(horizon: int, reward: Optional[str] = None) -> MetricSpec:
    """P2 — expected error indicator exactly at step ``horizon``.

    With the 0/1 error reward this is the probability that the bit
    decoded at step ``horizon`` is wrong; for ``horizon`` well past the
    reachability fixpoint it is the BER.
    """
    name = f'{{"{reward}"}}' if reward else ""
    return MetricSpec(
        name="P2",
        description=f"error probability at step {horizon} (BER in steady state)",
        property_string=f"R{name}=? [ I={horizon} ]",
    )


def worst_case_error(
    horizon: int, threshold: int = 1, counter: str = "errcnt"
) -> MetricSpec:
    """P3 — probability that more than ``threshold`` errors occur."""
    return MetricSpec(
        name="P3",
        description=(
            f"probability of more than {threshold} errors within"
            f" {horizon} steps"
        ),
        property_string=f"P=? [ F<={horizon} {counter}>{threshold} ]",
    )


def steady_state_ber(flag: str = "flag") -> MetricSpec:
    """BER — long-run probability of the error indicator."""
    return MetricSpec(
        name="BER",
        description="long-run bit error rate",
        property_string=f"S=? [ {flag} ]",
    )


def convergence_rate(horizon: int, reward: str = "nonconv") -> MetricSpec:
    """C1 — probability that the bit decoded at step ``horizon`` has
    non-converging traceback paths."""
    return MetricSpec(
        name="C1",
        description=(
            f"probability of non-converging traceback at step {horizon}"
        ),
        property_string=f'R{{"{reward}"}}=? [ I={horizon} ]',
    )


def PAPER_METRICS(horizon: int) -> list:
    """The paper's P1/P2/P3 triple at a given horizon."""
    return [
        best_case_error(horizon),
        average_case_error(horizon),
        worst_case_error(horizon),
    ]
