"""Core contribution: statistical performance guarantees for MIMO RTL.

Performance-metric definitions (best / average / worst case, Section
IV-A.2 of the paper), the high-level :class:`PerformanceAnalyzer` tying
models, reductions and the pCTL checker together, and the
soundness-checked reduction toolbox in :mod:`repro.core.reductions`.
"""

from . import reductions
from .analyzer import Guarantee, PerformanceAnalyzer
from .metrics import (
    MetricSpec,
    PAPER_METRICS,
    average_case_error,
    best_case_error,
    convergence_rate,
    steady_state_ber,
    worst_case_error,
)

__all__ = [
    "reductions",
    "Guarantee",
    "PerformanceAnalyzer",
    "MetricSpec",
    "PAPER_METRICS",
    "average_case_error",
    "best_case_error",
    "convergence_rate",
    "steady_state_ber",
    "worst_case_error",
]
