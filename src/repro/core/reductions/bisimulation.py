"""Probabilistic bisimulation (Larsen & Skou) for DTMCs.

For labeled DTMCs, probabilistic bisimulation coincides with strong
lumpability restricted to label-respecting partitions, so the coarsest
bisimulation is computed with the partition-refinement engine of
:mod:`repro.core.reductions.lumping`.

The headline utility here is :func:`are_bisimilar`: it decides whether
two chains (e.g. the paper's full Viterbi model ``M`` and reduced model
``M_R``) are probabilistic bisimulations of each other with respect to
a set of labels — the formal statement behind the paper's Section
IV-A.4 proof.  The decision procedure builds the disjoint union of the
two chains, computes the coarsest bisimulation, and compares the
initial distributions block-wise.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np
from scipy import sparse

from ...dtmc.chain import DTMC
from .lumping import coarsest_lumping

__all__ = ["BisimulationResult", "coarsest_bisimulation", "are_bisimilar", "disjoint_union"]


def coarsest_bisimulation(
    chain: DTMC,
    respect: Optional[Sequence[str]] = None,
    decimals: int = 10,
    strategy: str = "splitters",
) -> np.ndarray:
    """Coarsest probabilistic bisimulation partition of one chain.

    Alias of :func:`repro.core.reductions.lumping.coarsest_lumping`
    under its process-theoretic name.
    """
    return coarsest_lumping(
        chain, respect=respect, decimals=decimals, strategy=strategy
    )


def disjoint_union(first: DTMC, second: DTMC) -> DTMC:
    """Disjoint union of two chains (initial mass split 50/50).

    Only the labels and rewards *common to both* chains survive on the
    union — bisimilarity is always judged with respect to a shared
    vocabulary.
    """
    n1, n2 = first.num_states, second.num_states
    matrix = sparse.block_diag(
        (first.transition_matrix, second.transition_matrix), format="csr"
    )
    init = np.concatenate(
        [first.initial_distribution * 0.5, second.initial_distribution * 0.5]
    )
    labels = {
        name: np.concatenate([first.labels[name], second.labels[name]])
        for name in set(first.labels) & set(second.labels)
    }
    rewards = {
        name: np.concatenate([first.rewards[name], second.rewards[name]])
        for name in set(first.rewards) & set(second.rewards)
    }
    states: Optional[List] = None
    if first.states is not None and second.states is not None:
        states = [("L", s) for s in first.states] + [("R", s) for s in second.states]
    return DTMC(matrix, init, labels=labels, rewards=rewards, states=states)


@dataclass
class BisimulationResult:
    """Outcome of :func:`are_bisimilar`.

    ``equivalent`` is the verdict; ``block_of`` is the joint partition
    over the disjoint union (first chain's states first);
    ``witness`` explains a negative verdict.
    """

    equivalent: bool
    block_of: np.ndarray
    witness: Optional[str] = None


def are_bisimilar(
    first: DTMC,
    second: DTMC,
    respect: Optional[Sequence[str]] = None,
    decimals: int = 10,
    strategy: str = "splitters",
) -> BisimulationResult:
    """Decide probabilistic bisimilarity of two labeled DTMCs.

    Two chains are bisimilar (as pointed processes) iff their initial
    distributions assign the same probability to every equivalence
    class of the coarsest bisimulation on the disjoint union.  With
    point initial distributions this is the textbook "initial states
    are bisimilar" check; distributions generalize it.

    Two 0-state chains are (vacuously) bisimilar; a 0-state chain is
    never bisimilar to a non-empty one (it carries no initial mass).
    """
    if respect is not None:
        shared = (set(first.labels) & set(second.labels)) | (
            set(first.rewards) & set(second.rewards)
        )
        missing = [name for name in respect if name not in shared]
        if missing:
            raise KeyError(
                f"labels {missing} are not shared by both chains"
            )
    if (first.num_states == 0) != (second.num_states == 0):
        empty = "first" if first.num_states == 0 else "second"
        return BisimulationResult(
            equivalent=False,
            block_of=np.zeros(first.num_states + second.num_states, dtype=np.int64),
            witness=f"the {empty} chain is empty, the other is not",
        )
    union = disjoint_union(first, second)
    block_of = coarsest_lumping(
        union, respect=respect, decimals=decimals, strategy=strategy
    )
    n1 = first.num_states
    num_blocks = int(block_of.max()) + 1 if block_of.size else 0
    if num_blocks == 0:  # two empty chains: vacuously bisimilar
        return BisimulationResult(equivalent=True, block_of=block_of)
    mass_first = np.bincount(
        block_of[:n1], weights=first.initial_distribution, minlength=num_blocks
    )
    mass_second = np.bincount(
        block_of[n1:], weights=second.initial_distribution, minlength=num_blocks
    )
    # The union halves each side's mass; compare the un-halved versions.
    tolerance = 10.0 ** (-decimals) * 10
    diff = np.abs(mass_first - mass_second)
    bad = int(np.argmax(diff))
    if diff[bad] > tolerance:
        return BisimulationResult(
            equivalent=False,
            block_of=block_of,
            witness=(
                f"initial mass differs on bisimulation class {bad}:"
                f" {mass_first[bad]} vs {mass_second[bad]}"
            ),
        )
    return BisimulationResult(equivalent=True, block_of=block_of)
