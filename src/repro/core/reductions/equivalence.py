"""Exhaustive equivalence checking of finite functions.

The paper discharges its proof obligations "Equation 5 == Equation 9"
and "Equation 7 == Equation 10" with a commercial RTL equivalence
checker (Synopsys Formality).  Over the finite domains of RTL state
variables, equivalence of two combinational functions is decidable by
exhaustive enumeration; this module provides exactly that, returning a
counterexample assignment when the functions differ.

This is the substitution documented in DESIGN.md: same decision
problem, same verdict, different engine.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Callable, Dict, Mapping, Optional, Sequence, Tuple

__all__ = ["EquivalenceResult", "functions_equivalent", "assert_equivalent"]


@dataclass
class EquivalenceResult:
    """Verdict of an exhaustive equivalence check.

    ``equivalent`` is the verdict; on failure ``counterexample`` holds
    the differing input assignment and ``values`` the two outputs.
    """

    equivalent: bool
    cases_checked: int
    counterexample: Optional[Dict[str, Any]] = None
    values: Optional[Tuple[Any, Any]] = None

    def __bool__(self) -> bool:
        return self.equivalent


def functions_equivalent(
    first: Callable[..., Any],
    second: Callable[..., Any],
    domains: Mapping[str, Sequence[Any]],
) -> EquivalenceResult:
    """Decide whether two functions agree on the full cartesian domain.

    ``domains`` maps argument names to their finite value sets; both
    functions are called with keyword arguments.

    >>> xor = lambda a, b: a != b
    >>> alt = lambda a, b: (a and not b) or (b and not a)
    >>> functions_equivalent(xor, alt, {"a": [False, True], "b": [False, True]}).equivalent
    True
    """
    names = list(domains)
    cases = 0
    for values in itertools.product(*(domains[name] for name in names)):
        assignment = dict(zip(names, values))
        left = first(**assignment)
        right = second(**assignment)
        cases += 1
        if left != right:
            return EquivalenceResult(
                equivalent=False,
                cases_checked=cases,
                counterexample=assignment,
                values=(left, right),
            )
    return EquivalenceResult(equivalent=True, cases_checked=cases)


def assert_equivalent(
    first: Callable[..., Any],
    second: Callable[..., Any],
    domains: Mapping[str, Sequence[Any]],
) -> int:
    """Raise ``AssertionError`` with the counterexample if not equivalent.

    Returns the number of cases checked on success.
    """
    result = functions_equivalent(first, second, domains)
    if not result:
        raise AssertionError(
            f"functions differ on {result.counterexample}:"
            f" {result.values[0]!r} != {result.values[1]!r}"
        )
    return result.cases_checked
