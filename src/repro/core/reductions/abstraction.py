"""Abstraction-function quotients with Strong-Lumping soundness checks.

This implements the paper's reduction recipe (Section IV-A.3/4): an
abstraction function ``F_abs`` maps each concrete state to an abstract
one; states with the same image form an equivalence class; the quotient
DTMC has one state per class.  The reduction is *sound* — a
probabilistic bisimulation — iff the partition is **strongly lumpable**
(Kemeny & Snell; Derisavi et al.'s formulation is used by the paper as
the "Strong Lumping Theorem"):

    for every pair of classes ``B, C`` and every state ``s`` in ``B``,
    the total probability ``P(s, C)`` of jumping into ``C`` is the same
    for all ``s`` in ``B``.

:func:`quotient_by_function` builds the quotient and *verifies* this
condition (plus label/reward constancy per class), raising
:class:`LumpingError` with a concrete witness otherwise — the
programmatic analogue of the paper's proof obligation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Hashable, List, Optional, Sequence

import numpy as np
from scipy import sparse

from ...dtmc.chain import DTMC

__all__ = ["LumpingError", "QuotientResult", "quotient_by_function", "quotient_by_partition"]

#: Tolerance for comparing aggregated transition probabilities.
DEFAULT_ATOL = 1e-9


class LumpingError(ValueError):
    """Raised when a proposed partition is not strongly lumpable."""


@dataclass
class QuotientResult:
    """A verified quotient construction.

    Attributes
    ----------
    chain:
        The quotient DTMC; its ``states`` are the abstract state
        objects (or block ids for :func:`quotient_by_partition`).
    block_of:
        Array mapping each concrete state index to its block index.
    blocks:
        Concrete state indices grouped per block.
    reduction_factor:
        ``concrete states / abstract states`` — the figure reported in
        the paper's Table II.
    """

    chain: DTMC
    block_of: np.ndarray
    blocks: List[List[int]]

    @property
    def num_blocks(self) -> int:
        return len(self.blocks)

    @property
    def reduction_factor(self) -> float:
        return self.block_of.shape[0] / max(1, len(self.blocks))


def _aggregate_row(
    chain: DTMC, state: int, block_of: np.ndarray
) -> Dict[int, float]:
    row: Dict[int, float] = {}
    matrix = chain.transition_matrix
    for j, p in zip(
        matrix.indices[matrix.indptr[state] : matrix.indptr[state + 1]],
        matrix.data[matrix.indptr[state] : matrix.indptr[state + 1]],
    ):
        block = int(block_of[j])
        row[block] = row.get(block, 0.0) + float(p)
    return row


def _rows_differ(a: Dict[int, float], b: Dict[int, float], atol: float) -> bool:
    keys = set(a) | set(b)
    return any(abs(a.get(k, 0.0) - b.get(k, 0.0)) > atol for k in keys)


def quotient_by_partition(
    chain: DTMC,
    block_of: Sequence[int],
    abstract_states: Optional[List[Any]] = None,
    atol: float = DEFAULT_ATOL,
    verify: bool = True,
    respect: Optional[Sequence[str]] = None,
) -> QuotientResult:
    """Quotient ``chain`` by an explicit partition.

    ``block_of[i]`` is the block index of concrete state ``i``; block
    indices must be ``0..k-1``.  With ``verify=True`` (default), the
    strong-lumpability condition and per-block constancy of labels and
    rewards are checked; violations raise :class:`LumpingError` naming
    the offending states.

    ``respect`` names the labels/rewards the quotient must preserve
    (default: all).  Labels outside this set are dropped from the
    quotient — they are generally not constant per block, so they have
    no well-defined quotient value.
    """
    block_of = np.asarray(block_of, dtype=np.int64)
    if block_of.shape != (chain.num_states,):
        raise ValueError(
            f"partition covers {block_of.shape[0]} states, chain has"
            f" {chain.num_states}"
        )
    num_blocks = int(block_of.max()) + 1 if block_of.size else 0
    if set(np.unique(block_of)) != set(range(num_blocks)):
        raise ValueError("block indices must be contiguous 0..k-1")

    blocks: List[List[int]] = [[] for _ in range(num_blocks)]
    for i, b in enumerate(block_of):
        blocks[int(b)].append(i)

    if respect is None:
        kept_labels = dict(chain.labels)
        kept_rewards = dict(chain.rewards)
    else:
        unknown = [
            name
            for name in respect
            if name not in chain.labels and name not in chain.rewards
        ]
        if unknown:
            raise KeyError(f"{unknown} are neither labels nor rewards")
        kept_labels = {k: v for k, v in chain.labels.items() if k in respect}
        kept_rewards = {k: v for k, v in chain.rewards.items() if k in respect}

    representative_rows: List[Dict[int, float]] = []
    for block_id, members in enumerate(blocks):
        rep_row = _aggregate_row(chain, members[0], block_of)
        if verify:
            for other in members[1:]:
                other_row = _aggregate_row(chain, other, block_of)
                if _rows_differ(rep_row, other_row, atol):
                    raise LumpingError(
                        f"partition is not strongly lumpable: states"
                        f" {members[0]} and {other} in block {block_id} have"
                        f" different aggregated rows {rep_row} vs {other_row}"
                    )
        representative_rows.append(rep_row)

    if verify:
        for name, vec in kept_labels.items():
            for block_id, members in enumerate(blocks):
                if len(set(bool(vec[i]) for i in members)) > 1:
                    raise LumpingError(
                        f"label {name!r} is not constant on block {block_id}"
                    )
        for name, vec in kept_rewards.items():
            for block_id, members in enumerate(blocks):
                values = vec[members]
                if values.max() - values.min() > atol:
                    raise LumpingError(
                        f"reward {name!r} is not constant on block {block_id}"
                    )

    rows: List[int] = []
    cols: List[int] = []
    vals: List[float] = []
    for block_id, row in enumerate(representative_rows):
        for target, probability in row.items():
            rows.append(block_id)
            cols.append(target)
            vals.append(probability)
    matrix = sparse.csr_matrix((vals, (rows, cols)), shape=(num_blocks, num_blocks))

    init = np.zeros(num_blocks)
    for i, p in enumerate(chain.initial_distribution):
        init[block_of[i]] += p

    labels = {
        name: np.array([bool(vec[members[0]]) for members in blocks])
        for name, vec in kept_labels.items()
    }
    rewards = {
        name: np.array([float(vec[members[0]]) for members in blocks])
        for name, vec in kept_rewards.items()
    }
    if abstract_states is None:
        abstract_states = list(range(num_blocks))
    quotient = DTMC(matrix, init, labels=labels, rewards=rewards, states=abstract_states)
    return QuotientResult(chain=quotient, block_of=block_of, blocks=blocks)


def quotient_by_function(
    chain: DTMC,
    abstraction: Callable[[Any], Hashable],
    atol: float = DEFAULT_ATOL,
    verify: bool = True,
) -> QuotientResult:
    """Quotient ``chain`` by an abstraction function over state objects.

    This is the paper's ``F_abs`` workflow: equivalence classes are the
    preimages of ``abstraction``, the quotient's states are the
    abstract values, and soundness (strong lumpability + label/reward
    constancy) is verified unless ``verify=False``.

    Requires the chain to carry state objects (``chain.states``).
    """
    if chain.states is None:
        raise ValueError("chain has no state objects; use quotient_by_partition")
    index_of_abstract: Dict[Hashable, int] = {}
    abstract_states: List[Hashable] = []
    block_of = np.empty(chain.num_states, dtype=np.int64)
    for i, state in enumerate(chain.states):
        image = abstraction(state)
        slot = index_of_abstract.get(image)
        if slot is None:
            slot = len(abstract_states)
            index_of_abstract[image] = slot
            abstract_states.append(image)
        block_of[i] = slot
    return quotient_by_partition(
        chain, block_of, abstract_states=abstract_states, atol=atol, verify=verify
    )
