"""Abstraction-function quotients with Strong-Lumping soundness checks.

This implements the paper's reduction recipe (Section IV-A.3/4): an
abstraction function ``F_abs`` maps each concrete state to an abstract
one; states with the same image form an equivalence class; the quotient
DTMC has one state per class.  The reduction is *sound* — a
probabilistic bisimulation — iff the partition is **strongly lumpable**
(Kemeny & Snell; Derisavi et al.'s formulation is used by the paper as
the "Strong Lumping Theorem"):

    for every pair of classes ``B, C`` and every state ``s`` in ``B``,
    the total probability ``P(s, C)`` of jumping into ``C`` is the same
    for all ``s`` in ``B``.

:func:`quotient_by_function` builds the quotient and *verifies* this
condition (plus label/reward constancy per class), raising
:class:`LumpingError` with a concrete witness otherwise — the
programmatic analogue of the paper's proof obligation.

Aggregation and verification are sparse-matrix algebra, sized for
10^5+-state chains: the per-state aggregated rows are the rows of one
sparse product ``P @ B`` (``B`` the CSR block indicator), the
lumpability check is a grouped min/max reduction over that product's
``(source block, target block)`` entries (implicit zeros accounted
for), and label/reward constancy are ``np.bincount`` / ``reduceat``
per-block reductions — no per-state Python anywhere on the hot path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Dict, Hashable, List, Optional, Sequence

import numpy as np
from scipy import sparse

from ...dtmc.chain import DTMC

if TYPE_CHECKING:  # pragma: no cover - import cycle (lumping imports us)
    from .lumping import RefinementStats

__all__ = ["LumpingError", "QuotientResult", "quotient_by_function", "quotient_by_partition"]

#: Tolerance for comparing aggregated transition probabilities.
DEFAULT_ATOL = 1e-9


class LumpingError(ValueError):
    """Raised when a proposed partition is not strongly lumpable."""


@dataclass
class QuotientResult:
    """A verified quotient construction.

    Attributes
    ----------
    chain:
        The quotient DTMC; its ``states`` are the abstract state
        objects (or block ids for :func:`quotient_by_partition`).
    block_of:
        Array mapping each concrete state index to its block index.
    blocks:
        Concrete state indices grouped per block.
    reduction_factor:
        ``concrete states / abstract states`` — the figure reported in
        the paper's Table II.
    refinement:
        :class:`~repro.core.reductions.lumping.RefinementStats` when the
        partition came from :func:`~repro.core.reductions.lumping.lump`
        (strategy, rounds, splitter counts); ``None`` otherwise.
    """

    chain: DTMC
    block_of: np.ndarray
    blocks: List[List[int]]
    refinement: Optional["RefinementStats"] = None

    @property
    def num_blocks(self) -> int:
        return len(self.blocks)

    @property
    def reduction_factor(self) -> float:
        return self.block_of.shape[0] / max(1, len(self.blocks))


def _aggregate_into_blocks(
    matrix: sparse.spmatrix, block_of: np.ndarray, num_blocks: int
) -> sparse.csr_matrix:
    """``P @ B``: row ``s`` holds the probability of ``s`` into each block.

    ``matrix`` may be a row slice of the transition matrix (e.g. the
    block representatives only); ``block_of`` always covers the full
    column space.
    """
    n = block_of.shape[0]
    indicator = sparse.csr_matrix(
        (np.ones(n), (np.arange(n), block_of)), shape=(n, num_blocks)
    )
    aggregated = (matrix @ indicator).tocsr()
    aggregated.sum_duplicates()
    aggregated.sort_indices()
    return aggregated


def _verify_strong_lumpability(
    aggregated: sparse.csr_matrix,
    block_of: np.ndarray,
    block_sizes: np.ndarray,
    atol: float,
) -> None:
    """Check ``P(s, C)`` is constant per block, implicit zeros included.

    Entries of ``aggregated`` are grouped by ``(source block, target
    block)`` with one lexsort; a group violates lumpability when its
    max-min spread (padded with 0 for members that carry no explicit
    entry) exceeds ``atol``.
    """
    coo = aggregated.tocoo()
    if coo.nnz == 0:
        return
    src_block = block_of[coo.row]
    order = np.lexsort((coo.col, src_block))
    grp_block = src_block[order]
    grp_target = coo.col[order]
    grp_value = coo.data[order]
    grp_state = coo.row[order]
    starts = np.flatnonzero(
        np.concatenate(
            [[True], (grp_block[1:] != grp_block[:-1]) | (grp_target[1:] != grp_target[:-1])]
        )
    )
    counts = np.diff(np.append(starts, grp_value.size))
    group_max = np.maximum.reduceat(grp_value, starts)
    group_min = np.minimum.reduceat(grp_value, starts)
    full = counts == block_sizes[grp_block[starts]]
    low = np.where(full, group_min, np.minimum(group_min, 0.0))
    high = np.where(full, group_max, np.maximum(group_max, 0.0))
    bad = np.flatnonzero(high - low > atol)
    if not bad.size:
        return
    g = int(bad[0])
    seg = slice(int(starts[g]), int(starts[g]) + int(counts[g]))
    seg_states, seg_values = grp_state[seg], grp_value[seg]
    block_id = int(grp_block[starts[g]])
    target = int(grp_target[starts[g]])
    hi_state = int(seg_states[np.argmax(seg_values)])
    if full[g]:
        lo_state = int(seg_states[np.argmin(seg_values)])
        lo_value = float(seg_values.min())
    else:  # witness a member with zero mass into the target block
        present = set(seg_states.tolist())
        members = np.flatnonzero(block_of == block_id)
        lo_state = int(next(m for m in members if int(m) not in present))
        lo_value = 0.0
    raise LumpingError(
        f"partition is not strongly lumpable: states {lo_state} and"
        f" {hi_state} in block {block_id} have different aggregated"
        f" probability into block {target}:"
        f" {lo_value} vs {float(seg_values.max())}"
    )


def quotient_by_partition(
    chain: DTMC,
    block_of: Sequence[int],
    abstract_states: Optional[List[Any]] = None,
    atol: float = DEFAULT_ATOL,
    verify: bool = True,
    respect: Optional[Sequence[str]] = None,
) -> QuotientResult:
    """Quotient ``chain`` by an explicit partition.

    ``block_of[i]`` is the block index of concrete state ``i``; block
    indices must be ``0..k-1``.  With ``verify=True`` (default), the
    strong-lumpability condition and per-block constancy of labels and
    rewards are checked; violations raise :class:`LumpingError` naming
    the offending states.

    ``respect`` names the labels/rewards the quotient must preserve
    (default: all).  Labels outside this set are dropped from the
    quotient — they are generally not constant per block, so they have
    no well-defined quotient value.

    A 0-state chain quotients to the 0-state chain (empty partition,
    zero blocks).
    """
    block_of = np.asarray(block_of, dtype=np.int64)
    if block_of.shape != (chain.num_states,):
        raise ValueError(
            f"partition covers {block_of.shape[0]} states, chain has"
            f" {chain.num_states}"
        )
    num_blocks = int(block_of.max()) + 1 if block_of.size else 0
    if block_of.size:
        uniques = np.unique(block_of)
        if uniques[0] < 0 or uniques.size != num_blocks:
            raise ValueError("block indices must be contiguous 0..k-1")

    block_sizes = np.bincount(block_of, minlength=num_blocks).astype(np.int64)
    order = np.argsort(block_of, kind="stable")
    starts = np.concatenate([[0], np.cumsum(block_sizes)]).astype(np.int64)
    blocks: List[List[int]] = [
        order[starts[b]:starts[b + 1]].tolist() for b in range(num_blocks)
    ]
    # Stable sort keeps members ascending, so the representative of each
    # block is its lowest-numbered member.
    representatives = order[starts[:-1]] if num_blocks else np.zeros(0, dtype=np.int64)

    if respect is None:
        kept_labels = dict(chain.labels)
        kept_rewards = dict(chain.rewards)
    else:
        unknown = [
            name
            for name in respect
            if name not in chain.labels and name not in chain.rewards
        ]
        if unknown:
            raise KeyError(
                f"{unknown} are neither labels nor rewards;"
                f" available labels: {sorted(chain.labels)},"
                f" rewards: {sorted(chain.rewards)}"
            )
        kept_labels = {k: v for k, v in chain.labels.items() if k in respect}
        kept_rewards = {k: v for k, v in chain.rewards.items() if k in respect}

    if verify and num_blocks:
        # Verification needs every state's aggregated row; the quotient
        # rows are then a representative slice of the same product.
        aggregated = _aggregate_into_blocks(
            chain.transition_matrix, block_of, num_blocks
        )
        matrix = aggregated[representatives]
        _verify_strong_lumpability(aggregated, block_of, block_sizes, atol)
        for name, vec in kept_labels.items():
            true_counts = np.bincount(
                block_of, weights=vec.astype(np.float64), minlength=num_blocks
            )
            bad = np.flatnonzero((true_counts > 0) & (true_counts < block_sizes))
            if bad.size:
                raise LumpingError(
                    f"label {name!r} is not constant on block {int(bad[0])}"
                )
        for name, vec in kept_rewards.items():
            sorted_values = vec[order]
            spread = np.maximum.reduceat(sorted_values, starts[:-1]) - (
                np.minimum.reduceat(sorted_values, starts[:-1])
            )
            bad = np.flatnonzero(spread > atol)
            if bad.size:
                raise LumpingError(
                    f"reward {name!r} is not constant on block {int(bad[0])}"
                )
    else:
        # Unverified: aggregate only the representative rows — ~n/k less
        # matmul work than the full product on large chains.
        matrix = _aggregate_into_blocks(
            chain.transition_matrix[representatives], block_of, num_blocks
        )

    init = np.bincount(
        block_of, weights=chain.initial_distribution, minlength=num_blocks
    )
    labels = {name: vec[representatives].copy() for name, vec in kept_labels.items()}
    rewards = {
        name: vec[representatives].astype(np.float64)
        for name, vec in kept_rewards.items()
    }
    if abstract_states is None:
        abstract_states = list(range(num_blocks))
    quotient = DTMC(matrix, init, labels=labels, rewards=rewards, states=abstract_states)
    return QuotientResult(chain=quotient, block_of=block_of, blocks=blocks)


def quotient_by_function(
    chain: DTMC,
    abstraction: Callable[[Any], Hashable],
    atol: float = DEFAULT_ATOL,
    verify: bool = True,
) -> QuotientResult:
    """Quotient ``chain`` by an abstraction function over state objects.

    This is the paper's ``F_abs`` workflow: equivalence classes are the
    preimages of ``abstraction``, the quotient's states are the
    abstract values, and soundness (strong lumpability + label/reward
    constancy) is verified unless ``verify=False``.

    Requires the chain to carry state objects (``chain.states``).
    """
    if chain.states is None:
        raise ValueError("chain has no state objects; use quotient_by_partition")
    index_of_abstract: Dict[Hashable, int] = {}
    abstract_states: List[Hashable] = []
    block_of = np.empty(chain.num_states, dtype=np.int64)
    for i, state in enumerate(chain.states):
        image = abstraction(state)
        slot = index_of_abstract.get(image)
        if slot is None:
            slot = len(abstract_states)
            index_of_abstract[image] = slot
            abstract_states.append(image)
        block_of[i] = slot
    return quotient_by_partition(
        chain, block_of, abstract_states=abstract_states, atol=atol, verify=verify
    )
