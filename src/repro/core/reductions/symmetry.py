"""Symmetry reduction for DTMC models.

The paper's MIMO detector (Section IV-B) contains ``2 x N_R``
structurally identical *metric blocks* — the real and imaginary parts
of each receive antenna's matched-filter computation.  Exchanging the
contents of two blocks neither changes the detector's decision (the
sum in Eq. 15 is commutative) nor the transition probabilities (the
blocks' noise and fading are i.i.d.), so states that differ only by a
permutation of block contents are probabilistically bisimilar.

The quotient under the full symmetric group on blocks is obtained by
*canonicalization*: represent every state by the sorted tuple of its
block contents.  Feeding :func:`sorted_blocks_canonicalizer` to the
state-space builder performs the reduction on the fly, so the full
model never materializes (Table II's 400x reduction).

:func:`verify_permutation_invariance` is the corresponding soundness
check on an explicit chain: it verifies that a given state permutation
is an automorphism of the labeled chain, which by Kwiatkowska, Norman
& Parker ("Symmetry reduction for probabilistic model checking",
CAV 2006 — the paper's reference [18]) makes the quotient preserve all
pCTL properties over the symmetric labels.
"""

from __future__ import annotations

from typing import Any, Callable, Hashable, Iterable, Optional, Sequence, Tuple


from ...dtmc.chain import DTMC

__all__ = [
    "sorted_blocks_canonicalizer",
    "group_orbit_canonicalizer",
    "verify_permutation_invariance",
    "orbit_sizes",
]


def sorted_blocks_canonicalizer(
    extract: Callable[[Any], Tuple[Sequence[Any], Any]],
    rebuild: Callable[[Sequence[Any], Any], Any],
) -> Callable[[Any], Any]:
    """Canonicalizer for full-symmetric-group block permutations.

    ``extract(state)`` must return ``(blocks, rest)`` where ``blocks``
    is the sequence of exchangeable components and ``rest`` the
    asymmetric remainder; ``rebuild(sorted_blocks, rest)`` re-assembles
    a state.  The canonical representative sorts the blocks, which is
    the unique orbit representative under all permutations.
    """

    def canonicalize(state: Any) -> Any:
        blocks, rest = extract(state)
        return rebuild(tuple(sorted(blocks)), rest)

    return canonicalize


def group_orbit_canonicalizer(
    generators: Sequence[Callable[[Any], Any]],
    max_orbit: int = 10_000,
) -> Callable[[Any], Any]:
    """Canonicalizer for an arbitrary finite symmetry group.

    ``generators`` are state-to-state bijections generating the group.
    The orbit of a state is enumerated by closure under the generators
    and its minimum (by Python ordering) is the representative.  Meant
    for small groups (e.g. cyclic rotations); for the full symmetric
    group on blocks prefer :func:`sorted_blocks_canonicalizer`, which
    avoids the factorial orbit enumeration.
    """

    def canonicalize(state: Any) -> Any:
        orbit = {state}
        frontier = [state]
        while frontier:
            nxt = []
            for s in frontier:
                for g in generators:
                    image = g(s)
                    if image not in orbit:
                        orbit.add(image)
                        nxt.append(image)
                        if len(orbit) > max_orbit:
                            raise RuntimeError(
                                "orbit exceeded max_orbit; wrong generators?"
                            )
            frontier = nxt
        return min(orbit)

    return canonicalize


def verify_permutation_invariance(
    chain: DTMC,
    permute: Callable[[Any], Any],
    respect_labels: Optional[Iterable[str]] = None,
    atol: float = 1e-9,
) -> bool:
    """Check that ``permute`` is an automorphism of the labeled chain.

    Verifies, for every state ``s``:

    * ``permute(s)`` is a reachable state of the chain;
    * ``P(permute(s), permute(s')) == P(s, s')`` for all successors;
    * every label in ``respect_labels`` (default: all) and every reward
      agree on ``s`` and ``permute(s)``;
    * the initial distribution is invariant.

    Returns True or raises ``AssertionError`` with a witness — meant to
    be called from tests and from the analyzer's soundness mode.
    """
    if chain.states is None:
        raise ValueError("chain must carry state objects")
    index = {state: i for i, state in enumerate(chain.states)}
    label_names = list(respect_labels) if respect_labels is not None else list(chain.labels)

    for i, state in enumerate(chain.states):
        image = permute(state)
        j = index.get(image)
        if j is None:
            raise AssertionError(
                f"permutation image {image!r} of state {state!r} is not a state"
            )
        for name in label_names:
            vec = chain.label_vector(name)
            if bool(vec[i]) != bool(vec[j]):
                raise AssertionError(
                    f"label {name!r} not invariant: {state!r} vs {image!r}"
                )
        for name, vec in chain.rewards.items():
            if abs(float(vec[i]) - float(vec[j])) > atol:
                raise AssertionError(
                    f"reward {name!r} not invariant: {state!r} vs {image!r}"
                )
        if abs(chain.initial_distribution[i] - chain.initial_distribution[j]) > atol:
            raise AssertionError(
                f"initial distribution not invariant on {state!r}"
            )
        row = {index[chain.states[t]]: p for t, p in chain.successors(i)}
        permuted_row = {}
        for t, p in chain.successors(i):
            image_t = permute(chain.states[t])
            jt = index.get(image_t)
            if jt is None:
                raise AssertionError(
                    f"successor image {image_t!r} is not a state"
                )
            permuted_row[jt] = permuted_row.get(jt, 0.0) + p
        actual_row = dict(chain.successors(j))
        keys = set(permuted_row) | set(actual_row)
        for k in keys:
            if abs(permuted_row.get(k, 0.0) - actual_row.get(k, 0.0)) > atol:
                raise AssertionError(
                    f"transition probabilities not invariant at {state!r} ->"
                    f" {chain.states[k]!r}"
                )
    return True


def orbit_sizes(
    states: Sequence[Hashable], canonicalize: Callable[[Any], Any]
) -> dict:
    """Histogram of orbit sizes: canonical representative -> orbit count.

    Useful for predicting the reduction factor of a symmetry quotient
    (the paper's Table II ratio is ``sum(sizes) / len(sizes)``).
    """
    sizes: dict = {}
    for state in states:
        rep = canonicalize(state)
        sizes[rep] = sizes.get(rep, 0) + 1
    return sizes
