"""Property-preserving reductions with machine-checked soundness.

* :mod:`abstraction` — quotient by an abstraction function, verified
  against the Strong Lumping Theorem (the paper's Viterbi reduction).
* :mod:`lumping` — coarsest strongly-lumpable partition by refinement
  (Derisavi et al., the paper's reference [17]).
* :mod:`bisimulation` — Larsen-Skou probabilistic bisimulation and a
  decision procedure for bisimilarity of two chains.
* :mod:`symmetry` — on-the-fly symmetry reduction and automorphism
  verification (the paper's MIMO-detector reduction, reference [18]).
* :mod:`equivalence` — exhaustive combinational equivalence checking
  (substitute for the paper's use of Synopsys Formality).
"""

from .abstraction import (
    LumpingError,
    QuotientResult,
    quotient_by_function,
    quotient_by_partition,
)
from .bisimulation import (
    BisimulationResult,
    are_bisimilar,
    coarsest_bisimulation,
    disjoint_union,
)
from .equivalence import EquivalenceResult, assert_equivalent, functions_equivalent
from .lumping import (
    RefinementStats,
    coarsest_lumping,
    coarsest_lumping_with_stats,
    initial_partition,
    lump,
)
from .symmetry import (
    group_orbit_canonicalizer,
    orbit_sizes,
    sorted_blocks_canonicalizer,
    verify_permutation_invariance,
)

__all__ = [
    "LumpingError",
    "QuotientResult",
    "quotient_by_function",
    "quotient_by_partition",
    "BisimulationResult",
    "are_bisimilar",
    "coarsest_bisimulation",
    "disjoint_union",
    "EquivalenceResult",
    "assert_equivalent",
    "functions_equivalent",
    "RefinementStats",
    "coarsest_lumping",
    "coarsest_lumping_with_stats",
    "initial_partition",
    "lump",
    "group_orbit_canonicalizer",
    "orbit_sizes",
    "sorted_blocks_canonicalizer",
    "verify_permutation_invariance",
]
