"""Optimal state-space lumping by partition refinement.

Computes the *coarsest* strongly-lumpable partition of a DTMC that
respects its labels and rewards — the algorithm of Derisavi, Hermanns &
Sanders ("Optimal state-space lumping in Markov chains", IPL 2003),
which the paper cites as reference [17] to justify its reductions.

The refinement loop:

1. start from the partition induced by the (label, reward) signature of
   each state;
2. repeatedly pick a block ``C`` as *splitter*, compute ``P(s, C)`` for
   every state ``s``, and split every block whose members disagree;
3. stop when no splitter refines anything.

The result is the unique coarsest probabilistic bisimulation (Larsen &
Skou) respecting the labeling; quotienting by it is always sound.
Probabilities are compared after rounding to ``decimals`` digits,
making the refinement robust to floating-point noise.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Hashable, List, Optional, Sequence, Tuple

import numpy as np

from ...dtmc.chain import DTMC
from .abstraction import QuotientResult, quotient_by_partition

__all__ = ["initial_partition", "coarsest_lumping", "lump"]


def initial_partition(
    chain: DTMC, respect: Optional[Sequence[str]] = None, decimals: int = 10
) -> np.ndarray:
    """Partition states by their (label, reward) signature.

    ``respect`` restricts which labels/rewards matter (default: all of
    them); properties over other labels are *not* preserved by the
    resulting lumping.
    """
    n = chain.num_states
    signatures: List[Tuple[Hashable, ...]] = [() for _ in range(n)]
    names = respect if respect is not None else (
        sorted(chain.labels) + sorted(chain.rewards)
    )
    for name in names:
        if name in chain.labels:
            vec = chain.labels[name]
            signatures = [
                sig + (bool(vec[i]),) for i, sig in enumerate(signatures)
            ]
        elif name in chain.rewards:
            vec = np.round(chain.rewards[name], decimals)
            signatures = [
                sig + (float(vec[i]),) for i, sig in enumerate(signatures)
            ]
        else:
            raise KeyError(f"{name!r} is neither a label nor a reward")
    block_ids: Dict[Tuple[Hashable, ...], int] = {}
    block_of = np.empty(n, dtype=np.int64)
    for i, sig in enumerate(signatures):
        block_of[i] = block_ids.setdefault(sig, len(block_ids))
    return block_of


def _renumber(block_of: np.ndarray) -> np.ndarray:
    """Renumber block ids to contiguous 0..k-1 preserving first-seen order."""
    mapping: Dict[int, int] = {}
    out = np.empty_like(block_of)
    for i, b in enumerate(block_of):
        out[i] = mapping.setdefault(int(b), len(mapping))
    return out


def coarsest_lumping(
    chain: DTMC,
    respect: Optional[Sequence[str]] = None,
    decimals: int = 10,
    max_rounds: Optional[int] = None,
) -> np.ndarray:
    """Coarsest strongly-lumpable partition respecting labels/rewards.

    Returns ``block_of`` suitable for
    :func:`~repro.core.reductions.abstraction.quotient_by_partition`.
    """
    matrix = chain.transition_matrix
    n = chain.num_states
    block_of = _renumber(initial_partition(chain, respect, decimals))

    rounds = 0
    stable = False
    while not stable:
        stable = True
        rounds += 1
        if max_rounds is not None and rounds > max_rounds:
            raise RuntimeError("partition refinement exceeded max_rounds")
        num_blocks = int(block_of.max()) + 1
        # Signature of each state: its probability into every current
        # block (sparse dict), rounded for robust comparison.
        signatures: List[Tuple] = []
        indptr, indices, data = matrix.indptr, matrix.indices, matrix.data
        for s in range(n):
            row: Dict[int, float] = defaultdict(float)
            for k in range(indptr[s], indptr[s + 1]):
                row[int(block_of[indices[k]])] += float(data[k])
            signatures.append(
                tuple(sorted((b, round(p, decimals)) for b, p in row.items()))
            )
        # Split each block by signature.
        new_ids: Dict[Tuple[int, Tuple], int] = {}
        new_block_of = np.empty(n, dtype=np.int64)
        for s in range(n):
            key = (int(block_of[s]), signatures[s])
            new_block_of[s] = new_ids.setdefault(key, len(new_ids))
        if len(new_ids) != num_blocks:
            stable = False
        block_of = _renumber(new_block_of)
    return block_of


def lump(
    chain: DTMC,
    respect: Optional[Sequence[str]] = None,
    decimals: int = 10,
) -> QuotientResult:
    """Lump ``chain`` to its smallest equivalent quotient.

    One-call convenience: computes the coarsest lumping and quotients
    by it (verification is cheap and kept on as a safety net).
    """
    block_of = coarsest_lumping(chain, respect=respect, decimals=decimals)
    atol = 10.0 ** (-decimals) * 10
    return quotient_by_partition(chain, block_of, atol=atol, respect=respect)
